//! Documents which suite loops the automatic bound inference covers:
//! everything with compile-time-constant trip counts; data-dependent
//! loops are left to the user, as the paper intends.

use ipet_core::{infer_loop_bounds, Analyzer};
use ipet_hw::Machine;

#[test]
fn inference_covers_exactly_the_counted_loops() {
    // (benchmark, total loops, automatically inferable loops)
    let expected = [
        ("check_data", 1, 0), // data-dependent scan
        ("fft", 4, 2),        // bitrev outer + stage loops counted
        ("piksrt", 2, 1),     // inner while is data-dependent
        ("des", 4, 4),        // fully counted
        ("line", 1, 0),       // trip count depends on the endpoints
        ("circle", 1, 0),     // depends on the radius
        ("jpeg_fdct_islow", 2, 2),
        ("jpeg_idct_islow", 2, 2),
        ("recon", 2, 2),
        ("fullsearch", 4, 2), // outer loops start below zero via 0-4
        ("whetstone", 7, 7),
        ("dhry", 5, 2), // func2, proc2 do-while, proc8 bound left out
        ("matgen", 2, 2),
    ];
    for (name, total, inferable) in expected {
        let b = ipet_suite::by_name(name).unwrap();
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
        assert_eq!(analyzer.loops_needing_bounds().len(), total, "{name}: total loops");
        let inferred = infer_loop_bounds(&analyzer);
        assert_eq!(inferred.len(), inferable, "{name}: inferable loops");
    }
}
