//! Robustness: the annotation, IDL and DSL parsers must never panic, no
//! matter what text they are fed — they return structured errors.

use ipet_core::{compile_idl, parse_annotations, parse_idl};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary UTF-8 never panics the DSL parser.
    #[test]
    fn dsl_parser_never_panics(src in ".*") {
        let _ = parse_annotations(&src);
    }

    /// Arbitrary text built from DSL-ish tokens never panics either (this
    /// drives the parser much deeper than raw unicode).
    #[test]
    fn dsl_parser_survives_token_soup(
        toks in prop::collection::vec(
            prop_oneof![
                Just("fn"), Just("loop"), Just("in"), Just("{"), Just("}"),
                Just("("), Just(")"), Just("["), Just("]"), Just(";"),
                Just(","), Just("&"), Just("|"), Just("="), Just("<="),
                Just(">="), Just("+"), Just("-"), Just("*"), Just("."),
                Just("x1"), Just("d2"), Just("f1"), Just("main"), Just("7"),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_annotations(&src);
    }

    /// The IDL parser and its lowering never panic.
    #[test]
    fn idl_parser_never_panics(src in ".*") {
        let _ = parse_idl(&src);
        let _ = compile_idl(&src);
    }

    /// IDL token soup.
    #[test]
    fn idl_parser_survives_token_soup(
        toks in prop::collection::vec(
            prop_oneof![
                Just("idl"), Just("iterates"), Just("times"), Just("samepath"),
                Just("exclusive"), Just("exactlyone"), Just("implies"),
                Just("{"), Just("}"), Just(";"), Just("x1"), Just("x9"),
                Just("[1,"), Just("2]"), Just("f"), Just("#c"), Just("\n"),
            ],
            0..30,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_idl(&src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Structured random IDL programs always lower to valid DSL with the
    /// expected statement counts (the §III-C translation is total on the
    /// IDL fragment).
    #[test]
    fn idl_lowering_is_total_and_countable(
        stmts in prop::collection::vec(
            prop_oneof![
                (1usize..9, 0i64..5, 5i64..20)
                    .prop_map(|(h, lo, hi)| format!("iterates x{h} [{lo}, {hi}];")),
                (1usize..9, 0i64..3, 3i64..9)
                    .prop_map(|(b, lo, hi)| format!("times x{b} [{lo}, {hi}];")),
                (1usize..9, 1usize..9).prop_map(|(a, b)| format!("samepath x{a} x{b};")),
                (1usize..9, 1usize..9).prop_map(|(a, b)| format!("exclusive x{a} x{b};")),
                (1usize..9, 1usize..9).prop_map(|(a, b)| format!("exactlyone x{a} x{b};")),
                (1usize..9, 1usize..9).prop_map(|(a, b)| format!("implies x{a} x{b};")),
            ],
            0..12,
        )
    ) {
        let src = format!("idl f {{\n{}\n}}", stmts.join("\n"));
        let idl = parse_idl(&src).expect("structured IDL parses");
        prop_assert_eq!(idl.functions[0].1.len(), stmts.len());
        let dsl = compile_idl(&src).expect("lowering is total");
        let anns = parse_annotations(&dsl).expect("lowered DSL reparses");
        // `times` lowers to two statements; everything else to one.
        let expected: usize = stmts
            .iter()
            .map(|s| if s.starts_with("times") { 2 } else { 1 })
            .sum();
        prop_assert_eq!(anns.for_function("f").len(), expected);
    }
}
