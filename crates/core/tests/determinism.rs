//! The whole analysis is deterministic: identical inputs give identical
//! estimates, counts, breakdowns and solver statistics — a requirement for
//! a certification-oriented tool.

use ipet_core::Analyzer;
use ipet_hw::Machine;

#[test]
fn analysis_is_deterministic_across_runs() {
    for name in ["check_data", "dhry", "fft"] {
        let b = ipet_suite::by_name(name).unwrap();
        let program = b.program().unwrap();
        let ann = b.annotations(&program);
        let a1 = Analyzer::new(&program, Machine::i960kb()).unwrap();
        let a2 = Analyzer::new(&program, Machine::i960kb()).unwrap();
        let e1 = a1.analyze(&ann).unwrap();
        let e2 = a2.analyze(&ann).unwrap();
        assert_eq!(e1, e2, "{name}");
        assert_eq!(e1.render(), e2.render(), "{name}");
    }
}

#[test]
fn compilation_is_deterministic() {
    for b in ipet_suite::all() {
        let p1 = b.program().unwrap();
        let p2 = b.program().unwrap();
        assert_eq!(p1, p2, "{}", b.name);
    }
}
