//! Linear constraints over symbolic [`VarRef`]s, plus the null-set test
//! used to prune constraint sets before they reach the ILP solver.

use crate::vars::VarRef;
use ipet_lp::Relation;
use std::collections::HashMap;
use std::fmt;

/// One linear constraint `Σ coeff·var <relation> rhs` over symbolic
/// variables.
#[derive(Debug, Clone, PartialEq)]
pub struct LinCon {
    /// Sparse terms; coefficients for repeated variables are summed.
    pub terms: Vec<(VarRef, f64)>,
    /// Relation of the row.
    pub relation: Relation,
    /// Right-hand-side constant.
    pub rhs: f64,
}

impl LinCon {
    /// `Σ terms = rhs`
    pub fn eq(terms: Vec<(VarRef, f64)>, rhs: f64) -> LinCon {
        LinCon { terms, relation: Relation::Eq, rhs }
    }

    /// `Σ terms <= rhs`
    pub fn le(terms: Vec<(VarRef, f64)>, rhs: f64) -> LinCon {
        LinCon { terms, relation: Relation::Le, rhs }
    }

    /// `Σ terms >= rhs`
    pub fn ge(terms: Vec<(VarRef, f64)>, rhs: f64) -> LinCon {
        LinCon { terms, relation: Relation::Ge, rhs }
    }

    /// Sums repeated variables, returning `(var, coeff)` pairs with
    /// non-zero coefficients.
    pub fn normalized_terms(&self) -> Vec<(VarRef, f64)> {
        let mut acc: HashMap<VarRef, f64> = HashMap::new();
        for &(v, c) in &self.terms {
            *acc.entry(v).or_insert(0.0) += c;
        }
        let mut out: Vec<(VarRef, f64)> = acc.into_iter().filter(|&(_, c)| c != 0.0).collect();
        out.sort_by_key(|&(v, _)| v);
        out
    }
}

impl fmt::Display for LinCon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.normalized_terms() {
            if first {
                if c == 1.0 {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if c < 0.0 {
                if c == -1.0 {
                    write!(f, " - {v}")?;
                } else {
                    write!(f, " - {}*{v}", -c)?;
                }
            } else if c == 1.0 {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {c}*{v}")?;
            }
        }
        if first {
            write!(f, "0")?;
        }
        let rel = match self.relation {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        };
        write!(f, " {rel} {}", self.rhs)
    }
}

/// Interval-based null test on a conjunctive constraint set.
///
/// Mirrors the paper's pruning ("some of the constraint sets will become a
/// null set, e.g. `x_i >= 1` intersected with `x_i = 0`"): single-variable
/// rows tighten a `[lo, hi]` interval per variable (all IPET variables are
/// non-negative, so `lo` starts at 0); an empty interval proves the set
/// null. Multi-variable rows are ignored, so this is a sound but incomplete
/// test — exactly what the paper describes ("these trivial null sets, if
/// detected, will be pruned").
pub fn set_is_null(set: &[LinCon]) -> bool {
    let mut lo: HashMap<VarRef, f64> = HashMap::new();
    let mut hi: HashMap<VarRef, f64> = HashMap::new();
    for con in set {
        let terms = con.normalized_terms();
        if terms.len() != 1 {
            continue;
        }
        let (v, a) = terms[0];
        // a*x REL rhs  ->  x REL' rhs/a (flip when a < 0)
        let bound = con.rhs / a;
        let rel = if a < 0.0 {
            match con.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            }
        } else {
            con.relation
        };
        match rel {
            Relation::Le => {
                let h = hi.entry(v).or_insert(f64::INFINITY);
                *h = h.min(bound);
            }
            Relation::Ge => {
                let l = lo.entry(v).or_insert(0.0);
                *l = l.max(bound);
            }
            Relation::Eq => {
                let h = hi.entry(v).or_insert(f64::INFINITY);
                *h = h.min(bound);
                let l = lo.entry(v).or_insert(0.0);
                *l = l.max(bound);
            }
        }
    }
    for (v, &h) in &hi {
        let l = lo.get(v).copied().unwrap_or(0.0);
        if l > h + 1e-9 {
            return true;
        }
        // Non-negativity: an upper bound below zero is already null.
        if h < -1e-9 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_cfg::{BlockId, InstanceId};

    fn x(i: usize) -> VarRef {
        VarRef::Block(InstanceId(0), BlockId(i))
    }

    #[test]
    fn normalization_merges_terms() {
        let c = LinCon::eq(vec![(x(0), 1.0), (x(0), 2.0), (x(1), -1.0), (x(1), 1.0)], 0.0);
        assert_eq!(c.normalized_terms(), vec![(x(0), 3.0)]);
    }

    #[test]
    fn display_renders_signs() {
        let c = LinCon::le(vec![(x(0), 1.0), (x(1), -2.0)], 3.0);
        let s = c.to_string();
        assert!(s.contains("x1@i0"), "{s}");
        assert!(s.contains("- 2*x2@i0"), "{s}");
        assert!(s.ends_with("<= 3"), "{s}");
        let empty = LinCon::eq(vec![], 1.0);
        assert_eq!(empty.to_string(), "0 = 1");
    }

    #[test]
    fn papers_null_example() {
        // x >= 1  &  x = 0  is null.
        let set = vec![LinCon::ge(vec![(x(0), 1.0)], 1.0), LinCon::eq(vec![(x(0), 1.0)], 0.0)];
        assert!(set_is_null(&set));
    }

    #[test]
    fn conflicting_equalities_are_null() {
        let set = vec![LinCon::eq(vec![(x(0), 1.0)], 1.0), LinCon::eq(vec![(x(0), 1.0)], 2.0)];
        assert!(set_is_null(&set));
    }

    #[test]
    fn negative_upper_bound_is_null() {
        // x <= -1 with x >= 0 implicit.
        let set = vec![LinCon::le(vec![(x(0), 1.0)], -1.0)];
        assert!(set_is_null(&set));
    }

    #[test]
    fn negative_coefficient_flips_relation() {
        // -x <= -2  ->  x >= 2; with x = 1 -> null.
        let set = vec![LinCon::le(vec![(x(0), -1.0)], -2.0), LinCon::eq(vec![(x(0), 1.0)], 1.0)];
        assert!(set_is_null(&set));
    }

    #[test]
    fn consistent_set_is_not_null() {
        let set = vec![
            LinCon::ge(vec![(x(0), 1.0)], 1.0),
            LinCon::le(vec![(x(0), 1.0)], 10.0),
            LinCon::eq(vec![(x(1), 1.0)], 4.0),
        ];
        assert!(!set_is_null(&set));
    }

    #[test]
    fn multi_variable_rows_do_not_prune() {
        // x0 + x1 <= -5 is infeasible with non-negativity but involves two
        // variables, so the trivial test keeps it (the ILP will reject it).
        let set = vec![LinCon::le(vec![(x(0), 1.0), (x(1), 1.0)], -5.0)];
        assert!(!set_is_null(&set));
    }
}
