//! The functionality-constraint annotation language.
//!
//! The paper lets the user state loop bounds and arbitrary (disjunctions
//! of) linear path facts; this module provides a concrete syntax for them:
//!
//! ```text
//! # check_data example (paper Fig. 5 / eqs. (14)-(17))
//! fn check_data {
//!     loop x2 in [1, 10];                     # eqs. (14)-(15)
//!     (x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0);  # eq. (16)
//!     x3 = x8;                                # eq. (17)
//! }
//! fn task {
//!     x12 = x8.f1;                            # eq. (18)
//! }
//! ```
//!
//! References are function-scoped: `x3` is block `B3` of the annotated
//! function, `d2` its second CFG edge, `f1` the flow through its first
//! call site, and `x8.f1` block `B8` of the callee instance entered
//! through call site `f1`. Paths chain (`x2.f1.f3`) for nested calls.
//! `loop xH in [lo, hi]` bounds the *back-edge traversals per entry* of
//! the loop headed at block `H` — for a top-tested (`while`/`for`) loop
//! that equals the iteration count; for a bottom-tested (`do`/`while`)
//! loop it is the iteration count minus one.

use crate::error::AnalysisError;
use ipet_lp::Relation;
use std::fmt;

/// What namespace a [`Ref`] lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefKind {
    /// A basic-block execution count (`x3`).
    X,
    /// A CFG-edge flow (`d2`).
    D,
    /// A call-site flow (`f1`).
    F,
}

/// A variable reference, possibly scoped into callees via `.fN` hops.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ref {
    /// Namespace of the final component.
    pub kind: RefKind,
    /// 1-based index within the function finally reached.
    pub index: usize,
    /// 1-based call-site hops from the annotated function, applied left to
    /// right before resolving `index`.
    pub path: Vec<usize>,
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            RefKind::X => 'x',
            RefKind::D => 'd',
            RefKind::F => 'f',
        };
        write!(f, "{k}{}", self.index)?;
        for p in &self.path {
            write!(f, ".f{p}")?;
        }
        Ok(())
    }
}

/// A linear expression `Σ coeff·ref + constant` with integer coefficients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinExpr {
    /// Signed integer terms.
    pub terms: Vec<(i64, Ref)>,
    /// Constant offset.
    pub constant: i64,
}

/// One relational atom or a parenthesised sub-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `lhs REL rhs`
    Rel(LinExpr, Relation, LinExpr),
    /// `( or-expression )`
    Group(OrExpr),
}

/// Conjunction of atoms (the paper's `&`).
#[derive(Debug, Clone, PartialEq)]
pub struct AndExpr(pub Vec<Atom>);

/// Disjunction of conjunctions (the paper's `|`).
#[derive(Debug, Clone, PartialEq)]
pub struct OrExpr(pub Vec<AndExpr>);

impl OrExpr {
    /// Expands to disjunctive normal form: a list of conjunctive sets of
    /// relational atoms. The paper's "set of constraint sets".
    pub fn to_dnf(&self) -> Vec<Vec<(LinExpr, Relation, LinExpr)>> {
        let mut out = Vec::new();
        for and in &self.0 {
            // Cartesian product across the atoms of the conjunction.
            let mut sets: Vec<Vec<(LinExpr, Relation, LinExpr)>> = vec![Vec::new()];
            for atom in &and.0 {
                let choices: Vec<Vec<(LinExpr, Relation, LinExpr)>> = match atom {
                    Atom::Rel(l, r, rr) => vec![vec![(l.clone(), *r, rr.clone())]],
                    Atom::Group(or) => or.to_dnf(),
                };
                let mut next = Vec::with_capacity(sets.len() * choices.len());
                for s in &sets {
                    for c in &choices {
                        let mut merged = s.clone();
                        merged.extend(c.iter().cloned());
                        next.push(merged);
                    }
                }
                sets = next;
            }
            out.extend(sets);
        }
        out
    }
}

/// One annotation statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `loop xH in [lo, hi];` — per entry, the loop headed at block `H`
    /// traverses its back edges between `lo` and `hi` times (the iteration
    /// count for top-tested loops; iterations minus one for `do`/`while`).
    Loop {
        /// Header block reference (must be `x`-kind).
        header: Ref,
        /// Minimum back-edge traversals per entry.
        lo: i64,
        /// Maximum back-edge traversals per entry.
        hi: i64,
    },
    /// A (possibly disjunctive) linear constraint.
    Cons(OrExpr),
}

/// Where a loop bound came from. Hand-written annotations carry
/// [`BoundSource::Annotated`]; rows emitted by the inference pass carry
/// the rule that produced them and the loop's source line; when both
/// exist the merged row records the two intervals it combined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundSource {
    /// Written by hand in the annotation file.
    Annotated,
    /// Derived by the static inference pass.
    Inferred {
        /// Name of the inference rule (`counted`, `monotonic`, …).
        rule: String,
        /// Source line of the loop statement (0 when unknown, e.g. `.s`).
        line: u32,
    },
    /// Both sources applied; the effective bound is their intersection.
    Merged {
        /// Rule that produced the inferred side.
        rule: String,
        /// Source line of the loop statement (0 when unknown).
        line: u32,
        /// The hand-written interval.
        annotated: (i64, i64),
        /// The inferred interval.
        inferred: (i64, i64),
    },
}

impl BoundSource {
    /// Short label used in the report and trace document.
    pub fn label(&self) -> String {
        match self {
            BoundSource::Annotated => "annotated".into(),
            BoundSource::Inferred { rule, .. } => format!("inferred:{rule}"),
            BoundSource::Merged { rule, .. } => format!("merged:{rule}"),
        }
    }

    /// Source line when one is known.
    pub fn line(&self) -> Option<u32> {
        match self {
            BoundSource::Annotated => None,
            BoundSource::Inferred { line, .. } | BoundSource::Merged { line, .. } => {
                (*line != 0).then_some(*line)
            }
        }
    }
}

/// Provenance of one effective loop bound: which function and header block
/// it constrains, the interval in force, and where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopProvenance {
    /// Function the loop lives in.
    pub func: String,
    /// 0-based header block (reported as `x{header+1}`).
    pub header: usize,
    /// Effective minimum back-edge traversals per entry.
    pub lo: i64,
    /// Effective maximum back-edge traversals per entry.
    pub hi: i64,
    /// Where the interval came from.
    pub source: BoundSource,
}

impl LoopProvenance {
    /// The canonical parameter-symbol name of this loop's bound, as used
    /// in symbolic cost forms ([`ipet_hw::ParamExpr`]): `bound.<func>.x<H>`
    /// with the header block in its 1-based `x` notation.
    pub fn bound_symbol(&self) -> String {
        format!("bound.{}.x{}", self.func, self.header + 1)
    }
}

/// Parsed annotation file: statements grouped by function name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Annotations {
    /// `(function name, statements)` in file order.
    pub functions: Vec<(String, Vec<Stmt>)>,
    /// Provenance rows for the loop bounds in `functions` — empty for
    /// plain parsed annotation files, populated by the inference pass.
    pub provenance: Vec<LoopProvenance>,
}

impl Annotations {
    /// Statements attached to `func`, across all `fn` items naming it.
    pub fn for_function(&self, func: &str) -> Vec<&Stmt> {
        self.functions.iter().filter(|(n, _)| n == func).flat_map(|(_, s)| s.iter()).collect()
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Fn,
    Loop,
    In,
    Ident(String),
    Int(i64),
    Var(RefKind, usize),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Amp,
    Pipe,
    Plus,
    Minus,
    Star,
    Eq,
    Le,
    Ge,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Fn => write!(f, "fn"),
            Tok::Loop => write!(f, "loop"),
            Tok::In => write!(f, "in"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Var(k, n) => {
                let c = match k {
                    RefKind::X => 'x',
                    RefKind::D => 'd',
                    RefKind::F => 'f',
                };
                write!(f, "{c}{n}")
            }
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Amp => write!(f, "&"),
            Tok::Pipe => write!(f, "|"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Eq => write!(f, "="),
            Tok::Le => write!(f, "<="),
            Tok::Ge => write!(f, ">="),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, AnalysisError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                toks.push((Tok::LBrace, line));
                i += 1;
            }
            '}' => {
                toks.push((Tok::RBrace, line));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, line));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, line));
                i += 1;
            }
            '[' => {
                toks.push((Tok::LBracket, line));
                i += 1;
            }
            ']' => {
                toks.push((Tok::RBracket, line));
                i += 1;
            }
            ';' => {
                toks.push((Tok::Semi, line));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, line));
                i += 1;
            }
            '.' => {
                toks.push((Tok::Dot, line));
                i += 1;
            }
            '&' => {
                toks.push((Tok::Amp, line));
                i += 1;
            }
            '|' => {
                toks.push((Tok::Pipe, line));
                i += 1;
            }
            '+' => {
                toks.push((Tok::Plus, line));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, line));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, line));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, line));
                i += 1;
            }
            '<' if bytes.get(i + 1) == Some(&'=') => {
                toks.push((Tok::Le, line));
                i += 2;
            }
            '>' if bytes.get(i + 1) == Some(&'=') => {
                toks.push((Tok::Ge, line));
                i += 2;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n: i64 = text.parse().map_err(|_| AnalysisError::Parse {
                    line,
                    message: format!("integer literal {text} out of range"),
                })?;
                toks.push((Tok::Int(n), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let tok = match word.as_str() {
                    "fn" => Tok::Fn,
                    "loop" => Tok::Loop,
                    "in" => Tok::In,
                    _ => classify_ident(&word),
                };
                toks.push((tok, line));
            }
            other => {
                return Err(AnalysisError::Parse {
                    line,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(toks)
}

/// `x12`, `d3`, `f1` become variable tokens; everything else is an
/// identifier (function name).
fn classify_ident(word: &str) -> Tok {
    let mut chars = word.chars();
    let head = chars.next().expect("nonempty word");
    let rest: String = chars.collect();
    if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
        if let Ok(n) = rest.parse::<usize>() {
            let kind = match head {
                'x' => Some(RefKind::X),
                'd' => Some(RefKind::D),
                'f' => Some(RefKind::F),
                _ => None,
            };
            if let (Some(kind), true) = (kind, n >= 1) {
                return Tok::Var(kind, n);
            }
        }
    }
    Tok::Ident(word.to_string())
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map(|(_, l)| *l).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> AnalysisError {
        AnalysisError::Parse { line: self.line(), message: message.into() }
    }

    fn expect(&mut self, want: Tok) -> Result<(), AnalysisError> {
        match self.bump() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(self.err(format!("expected {want}, found {t}"))),
            None => Err(self.err(format!("expected {want}, found end of input"))),
        }
    }

    fn parse_file(&mut self) -> Result<Annotations, AnalysisError> {
        let mut anns = Annotations::default();
        while self.peek().is_some() {
            self.expect(Tok::Fn)?;
            let name = match self.bump() {
                Some(Tok::Ident(n)) => n,
                Some(Tok::Var(k, n)) => {
                    // Allow function names that look like variables (rare).
                    let c = match k {
                        RefKind::X => 'x',
                        RefKind::D => 'd',
                        RefKind::F => 'f',
                    };
                    format!("{c}{n}")
                }
                other => {
                    return Err(self.err(format!(
                        "expected function name, found {}",
                        other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
                    )))
                }
            };
            self.expect(Tok::LBrace)?;
            let mut stmts = Vec::new();
            while self.peek() != Some(&Tok::RBrace) {
                stmts.push(self.parse_stmt()?);
            }
            self.expect(Tok::RBrace)?;
            anns.functions.push((name, stmts));
        }
        Ok(anns)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, AnalysisError> {
        if self.peek() == Some(&Tok::Loop) {
            self.bump();
            let header = self.parse_ref()?;
            self.expect(Tok::In)?;
            self.expect(Tok::LBracket)?;
            let lo = self.parse_int()?;
            self.expect(Tok::Comma)?;
            let hi = self.parse_int()?;
            self.expect(Tok::RBracket)?;
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Loop { header, lo, hi });
        }
        let or = self.parse_or()?;
        self.expect(Tok::Semi)?;
        Ok(Stmt::Cons(or))
    }

    fn parse_int(&mut self) -> Result<i64, AnalysisError> {
        let neg = if self.peek() == Some(&Tok::Minus) {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            Some(Tok::Int(n)) => Ok(if neg { -n } else { n }),
            other => Err(self.err(format!(
                "expected integer, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn parse_or(&mut self) -> Result<OrExpr, AnalysisError> {
        let mut ands = vec![self.parse_and()?];
        while self.peek() == Some(&Tok::Pipe) {
            self.bump();
            ands.push(self.parse_and()?);
        }
        Ok(OrExpr(ands))
    }

    fn parse_and(&mut self) -> Result<AndExpr, AnalysisError> {
        let mut atoms = vec![self.parse_atom()?];
        while self.peek() == Some(&Tok::Amp) {
            self.bump();
            atoms.push(self.parse_atom()?);
        }
        Ok(AndExpr(atoms))
    }

    fn parse_atom(&mut self) -> Result<Atom, AnalysisError> {
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            let inner = self.parse_or()?;
            self.expect(Tok::RParen)?;
            return Ok(Atom::Group(inner));
        }
        let lhs = self.parse_linexpr()?;
        let rel = match self.bump() {
            Some(Tok::Eq) => Relation::Eq,
            Some(Tok::Le) => Relation::Le,
            Some(Tok::Ge) => Relation::Ge,
            other => {
                return Err(self.err(format!(
                    "expected =, <= or >=, found {}",
                    other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        let rhs = self.parse_linexpr()?;
        Ok(Atom::Rel(lhs, rel, rhs))
    }

    fn parse_linexpr(&mut self) -> Result<LinExpr, AnalysisError> {
        let mut expr = LinExpr { terms: Vec::new(), constant: 0 };
        let mut sign = 1i64;
        if self.peek() == Some(&Tok::Minus) {
            self.bump();
            sign = -1;
        }
        loop {
            self.parse_term(&mut expr, sign)?;
            match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    sign = 1;
                }
                Some(Tok::Minus) => {
                    self.bump();
                    sign = -1;
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_term(&mut self, expr: &mut LinExpr, sign: i64) -> Result<(), AnalysisError> {
        match self.peek() {
            Some(Tok::Int(_)) => {
                let n = match self.bump() {
                    Some(Tok::Int(n)) => n,
                    _ => unreachable!("peeked an Int"),
                };
                if self.peek() == Some(&Tok::Star) {
                    self.bump();
                    let r = self.parse_ref()?;
                    expr.terms.push((sign * n, r));
                } else if matches!(self.peek(), Some(Tok::Var(_, _))) {
                    // `10 x1` shorthand.
                    let r = self.parse_ref()?;
                    expr.terms.push((sign * n, r));
                } else {
                    expr.constant += sign * n;
                }
                Ok(())
            }
            Some(Tok::Var(_, _)) => {
                let r = self.parse_ref()?;
                expr.terms.push((sign, r));
                Ok(())
            }
            other => Err(self.err(format!(
                "expected a term, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn parse_ref(&mut self) -> Result<Ref, AnalysisError> {
        let (kind, index) = match self.bump() {
            Some(Tok::Var(k, n)) => (k, n),
            other => {
                return Err(self.err(format!(
                    "expected a variable reference, found {}",
                    other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        let mut path = Vec::new();
        while self.peek() == Some(&Tok::Dot) {
            self.bump();
            match self.bump() {
                Some(Tok::Var(RefKind::F, n)) => path.push(n),
                other => {
                    return Err(self.err(format!(
                        "expected .fN call-site hop, found {}",
                        other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
                    )))
                }
            }
        }
        // `x8.f1` in the paper reads "x8 of the callee at site f1": the
        // written order is base-then-path, but resolution follows the path
        // first. Keep the parsed order; resolution handles it.
        Ok(Ref { kind, index, path })
    }
}

/// Parses an annotation file.
///
/// # Errors
///
/// Returns [`AnalysisError::Parse`] with the offending line.
pub fn parse_annotations(src: &str) -> Result<Annotations, AnalysisError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.parse_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_check_data_annotations() {
        let src = r#"
            # paper Fig. 5
            fn check_data {
                loop x2 in [1, 10];
                (x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0);
                x3 = x8;
            }
            fn task {
                x12 = x8.f1;
            }
        "#;
        let anns = parse_annotations(src).unwrap();
        assert_eq!(anns.functions.len(), 2);
        let cd = anns.for_function("check_data");
        assert_eq!(cd.len(), 3);
        assert!(matches!(cd[0], Stmt::Loop { lo: 1, hi: 10, .. }));
        let task = anns.for_function("task");
        assert_eq!(task.len(), 1);
        if let Stmt::Cons(or) = task[0] {
            let dnf = or.to_dnf();
            assert_eq!(dnf.len(), 1);
            let (_, rel, rhs) = &dnf[0][0];
            assert_eq!(*rel, Relation::Eq);
            assert_eq!(rhs.terms[0].1, Ref { kind: RefKind::X, index: 8, path: vec![1] });
        } else {
            panic!("expected constraint");
        }
    }

    #[test]
    fn dnf_of_disjunction_has_two_sets() {
        let src = "fn f { (x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0); }";
        let anns = parse_annotations(src).unwrap();
        if let Stmt::Cons(or) = &anns.functions[0].1[0] {
            let dnf = or.to_dnf();
            assert_eq!(dnf.len(), 2);
            assert_eq!(dnf[0].len(), 2);
            assert_eq!(dnf[1].len(), 2);
        } else {
            panic!();
        }
    }

    #[test]
    fn nested_groups_expand() {
        // (a | b) & (c | d) -> 4 sets.
        let src = "fn f { (x1 = 0 | x1 = 1) & (x2 = 0 | x2 = 1); }";
        let anns = parse_annotations(src).unwrap();
        if let Stmt::Cons(or) = &anns.functions[0].1[0] {
            assert_eq!(or.to_dnf().len(), 4);
        } else {
            panic!();
        }
    }

    #[test]
    fn coefficients_and_constants() {
        let src = "fn f { 2*x1 - 3*x2 + 5 <= 10 x3; }";
        let anns = parse_annotations(src).unwrap();
        if let Stmt::Cons(or) = &anns.functions[0].1[0] {
            let dnf = or.to_dnf();
            let (lhs, rel, rhs) = &dnf[0][0];
            assert_eq!(*rel, Relation::Le);
            assert_eq!(
                lhs.terms,
                vec![
                    (2, Ref { kind: RefKind::X, index: 1, path: vec![] }),
                    (-3, Ref { kind: RefKind::X, index: 2, path: vec![] }),
                ]
            );
            assert_eq!(lhs.constant, 5);
            assert_eq!(rhs.terms, vec![(10, Ref { kind: RefKind::X, index: 3, path: vec![] })]);
        } else {
            panic!();
        }
    }

    #[test]
    fn leading_minus_and_d_f_refs() {
        let src = "fn f { -x1 + d2 >= f1 - 4; }";
        let anns = parse_annotations(src).unwrap();
        if let Stmt::Cons(or) = &anns.functions[0].1[0] {
            let (lhs, _, rhs) = &or.to_dnf()[0][0];
            assert_eq!(lhs.terms[0].0, -1);
            assert_eq!(lhs.terms[1].1.kind, RefKind::D);
            assert_eq!(rhs.terms[0].1.kind, RefKind::F);
            assert_eq!(rhs.constant, -4);
        } else {
            panic!();
        }
    }

    #[test]
    fn multi_hop_path() {
        let src = "fn f { x2.f1.f3 = 7; }";
        let anns = parse_annotations(src).unwrap();
        if let Stmt::Cons(or) = &anns.functions[0].1[0] {
            let (lhs, _, _) = &or.to_dnf()[0][0];
            assert_eq!(lhs.terms[0].1.path, vec![1, 3]);
        } else {
            panic!();
        }
    }

    #[test]
    fn error_reports_line() {
        let src = "fn f {\n x1 = ;\n}";
        match parse_annotations(src) {
            Err(AnalysisError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_character() {
        match parse_annotations("fn f { x1 = 0 ^ x2 = 1; }") {
            Err(AnalysisError::Parse { message, .. }) => {
                assert!(message.contains('^'), "{message}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comments_are_ignored() {
        let src = "# a comment\nfn f { // another\n x1 = 1; }";
        let anns = parse_annotations(src).unwrap();
        assert_eq!(anns.functions[0].1.len(), 1);
    }

    #[test]
    fn x0_is_an_identifier_not_a_var() {
        // Indices are 1-based; `x0` falls back to an identifier and fails
        // to parse as a term.
        assert!(parse_annotations("fn f { x0 = 1; }").is_err());
    }

    #[test]
    fn empty_function_block_is_fine() {
        let anns = parse_annotations("fn f { }").unwrap();
        assert!(anns.for_function("f").is_empty());
        assert!(anns.for_function("other").is_empty());
    }

    #[test]
    fn ref_display_roundtrip() {
        let r = Ref { kind: RefKind::X, index: 8, path: vec![1, 2] };
        assert_eq!(r.to_string(), "x8.f1.f2");
    }
}
