//! A front-end for Park-style IDL annotations.
//!
//! The paper compares its functionality constraints with the IDL
//! (information description language) of Park's thesis and claims that
//! "every construct in IDL can be translated to a disjunctive form
//! constraint". This module demonstrates the translation constructively:
//! a small IDL-like language is parsed and compiled into the native
//! constraint DSL of [`crate::parse_annotations`].
//!
//! Supported constructs (per annotated function):
//!
//! ```text
//! idl check_data {
//!     iterates x2 [1, 10];       # loop bound
//!     times x6 [0, 1];           # execution-count range of a statement
//!     samepath x6 x13;           # executed together, equally often
//!     exclusive x6 x8;           # never on the same run
//!     exactlyone x6 x8;          # exclusive, and one of them happens
//!     implies x4 x2;             # if x4 executes at all, so does x2
//! }
//! ```
//!
//! Every construct lowers to a conjunction or disjunction of linear
//! constraints; `exclusive`/`exactlyone` produce the disjunctive sets the
//! paper's eq. (16) illustrates.

use crate::error::AnalysisError;
use std::fmt::Write as _;

/// One parsed IDL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdlStmt {
    /// `iterates xH [lo, hi];`
    Iterates { header: usize, lo: i64, hi: i64 },
    /// `times xA [lo, hi];`
    Times { block: usize, lo: i64, hi: i64 },
    /// `samepath xA xB;`
    SamePath { a: usize, b: usize },
    /// `exclusive xA xB;`
    Exclusive { a: usize, b: usize },
    /// `exactlyone xA xB;`
    ExactlyOne { a: usize, b: usize },
    /// `implies xA xB;`
    Implies { a: usize, b: usize },
}

/// A parsed IDL file: statements grouped by function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IdlAnnotations {
    /// `(function, statements)` in file order.
    pub functions: Vec<(String, Vec<IdlStmt>)>,
}

fn parse_block_ref(tok: &str, line: usize) -> Result<usize, AnalysisError> {
    let err = || AnalysisError::Parse {
        line,
        message: format!("expected a block reference like x3, found {tok}"),
    };
    let rest = tok.strip_prefix('x').ok_or_else(err)?;
    let n: usize = rest.parse().map_err(|_| err())?;
    if n == 0 {
        return Err(err());
    }
    Ok(n)
}

fn parse_range(toks: &[&str], line: usize) -> Result<(i64, i64), AnalysisError> {
    // Accept the forms "[lo, hi]" possibly split across tokens.
    let joined: String = toks.concat();
    let inner = joined.strip_prefix('[').and_then(|s| s.strip_suffix(']')).ok_or_else(|| {
        AnalysisError::Parse { line, message: format!("expected [lo, hi], found {joined}") }
    })?;
    let mut parts = inner.split(',');
    let parse = |p: Option<&str>| -> Result<i64, AnalysisError> {
        p.and_then(|s| s.trim().parse().ok()).ok_or(AnalysisError::Parse {
            line,
            message: format!("expected [lo, hi], found {joined}"),
        })
    };
    let lo = parse(parts.next())?;
    let hi = parse(parts.next())?;
    if parts.next().is_some() {
        return Err(AnalysisError::Parse {
            line,
            message: format!("expected [lo, hi], found {joined}"),
        });
    }
    Ok((lo, hi))
}

/// Parses IDL text.
///
/// # Errors
///
/// Returns [`AnalysisError::Parse`] with the offending line.
pub fn parse_idl(src: &str) -> Result<IdlAnnotations, AnalysisError> {
    let mut out = IdlAnnotations::default();
    let mut current: Option<(String, Vec<IdlStmt>)> = None;

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks[0] {
            "idl" => {
                if current.is_some() {
                    return Err(AnalysisError::Parse {
                        line,
                        message: "nested idl blocks are not allowed".into(),
                    });
                }
                if toks.len() < 2 {
                    return Err(AnalysisError::Parse {
                        line,
                        message: "idl needs a function name".into(),
                    });
                }
                let name = toks[1].trim_end_matches('{').to_string();
                current = Some((name, Vec::new()));
            }
            "}" => {
                let block = current.take().ok_or(AnalysisError::Parse {
                    line,
                    message: "unmatched closing brace".into(),
                })?;
                out.functions.push(block);
            }
            keyword => {
                let (_, stmts) = current.as_mut().ok_or(AnalysisError::Parse {
                    line,
                    message: format!("{keyword} outside an idl block"),
                })?;
                let body = text.trim_end_matches(';');
                let args: Vec<&str> = body.split_whitespace().skip(1).collect();
                let stmt = match keyword {
                    "iterates" | "times" => {
                        if args.len() < 2 {
                            return Err(AnalysisError::Parse {
                                line,
                                message: format!("{keyword} needs a block and a range"),
                            });
                        }
                        let block = parse_block_ref(args[0], line)?;
                        let (lo, hi) = parse_range(&args[1..], line)?;
                        if lo < 0 || hi < lo {
                            return Err(AnalysisError::Parse {
                                line,
                                message: format!("bad range [{lo}, {hi}]"),
                            });
                        }
                        if keyword == "iterates" {
                            IdlStmt::Iterates { header: block, lo, hi }
                        } else {
                            IdlStmt::Times { block, lo, hi }
                        }
                    }
                    "samepath" | "exclusive" | "exactlyone" | "implies" => {
                        if args.len() != 2 {
                            return Err(AnalysisError::Parse {
                                line,
                                message: format!("{keyword} needs exactly two blocks"),
                            });
                        }
                        let a = parse_block_ref(args[0], line)?;
                        let b = parse_block_ref(args[1], line)?;
                        match keyword {
                            "samepath" => IdlStmt::SamePath { a, b },
                            "exclusive" => IdlStmt::Exclusive { a, b },
                            "exactlyone" => IdlStmt::ExactlyOne { a, b },
                            _ => IdlStmt::Implies { a, b },
                        }
                    }
                    other => {
                        return Err(AnalysisError::Parse {
                            line,
                            message: format!("unknown IDL construct {other}"),
                        })
                    }
                };
                stmts.push(stmt);
            }
        }
    }
    if current.is_some() {
        return Err(AnalysisError::Parse {
            line: src.lines().count(),
            message: "unterminated idl block".into(),
        });
    }
    Ok(out)
}

/// Lowers parsed IDL to the native constraint DSL — the paper's claimed
/// translation, made executable.
pub fn idl_to_dsl(idl: &IdlAnnotations) -> String {
    let mut out = String::new();
    for (func, stmts) in &idl.functions {
        let _ = writeln!(out, "fn {func} {{");
        for s in stmts {
            match s {
                IdlStmt::Iterates { header, lo, hi } => {
                    let _ = writeln!(out, "    loop x{header} in [{lo}, {hi}];");
                }
                IdlStmt::Times { block, lo, hi } => {
                    let _ = writeln!(out, "    x{block} >= {lo};");
                    let _ = writeln!(out, "    x{block} <= {hi};");
                }
                IdlStmt::SamePath { a, b } => {
                    let _ = writeln!(out, "    x{a} = x{b};");
                }
                IdlStmt::Exclusive { a, b } => {
                    let _ = writeln!(out, "    (x{a} = 0) | (x{b} = 0);");
                }
                IdlStmt::ExactlyOne { a, b } => {
                    let _ = writeln!(out, "    (x{a} = 0 & x{b} >= 1) | (x{a} >= 1 & x{b} = 0);");
                }
                IdlStmt::Implies { a, b } => {
                    // "if A executes, B executes": A = 0 or B >= 1.
                    let _ = writeln!(out, "    (x{a} = 0) | (x{b} >= 1);");
                }
            }
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Parses IDL text and lowers it to the native DSL in one step.
///
/// # Errors
///
/// Propagates parse errors from either language layer (the lowered text is
/// re-parsed as a sanity check).
pub fn compile_idl(src: &str) -> Result<String, AnalysisError> {
    let idl = parse_idl(src)?;
    let dsl = idl_to_dsl(&idl);
    crate::dsl::parse_annotations(&dsl)?; // the translation must be valid DSL
    Ok(dsl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_constructs() {
        let idl = parse_idl(
            "idl check_data {
                iterates x2 [1, 10];
                times x6 [0, 1];
                samepath x6 x13;
                exclusive x6 x8;
                exactlyone x6 x8;
                implies x4 x2;   # comment
            }",
        )
        .unwrap();
        assert_eq!(idl.functions.len(), 1);
        assert_eq!(idl.functions[0].1.len(), 6);
    }

    #[test]
    fn lowering_produces_disjunctions() {
        let dsl = compile_idl(
            "idl f {
                exclusive x3 x5;
                exactlyone x3 x5;
            }",
        )
        .unwrap();
        assert!(dsl.contains("(x3 = 0) | (x5 = 0);"));
        assert!(dsl.contains("(x3 = 0 & x5 >= 1) | (x3 >= 1 & x5 = 0);"));
    }

    #[test]
    fn range_forms_tolerate_spacing() {
        for text in ["iterates x2 [1, 10];", "iterates x2 [1,10];", "iterates x2 [ 1 , 10 ];"] {
            let src = format!("idl f {{\n{text}\n}}");
            let idl = parse_idl(&src).unwrap();
            assert_eq!(idl.functions[0].1[0], IdlStmt::Iterates { header: 2, lo: 1, hi: 10 });
        }
    }

    #[test]
    fn errors_are_located() {
        let err = parse_idl("idl f {\n bogus x1 x2;\n}").unwrap_err();
        match err {
            AnalysisError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bogus"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_idl("idl f {\n iterates x2 [5, 1];\n}").is_err());
        assert!(parse_idl("iterates x2 [1, 2];").is_err(), "outside a block");
        assert!(parse_idl("idl f {").is_err(), "unterminated");
        assert!(parse_idl("idl f {\n times y3 [1, 2];\n}").is_err(), "bad ref");
    }

    #[test]
    fn end_to_end_idl_equals_native_dsl() {
        // The paper's check_data constraints expressed in IDL must produce
        // the same estimate as the native annotations.
        use crate::estimate::Analyzer;
        use ipet_hw::Machine;

        let b = ipet_suite::by_name("check_data").unwrap();
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
        let native = analyzer.analyze(&b.annotations(&program)).unwrap();

        let idl_src = "
            idl check_data {
                iterates x2 [1, 10];
                exactlyone x6 x8;
                samepath x6 x13;
            }";
        let dsl = compile_idl(idl_src).unwrap();
        let via_idl = analyzer.analyze(&dsl).unwrap();
        assert_eq!(via_idl.bound, native.bound);
        assert_eq!(via_idl.sets_total, native.sets_total);
    }
}
