//! Analysis errors.

use ipet_cfg::CallGraphError;
use std::fmt;

/// Errors reported by the IPET analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The program violates an IPET restriction (recursion, expansion cap).
    CallGraph(CallGraphError),
    /// The annotation text failed to parse: `(line, message)`.
    Parse { line: usize, message: String },
    /// An annotation names a function that does not exist.
    UnknownFunction(String),
    /// An annotation references a block/edge/site out of range.
    BadReference { func: String, reference: String, reason: String },
    /// A `loop` annotation names a block that is not a loop header.
    NotALoopHeader { func: String, block: String },
    /// A loop bound interval is empty or negative.
    BadLoopBound { func: String, lo: i64, hi: i64 },
    /// The WCET ILP is unbounded — some loop lacks a bound annotation.
    /// Lists `function(block)` headers that have no bound.
    Unbounded { unbounded_loops: Vec<String> },
    /// Every functionality constraint set was null or infeasible.
    AllSetsInfeasible { total: usize },
    /// The ILP solver gave up (node limit).
    SolverLimit,
    /// The solver met NaN/non-finite arithmetic it could not recover from.
    Numerical,
    /// The solve budget ran out before any safe bound could be proven
    /// (degradation was disabled or there was nothing to degrade to).
    BudgetExhausted,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::CallGraph(e) => write!(f, "{e}"),
            AnalysisError::Parse { line, message } => {
                write!(f, "annotation parse error at line {line}: {message}")
            }
            AnalysisError::UnknownFunction(n) => {
                write!(f, "annotation names unknown function {n}")
            }
            AnalysisError::BadReference { func, reference, reason } => {
                write!(f, "bad reference {reference} in fn {func}: {reason}")
            }
            AnalysisError::NotALoopHeader { func, block } => {
                write!(f, "loop annotation in fn {func}: {block} is not a loop header")
            }
            AnalysisError::BadLoopBound { func, lo, hi } => {
                write!(f, "loop bound [{lo}, {hi}] in fn {func} is not a valid interval")
            }
            AnalysisError::Unbounded { unbounded_loops } => {
                writeln!(f, "WCET is unbounded; add loop bounds for:")?;
                for l in unbounded_loops {
                    writeln!(f, "  {l}")?;
                }
                write!(f, "hint: try --infer to derive loop bounds automatically")
            }
            AnalysisError::AllSetsInfeasible { total } => {
                write!(f, "all {total} functionality constraint sets are infeasible")
            }
            AnalysisError::SolverLimit => write!(f, "ILP solver hit its node limit"),
            AnalysisError::Numerical => {
                write!(f, "solver failed numerically (non-finite arithmetic in the model)")
            }
            AnalysisError::BudgetExhausted => write!(
                f,
                "solve budget exhausted before any safe bound was proven; raise the \
                 deadline/node budget or allow degradation"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<CallGraphError> for AnalysisError {
    fn from(e: CallGraphError) -> AnalysisError {
        AnalysisError::CallGraph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e =
            AnalysisError::Unbounded { unbounded_loops: vec!["main(B2)".into(), "fft(B4)".into()] };
        let s = e.to_string();
        assert!(s.contains("main(B2)"));
        assert!(s.contains("fft(B4)"));

        let e = AnalysisError::Parse { line: 3, message: "expected ';'".into() };
        assert!(e.to_string().contains("line 3"));

        let e: AnalysisError = CallGraphError::Recursion(vec!["a".into(), "a".into()]).into();
        assert!(e.to_string().contains("recursive"));
    }
}
