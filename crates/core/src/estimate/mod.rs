//! The IPET estimator: functionality-constraint resolution, DNF set
//! expansion, null pruning, ILP assembly and the final `[t_min, t_max]`.
//!
//! The module is split by pipeline stage:
//!
//! * [`sets`] — annotation resolution: `x`/`d`/`f` references, loop-bound
//!   equations (the paper's eqs. 14–15), and DNF expansion inputs.
//! * [`plan`] — job-graph construction: base+delta decomposition, cache
//!   split, canonical set ordering, ILP assembly.
//! * [`fold`] — the pure verdict fold that turns solved jobs back into an
//!   [`Estimate`] (plus exact-arithmetic certification).
//! * [`degrade`] — budget-exhaustion coverage: the common-constraint cover
//!   relaxation that bounds skipped sets.
//!
//! ## Base+delta decomposition
//!
//! Every ILP of one analysis shares its structural rows, objective and
//! bounds; the DNF sets differ only in the disjunct rows they picked. The
//! plan therefore assembles one shared [`BaseProblem`] per sense
//! (structural + common functionality + cache-split rows — exactly the
//! cover relaxation used to bound skipped sets) and one small [`DeltaSet`]
//! per surviving set. Each job's full problem is `base.compose(delta)`
//! **by construction**, so the warm-started incremental solver and the
//! cold monolithic solver answer the same composed problem bit for bit.

use crate::dsl::{parse_annotations, Annotations, LoopProvenance, Stmt};
use crate::error::AnalysisError;
use ipet_arch::{FuncId, Program};
use ipet_audit::{certify_witness, AuditReport, ClaimKind, FlowSpec};
use ipet_cfg::{BlockId, InstanceId, Instances};
use ipet_hw::{block_cost, block_cost_param, BlockCost, Machine, ParamExpr, ParamPoint};
use ipet_lp::{
    solve_ilp_budgeted, BaseProblem, BoundQuality, BudgetMeter, DeltaSet, IlpResolution, IlpStats,
    IncrementalSolver, Problem, Sense, SolveBudget, SolverFaults,
};
use std::collections::{BTreeMap, HashSet};

mod degrade;
mod fold;
mod plan;
mod sets;
#[cfg(test)]
mod tests;

/// Resource budget and degradation policy for one analysis run.
///
/// The [`SolveBudget`] is shared across every ILP the analysis solves: the
/// tick deadline caps the *sum* of solver work over all constraint sets and
/// both senses, which is what a wall-clock deadline means for the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisBudget {
    /// Solver resource limits (tick deadline, LP iterations, B&B nodes,
    /// DNF set cap).
    pub solve: SolveBudget,
    /// When `true` (the default), budget exhaustion degrades to a safe but
    /// looser bound tagged [`BoundQuality::Relaxed`] /
    /// [`BoundQuality::Partial`]; when `false` it becomes a hard
    /// [`AnalysisError`].
    pub degrade: bool,
}

impl AnalysisBudget {
    /// The default policy: effectively unlimited budget, degradation on.
    pub fn unlimited() -> AnalysisBudget {
        AnalysisBudget { solve: SolveBudget::unlimited(), degrade: true }
    }
}

impl Default for AnalysisBudget {
    fn default() -> AnalysisBudget {
        AnalysisBudget::unlimited()
    }
}

/// How call contexts are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContextMode {
    /// One CFG instance per acyclic call string (the paper's "separate set
    /// of x_i variables ... for this instance of the call"). Required for
    /// caller-scoped constraints such as `x8.f1`.
    #[default]
    PerCallSite,
    /// The paper's eq.-(12) formulation: one instance per function, callee
    /// entry flow = sum of all `f`-edges targeting it. Smaller ILPs;
    /// caller-scoped constraints lose their context sensitivity.
    Shared,
}

/// How the worst-case objective treats the instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// The paper's baseline: every block execution pays cold-cache fetch
    /// costs ("we assume that the execution will always result in
    /// cache-misses").
    #[default]
    AllMiss,
    /// The refinement sketched in §IV: the first iteration of a loop is
    /// treated as a separate virtual block with cold costs; later
    /// iterations pay warm costs. Applied only to loops whose body is
    /// call-free and provably conflict-free in the i-cache, so the bound
    /// stays safe.
    FirstIterSplit,
}

/// An estimated time interval in cycles (the paper's `[t_min, t_max]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TimeBound {
    /// Estimated best-case cycles (`t_min`).
    pub lower: u64,
    /// Estimated worst-case cycles (`t_max`).
    pub upper: u64,
}

impl TimeBound {
    /// True when `self` encloses `other` (the correctness criterion of
    /// Fig. 1: the estimated bound must contain the actual bound).
    pub fn encloses(&self, other: TimeBound) -> bool {
        self.lower <= other.lower && other.upper <= self.upper
    }

    /// The paper's pessimism measure
    /// `[(M_l - E_l) / M_l, (E_u - M_u) / M_u]` against a reference bound.
    pub fn pessimism_against(&self, reference: TimeBound) -> (f64, f64) {
        let lo = if reference.lower == 0 {
            0.0
        } else {
            (reference.lower as f64 - self.lower as f64) / reference.lower as f64
        };
        let hi = if reference.upper == 0 {
            0.0
        } else {
            (self.upper as f64 - reference.upper as f64) / reference.upper as f64
        };
        (lo, hi)
    }
}

/// Per-constraint-set solver report.
#[derive(Debug, Clone, PartialEq)]
pub struct SetReport {
    /// Index among the surviving (non-pruned) sets.
    pub index: usize,
    /// Worst-case objective for this set (`None` when the set is
    /// infeasible at the ILP level).
    pub wcet: Option<u64>,
    /// Best-case objective for this set.
    pub bcet: Option<u64>,
    /// Solver statistics of the WCET ILP.
    pub wcet_stats: IlpStats,
    /// Solver statistics of the BCET ILP.
    pub bcet_stats: IlpStats,
    /// How this set's contribution was obtained: [`BoundQuality::Exact`]
    /// when both solves completed, [`BoundQuality::Relaxed`] when either
    /// fell back to its LP-relaxation bound.
    pub quality: BoundQuality,
}

/// Result of one full IPET analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// The estimated bound `[t_min, t_max]`.
    pub bound: TimeBound,
    /// Constraint sets produced by DNF expansion, before pruning
    /// (Table I's "Sets" column counts these).
    pub sets_total: usize,
    /// Sets eliminated by the trivial null test.
    pub sets_pruned: usize,
    /// Per-set reports for the sets that reached the solver.
    pub sets: Vec<SetReport>,
    /// Basic-block counts of the worst-case solution, labelled
    /// `x<k>@<instance>` (only non-zero entries).
    pub wcet_counts: BTreeMap<String, i64>,
    /// Basic-block counts of the best-case solution.
    pub bcet_counts: BTreeMap<String, i64>,
    /// Cycles each CFG instance contributes to the WCET (instance label →
    /// cycles), summing to `bound.upper` for an [`BoundQuality::Exact`]
    /// analysis. For a degraded analysis the breakdown reflects the best
    /// *witnessed* solution, which the degraded bound only covers.
    pub wcet_contributions: BTreeMap<String, u64>,
    /// Trust level of `bound`: exact, relaxed (budget exhaustion fell back
    /// to LP-relaxation bounds), or partial (constraint sets were skipped
    /// or disjunctions dropped, covered by a common-constraint relaxation).
    pub quality: BoundQuality,
    /// Surviving constraint sets the solver never reached before the budget
    /// ran out. Their contribution to `bound` comes from the
    /// common-constraint cover relaxation, not a per-set solve.
    pub sets_skipped: usize,
    /// Indices (into `sets`) of the reports whose bound is degraded.
    pub degraded_sets: Vec<usize>,
    /// Provenance of every effective loop bound (annotated vs inferred vs
    /// merged). Empty unless the inference pass ran — the render section
    /// only appears when non-empty, keeping annotation-only output stable.
    pub loop_bounds: Vec<LoopProvenance>,
    /// The symbolic WCET formula: the worst-case witness's execution counts
    /// multiplied by the *parametric* per-variable costs, an exact integer
    /// linear form over the named cache penalties
    /// ([`ipet_hw::P_MISS`], [`ipet_hw::P_DMISS`]).
    ///
    /// Present only for a [`BoundQuality::Exact`] analysis whose formula
    /// provably reproduces `bound.upper` when evaluated at the analyzed
    /// machine's own parameter point — so the formula is never a guess.
    /// The formula is the witness's *line*: it equals the true WCET at this
    /// parameter point and is a lower bound elsewhere; region certification
    /// (`ipet_lp::parametric`, DESIGN.md §16) decides where it stays exact.
    pub wcet_formula: Option<ParamExpr>,
}

impl Estimate {
    /// Renders the estimate the way the paper's tool reports it (§V):
    /// the bound in cycles, the constraint-set accounting, solver
    /// statistics, and the worst-case block counts.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ =
            writeln!(out, "estimated bound: [{}, {}] cycles", self.bound.lower, self.bound.upper);
        let _ = writeln!(out, "bound quality: {}", self.quality);
        let _ = writeln!(
            out,
            "constraint sets: {} total, {} pruned as null, {} solved",
            self.sets_total,
            self.sets_pruned,
            self.sets.len()
        );
        if self.sets_skipped > 0 {
            let _ = writeln!(
                out,
                "  {} sets skipped on budget exhaustion (covered by the \
                 common-constraint relaxation)",
                self.sets_skipped
            );
        }
        if !self.degraded_sets.is_empty() {
            let list: Vec<String> = self.degraded_sets.iter().map(|i| i.to_string()).collect();
            let _ = writeln!(out, "  degraded sets (LP-relaxation bound): {}", list.join(", "));
        }
        let stats = self.total_stats();
        let _ = writeln!(
            out,
            "ILP: {} LP calls over {} nodes; first relaxation integral: {}",
            stats.lp_calls, stats.nodes, stats.first_relaxation_integral
        );
        let _ = writeln!(out, "WCET contribution by instance:");
        for (label, cycles) in &self.wcet_contributions {
            let pct = 100.0 * *cycles as f64 / self.bound.upper.max(1) as f64;
            let _ = writeln!(out, "  {label:<40} {cycles:>10}  ({pct:4.1}%)");
        }
        let _ = writeln!(out, "worst-case block counts:");
        for (label, count) in &self.wcet_counts {
            let _ = writeln!(out, "  {label:<40} {count}");
        }
        if !self.loop_bounds.is_empty() {
            let _ = writeln!(out, "loop bounds:");
            for p in &self.loop_bounds {
                let at = p.source.line().map(|l| format!(" (line {l})")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  {:<28} [{}, {}]  {}{at}",
                    format!("{} x{}", p.func, p.header + 1),
                    p.lo,
                    p.hi,
                    p.source.label()
                );
            }
        }
        out
    }

    /// Sum of ILP statistics over every solved ILP (WCET and BCET).
    pub fn total_stats(&self) -> IlpStats {
        let mut acc = IlpStats { first_relaxation_integral: true, ..IlpStats::default() };
        for s in &self.sets {
            for st in [s.wcet_stats, s.bcet_stats] {
                acc.lp_calls += st.lp_calls;
                acc.nodes += st.nodes;
                acc.first_relaxation_integral &= st.first_relaxation_integral;
            }
        }
        acc
    }
}

/// One ILP the analysis needs solved: a surviving constraint set paired
/// with an optimization sense.
///
/// Jobs are emitted by [`Analyzer::plan`] in the canonical order
/// `set 0 × Maximize, set 0 × Minimize, set 1 × Maximize, ...` — job `i`
/// belongs to set `i / 2` with sense `Maximize` when `i` is even. The
/// problems are fully assembled (structural + functionality + cache-split
/// rows), self-contained, and independent of each other: any executor —
/// serial, threaded, or cached — may solve them in any order.
///
/// Each job also carries its base+delta factorization: `problem` is
/// exactly `plan.bases()[job.base].compose(&job.delta)`, so executors may
/// either solve the composed problem cold or re-optimize the shared base
/// with the delta rows warm, and both answer the same problem.
#[derive(Debug, Clone)]
pub struct IlpJob {
    /// Index of the constraint set among the surviving (post-prune,
    /// canonically ordered) sets.
    pub set: usize,
    /// `Maximize` for the WCET side, `Minimize` for the BCET side.
    pub sense: Sense,
    /// The assembled ILP (base rows followed by the delta rows).
    pub problem: Problem,
    /// Index into [`AnalysisPlan::bases`] of the shared base this job
    /// extends (`0` = worst-case base, `1` = best-case base).
    pub base: usize,
    /// The disjunct rows this set adds on top of the base (deduplicated:
    /// rows already present in the base, or repeated within the set, are
    /// dropped before assembly).
    pub delta: DeltaSet,
}

/// Outcome of one [`IlpJob`], fed back to [`AnalysisPlan::complete`].
#[derive(Debug, Clone)]
pub enum JobVerdict {
    /// The job ran (possibly degrading) and produced a resolution.
    Solved(IlpResolution, IlpStats),
    /// The job was never attempted — the budget ran out before dispatch.
    /// Its constraint set is covered by the common-constraint relaxation.
    Skipped,
}

/// Per-variable metadata an [`AnalysisPlan`] keeps so the verdict fold can
/// rebuild counts and contribution attribution without the analyzer.
#[derive(Debug, Clone)]
struct VarMeta {
    /// Display label (`x<k>@<instance>`).
    label: String,
    /// True for basic-block count variables (the ones reported in counts).
    is_block: bool,
    /// Label of the owning CFG instance (empty for edge variables).
    instance_label: String,
    /// Worst-case cycles this variable contributes per unit count
    /// (0 for edges and for block variables whose cost the cache split
    /// moved onto virtual cold/warm variables).
    contrib_cost: u64,
    /// The parametric counterpart of `contrib_cost`: the same worst-case
    /// objective coefficient as an exact linear form over the named cache
    /// penalties. Evaluating it at the plan's parameter point reproduces
    /// `contrib_cost` exactly; the verdict fold sums `count · param_cost`
    /// over the worst-case witness to build [`Estimate::wcet_formula`].
    param_cost: ParamExpr,
}

/// The job graph of one analysis: every ILP to solve plus everything needed
/// to fold the verdicts back into an [`Estimate`].
///
/// Produced by [`Analyzer::plan`]. The plan is fully owned — it borrows
/// neither the analyzer nor the program — so plans from many programs can
/// be collected and their jobs batched through one solve pool.
///
/// [`AnalysisPlan::complete`] is a pure, order-independent fold: each
/// verdict contributes to the running max/min and `BoundQuality::combine`
/// is commutative and associative, so executors may finish jobs in any
/// order (work stealing, caching, replay) and the resulting `Estimate` is
/// identical to the serial one, bit for bit.
#[derive(Debug, Clone)]
pub struct AnalysisPlan {
    jobs: Vec<IlpJob>,
    budget: AnalysisBudget,
    /// Cartesian-product set count before the cap and pruning (Table I).
    sets_total: usize,
    sets_pruned: usize,
    /// Set count before null pruning (for the all-infeasible error).
    sets_before_prune: usize,
    /// Surviving sets; `jobs.len() == 2 * num_sets`.
    num_sets: usize,
    /// `Partial` when the DNF cap dropped disjunctive statements.
    quality_floor: BoundQuality,
    /// The shared base problems every job extends: `bases[0]` is the
    /// worst-case base (structural + common functionality + cache-split
    /// rows), `bases[1]` the best-case base. Each base is simultaneously
    /// the cover relaxation bounding any set the budget forces the
    /// executor to skip.
    bases: Vec<BaseProblem>,
    /// Whether executors should warm-start deltas from the base optimum
    /// (copied from [`Analyzer::with_warm_start`]; a pure optimization —
    /// results are bit-identical either way).
    warm_start: bool,
    /// Loop labels reported if a solve comes back unbounded.
    unbounded_loops: Vec<String>,
    /// Provenance of the loop bounds in force (copied from the
    /// annotations; empty unless the inference pass filled it in).
    loop_bounds: Vec<LoopProvenance>,
    vars: Vec<VarMeta>,
    /// The analyzed machine's point in parameter space: where every
    /// [`VarMeta::param_cost`] evaluates back to its concrete coefficient.
    /// The fold uses it to prove [`Estimate::wcet_formula`] reproduces the
    /// concrete bound before reporting the formula at all.
    param_point: ParamPoint,
    /// CFG flow structure for the auditor's independent flow replay, built
    /// from the CFG topology rather than the assembled constraint matrix.
    flow: FlowSpec,
    /// Stable identity of the analyzed routine family (entry + function
    /// names): what a persistent store keys its invalidation records on.
    identity_hash: u128,
    /// Content hash of everything a cached solve depends on (instruction
    /// stream, machine timing model, cache/context configuration,
    /// annotations). Two plans with equal identity but different content
    /// hashes mean "the routine was edited": stored results for the old
    /// content are stale and must be invalidated.
    invalidation_hash: u128,
}

impl AnalysisPlan {
    /// The ILP jobs, in canonical order (see [`IlpJob`]).
    pub fn jobs(&self) -> &[IlpJob] {
        &self.jobs
    }

    /// The budget the plan was built under.
    pub fn budget(&self) -> &AnalysisBudget {
        &self.budget
    }

    /// Number of surviving constraint sets (`jobs().len() / 2`).
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// The shared base problems: `bases()[0]` for the worst-case jobs,
    /// `bases()[1]` for the best-case jobs. `jobs()[i].problem` is exactly
    /// `bases()[jobs()[i].base].compose(&jobs()[i].delta)`.
    pub fn bases(&self) -> &[BaseProblem] {
        &self.bases
    }

    /// Whether executors should warm-start this plan's jobs from the base
    /// optima (see [`Analyzer::with_warm_start`]).
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// Stable identity of the analyzed routine family (derived from the
    /// entry and function names). Persistent stores key their
    /// function-level invalidation records on this.
    pub fn identity_hash(&self) -> u128 {
        self.identity_hash
    }

    /// Content hash over the instruction stream, machine model,
    /// cache/context configuration and annotations. A changed hash under an
    /// unchanged [`identity_hash`](Self::identity_hash) means the routine
    /// was edited and its stored solves are stale.
    pub fn invalidation_hash(&self) -> u128 {
        self.invalidation_hash
    }

    /// Provenance rows for the loop bounds this plan enforces (empty
    /// unless the inference pass populated the annotations).
    pub fn loop_bounds(&self) -> &[LoopProvenance] {
        &self.loop_bounds
    }

    /// The analyzed machine's point in parameter space — the concrete
    /// penalty values at which every parametric objective coefficient
    /// evaluates back to the concrete one.
    pub fn param_point(&self) -> &ParamPoint {
        &self.param_point
    }
}

/// The IPET analyzer for one program on one machine.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Analyzer<'p> {
    program: &'p Program,
    machine: Machine,
    instances: Instances,
    /// `costs[func][block]`
    costs: Vec<Vec<BlockCost>>,
    /// `param_costs[func][block]`: the same cost bounds as exact linear
    /// forms over the named cache penalties, computed once alongside the
    /// concrete costs (invariant: evaluating at the machine's own
    /// [`Machine::param_point`] reproduces `costs` bit for bit).
    param_costs: Vec<Vec<BlockCost<ParamExpr>>>,
    cache_mode: CacheMode,
    warm_start: bool,
}

impl<'p> Analyzer<'p> {
    /// Builds the analyzer: expands call-site instances and computes the
    /// per-block cost bounds.
    ///
    /// # Errors
    ///
    /// Fails on recursion or instance-expansion overflow.
    pub fn new(program: &'p Program, machine: Machine) -> Result<Analyzer<'p>, AnalysisError> {
        Analyzer::new_with_context(program, machine, ContextMode::PerCallSite)
    }

    /// Builds the analyzer with an explicit [`ContextMode`].
    ///
    /// # Errors
    ///
    /// Fails on recursion or instance-expansion overflow.
    pub fn new_with_context(
        program: &'p Program,
        machine: Machine,
        context: ContextMode,
    ) -> Result<Analyzer<'p>, AnalysisError> {
        let instances = match context {
            ContextMode::PerCallSite => Instances::expand(program, program.entry)?,
            ContextMode::Shared => Instances::expand_shared(program, program.entry)?,
        };
        let costs = instances
            .cfgs
            .iter()
            .enumerate()
            .map(|(f, cfg)| {
                cfg.blocks.iter().map(|b| block_cost(&machine, &program.functions[f], b)).collect()
            })
            .collect();
        let param_costs = instances
            .cfgs
            .iter()
            .enumerate()
            .map(|(f, cfg)| {
                cfg.blocks
                    .iter()
                    .map(|b| block_cost_param(&machine, &program.functions[f], b))
                    .collect()
            })
            .collect();
        Ok(Analyzer {
            program,
            machine,
            instances,
            costs,
            param_costs,
            cache_mode: CacheMode::AllMiss,
            warm_start: true,
        })
    }

    /// Selects the cache treatment for the worst-case objective.
    pub fn with_cache_mode(mut self, mode: CacheMode) -> Analyzer<'p> {
        self.cache_mode = mode;
        self
    }

    /// Enables or disables warm-started delta re-solving (on by default).
    ///
    /// Warm starting is a pure optimization: results are bit-identical
    /// either way (the solver only accepts a warm result it can prove
    /// equal to the cold one). Disabling it forces every job through the
    /// cold monolithic solve — the reference the CI warm-vs-cold gate
    /// diffs against.
    pub fn with_warm_start(mut self, on: bool) -> Analyzer<'p> {
        self.warm_start = on;
        self
    }

    /// The expanded instances (for figure rendering and diagnostics).
    pub fn instances(&self) -> &Instances {
        &self.instances
    }

    /// The machine model in use.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The program under analysis.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Cost bounds of one basic block.
    pub fn block_cost(&self, func: FuncId, block: BlockId) -> BlockCost {
        self.costs[func.0][block.0]
    }

    /// Parametric cost bounds of one basic block: the same model with the
    /// cache penalties left symbolic.
    pub fn block_cost_param(&self, func: FuncId, block: BlockId) -> &BlockCost<ParamExpr> {
        &self.param_costs[func.0][block.0]
    }

    /// The loops the user must bound, as `(function, header block)` pairs —
    /// what cinderella asks for after constructing structural constraints.
    pub fn loops_needing_bounds(&self) -> Vec<(String, BlockId)> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for i in 0..self.instances.len() {
            let cfg = self.instances.cfg(InstanceId(i));
            for l in cfg.loops() {
                if seen.insert((cfg.func, l.header)) {
                    out.push((cfg.func_name.clone(), l.header));
                }
            }
        }
        out
    }

    /// The paper's Experiment-1 "calculated bound": block counters from an
    /// instrumented run multiplied by the per-block cost bounds.
    ///
    /// `worst_counts` should come from the worst-case data set, and
    /// `best_counts` from the best-case data set.
    pub fn calculated_bound(
        &self,
        best_counts: &BTreeMap<(FuncId, BlockId), u64>,
        worst_counts: &BTreeMap<(FuncId, BlockId), u64>,
    ) -> TimeBound {
        let lower = best_counts.iter().map(|(&(f, b), &c)| c * self.costs[f.0][b.0].best).sum();
        let upper =
            worst_counts.iter().map(|(&(f, b), &c)| c * self.costs[f.0][b.0].worst_cold).sum();
        TimeBound { lower, upper }
    }

    /// Finite-difference sensitivity of the WCET to each loop bound: for
    /// every `loop` annotation, the increase in the estimated WCET if the
    /// loop ran one more iteration. Real-time engineers use this to find
    /// which bound to attack first; it also prices the cost of annotation
    /// slack.
    ///
    /// Returns `(function, statement index within that function's
    /// annotations, base hi, delta cycles)` per loop statement.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn wcet_sensitivity(
        &self,
        annotations: &str,
    ) -> Result<Vec<(String, usize, i64, i64)>, AnalysisError> {
        let anns = parse_annotations(annotations)?;
        let base = self.analyze_parsed(&anns)?;
        let mut out = Vec::new();
        for (fi, (func, stmts)) in anns.functions.iter().enumerate() {
            for (si, stmt) in stmts.iter().enumerate() {
                let Stmt::Loop { hi, .. } = stmt else {
                    continue;
                };
                let mut widened = anns.clone();
                if let Stmt::Loop { hi: h, .. } = &mut widened.functions[fi].1[si] {
                    *h += 1;
                }
                let wider = self.analyze_parsed(&widened)?;
                out.push((
                    func.clone(),
                    si,
                    *hi,
                    wider.bound.upper as i64 - base.bound.upper as i64,
                ));
            }
        }
        Ok(out)
    }

    /// First-order symbolic WCET model over the annotated loop bounds:
    /// one named [`ParamExpr`] term per `loop` annotation, under the
    /// canonical symbol `bound.<func>.x<H>`
    /// ([`LoopProvenance::bound_symbol`](crate::LoopProvenance::bound_symbol)
    /// naming), with the finite-difference sensitivity as its coefficient.
    /// Evaluating the form at the annotated bounds reproduces the concrete
    /// WCET exactly.
    ///
    /// Loop bounds enter the ILP as *constraint coefficients*, not
    /// objective terms, so — unlike the cache-penalty axis, where the
    /// objective is linear in the parameter — no convexity argument makes
    /// this model globally exact: away from the annotated point it is a
    /// local linearization, and it carries no chord-certified validity
    /// region (the deviation is documented in DESIGN.md §16).
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn wcet_loop_model(&self, annotations: &str) -> Result<ParamExpr, AnalysisError> {
        self.wcet_loop_model_parsed(&parse_annotations(annotations)?)
    }

    /// [`Analyzer::wcet_loop_model`] over already-parsed annotations.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn wcet_loop_model_parsed(&self, anns: &Annotations) -> Result<ParamExpr, AnalysisError> {
        let base = self.analyze_parsed(anns)?;
        let mut model = ParamExpr::constant(base.bound.upper as i128);
        for (fi, (func, stmts)) in anns.functions.iter().enumerate() {
            for (si, stmt) in stmts.iter().enumerate() {
                let Stmt::Loop { header, hi, .. } = stmt else {
                    continue;
                };
                let mut widened = anns.clone();
                if let Stmt::Loop { hi: h, .. } = &mut widened.functions[fi].1[si] {
                    *h += 1;
                }
                let wider = self.analyze_parsed(&widened)?;
                let slope = wider.bound.upper as i128 - base.bound.upper as i128;
                let symbol = format!("bound.{func}.x{}", header.index);
                // base + slope·(b − hi), rearranged into constant + slope·b.
                model =
                    model.add(&ParamExpr::term(&symbol, slope)).add_const(-(slope * *hi as i128));
            }
        }
        Ok(model)
    }

    /// Runs the full analysis with annotation source text.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze(&self, annotations: &str) -> Result<Estimate, AnalysisError> {
        self.analyze_with(annotations, &AnalysisBudget::default())
    }

    /// Runs the full analysis with annotation source text under `budget`.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_with(
        &self,
        annotations: &str,
        budget: &AnalysisBudget,
    ) -> Result<Estimate, AnalysisError> {
        let anns = parse_annotations(annotations)?;
        self.analyze_parsed_with(&anns, budget)
    }

    /// Runs the full analysis with pre-parsed annotations.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_parsed(&self, anns: &Annotations) -> Result<Estimate, AnalysisError> {
        self.analyze_parsed_with(anns, &AnalysisBudget::default())
    }

    /// Runs the full analysis with pre-parsed annotations under `budget`.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_parsed_with(
        &self,
        anns: &Annotations,
        budget: &AnalysisBudget,
    ) -> Result<Estimate, AnalysisError> {
        self.analyze_parsed_with_faults(anns, budget, &mut SolverFaults::none())
    }

    /// [`Analyzer::analyze_parsed_with`] plus deterministic fault injection:
    /// `faults` is threaded into every LP/ILP call of the analysis, letting
    /// tests force each budget-exhaustion path at an exact call index.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_parsed_with_faults(
        &self,
        anns: &Annotations,
        budget: &AnalysisBudget,
        faults: &mut SolverFaults,
    ) -> Result<Estimate, AnalysisError> {
        let plan = self.plan(anns, budget)?;
        let verdicts = Analyzer::run_serial(&plan, budget, faults);
        plan.complete(&verdicts)
    }

    /// [`Analyzer::analyze_parsed_with_faults`] plus exact-arithmetic
    /// certification of every verdict: returns the per-set certificate
    /// report alongside the (bit-identical) estimate.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_audited_with_faults(
        &self,
        anns: &Annotations,
        budget: &AnalysisBudget,
        faults: &mut SolverFaults,
    ) -> Result<(Estimate, AuditReport), AnalysisError> {
        let plan = self.plan(anns, budget)?;
        let verdicts = Analyzer::run_serial(&plan, budget, faults);
        plan.complete_audited(&verdicts)
    }

    /// The serial executor: one shared meter, jobs in canonical order, the
    /// run stopping at the first exhaustion (every later job is skipped and
    /// its set covered by the common-constraint relaxation). The deadline is
    /// checked at each set boundary — a set's BCET job still runs after its
    /// WCET job spent the deadline, and reports `Exhausted` through the
    /// solver's own top-of-search check.
    ///
    /// When the plan enables warm starting, each sense's base LP is solved
    /// once (lazily) and every delta re-optimizes from its snapshot; the
    /// incremental solver itself guarantees bit-identical results and falls
    /// back cold under budgets or armed fault injection.
    fn run_serial(
        plan: &AnalysisPlan,
        budget: &AnalysisBudget,
        faults: &mut SolverFaults,
    ) -> Vec<JobVerdict> {
        let meter = BudgetMeter::new();
        let certify = |problem: &Problem, x: &[f64], claimed: i64| -> bool {
            certify_witness(problem, x, claimed, ClaimKind::Equal).is_ok()
        };
        let mut solvers: Vec<IncrementalSolver<'_>> =
            plan.bases.iter().map(IncrementalSolver::new).collect();
        let mut verdicts: Vec<JobVerdict> = Vec::with_capacity(plan.jobs().len());
        for job in plan.jobs() {
            if job.sense == Sense::Maximize && meter.deadline_hit(&budget.solve) {
                break;
            }
            let (res, stats) = if plan.warm_start {
                solvers[job.base].solve(&job.delta, &budget.solve, &meter, faults, &certify)
            } else {
                solve_ilp_budgeted(&job.problem, &budget.solve, &meter, faults)
            };
            let exhausted = matches!(res, IlpResolution::Exhausted);
            verdicts.push(JobVerdict::Solved(res, stats));
            if exhausted {
                break;
            }
        }
        verdicts
    }
}
