//! Budget-exhaustion coverage: the common-constraint cover relaxation that
//! safely bounds constraint sets the executor never solved.

use super::AnalysisPlan;
use crate::error::AnalysisError;
use ipet_lp::{solve_lp_metered, BudgetMeter, LpOutcome, SolveBudget, SolverFaults};

/// The one sanctioned f64→cycles conversion for *bounds* (witnesses go
/// through `round_witness` instead): non-finite values are numerical
/// breakdown, negatives clamp to zero.
pub(super) fn to_cycles(value: f64) -> Result<u64, AnalysisError> {
    if !value.is_finite() {
        return Err(AnalysisError::Numerical);
    }
    Ok(value.round().max(0.0) as u64)
}

impl AnalysisPlan {
    /// Covers skipped sets with the base problems' LP relaxations: the
    /// base's feasible region contains every composed set's, so its
    /// max/min bound whatever the skipped sets could attain. One LP per
    /// sense, on a fresh meter — Bland's rule terminates.
    ///
    /// Widens `worst_bound` / `best_bound` in place.
    pub(super) fn cover_skipped_sets(
        &self,
        worst_bound: &mut Option<u64>,
        best_bound: &mut Option<u64>,
    ) -> Result<(), AnalysisError> {
        ipet_trace::counter("core.cover.solves", 2);
        match solve_lp_metered(
            self.bases[0].problem(),
            &SolveBudget::unlimited(),
            &BudgetMeter::new(),
            &mut SolverFaults::none(),
        ) {
            LpOutcome::Optimal { value, .. } => {
                // The relaxed maximum safely over-covers every skipped
                // set; ceil keeps it safe in integer cycles.
                let v = to_cycles(value.ceil())?;
                *worst_bound = Some(worst_bound.map_or(v, |b| b.max(v)));
            }
            // An infeasible cover means every skipped set is infeasible
            // too; they contribute nothing to the bound.
            LpOutcome::Infeasible => {}
            LpOutcome::Unbounded => {
                return Err(AnalysisError::Unbounded {
                    unbounded_loops: self.unbounded_loops.clone(),
                })
            }
            LpOutcome::Numerical => return Err(AnalysisError::Numerical),
            LpOutcome::LimitReached => return Err(AnalysisError::BudgetExhausted),
        }
        match solve_lp_metered(
            self.bases[1].problem(),
            &SolveBudget::unlimited(),
            &BudgetMeter::new(),
            &mut SolverFaults::none(),
        ) {
            LpOutcome::Optimal { value, .. } => {
                let v = to_cycles(value.floor())?;
                *best_bound = Some(best_bound.map_or(v, |b| b.min(v)));
            }
            LpOutcome::Infeasible => {}
            LpOutcome::Unbounded | LpOutcome::Numerical => return Err(AnalysisError::Numerical),
            LpOutcome::LimitReached => return Err(AnalysisError::BudgetExhausted),
        }
        Ok(())
    }
}
