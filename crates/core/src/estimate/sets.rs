//! Annotation resolution: turning `x`/`d`/`f` references and loop bounds
//! into [`LinCon`] rows over the expanded instance variables.

use super::Analyzer;
use crate::dsl::{LinExpr, Ref, RefKind};
use crate::error::AnalysisError;
use crate::lincon::LinCon;
use crate::vars::VarRef;
use ipet_cfg::{BlockId, InstanceId};
use ipet_lp::Relation;
use std::collections::HashSet;

impl<'p> Analyzer<'p> {
    pub(super) fn follow_path(
        &self,
        inst: InstanceId,
        r: &Ref,
    ) -> Result<InstanceId, AnalysisError> {
        let mut cur = inst;
        for &hop in &r.path {
            cur = self.instances.child_at(cur, hop - 1).ok_or_else(|| {
                AnalysisError::BadReference {
                    func: self.instances.cfg(inst).func_name.clone(),
                    reference: r.to_string(),
                    reason: format!("no call site f{hop}"),
                }
            })?;
        }
        Ok(cur)
    }

    pub(super) fn resolve_ref(&self, inst: InstanceId, r: &Ref) -> Result<VarRef, AnalysisError> {
        let target = self.follow_path(inst, r)?;
        let cfg = self.instances.cfg(target);
        let bad = |reason: String| AnalysisError::BadReference {
            func: self.instances.cfg(inst).func_name.clone(),
            reference: r.to_string(),
            reason,
        };
        match r.kind {
            RefKind::X => {
                if r.index > cfg.num_blocks() {
                    return Err(bad(format!(
                        "function {} has only {} blocks",
                        cfg.func_name,
                        cfg.num_blocks()
                    )));
                }
                Ok(VarRef::Block(target, BlockId(r.index - 1)))
            }
            RefKind::D => {
                if r.index > cfg.num_edges() {
                    return Err(bad(format!(
                        "function {} has only {} edges",
                        cfg.func_name,
                        cfg.num_edges()
                    )));
                }
                Ok(VarRef::Edge(target, ipet_cfg::EdgeId(r.index - 1)))
            }
            RefKind::F => {
                let (edge, _) = cfg.call_edge(r.index - 1).ok_or_else(|| {
                    bad(format!("function {} has no call site f{}", cfg.func_name, r.index))
                })?;
                Ok(VarRef::Edge(target, edge))
            }
        }
    }

    pub(super) fn resolve_linexpr(
        &self,
        inst: InstanceId,
        e: &LinExpr,
    ) -> Result<(Vec<(VarRef, f64)>, f64), AnalysisError> {
        let mut terms = Vec::with_capacity(e.terms.len());
        for (c, r) in &e.terms {
            terms.push((self.resolve_ref(inst, r)?, *c as f64));
        }
        Ok((terms, e.constant as f64))
    }

    pub(super) fn resolve_rel(
        &self,
        inst: InstanceId,
        lhs: &LinExpr,
        rel: Relation,
        rhs: &LinExpr,
    ) -> Result<LinCon, AnalysisError> {
        let (mut terms, lconst) = self.resolve_linexpr(inst, lhs)?;
        let (rterms, rconst) = self.resolve_linexpr(inst, rhs)?;
        for (v, c) in rterms {
            terms.push((v, -c));
        }
        Ok(LinCon { terms, relation: rel, rhs: rconst - lconst })
    }

    pub(super) fn resolve_loop(
        &self,
        inst: InstanceId,
        header: &Ref,
        lo: i64,
        hi: i64,
        bounded: &mut HashSet<(InstanceId, BlockId)>,
    ) -> Result<Vec<LinCon>, AnalysisError> {
        let cfg_name = self.instances.cfg(inst).func_name.clone();
        if header.kind != RefKind::X {
            return Err(AnalysisError::BadReference {
                func: cfg_name,
                reference: header.to_string(),
                reason: "loop headers must be x-references".into(),
            });
        }
        if lo < 0 || hi < lo {
            return Err(AnalysisError::BadLoopBound { func: cfg_name, lo, hi });
        }
        let target = self.follow_path(inst, header)?;
        let cfg = self.instances.cfg(target);
        let block = BlockId(header.index - 1);
        let lp = cfg.loops().into_iter().find(|l| l.header == block).ok_or_else(|| {
            AnalysisError::NotALoopHeader { func: cfg.func_name.clone(), block: block.to_string() }
        })?;
        bounded.insert((target, block));

        // The paper's eqs. (14)-(15) relate the count of the block inside
        // the loop to the count of the block before the loop
        // (`1·x1 <= x2 <= 10·x1`). The equivalent graph-level statement —
        // independent of how the compiler shaped the header — bounds the
        // *iterations per entry*: with E = Σ d over entry edges and
        // B = Σ d over back edges,  lo·E <= B <= hi·E.
        let back_terms = |scale: f64| -> Vec<(VarRef, f64)> {
            let mut t: Vec<(VarRef, f64)> =
                lp.back_edges.iter().map(|e| (VarRef::Edge(target, *e), 1.0)).collect();
            for e in &lp.entry_edges {
                t.push((VarRef::Edge(target, *e), scale));
            }
            t
        };
        Ok(vec![
            LinCon::ge(back_terms(-(lo as f64)), 0.0),
            LinCon::le(back_terms(-(hi as f64)), 0.0),
        ])
    }

    pub(super) fn unbounded_loop_labels(
        &self,
        bounded: &HashSet<(InstanceId, BlockId)>,
    ) -> Vec<String> {
        let mut out = Vec::new();
        for i in 0..self.instances.len() {
            let inst = InstanceId(i);
            let cfg = self.instances.cfg(inst);
            for l in cfg.loops() {
                if !bounded.contains(&(inst, l.header)) {
                    let line = self.program().functions[cfg.func.0]
                        .src_line(cfg.blocks[l.header.0].start)
                        .map(|n| format!(" at line {n}"))
                        .unwrap_or_default();
                    out.push(format!("{}({}){line}", cfg.func_name, l.header));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}
