use super::*;
use crate::structural::structural_constraints;
use crate::vars::VarSpace;
use ipet_arch::{AluOp, AsmBuilder, Cond, Program, Reg};
use std::collections::HashMap;

fn while_loop_program(n: i32) -> Program {
    let mut b = AsmBuilder::new("main");
    let head = b.fresh_label();
    let out = b.fresh_label();
    b.ldc(Reg::T0, 0);
    b.bind(head);
    b.br(Cond::Ge, Reg::T0, n, out);
    b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
    b.jmp(head);
    b.bind(out);
    b.ret();
    Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap()
}

#[test]
fn loop_bound_produces_finite_wcet() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let est = a.analyze("fn main { loop x2 in [10, 10]; }").unwrap();
    assert!(est.bound.lower > 0);
    assert!(est.bound.lower <= est.bound.upper);
    assert_eq!(est.sets_total, 1);
    assert_eq!(est.sets_pruned, 0);
    // Header executes 11 times in the worst case (10 iterations + exit test).
    let header = est.wcet_counts.iter().find(|(k, _)| k.starts_with("x2@")).unwrap();
    assert_eq!(*header.1, 11);
}

#[test]
fn missing_loop_bound_reports_unbounded() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    match a.analyze("") {
        Err(AnalysisError::Unbounded { unbounded_loops }) => {
            assert_eq!(unbounded_loops, vec!["main(B2)".to_string()]);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn loops_needing_bounds_lists_header() {
    let p = while_loop_program(4);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let loops = a.loops_needing_bounds();
    assert_eq!(loops.len(), 1);
    assert_eq!(loops[0].0, "main");
    assert_eq!(loops[0].1, BlockId(1));
}

#[test]
fn tighter_loop_bound_tightens_wcet() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let wide = a.analyze("fn main { loop x2 in [0, 100]; }").unwrap();
    let tight = a.analyze("fn main { loop x2 in [0, 10]; }").unwrap();
    assert!(tight.bound.upper < wide.bound.upper);
    assert_eq!(tight.bound.lower, wide.bound.lower);
}

#[test]
fn disjunction_doubles_sets_and_null_sets_prune() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    // x3 (the body) = 0 | x3 = 5, combined with x3 >= 1 makes the first
    // branch null.
    let est = a.analyze("fn main { loop x2 in [0, 10]; (x3 = 0) | (x3 = 5); x3 >= 1; }").unwrap();
    assert_eq!(est.sets_total, 2);
    assert_eq!(est.sets_pruned, 1);
    assert_eq!(est.sets.len(), 1);
    let body = est.wcet_counts.iter().find(|(k, _)| k.starts_with("x3@")).unwrap();
    assert_eq!(*body.1, 5);
}

#[test]
fn all_sets_null_is_an_error() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    match a.analyze("fn main { loop x2 in [0,10]; x3 = 1; x3 = 2; }") {
        Err(AnalysisError::AllSetsInfeasible { total }) => assert_eq!(total, 1),
        other => panic!("{other:?}"),
    }
}

#[test]
fn unknown_function_rejected() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    assert!(matches!(a.analyze("fn nosuch { x1 = 1; }"), Err(AnalysisError::UnknownFunction(_))));
}

#[test]
fn bad_references_rejected() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    assert!(matches!(
        a.analyze("fn main { loop x2 in [0,10]; x99 = 1; }"),
        Err(AnalysisError::BadReference { .. })
    ));
    assert!(matches!(
        a.analyze("fn main { loop x2 in [0,10]; x1.f1 = 1; }"),
        Err(AnalysisError::BadReference { .. })
    ));
    assert!(matches!(
        a.analyze("fn main { loop x1 in [0,10]; }"),
        Err(AnalysisError::NotALoopHeader { .. })
    ));
    assert!(matches!(
        a.analyze("fn main { loop x2 in [5,2]; }"),
        Err(AnalysisError::BadLoopBound { .. })
    ));
}

#[test]
fn first_relaxation_is_integral_for_flow_problems() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let est = a.analyze("fn main { loop x2 in [1, 10]; }").unwrap();
    let stats = est.total_stats();
    assert!(stats.first_relaxation_integral, "{stats:?}");
}

#[test]
fn calls_contribute_callee_cost() {
    // main calls leaf; leaf has nontrivial cost; WCET(main) > WCET of
    // main's own blocks alone.
    let mut leaf = AsmBuilder::new("leaf");
    leaf.alu(AluOp::Div, Reg::RV, Reg::A0, 3);
    leaf.ret();
    let mut main = AsmBuilder::new("main");
    main.call(FuncId(0));
    main.ret();
    let p = Program::new(vec![leaf.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
        .unwrap();
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let est = a.analyze("").unwrap();
    // Callee blocks must appear with count 1 in the worst case.
    assert!(est.wcet_counts.keys().any(|k| k.contains("f1:leaf")));
    // And the bound exceeds the cost of main's two blocks alone.
    let main_only: u64 = (0..2).map(|b| a.block_cost(FuncId(1), BlockId(b)).worst_cold).sum();
    assert!(est.bound.upper > main_only);
}

#[test]
fn caller_scoped_constraint_pins_callee_blocks() {
    // leaf has a diamond; pin its then-branch through the caller scope.
    let mut leaf = AsmBuilder::new("leaf");
    let els = leaf.fresh_label();
    let join = leaf.fresh_label();
    leaf.br(Cond::Eq, Reg::A0, 0, els);
    leaf.ldc(Reg::RV, 1);
    leaf.jmp(join);
    leaf.bind(els);
    leaf.ldc(Reg::RV, 2);
    leaf.bind(join);
    leaf.ret();
    let mut main = AsmBuilder::new("main");
    main.call(FuncId(0));
    main.ret();
    let p = Program::new(vec![leaf.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
        .unwrap();
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    // Force the cheap arm via x-of-callee-at-site syntax.
    let est = a.analyze("fn main { x2.f1 = 0; }").unwrap();
    assert!(!est.wcet_counts.keys().any(|k| k.starts_with("x2@main/f1:leaf")));
    let est2 = a.analyze("fn main { x3.f1 = 0; }").unwrap();
    assert!(est2.bound.upper != est.bound.upper || est2.wcet_counts != est.wcet_counts);
}

#[test]
fn split_mode_tightens_loop_wcet_and_stays_above_best() {
    let p = while_loop_program(50);
    let base = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let split =
        Analyzer::new(&p, Machine::i960kb()).unwrap().with_cache_mode(CacheMode::FirstIterSplit);
    let ann = "fn main { loop x2 in [50, 50]; }";
    let e_base = base.analyze(ann).unwrap();
    let e_split = split.analyze(ann).unwrap();
    assert!(
        e_split.bound.upper < e_base.bound.upper,
        "split {} vs base {}",
        e_split.bound.upper,
        e_base.bound.upper
    );
    assert!(e_split.bound.lower == e_base.bound.lower);
    assert!(e_split.bound.lower <= e_split.bound.upper);
}

#[test]
fn wcet_contributions_sum_to_the_bound() {
    // A caller + callee: the breakdown must cover the whole WCET and
    // attribute nonzero cycles to both instances.
    let mut leaf = AsmBuilder::new("leaf");
    leaf.alu(AluOp::Div, Reg::RV, Reg::A0, 3);
    leaf.ret();
    let mut main = AsmBuilder::new("main");
    main.call(FuncId(0));
    main.ret();
    let p = Program::new(vec![leaf.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
        .unwrap();
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let est = a.analyze("").unwrap();
    let total: u64 = est.wcet_contributions.values().sum();
    assert_eq!(total, est.bound.upper);
    assert!(est.wcet_contributions.contains_key("main"));
    assert!(est.wcet_contributions.contains_key("main/f1:leaf"));
    assert!(est.render().contains("WCET contribution"));
}

#[test]
fn contributions_sum_under_cache_split_too() {
    let p = while_loop_program(50);
    let a =
        Analyzer::new(&p, Machine::i960kb()).unwrap().with_cache_mode(CacheMode::FirstIterSplit);
    let est = a.analyze("fn main { loop x2 in [50, 50]; }").unwrap();
    let total: u64 = est.wcet_contributions.values().sum();
    assert_eq!(total, est.bound.upper);
}

#[test]
fn sensitivity_prices_one_extra_iteration() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let ann = "fn main { loop x2 in [10, 10]; }";
    let sens = a.wcet_sensitivity(ann).unwrap();
    assert_eq!(sens.len(), 1);
    let (func, _, hi, delta) = &sens[0];
    assert_eq!(func, "main");
    assert_eq!(*hi, 10);
    // One more iteration costs one header + one body execution.
    let header = a.block_cost(FuncId(0), BlockId(1)).worst_cold as i64;
    let body = a.block_cost(FuncId(0), BlockId(2)).worst_cold as i64;
    assert_eq!(*delta, header + body);
}

#[test]
fn structural_only_ilp_is_a_network_matrix() {
    // The §III-D theory: the automatically derived structural system
    // is totally unimodular (network-like), which is why the first LP
    // relaxation keeps coming out integral.
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let space = VarSpace::new(&a.instances);
    let structural = structural_constraints(&a.instances);
    let problem = a.assemble(&space, Sense::Maximize, &structural, &[], &[], &HashMap::new());
    assert!(ipet_lp::is_network_matrix(&problem));

    // A loop bound introduces a 10-coefficient and breaks the network
    // property — yet the relaxation stays integral in practice, the
    // paper's empirical §III-D point.
    let bound = a
        .resolve_loop(
            ipet_cfg::InstanceId(0),
            &crate::dsl::Ref { kind: crate::dsl::RefKind::X, index: 2, path: vec![] },
            1,
            10,
            &mut HashSet::new(),
        )
        .unwrap();
    let with_bound = a.assemble(&space, Sense::Maximize, &structural, &bound, &[], &HashMap::new());
    assert!(!ipet_lp::is_network_matrix(&with_bound));
    let (_, stats) = ipet_lp::solve_ilp(&with_bound);
    assert!(stats.first_relaxation_integral);
}

#[test]
fn time_bound_helpers() {
    let outer = TimeBound { lower: 10, upper: 100 };
    let inner = TimeBound { lower: 20, upper: 80 };
    assert!(outer.encloses(inner));
    assert!(!inner.encloses(outer));
    let (lo, hi) = outer.pessimism_against(inner);
    assert!((lo - 0.5).abs() < 1e-9);
    assert!((hi - 0.25).abs() < 1e-9);
}

// -- base+delta decomposition and warm starting --------------------------

#[test]
fn job_problems_recompose_from_base_and_delta() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let anns = parse_annotations("fn main { loop x2 in [0, 10]; (x3 = 1) | (x3 = 3) | (x3 = 5); }")
        .unwrap();
    let plan = a.plan(&anns, &AnalysisBudget::unlimited()).unwrap();
    assert_eq!(plan.bases().len(), 2);
    assert_eq!(plan.num_sets(), 3);
    for job in plan.jobs() {
        // The invariant the warm path relies on: the composed problem the
        // incremental solver answers IS the job's monolithic problem.
        assert_eq!(job.problem, plan.bases()[job.base].compose(&job.delta));
        assert!(!job.delta.is_empty());
        // Deltas are small: only the disjunct rows, never the structural
        // or common ones.
        assert!(job.delta.rows.len() < job.problem.constraints.len());
    }
    // Max jobs extend base 0, min jobs base 1.
    for (i, job) in plan.jobs().iter().enumerate() {
        assert_eq!(job.base, i % 2);
        assert_eq!(job.sense, if i % 2 == 0 { Sense::Maximize } else { Sense::Minimize });
    }
}

#[test]
fn warm_and_cold_serial_analyses_are_bit_identical() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let cold_a = a.clone().with_warm_start(false);
    for ann in [
        "fn main { loop x2 in [0, 10]; }",
        "fn main { loop x2 in [0, 10]; (x3 = 1) | (x3 = 3) | (x3 = 5); }",
        "fn main { loop x2 in [0, 10]; (x3 = 0) | (x3 = 5); x3 >= 1; }",
    ] {
        let warm = a.analyze(ann).unwrap();
        let cold = cold_a.analyze(ann).unwrap();
        assert_eq!(warm, cold, "warm vs cold mismatch for {ann}");

        let anns = parse_annotations(ann).unwrap();
        let (warm_est, warm_audit) = a
            .analyze_audited_with_faults(
                &anns,
                &AnalysisBudget::unlimited(),
                &mut SolverFaults::none(),
            )
            .unwrap();
        let (cold_est, cold_audit) = cold_a
            .analyze_audited_with_faults(
                &anns,
                &AnalysisBudget::unlimited(),
                &mut SolverFaults::none(),
            )
            .unwrap();
        assert_eq!(warm_est, cold_est);
        assert!(warm_audit.all_certified());
        assert_eq!(warm_audit.certified(), cold_audit.certified());
        assert_eq!(warm_audit.rejected(), cold_audit.rejected());
    }
}

#[test]
fn duplicate_delta_rows_are_deduplicated() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    // The first disjunct repeats the common row `x3 >= 1` verbatim: its
    // delta must dedup to empty (the composed problem IS the base), while
    // the second disjunct keeps its one genuine row.
    let anns = parse_annotations("fn main { loop x2 in [0, 10]; x3 >= 1; (x3 >= 1) | (x3 = 5); }")
        .unwrap();
    let plan = a.plan(&anns, &AnalysisBudget::unlimited()).unwrap();
    assert_eq!(plan.num_sets(), 2);
    let mut delta_sizes: Vec<usize> = plan
        .jobs()
        .iter()
        .filter(|j| j.sense == Sense::Maximize)
        .map(|j| j.delta.rows.len())
        .collect();
    delta_sizes.sort_unstable();
    assert_eq!(delta_sizes, vec![0, 1]);
    for job in plan.jobs() {
        assert_eq!(job.problem, plan.bases()[job.base].compose(&job.delta));
    }
    // The deduplicated plan still folds to the right answer, warm or cold.
    let est = a.analyze("fn main { loop x2 in [0, 10]; x3 >= 1; (x3 >= 1) | (x3 = 5); }").unwrap();
    let cold = a
        .clone()
        .with_warm_start(false)
        .analyze("fn main { loop x2 in [0, 10]; x3 >= 1; (x3 >= 1) | (x3 = 5); }")
        .unwrap();
    assert_eq!(est, cold);
    assert_eq!(est.sets.len(), 2);
}

#[test]
fn single_set_plans_have_empty_deltas() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let anns = parse_annotations("fn main { loop x2 in [0, 10]; }").unwrap();
    let plan = a.plan(&anns, &AnalysisBudget::unlimited()).unwrap();
    assert_eq!(plan.num_sets(), 1);
    for job in plan.jobs() {
        // No disjunctions → every row is common → the set's problem is the
        // base itself.
        assert!(job.delta.is_empty());
        assert_eq!(job.problem, plan.bases()[job.base].compose(&job.delta));
        assert_eq!(plan.bases()[job.base].delta_fingerprint(&job.delta), ipet_lp::Fingerprint(0));
    }
}

// -- budgets, degradation, fault injection ------------------------------

#[test]
fn roomy_budget_matches_default_analysis_exactly() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let ann = "fn main { loop x2 in [0, 10]; }";
    let plain = a.analyze(ann).unwrap();
    let budgeted = a.analyze_with(ann, &AnalysisBudget::unlimited()).unwrap();
    assert_eq!(plain.bound, budgeted.bound);
    assert_eq!(budgeted.quality, BoundQuality::Exact);
    assert_eq!(budgeted.sets_skipped, 0);
    assert!(budgeted.degraded_sets.is_empty());
}

#[test]
fn fractional_root_under_node_budget_degrades_to_relaxed() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    // `2*x3 <= 7` puts the LP optimum at x3 = 3.5, forcing real
    // branching; one node is not enough to close the tree.
    let ann = "fn main { loop x2 in [0, 10]; 2*x3 <= 7; }";
    let exact = a.analyze(ann).unwrap();
    assert_eq!(exact.quality, BoundQuality::Exact);

    let mut budget = AnalysisBudget::unlimited();
    budget.solve.max_nodes = 1;
    let degraded = a.analyze_with(ann, &budget).unwrap();
    assert_eq!(degraded.quality, BoundQuality::Relaxed);
    assert!(!degraded.degraded_sets.is_empty());
    // The relaxed bound must stay safe: at least as wide as the truth.
    assert!(degraded.bound.upper >= exact.bound.upper);
    assert!(degraded.bound.lower <= exact.bound.lower);
    assert!(degraded.render().contains("bound quality: relaxed"));
}

#[test]
fn zero_tick_deadline_skips_sets_but_still_bounds_safely() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let ann = "fn main { loop x2 in [0, 10]; (x3 = 0) | (x3 = 5); }";
    let exact = a.analyze(ann).unwrap();

    let mut budget = AnalysisBudget::unlimited();
    budget.solve.deadline_ticks = Some(0);
    let partial = a.analyze_with(ann, &budget).unwrap();
    assert_eq!(partial.quality, BoundQuality::Partial);
    assert!(partial.sets_skipped > 0);
    // The cover relaxation (structural + loop bound) encloses every
    // skipped set's attainable range.
    assert!(partial.bound.encloses(exact.bound));
    assert!(partial.render().contains("sets skipped on budget exhaustion"));
}

#[test]
fn no_degrade_surfaces_budget_exhausted() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let mut budget = AnalysisBudget::unlimited();
    budget.solve.deadline_ticks = Some(0);
    budget.degrade = false;
    match a.analyze_with("fn main { loop x2 in [0, 10]; }", &budget) {
        Err(AnalysisError::BudgetExhausted) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn no_degrade_rejects_relaxed_set_bounds_too() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let mut budget = AnalysisBudget::unlimited();
    budget.solve.max_nodes = 1;
    budget.degrade = false;
    match a.analyze_with("fn main { loop x2 in [0, 10]; 2*x3 <= 7; }", &budget) {
        Err(AnalysisError::SolverLimit) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn injected_node_fault_cascades_to_a_safe_partial_bound() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let anns = parse_annotations("fn main { loop x2 in [0, 10]; }").unwrap();
    let exact = a.analyze_parsed(&anns).unwrap();

    // Kill the very first branch-and-bound expansion: the WCET solve
    // comes back `Exhausted`, the set is skipped, and the cover
    // relaxation must still produce an enclosing bound.
    let mut faults = SolverFaults::limit_at(0);
    let est =
        a.analyze_parsed_with_faults(&anns, &AnalysisBudget::unlimited(), &mut faults).unwrap();
    assert_eq!(est.quality, BoundQuality::Partial);
    assert_eq!(est.sets_skipped, 1);
    assert!(est.bound.encloses(exact.bound));
}

#[test]
fn injected_lp_infeasibility_never_panics() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let anns = parse_annotations("fn main { loop x2 in [0, 10]; }").unwrap();
    // Forcing "infeasible" on an actually-feasible set silently drops
    // it from the max/min — every set gone means AllSetsInfeasible,
    // never a panic.
    for idx in 0..4 {
        let mut faults = SolverFaults::infeasible_at(idx);
        let _ = a.analyze_parsed_with_faults(&anns, &AnalysisBudget::unlimited(), &mut faults);
    }
    // Forcing a numerical LP failure at the root surfaces as the
    // typed Numerical error.
    let mut faults = SolverFaults::numerical_at(0);
    match a.analyze_parsed_with_faults(&anns, &AnalysisBudget::unlimited(), &mut faults) {
        Err(AnalysisError::Numerical) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn dnf_cap_drops_disjunctions_and_reports_partial() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let ann = "fn main { loop x2 in [0, 10]; (x3 = 0) | (x3 = 5); }";
    let exact = a.analyze(ann).unwrap();
    assert_eq!(exact.sets_total, 2);

    let mut budget = AnalysisBudget::unlimited();
    budget.solve.max_sets = 1; // 2 sets blow the cap
    let partial = a.analyze_with(ann, &budget).unwrap();
    assert_eq!(partial.quality, BoundQuality::Partial);
    // Dropping the disjunction relaxes the model in both senses.
    assert!(partial.bound.encloses(exact.bound));

    budget.degrade = false;
    match a.analyze_with(ann, &budget) {
        Err(AnalysisError::SolverLimit) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn wcet_formula_replays_concrete_bound_and_predicts_sweeps() {
    let p = while_loop_program(10);
    let ann = "fn main { loop x2 in [10, 10]; }";
    let base_machine = Machine::i960kb();
    let a = Analyzer::new(&p, base_machine).unwrap();
    let est = a.analyze(ann).unwrap();
    let formula = est.wcet_formula.as_ref().expect("exact analysis yields a formula");
    // Replaying at the machine's own point reproduces the bound exactly.
    assert_eq!(formula.eval(&base_machine.param_point()), Some(est.bound.upper as i128));
    // This single-line program has one optimal path for every penalty, so
    // the formula predicts the whole miss-penalty sweep bit for bit.
    for mp in [0u64, 2, 4, 8, 16, 32] {
        let m = Machine { miss_penalty: mp, ..base_machine };
        let swept = Analyzer::new(&p, m).unwrap().analyze(ann).unwrap();
        assert_eq!(
            formula.eval(&m.param_point()),
            Some(swept.bound.upper as i128),
            "miss_penalty = {mp}"
        );
    }
}

#[test]
fn wcet_formula_survives_cache_split_objective() {
    let p = while_loop_program(50);
    let machine = Machine::i960kb();
    let a = Analyzer::new(&p, machine).unwrap().with_cache_mode(CacheMode::FirstIterSplit);
    let est = a.analyze("fn main { loop x2 in [50, 50]; }").unwrap();
    let formula = est.wcet_formula.as_ref().expect("split analysis yields a formula");
    assert_eq!(formula.eval(&machine.param_point()), Some(est.bound.upper as i128));
    // Under the split, only first iterations pay the miss penalty: the
    // slope must be strictly smaller than the all-miss slope.
    let all_miss = Analyzer::new(&p, machine).unwrap();
    let am = all_miss.analyze("fn main { loop x2 in [50, 50]; }").unwrap();
    let am_formula = am.wcet_formula.as_ref().unwrap();
    assert!(formula.coeff(ipet_hw::P_MISS) < am_formula.coeff(ipet_hw::P_MISS));
}

#[test]
fn degraded_analysis_reports_no_formula() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let ann = "fn main { loop x2 in [0, 10]; (x3 = 0) | (x3 = 5); }";
    let mut budget = AnalysisBudget::unlimited();
    budget.solve.max_sets = 1;
    let partial = a.analyze_with(ann, &budget).unwrap();
    assert_eq!(partial.quality, BoundQuality::Partial);
    assert!(partial.wcet_formula.is_none(), "non-exact bounds must not claim a formula");
}

#[test]
fn loop_model_replays_concrete_bound_at_annotated_point() {
    let p = while_loop_program(10);
    let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
    let ann = "fn main { loop x2 in [10, 10]; }";
    let est = a.analyze(ann).unwrap();
    let model = a.wcet_loop_model(ann).unwrap();
    // Evaluating the symbolic model at the annotated bound reproduces the
    // concrete WCET exactly.
    let mut point = ipet_hw::ParamPoint::new();
    point.insert("bound.main.x2".into(), 10);
    assert_eq!(model.eval(&point), Some(est.bound.upper as i128));
    // The symbol carries the finite-difference slope: one more iteration
    // moves the model by exactly the sensitivity delta.
    let slope = model.coeff("bound.main.x2");
    assert!(slope > 0, "a bounded loop must have positive marginal cost");
    point.insert("bound.main.x2".into(), 11);
    let wider = a.analyze("fn main { loop x2 in [10, 11]; }").unwrap();
    assert_eq!(model.eval(&point), Some(wider.bound.upper as i128));
}
