//! Plan construction: DNF expansion, base+delta factoring, cache-split
//! modelling and ILP assembly.

use super::{AnalysisBudget, AnalysisPlan, Analyzer, CacheMode, IlpJob, VarMeta};
use crate::dsl::{Annotations, Stmt};
use crate::error::AnalysisError;
use crate::lincon::{set_is_null, LinCon};
use crate::structural::{flow_spec, structural_constraints};
use crate::vars::{VarRef, VarSpace};
use ipet_cfg::{BlockId, InstanceId, LoopInfo};
use ipet_hw::ParamExpr;
use ipet_lp::{
    BaseProblem, BoundQuality, Constraint, DeltaSet, Problem, ProblemBuilder, Sense, VarId,
};
use std::collections::{HashMap, HashSet};

impl<'p> Analyzer<'p> {
    /// Builds the analysis **job graph**: resolves annotations, expands the
    /// DNF constraint sets, prunes null sets, orders the survivors
    /// canonically, and assembles one ILP per surviving set and sense —
    /// without solving anything.
    ///
    /// The returned [`AnalysisPlan`] owns everything (no borrow of the
    /// analyzer), exposes the jobs for any executor, and folds the verdicts
    /// back into an [`super::Estimate`] via [`AnalysisPlan::complete`].
    ///
    /// **Canonical set order:** surviving sets are stable-sorted by the
    /// rendered text of their constraints (each set's constraints in
    /// statement order, compared lexicographically). The order is therefore
    /// a pure function of the constraint content — independent of executor,
    /// thread count, and hash-map iteration — which is what makes reports
    /// and exit codes reproducible across `--jobs` values.
    ///
    /// **Base+delta factoring:** the rows shared by every set (structural
    /// flow, non-disjunctive functionality statements, cache-split rows)
    /// become one [`BaseProblem`] per sense; each surviving set keeps only
    /// its disjunct rows as a [`DeltaSet`]. Delta rows that duplicate a
    /// base row, or repeat within the set, are dropped before assembly
    /// (counted under `core.sets.dedup_rows`) — a duplicated row changes
    /// nothing about the feasible region but would defeat base reuse. Each
    /// job's `problem` is assembled as `base.compose(delta)`, so cold
    /// solves and warm-started delta re-optimizations answer the same
    /// composed problem by construction.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`] for the planning-time failures (unknown
    /// functions, bad references, DNF blow-up with degradation disabled,
    /// all sets null).
    pub fn plan(
        &self,
        anns: &Annotations,
        budget: &AnalysisBudget,
    ) -> Result<AnalysisPlan, AnalysisError> {
        let _span = ipet_trace::span("core.plan");
        ipet_trace::counter("core.plan.calls", 1);
        // Validate function names early.
        for (name, _) in &anns.functions {
            if self.program().function_by_name(name).is_none() {
                return Err(AnalysisError::UnknownFunction(name.clone()));
            }
        }

        let mut space = VarSpace::new(&self.instances);

        // Resolve annotations per instance into statement-level
        // disjunctions. Each entry is a non-empty list of alternative
        // conjunctive constraint lists.
        let mut statements: Vec<Vec<Vec<LinCon>>> = Vec::new();
        let mut bounded_headers: HashSet<(InstanceId, BlockId)> = HashSet::new();

        for i in 0..self.instances.len() {
            let inst = InstanceId(i);
            let func_name = self.instances.cfg(inst).func_name.clone();
            for stmt in anns.for_function(&func_name) {
                match stmt {
                    Stmt::Loop { header, lo, hi } => {
                        let cons =
                            self.resolve_loop(inst, header, *lo, *hi, &mut bounded_headers)?;
                        statements.push(vec![cons]);
                    }
                    Stmt::Cons(or) => {
                        let mut alts = Vec::new();
                        for conj in or.to_dnf() {
                            let mut set = Vec::new();
                            for (lhs, rel, rhs) in conj {
                                set.push(self.resolve_rel(inst, &lhs, rel, &rhs)?);
                            }
                            alts.push(set);
                        }
                        statements.push(alts);
                    }
                }
            }
        }

        // Cartesian product across statements = the paper's "set of
        // constraint sets" ("the size of the constraint sets is doubled
        // every time a functionality constraint with | is added").
        let sets_total: usize = statements.iter().map(|s| s.len()).product::<usize>().max(1);
        let mut quality_floor = BoundQuality::Exact;
        if sets_total > budget.solve.max_sets {
            if !budget.degrade {
                return Err(AnalysisError::SolverLimit);
            }
            // DNF blow-up past the cap: drop the disjunctive statements and
            // keep only the conjunctive ones. Every real constraint set
            // implies the kept rows, so the single surviving set is a
            // relaxation of all of them — safe for both WCET (feasible
            // region grows, max grows) and BCET (min shrinks).
            statements.retain(|s| s.len() == 1);
            quality_floor = BoundQuality::Partial;
        }

        // Expand the product twice over: the merged rows (for null pruning
        // and the canonical sort key, exactly as the monolithic assembly
        // ordered them) and the delta rows (disjunctive statements only —
        // what the set adds on top of the shared base).
        let mut expanded: Vec<(Vec<LinCon>, Vec<LinCon>)> = vec![(Vec::new(), Vec::new())];
        for alts in &statements {
            let disjunctive = alts.len() > 1;
            let mut next = Vec::with_capacity(expanded.len() * alts.len());
            for (merged, delta) in &expanded {
                for alt in alts {
                    let mut m = merged.clone();
                    m.extend(alt.iter().cloned());
                    let mut d = delta.clone();
                    if disjunctive {
                        d.extend(alt.iter().cloned());
                    }
                    next.push((m, d));
                }
            }
            expanded = next;
        }

        // Null-set pruning, on the full merged rows (a delta can only be
        // null together with the common rows it combines with).
        let before = expanded.len();
        expanded.retain(|(m, _)| !set_is_null(m));
        let sets_pruned = before - expanded.len();
        if expanded.is_empty() {
            return Err(AnalysisError::AllSetsInfeasible { total: before });
        }

        // Canonical deterministic set order: stable-sort the survivors by
        // their rendered constraint text. `LinCon`'s display normalizes
        // terms (merged, zero-dropped, sorted by variable), so the key is a
        // pure function of constraint content and the resulting job order
        // is reproducible across executors and `--jobs` values.
        let mut keyed: Vec<(Vec<String>, Vec<LinCon>)> = expanded
            .into_iter()
            .map(|(m, d)| (m.iter().map(|c| c.to_string()).collect(), d))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));

        // Shared structural rows and (for the worst case) split rows.
        let structural = structural_constraints(&self.instances);
        let (split_rows, split_objective, split_param) = self.build_split(&mut space);

        // Constraints common to *every* set (the non-disjunctive
        // statements): together with the structural and split rows they
        // form the base problem, which doubles as the cover relaxation
        // bounding any set the budget forces us to skip.
        let common: Vec<LinCon> =
            statements.iter().filter(|s| s.len() == 1).flat_map(|s| s[0].iter().cloned()).collect();

        // Dedup delta rows against the base and within each set. Rendered
        // text is the identity: `LinCon`'s display is injective on
        // normalized content, so equal text means a mathematically
        // identical row.
        let common_keys: HashSet<String> = common.iter().map(|c| c.to_string()).collect();
        let mut dedup_rows = 0u64;
        let deltas: Vec<Vec<LinCon>> = keyed
            .into_iter()
            .map(|(_, d)| {
                let mut seen: HashSet<String> = HashSet::new();
                let mut kept = Vec::with_capacity(d.len());
                for c in d {
                    let key = c.to_string();
                    if common_keys.contains(&key) || !seen.insert(key) {
                        dedup_rows += 1;
                    } else {
                        kept.push(c);
                    }
                }
                kept
            })
            .collect();

        // The two shared bases. Row order: structural, common
        // functionality, then (worst case only) the split rows — identical
        // to the monolithic assembly when no statement is disjunctive.
        let base_worst = BaseProblem::new(self.assemble(
            &space,
            Sense::Maximize,
            &structural,
            &common,
            &split_rows,
            &split_objective,
        ));
        let base_best = BaseProblem::new(self.assemble(
            &space,
            Sense::Minimize,
            &structural,
            &common,
            &[],
            &HashMap::new(),
        ));

        let mut jobs = Vec::with_capacity(deltas.len() * 2);
        for (idx, rows) in deltas.iter().enumerate() {
            let delta = DeltaSet::new(rows.iter().map(|c| lincon_row(&space, c)).collect());
            jobs.push(IlpJob {
                set: idx,
                sense: Sense::Maximize,
                problem: base_worst.compose(&delta),
                base: 0,
                delta: delta.clone(),
            });
            jobs.push(IlpJob {
                set: idx,
                sense: Sense::Minimize,
                problem: base_best.compose(&delta),
                base: 1,
                delta,
            });
        }

        // Per-variable metadata. `param_cost` mirrors the worst-case
        // objective coefficient symbolically: where the cache split zeroes
        // a block's concrete cost and moves it onto the cold/warm virtual
        // variables, the parametric coefficient moves with it, so
        // `Σ count·param_cost` over any witness equals the objective as an
        // exact linear form in the penalties.
        let vars: Vec<VarMeta> = space
            .iter()
            .map(|(id, r)| {
                let (is_block, instance_label, contrib_cost, param_cost) = match r {
                    VarRef::Block(inst, blk) => {
                        let func = self.instances.cfg(inst).func;
                        let (cost, param) = match split_objective.get(&r) {
                            Some(&c) => (c as u64, ParamExpr::default()),
                            None => (
                                self.costs[func.0][blk.0].worst_cold,
                                self.param_costs[func.0][blk.0].worst_cold.clone(),
                            ),
                        };
                        (true, self.instances.instances[inst.0].label.clone(), cost, param)
                    }
                    VarRef::SplitCold(inst, _) | VarRef::SplitWarm(inst, _) => (
                        false,
                        self.instances.instances[inst.0].label.clone(),
                        split_objective.get(&r).copied().unwrap_or(0.0) as u64,
                        split_param.get(&r).cloned().unwrap_or_default(),
                    ),
                    VarRef::Edge(_, _) => (false, String::new(), 0, ParamExpr::default()),
                };
                VarMeta {
                    label: space.label(id).to_string(),
                    is_block,
                    instance_label,
                    contrib_cost,
                    param_cost,
                }
            })
            .collect();

        ipet_trace::counter("core.sets.expanded", sets_total as u64);
        ipet_trace::counter("core.sets.pruned", sets_pruned as u64);
        ipet_trace::counter("core.sets.dedup_rows", dedup_rows);
        ipet_trace::counter("core.jobs.emitted", jobs.len() as u64);
        // Row-shape telemetry for the solver backends: how much of each
        // composed problem is shared base (amortized across sets by the warm
        // path) versus per-set delta. Pure functions of the plan, so the
        // values are identical under every `--solver` backend and job count.
        ipet_trace::counter("core.plan.base_rows", base_worst.problem().constraints.len() as u64);
        ipet_trace::counter(
            "core.plan.delta_rows",
            deltas.iter().map(|d| d.len() as u64).sum::<u64>(),
        );
        ipet_trace::gauge_max("core.sets.peak", sets_total as u64);
        let (identity_hash, invalidation_hash) = self.store_hashes(anns);
        Ok(AnalysisPlan {
            num_sets: deltas.len(),
            jobs,
            budget: *budget,
            sets_total,
            sets_pruned,
            sets_before_prune: before,
            quality_floor,
            bases: vec![base_worst, base_best],
            warm_start: self.warm_start,
            unbounded_loops: self.unbounded_loop_labels(&bounded_headers),
            loop_bounds: anns.provenance.clone(),
            vars,
            param_point: self.machine().param_point(),
            flow: flow_spec(&self.instances, &space),
            identity_hash,
            invalidation_hash,
        })
    }

    /// The persistent store's function-level invalidation pair: a stable
    /// routine identity (entry + function names — survives edits) and a
    /// content hash over everything a cached solve depends on (the
    /// disassembled instruction stream, the machine timing model, the
    /// cache/context configuration and the annotations — changes whenever
    /// the routine is edited in any way that could move a bound).
    fn store_hashes(&self, anns: &Annotations) -> (u128, u128) {
        let program = self.program();
        let mut identity = fold_str(STORE_HASH_SEED, "ipet-plan-identity");
        identity = fold_str(identity, &program.functions[program.entry.0].name);
        for f in &program.functions {
            identity = fold_str(identity, &f.name);
        }
        let mut content = fold_str(STORE_HASH_SEED, "ipet-plan-content");
        content = fold_str(content, &ipet_arch::disassemble_program(program));
        content = fold_str(content, &format!("{:?}", self.machine));
        content = fold_str(content, &format!("{:?}", self.cache_mode));
        content = fold_str(content, &format!("{}", self.instances.len()));
        content = fold_str(content, &format!("{anns:?}"));
        (identity, content)
    }

    // -- ILP assembly --------------------------------------------------------

    /// Builds the split rows and split objective coefficients for
    /// [`CacheMode::FirstIterSplit`] (empty under [`CacheMode::AllMiss`]).
    /// The third return value carries the same objective coefficients as
    /// exact parametric forms, so delta/split rows keep their symbolic
    /// objective terms alongside the concrete ones.
    #[allow(clippy::type_complexity)]
    pub(super) fn build_split(
        &self,
        space: &mut VarSpace,
    ) -> (Vec<LinCon>, HashMap<VarRef, f64>, HashMap<VarRef, ParamExpr>) {
        let mut rows = Vec::new();
        let mut obj: HashMap<VarRef, f64> = HashMap::new();
        let mut param: HashMap<VarRef, ParamExpr> = HashMap::new();
        if self.cache_mode != CacheMode::FirstIterSplit {
            return (rows, obj, param);
        }
        for i in 0..self.instances.len() {
            let inst = InstanceId(i);
            let cfg = self.instances.cfg(inst);
            let func = cfg.func;
            let function = &self.program().functions[func.0];
            let loops: Vec<LoopInfo> = cfg.loops();
            // Innermost qualifying loop per block.
            let mut chosen: HashMap<BlockId, &LoopInfo> = HashMap::new();
            for l in &loops {
                if !self.loop_qualifies(func, l) {
                    continue;
                }
                for &b in &l.body {
                    match chosen.get(&b) {
                        Some(prev) if prev.body.len() <= l.body.len() => {}
                        _ => {
                            chosen.insert(b, l);
                        }
                    }
                }
            }
            let label = self.instances.instances[i].label.clone();
            for (&b, l) in &chosen {
                let cost = self.costs[func.0][b.0];
                if cost.worst_cold == cost.worst_warm {
                    continue; // nothing to gain
                }
                let _ = function; // block addresses were used in qualify()
                let cold = VarRef::SplitCold(inst, b);
                let warm = VarRef::SplitWarm(inst, b);
                space.intern(cold, &label);
                space.intern(warm, &label);
                let x = VarRef::Block(inst, b);
                rows.push(LinCon::eq(vec![(cold, 1.0), (warm, 1.0), (x, -1.0)], 0.0));
                let mut cap = vec![(cold, 1.0)];
                for e in &l.entry_edges {
                    cap.push((VarRef::Edge(inst, *e), -1.0));
                }
                rows.push(LinCon::le(cap, 0.0));
                obj.insert(cold, cost.worst_cold as f64);
                obj.insert(warm, cost.worst_warm as f64);
                obj.insert(x, 0.0);
                let pcost = &self.param_costs[func.0][b.0];
                param.insert(cold, pcost.worst_cold.clone());
                param.insert(warm, pcost.worst_warm.clone());
            }
        }
        (rows, obj, param)
    }

    /// A loop qualifies for warm-iteration costing when its body contains
    /// no calls and its instruction range self-evidently fits the i-cache
    /// without conflicts.
    fn loop_qualifies(&self, func: ipet_arch::FuncId, l: &LoopInfo) -> bool {
        let cfg = &self.instances.cfgs[func.0];
        let function = &self.program().functions[func.0];
        if l.body.iter().any(|&b| cfg.blocks[b.0].call.is_some()) {
            return false;
        }
        let start =
            l.body.iter().map(|&b| function.instr_addr(cfg.blocks[b.0].start)).min().unwrap_or(0);
        let end = l
            .body
            .iter()
            .map(|&b| function.instr_addr(cfg.blocks[b.0].end - 1) + ipet_arch::INSTR_BYTES)
            .max()
            .unwrap_or(0);
        self.machine().icache.range_is_conflict_free(start, end)
    }

    pub(super) fn assemble(
        &self,
        space: &VarSpace,
        sense: Sense,
        structural: &[LinCon],
        functionality: &[LinCon],
        split_rows: &[LinCon],
        split_objective: &HashMap<VarRef, f64>,
    ) -> Problem {
        let mut b = ProblemBuilder::new(sense);
        let mut ids: Vec<VarId> = Vec::with_capacity(space.len());
        for (id, r) in space.iter() {
            let vid = b.add_var(space.label(id).to_string(), true);
            debug_assert_eq!(vid.0, id.0);
            ids.push(vid);
            // Objective: block costs (possibly overridden by the split).
            let coeff = match (sense, r) {
                (Sense::Maximize, VarRef::Block(inst, blk)) => {
                    let func = self.instances.cfg(inst).func;
                    match split_objective.get(&r) {
                        Some(&c) => c, // 0.0 when split vars carry the cost
                        None => self.costs[func.0][blk.0].worst_cold as f64,
                    }
                }
                (Sense::Maximize, VarRef::SplitCold(_, _) | VarRef::SplitWarm(_, _)) => {
                    split_objective.get(&r).copied().unwrap_or(0.0)
                }
                (Sense::Minimize, VarRef::Block(inst, blk)) => {
                    let func = self.instances.cfg(inst).func;
                    self.costs[func.0][blk.0].best as f64
                }
                _ => 0.0,
            };
            if coeff != 0.0 {
                b.objective(vid, coeff);
            }
        }
        let add = |b: &mut ProblemBuilder, c: &LinCon| {
            let terms: Vec<(VarId, f64)> = c
                .terms
                .iter()
                .map(|&(r, coef)| {
                    let id = space.id(r).expect("constraint variable interned");
                    (ids[id.0], coef)
                })
                .collect();
            b.constraint(terms, c.relation, c.rhs);
        };
        for c in structural {
            add(&mut b, c);
        }
        for c in functionality {
            add(&mut b, c);
        }
        if sense == Sense::Maximize {
            for c in split_rows {
                add(&mut b, c);
            }
        }
        b.build()
    }
}

/// Converts a resolved [`LinCon`] into a solver row over the base
/// problem's variable ids (positional: `VarSpace` id order is the
/// assembled problem's variable order).
fn lincon_row(space: &VarSpace, c: &LinCon) -> Constraint {
    Constraint {
        terms: c
            .terms
            .iter()
            .map(|&(r, coef)| {
                let id = space.id(r).expect("constraint variable interned");
                (VarId(id.0), coef)
            })
            .collect(),
        relation: c.relation,
        rhs: c.rhs,
    }
}

/// Seed of the store-hash fold (an arbitrary odd constant; only stability
/// within one store schema version matters).
const STORE_HASH_SEED: u128 = 0x1BE7_0000_5704_E000_0000_0000_0000_0001;

/// splitmix64 finalizer: the same diffusion primitive `ipet-lp`'s
/// fingerprinting uses.
fn store_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds a string into a 128-bit store hash, 8 bytes at a time through two
/// independently-seeded splitmix lanes. Not cryptographic — collisions only
/// cost an unnecessary invalidation or a doomed probe that the replay gate
/// rejects anyway.
fn fold_str(h: u128, s: &str) -> u128 {
    let mut h = h;
    // Fold the length first so "ab" + "c" and "a" + "bc" differ.
    let mut words: Vec<u64> = vec![s.len() as u64];
    for chunk in s.as_bytes().chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(w));
    }
    for x in words {
        let lo = store_mix64((h as u64) ^ x);
        let hi = store_mix64(((h >> 64) as u64) ^ x.rotate_left(32) ^ 0xA076_1D64_78BD_642F);
        h = ((hi as u128) << 64) | (lo as u128);
    }
    h
}
