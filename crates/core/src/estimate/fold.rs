//! The verdict fold: turning solved [`super::IlpJob`]s back into an
//! [`Estimate`], with optional exact-arithmetic certification.

use super::degrade::to_cycles;
use super::{AnalysisPlan, Estimate, JobVerdict, SetReport, TimeBound};
use crate::error::AnalysisError;
use ipet_audit::{
    certify_witness, AuditReport, CertFailure, CertVerdict, ClaimKind, SetCertificate,
};
use ipet_hw::ParamExpr;
use ipet_lp::{round_witness, BoundQuality, IlpResolution, IlpStats, Problem, Sense};
use std::collections::BTreeMap;

impl AnalysisPlan {
    /// Folds job verdicts into the final [`Estimate`].
    ///
    /// `verdicts[i]` answers `jobs()[i]`; missing trailing entries count as
    /// [`JobVerdict::Skipped`]. Sets with a skipped or exhausted job are
    /// covered by the common-constraint LP relaxation and degrade the
    /// overall quality to `Partial`, exactly like the serial pipeline.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`] — the same failures the serial path surfaces
    /// (unbounded loops, numerical breakdown, budget exhaustion with
    /// degradation disabled), reported in canonical job order regardless of
    /// the order the executor finished them in.
    pub fn complete(&self, verdicts: &[JobVerdict]) -> Result<Estimate, AnalysisError> {
        self.complete_impl(verdicts, false).map(|(estimate, _)| estimate)
    }

    /// Like [`complete`](AnalysisPlan::complete), but additionally runs the
    /// `ipet-audit` certifier over every verdict and returns the per-set
    /// certificate report alongside the estimate.
    ///
    /// The estimate is **bit-identical** to the unaudited one: certification
    /// only observes, it never changes a bound. A rejected certificate is
    /// reported through [`AuditReport::all_certified`]; callers decide what
    /// a rejection means (the CLI exits with a distinct code).
    pub fn complete_audited(
        &self,
        verdicts: &[JobVerdict],
    ) -> Result<(Estimate, AuditReport), AnalysisError> {
        self.complete_impl(verdicts, true)
    }

    /// The ILP a given set/sense verdict answered, for re-certification.
    /// Always the **composed** problem — base rows plus the set's delta
    /// rows — so certification covers the full recomposition, never the
    /// base or delta in isolation.
    fn job_problem(&self, set: usize, sense: Sense) -> &Problem {
        &self.jobs[2 * set + (sense == Sense::Minimize) as usize].problem
    }

    /// Certifies an `Exact` resolution: rounded witness feasibility, exact
    /// objective equality with the claimed bound, and CFG flow replay.
    fn audit_exact(&self, set: usize, sense: Sense, x: &[f64], claimed: u64) -> CertVerdict {
        match certify_witness(self.job_problem(set, sense), x, claimed as i64, ClaimKind::Equal) {
            Err(failure) => CertVerdict::Rejected(failure),
            Ok(cert) => match self.flow.check(&cert.counts) {
                Err(failure) => CertVerdict::Rejected(failure),
                Ok(()) => CertVerdict::Certified { value: claimed },
            },
        }
    }

    /// Certifies a `Relaxed` incumbent against its set's problem and the
    /// claimed outer bound (in integer cycles); returns the exactly
    /// witnessed objective on success.
    ///
    /// This runs on *every* incumbent, audited or not: an incumbent that
    /// fails exact feasibility or flow replay is dropped instead of being
    /// folded into the reported witness counts.
    fn certify_incumbent(
        &self,
        set: usize,
        sense: Sense,
        x: &[f64],
        bound_cycles: u64,
    ) -> Result<u64, CertFailure> {
        let kind = match sense {
            Sense::Maximize => ClaimKind::CoversFromAbove,
            Sense::Minimize => ClaimKind::CoversFromBelow,
        };
        let cert = certify_witness(self.job_problem(set, sense), x, bound_cycles as i64, kind)?;
        self.flow.check(&cert.counts)?;
        Ok(cert.objective.max(0) as u64)
    }

    fn complete_impl(
        &self,
        verdicts: &[JobVerdict],
        audit: bool,
    ) -> Result<(Estimate, AuditReport), AnalysisError> {
        let budget = &self.budget;
        let mut quality = self.quality_floor;
        let mut reports: Vec<SetReport> = Vec::new();
        let mut degraded_sets: Vec<usize> = Vec::new();
        // Degraded bounds have no witness vector, so the running bound and
        // the best *witnessed* solution (for counts/contributions) are
        // tracked separately.
        let mut worst_bound: Option<u64> = None;
        let mut worst_witness: Option<(u64, Vec<f64>)> = None;
        let mut best_bound: Option<u64> = None;
        let mut best_witness: Option<(u64, Vec<f64>)> = None;
        let mut solved = 0usize;

        let mut certificates: Vec<SetCertificate> = Vec::new();

        for set in 0..self.num_sets {
            let w_verdict = verdicts.get(2 * set).unwrap_or(&JobVerdict::Skipped);
            let b_verdict = verdicts.get(2 * set + 1).unwrap_or(&JobVerdict::Skipped);
            let mut set_quality = BoundQuality::Exact;
            let mut set_skipped = false;
            // Covered = skipped/quarantined, replaced per arm below.
            let mut wcet_cert = CertVerdict::Covered;
            let mut bcet_cert = CertVerdict::Covered;

            let (wcet, w_stats) = match w_verdict {
                JobVerdict::Solved(res, stats) => {
                    let wcet = match res {
                        IlpResolution::Exact { x, value } => {
                            let v = to_cycles(*value)?;
                            if audit {
                                wcet_cert = self.audit_exact(set, Sense::Maximize, x, v);
                            }
                            if worst_witness.as_ref().map(|(b, _)| v > *b).unwrap_or(true) {
                                worst_witness = Some((v, x.clone()));
                            }
                            Some(v)
                        }
                        IlpResolution::Relaxed { bound, incumbent } => {
                            if !budget.degrade {
                                return Err(AnalysisError::SolverLimit);
                            }
                            // The relaxation value safely over-covers this
                            // set's true maximum; ceil keeps it safe in
                            // integer cycles.
                            let v = to_cycles(bound.ceil())?;
                            set_quality = set_quality.combine(BoundQuality::Relaxed);
                            let mut witnessed = None;
                            let mut rejection = None;
                            if let Some((x, _)) = incumbent {
                                // Satellite fix: an incumbent is only a
                                // witness once it passes exact
                                // re-certification; infeasible incumbents
                                // are dropped, not reported.
                                match self.certify_incumbent(set, Sense::Maximize, x, v) {
                                    Ok(w) => {
                                        ipet_trace::counter("audit.incumbent.accepted", 1);
                                        witnessed = Some(w);
                                        if worst_witness
                                            .as_ref()
                                            .map(|(b, _)| w > *b)
                                            .unwrap_or(true)
                                        {
                                            worst_witness = Some((w, x.clone()));
                                        }
                                    }
                                    Err(failure) => {
                                        ipet_trace::counter("audit.incumbent.dropped", 1);
                                        rejection = Some(failure);
                                    }
                                }
                            }
                            if audit {
                                wcet_cert = match rejection {
                                    Some(failure) => CertVerdict::Rejected(failure),
                                    None => CertVerdict::CertifiedRelaxed { bound: v, witnessed },
                                };
                            }
                            Some(v)
                        }
                        IlpResolution::Infeasible => {
                            wcet_cert = CertVerdict::Infeasible;
                            None
                        }
                        IlpResolution::Unbounded => {
                            return Err(AnalysisError::Unbounded {
                                unbounded_loops: self.unbounded_loops.clone(),
                            })
                        }
                        IlpResolution::Numerical => return Err(AnalysisError::Numerical),
                        IlpResolution::Exhausted => {
                            if !budget.degrade {
                                return Err(AnalysisError::BudgetExhausted);
                            }
                            set_skipped = true;
                            None
                        }
                    };
                    (wcet, *stats)
                }
                JobVerdict::Skipped => {
                    if !budget.degrade {
                        return Err(AnalysisError::BudgetExhausted);
                    }
                    set_skipped = true;
                    (None, IlpStats::default())
                }
            };
            if let Some(v) = wcet {
                worst_bound = Some(worst_bound.map_or(v, |b| b.max(v)));
            }

            // The BCET side only counts when the WCET side was attempted:
            // a set whose WCET job exhausted is covered whole.
            let (bcet, b_stats) = match (set_skipped, b_verdict) {
                (true, _) => (None, IlpStats::default()),
                (false, JobVerdict::Solved(res, stats)) => {
                    let bcet = match res {
                        IlpResolution::Exact { x, value } => {
                            let v = to_cycles(*value)?;
                            if audit {
                                bcet_cert = self.audit_exact(set, Sense::Minimize, x, v);
                            }
                            if best_witness.as_ref().map(|(b, _)| v < *b).unwrap_or(true) {
                                best_witness = Some((v, x.clone()));
                            }
                            Some(v)
                        }
                        IlpResolution::Relaxed { bound, incumbent } => {
                            if !budget.degrade {
                                return Err(AnalysisError::SolverLimit);
                            }
                            // The relaxation value safely under-covers this
                            // set's true minimum; floor keeps it safe in
                            // integer cycles.
                            let v = to_cycles(bound.floor())?;
                            set_quality = set_quality.combine(BoundQuality::Relaxed);
                            let mut witnessed = None;
                            let mut rejection = None;
                            if let Some((x, _)) = incumbent {
                                match self.certify_incumbent(set, Sense::Minimize, x, v) {
                                    Ok(w) => {
                                        ipet_trace::counter("audit.incumbent.accepted", 1);
                                        witnessed = Some(w);
                                        if best_witness
                                            .as_ref()
                                            .map(|(b, _)| w < *b)
                                            .unwrap_or(true)
                                        {
                                            best_witness = Some((w, x.clone()));
                                        }
                                    }
                                    Err(failure) => {
                                        ipet_trace::counter("audit.incumbent.dropped", 1);
                                        rejection = Some(failure);
                                    }
                                }
                            }
                            if audit {
                                bcet_cert = match rejection {
                                    Some(failure) => CertVerdict::Rejected(failure),
                                    None => CertVerdict::CertifiedRelaxed { bound: v, witnessed },
                                };
                            }
                            Some(v)
                        }
                        IlpResolution::Infeasible => {
                            bcet_cert = CertVerdict::Infeasible;
                            None
                        }
                        // Minimizing a non-negative objective cannot be
                        // unbounded; a solver verdict to the contrary is
                        // numerical breakdown.
                        IlpResolution::Unbounded | IlpResolution::Numerical => {
                            return Err(AnalysisError::Numerical)
                        }
                        IlpResolution::Exhausted => {
                            if !budget.degrade {
                                return Err(AnalysisError::BudgetExhausted);
                            }
                            set_skipped = true;
                            None
                        }
                    };
                    (bcet, *stats)
                }
                (false, JobVerdict::Skipped) => {
                    if !budget.degrade {
                        return Err(AnalysisError::BudgetExhausted);
                    }
                    set_skipped = true;
                    (None, IlpStats::default())
                }
            };
            if let Some(v) = bcet {
                best_bound = Some(best_bound.map_or(v, |b| b.min(v)));
            }

            if audit {
                // A set covered by the common-constraint relaxation has no
                // certificate at all — even for an arm that solved first.
                if set_skipped {
                    wcet_cert = CertVerdict::Covered;
                    bcet_cert = CertVerdict::Covered;
                }
                certificates.push(SetCertificate { set, wcet: wcet_cert, bcet: bcet_cert });
            }

            if set_skipped {
                continue;
            }
            if set_quality != BoundQuality::Exact {
                degraded_sets.push(reports.len());
            }
            reports.push(SetReport {
                index: set,
                wcet,
                bcet,
                wcet_stats: w_stats,
                bcet_stats: b_stats,
                quality: set_quality,
            });
            solved += 1;
        }

        // Sets whose jobs never ran are covered by the base problems' LP
        // relaxations (see `degrade.rs`).
        let sets_skipped = self.num_sets - solved;
        if sets_skipped > 0 {
            quality = quality.combine(BoundQuality::Partial);
            self.cover_skipped_sets(&mut worst_bound, &mut best_bound)?;
        }
        if !degraded_sets.is_empty() {
            quality = quality.combine(BoundQuality::Relaxed);
        }

        let upper = worst_bound
            .ok_or(AnalysisError::AllSetsInfeasible { total: self.sets_before_prune })?;
        let lower =
            best_bound.ok_or(AnalysisError::AllSetsInfeasible { total: self.sets_before_prune })?;
        let worst_x = worst_witness.map(|(_, x)| x).unwrap_or_default();
        let best_x = best_witness.map(|(_, x)| x).unwrap_or_default();

        // The one sanctioned f64→count conversion: witnesses that refuse to
        // round to integer counts are numerical garbage, not reportable.
        let worst_rounded = round_witness(&worst_x).map_err(|_| AnalysisError::Numerical)?;
        let best_rounded = round_witness(&best_x).map_err(|_| AnalysisError::Numerical)?;

        let counts = |xr: &[i64]| -> BTreeMap<String, i64> {
            let mut out = BTreeMap::new();
            for (id, m) in self.vars.iter().enumerate() {
                if m.is_block {
                    let v = xr.get(id).copied().unwrap_or(0);
                    if v != 0 {
                        out.insert(m.label.clone(), v);
                    }
                }
            }
            out
        };

        // Attribute the WCET objective to instances: block variables carry
        // their worst-cold cost unless the cache split moved the cost onto
        // the cold/warm virtual variables.
        let mut contributions: BTreeMap<String, u64> = BTreeMap::new();
        for (id, m) in self.vars.iter().enumerate() {
            let value = worst_rounded.get(id).copied().unwrap_or(0) as u64;
            if value == 0 || m.contrib_cost == 0 {
                continue;
            }
            *contributions.entry(m.instance_label.clone()).or_insert(0) += value * m.contrib_cost;
        }

        // The symbolic WCET formula: the worst witness's counts times the
        // parametric objective coefficients, an exact linear form over the
        // named cache penalties. Reported only when the analysis is Exact
        // *and* the formula provably reproduces the concrete bound at the
        // machine's own parameter point — evaluating elsewhere is then a
        // certified-region question (`ipet_lp::parametric`, DESIGN.md §16),
        // never a guess here.
        let wcet_formula = if quality == BoundQuality::Exact {
            let mut formula = ParamExpr::default();
            for (id, m) in self.vars.iter().enumerate() {
                let count = worst_rounded.get(id).copied().unwrap_or(0);
                if count != 0 {
                    formula = formula.add(&m.param_cost.scale(count as i128));
                }
            }
            // The replay check is a release-mode guard, not an assert: a
            // witness/bound mismatch here is reachable by design through
            // fault injection (`SolverFaults`), where the audit — not this
            // fold — is the layer that must flag it. The formula is simply
            // withheld.
            (formula.eval(&self.param_point) == Some(upper as i128)).then_some(formula)
        } else {
            None
        };

        let report = AuditReport { sets: certificates };
        if audit {
            ipet_trace::counter("audit.runs", 1);
            ipet_trace::counter("audit.certified", report.certified() as u64);
            ipet_trace::counter("audit.rejected", report.rejected() as u64);
        }

        ipet_trace::counter("core.complete.calls", 1);
        ipet_trace::counter("core.sets.solved", solved as u64);
        ipet_trace::counter("core.sets.skipped", sets_skipped as u64);
        ipet_trace::counter("core.sets.degraded", degraded_sets.len() as u64);
        Ok((
            Estimate {
                bound: TimeBound { lower, upper },
                sets_total: self.sets_total,
                sets_pruned: self.sets_pruned,
                sets: reports,
                wcet_counts: counts(&worst_rounded),
                bcet_counts: counts(&best_rounded),
                wcet_contributions: contributions,
                quality,
                sets_skipped,
                degraded_sets,
                loop_bounds: self.loop_bounds.clone(),
                wcet_formula,
            },
            report,
        ))
    }
}
