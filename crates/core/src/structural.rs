//! Automatic extraction of the paper's structural constraints.
//!
//! For every instance and every basic block `B_i`:
//!
//! ```text
//! x_i = Σ d_in   and   x_i = Σ d_out
//! ```
//!
//! plus the source condition `d1 = 1` for the analysed routine, and for
//! every callee instance the `f`-edge coupling: the callee's entry edge
//! count equals the flow on the caller's `f`-edge (paper equation (12),
//! specialised to per-call-site instances).

use crate::lincon::LinCon;
use crate::vars::{VarRef, VarSpace};
use ipet_audit::{FlowNode, FlowSpec};
use ipet_cfg::{BlockId, EdgeId, InstanceId, Instances};

/// Derives all structural constraints of an instance-expanded program.
pub fn structural_constraints(instances: &Instances) -> Vec<LinCon> {
    let mut out = Vec::new();
    for i in 0..instances.len() {
        let inst = InstanceId(i);
        let cfg = instances.cfg(inst);

        // Flow conservation at every block.
        for b in 0..cfg.num_blocks() {
            let block = BlockId(b);
            let x = VarRef::Block(inst, block);
            let mut in_terms = vec![(x, 1.0)];
            for e in cfg.in_edges(block) {
                in_terms.push((VarRef::Edge(inst, e), -1.0));
            }
            out.push(LinCon::eq(in_terms, 0.0));

            let mut out_terms = vec![(x, 1.0)];
            for e in cfg.out_edges(block) {
                out_terms.push((VarRef::Edge(inst, e), -1.0));
            }
            out.push(LinCon::eq(out_terms, 0.0));
        }

        // Entry condition.
        if instances.shared {
            if i == 0 {
                // The analysed routine runs once (paper eq. 13).
                out.push(LinCon::eq(vec![(VarRef::Edge(inst, EdgeId(0)), 1.0)], 1.0));
            } else {
                // The paper's eq. (12): the callee's entry flow is the sum
                // of every f-edge in the program that targets it.
                let me = instances.instances[i].func;
                let mut terms = vec![(VarRef::Edge(inst, EdgeId(0)), 1.0)];
                for (g, ginst) in instances.instances.iter().enumerate() {
                    let gcfg = &instances.cfgs[ginst.func.0];
                    for (site, _, _, callee) in gcfg.call_sites() {
                        if callee == me {
                            let (f_edge, _) =
                                gcfg.call_edge(site).expect("site enumerated from CFG");
                            terms.push((VarRef::Edge(InstanceId(g), f_edge), -1.0));
                        }
                    }
                }
                out.push(LinCon::eq(terms, 0.0));
            }
            continue;
        }
        match instances.instances[i].parent {
            None => {
                // d1 = 1 — the analysed routine runs once (paper eq. 13).
                out.push(LinCon::eq(vec![(VarRef::Edge(inst, EdgeId(0)), 1.0)], 1.0));
            }
            Some((parent, site)) => {
                // Callee entry flow equals the caller's f-edge flow.
                let parent_cfg = instances.cfg(parent);
                let (f_edge, _) = parent_cfg
                    .call_edge(site)
                    .expect("instance expansion only follows real call sites");
                out.push(LinCon::eq(
                    vec![
                        (VarRef::Edge(inst, EdgeId(0)), 1.0),
                        (VarRef::Edge(parent, f_edge), -1.0),
                    ],
                    0.0,
                ));
            }
        }
    }
    out
}

/// Describes the CFG flow structure in problem-variable indices, for the
/// auditor's independent flow-conservation replay (`ipet-audit` check (c)).
///
/// This walks the CFG topology (`in_edges`/`out_edges`/call sites) directly,
/// not the constraint rows of [`structural_constraints`], so a bug in the
/// matrix assembly cannot hide from the replay.
pub fn flow_spec(instances: &Instances, space: &VarSpace) -> FlowSpec {
    let var = |r: VarRef| -> usize {
        space.id(r).expect("flow spec built from the same instances as the var space").0
    };
    let mut spec = FlowSpec::default();
    for i in 0..instances.len() {
        let inst = InstanceId(i);
        let cfg = instances.cfg(inst);
        for b in 0..cfg.num_blocks() {
            let block = BlockId(b);
            spec.nodes.push(FlowNode {
                block: var(VarRef::Block(inst, block)),
                in_edges: cfg
                    .in_edges(block)
                    .into_iter()
                    .map(|e| var(VarRef::Edge(inst, e)))
                    .collect(),
                out_edges: cfg
                    .out_edges(block)
                    .into_iter()
                    .map(|e| var(VarRef::Edge(inst, e)))
                    .collect(),
            });
        }
        let entry = var(VarRef::Edge(inst, EdgeId(0)));
        if instances.shared {
            if i == 0 {
                spec.entry_edge = entry;
            } else {
                let me = instances.instances[i].func;
                let mut callers = Vec::new();
                for (g, ginst) in instances.instances.iter().enumerate() {
                    let gcfg = &instances.cfgs[ginst.func.0];
                    for (site, _, _, callee) in gcfg.call_sites() {
                        if callee == me {
                            let (f_edge, _) =
                                gcfg.call_edge(site).expect("site enumerated from CFG");
                            callers.push(var(VarRef::Edge(InstanceId(g), f_edge)));
                        }
                    }
                }
                spec.couplings.push((entry, callers));
            }
            continue;
        }
        match instances.instances[i].parent {
            None => spec.entry_edge = entry,
            Some((parent, site)) => {
                let parent_cfg = instances.cfg(parent);
                let (f_edge, _) = parent_cfg
                    .call_edge(site)
                    .expect("instance expansion only follows real call sites");
                spec.couplings.push((entry, vec![var(VarRef::Edge(parent, f_edge))]));
            }
        }
    }
    spec
}

/// Renders the structural constraints of one instance in the paper's
/// notation (`x1 = d1`, `x1 = d2 + d3`, …), for the figure harness.
pub fn structural_text(instances: &Instances, inst: InstanceId) -> String {
    use std::fmt::Write as _;
    let cfg = instances.cfg(inst);
    let mut out = String::new();
    let _ = writeln!(out, "fn {} ({}):", cfg.func_name, instances.instances[inst.0].label);
    let edge_name = |e: EdgeId| -> String {
        // f-edges print as f<site>, others as d<index>.
        if let ipet_cfg::EdgeKind::Call(_) = cfg.edges[e.0].kind {
            let site = cfg
                .call_sites()
                .iter()
                .position(|&(s, _, _, _)| cfg.call_edge(s).map(|(ce, _)| ce) == Some(e))
                .unwrap_or(0);
            format!("f{}", site + 1)
        } else {
            format!("d{}", e.0 + 1)
        }
    };
    for b in 0..cfg.num_blocks() {
        let block = BlockId(b);
        let ins: Vec<String> = cfg.in_edges(block).into_iter().map(edge_name).collect();
        let outs: Vec<String> = cfg.out_edges(block).into_iter().map(edge_name).collect();
        let _ = writeln!(out, "  x{} = {} = {}", b + 1, ins.join(" + "), outs.join(" + "));
    }
    match instances.instances[inst.0].parent {
        None if instances.shared && inst.0 != 0 => {
            // Shared formulation: list the contributing f-edges (eq. 12).
            let me = instances.instances[inst.0].func;
            let mut parts = Vec::new();
            for ginst in &instances.instances {
                let gcfg = &instances.cfgs[ginst.func.0];
                for (site, _, _, callee) in gcfg.call_sites() {
                    if callee == me {
                        parts.push(format!("f{} of {}", site + 1, ginst.label));
                    }
                }
            }
            let _ = writeln!(out, "  d1 = {}", parts.join(" + "));
        }
        None => {
            let _ = writeln!(out, "  d1 = 1");
        }
        Some((parent, site)) => {
            let _ =
                writeln!(out, "  d1 = f{} of {}", site + 1, instances.instances[parent.0].label);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Program, Reg};
    use ipet_lp::Relation;

    fn ite_program() -> Program {
        // The paper's Fig. 2 if-then-else.
        let mut b = AsmBuilder::new("ite");
        let els = b.fresh_label();
        let join = b.fresh_label();
        b.br(Cond::Eq, Reg::A0, 0, els);
        b.ldc(Reg::T0, 1);
        b.jmp(join);
        b.bind(els);
        b.ldc(Reg::T0, 2);
        b.bind(join);
        b.ret();
        Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap()
    }

    #[test]
    fn diamond_produces_nine_constraints() {
        // 4 blocks x 2 conservation rows + d1 = 1.
        let p = ite_program();
        let inst = Instances::expand(&p, FuncId(0)).unwrap();
        let cons = structural_constraints(&inst);
        assert_eq!(cons.len(), 9);
        // Exactly one constraint with a constant rhs of 1 (the source).
        let sources: Vec<_> = cons.iter().filter(|c| c.rhs == 1.0).collect();
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].relation, Relation::Eq);
    }

    #[test]
    fn conservation_rows_balance() {
        let p = ite_program();
        let inst = Instances::expand(&p, FuncId(0)).unwrap();
        for c in structural_constraints(&inst) {
            if c.rhs == 0.0 {
                // one +1 block term, rest -1 edge terms
                let pos: Vec<_> = c.terms.iter().filter(|&&(_, v)| v > 0.0).collect();
                assert_eq!(pos.len(), 1);
                assert!(
                    matches!(pos[0].0, VarRef::Block(_, _))
                        || matches!(pos[0].0, VarRef::Edge(_, _))
                );
            }
        }
    }

    #[test]
    fn callee_entry_ties_to_f_edge() {
        let mut store = AsmBuilder::new("store");
        store.ret();
        let mut main = AsmBuilder::new("main");
        main.ldc(Reg::A0, 10);
        main.call(FuncId(0));
        main.ldc(Reg::A0, 20);
        main.call(FuncId(0));
        main.ret();
        let p =
            Program::new(vec![store.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
                .unwrap();
        let inst = Instances::expand(&p, FuncId(1)).unwrap();
        assert_eq!(inst.len(), 3);
        let cons = structural_constraints(&inst);
        // Two coupling rows: each callee instance's d1 = caller f-edge.
        let couplings: Vec<_> = cons
            .iter()
            .filter(|c| {
                c.rhs == 0.0
                    && c.terms.len() == 2
                    && c.terms.iter().all(|(v, _)| matches!(v, VarRef::Edge(_, _)))
            })
            .collect();
        assert_eq!(couplings.len(), 2);
    }

    #[test]
    fn flow_spec_mirrors_the_cfg_topology() {
        use crate::vars::VarSpace;
        let p = ite_program();
        let inst = Instances::expand(&p, FuncId(0)).unwrap();
        let space = VarSpace::new(&inst);
        let spec = flow_spec(&inst, &space);
        assert_eq!(spec.nodes.len(), 4, "one node per basic block");
        assert!(spec.couplings.is_empty(), "no calls, no couplings");
        // The entry edge must be d1 of the root instance.
        assert_eq!(spec.entry_edge, space.id(VarRef::Edge(inst.root(), EdgeId(0))).unwrap().0);
        // An all-zero witness violates `d_entry = 1`.
        let zeros = vec![0i64; space.len()];
        assert!(spec.check(&zeros).is_err());
    }

    #[test]
    fn text_matches_paper_notation() {
        let p = ite_program();
        let inst = Instances::expand(&p, FuncId(0)).unwrap();
        let text = structural_text(&inst, inst.root());
        assert!(text.contains("x1 = d1 = "), "{text}");
        assert!(text.contains("d1 = 1"), "{text}");
        // The join block has two in-edges.
        assert!(text.lines().any(|l| l.contains("x4 = ") && l.matches('+').count() >= 1), "{text}");
    }

    #[test]
    fn text_shows_f_edges_for_calls() {
        let mut store = AsmBuilder::new("store");
        store.ret();
        let mut main = AsmBuilder::new("main");
        main.call(FuncId(0));
        main.ret();
        let p =
            Program::new(vec![store.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
                .unwrap();
        let inst = Instances::expand(&p, FuncId(1)).unwrap();
        let root_text = structural_text(&inst, inst.root());
        assert!(root_text.contains("f1"), "{root_text}");
        let callee = inst.child_at(inst.root(), 0).unwrap();
        let callee_text = structural_text(&inst, callee);
        assert!(callee_text.contains("d1 = f1 of main"), "{callee_text}");
    }

    #[test]
    fn while_loop_matches_paper_equations() {
        // Fig. 3: the header has two in-edges (entry + back edge) and two
        // out-edges (body + exit path).
        let mut b = AsmBuilder::new("wl");
        let head = b.fresh_label();
        let out = b.fresh_label();
        b.mov(Reg::T0, Reg::A0);
        b.bind(head);
        b.br(Cond::Ge, Reg::T0, 10, out);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(head);
        b.bind(out);
        b.ret();
        let p = Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap();
        let inst = Instances::expand(&p, FuncId(0)).unwrap();
        let text = structural_text(&inst, inst.root());
        let header_line = text.lines().find(|l| l.trim().starts_with("x2")).unwrap();
        assert_eq!(header_line.matches('+').count(), 2, "{header_line}");
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;
    use crate::estimate::{Analyzer, ContextMode};
    use ipet_arch::{AsmBuilder, FuncId, Program, Reg};
    use ipet_hw::Machine;

    /// The paper's Fig. 4 program: two calls to store().
    fn fig4() -> Program {
        let mut store = AsmBuilder::new("store");
        store.nop();
        store.ret();
        let mut main = AsmBuilder::new("main");
        main.ldc(Reg::A0, 10);
        main.call(FuncId(0));
        main.ldc(Reg::A0, 20);
        main.call(FuncId(0));
        main.ret();
        Program::new(vec![store.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
            .unwrap()
    }

    #[test]
    fn shared_mode_produces_equation_12() {
        let p = fig4();
        let inst = Instances::expand_shared(&p, FuncId(1)).unwrap();
        assert_eq!(inst.len(), 2, "one instance per function");
        // store's entry is the sum of both f-edges: d1 = f1 + f2.
        let store = inst.instance_of_func(FuncId(0)).unwrap();
        let text = structural_text(&inst, store);
        assert!(text.contains("d1 = f1 of main + f2 of main"), "{text}");
        // And the ILP gives store's entry block a count of 2.
        let a = Analyzer::new_with_context(&p, Machine::i960kb(), ContextMode::Shared).unwrap();
        let est = a.analyze("").unwrap();
        assert_eq!(est.wcet_counts.get("x1@store"), Some(&2));
    }

    #[test]
    fn shared_mode_has_fewer_variables_on_call_heavy_programs() {
        // main calls leaf 4 times; helper calls leaf; main calls helper
        // twice: per-call-site = 1 + 4 + 2*(1+1) = 9 instances, shared = 3.
        let mut leaf = AsmBuilder::new("leaf");
        leaf.ret();
        let mut helper = AsmBuilder::new("helper");
        helper.call(FuncId(0));
        helper.ret();
        let mut main = AsmBuilder::new("main");
        for _ in 0..4 {
            main.call(FuncId(0));
        }
        main.call(FuncId(1));
        main.call(FuncId(1));
        main.ret();
        let p = Program::new(
            vec![leaf.finish().unwrap(), helper.finish().unwrap(), main.finish().unwrap()],
            vec![],
            FuncId(2),
        )
        .unwrap();
        let per_site = Instances::expand(&p, FuncId(2)).unwrap();
        let shared = Instances::expand_shared(&p, FuncId(2)).unwrap();
        assert_eq!(per_site.len(), 9);
        assert_eq!(shared.len(), 3);
        // Same WCET either way.
        let a1 = Analyzer::new(&p, Machine::i960kb()).unwrap().analyze("").unwrap();
        let a2 = Analyzer::new_with_context(&p, Machine::i960kb(), ContextMode::Shared)
            .unwrap()
            .analyze("")
            .unwrap();
        assert_eq!(a1.bound, a2.bound);
    }
}
