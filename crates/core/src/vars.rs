//! The ILP variable space: one `x` per (instance, block), one `d` per
//! (instance, edge), plus the virtual cold/warm split variables used by the
//! first-iteration cache refinement.

use ipet_cfg::{BlockId, EdgeId, InstanceId, Instances};
use ipet_lp::VarId;
use std::collections::HashMap;
use std::fmt;

/// A symbolic reference to one ILP variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarRef {
    /// Execution count of a basic block (`x_i` in the paper).
    Block(InstanceId, BlockId),
    /// Flow along a CFG edge (`d_j` / `f_k` in the paper).
    Edge(InstanceId, EdgeId),
    /// Cold-cache executions of a loop block (first-iteration splitting).
    SplitCold(InstanceId, BlockId),
    /// Warm-cache executions of a loop block.
    SplitWarm(InstanceId, BlockId),
}

impl fmt::Display for VarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarRef::Block(i, b) => write!(f, "x{}@i{}", b.0 + 1, i.0),
            VarRef::Edge(i, e) => write!(f, "d{}@i{}", e.0 + 1, i.0),
            VarRef::SplitCold(i, b) => write!(f, "xc{}@i{}", b.0 + 1, i.0),
            VarRef::SplitWarm(i, b) => write!(f, "xw{}@i{}", b.0 + 1, i.0),
        }
    }
}

/// Bidirectional mapping between [`VarRef`]s and dense LP variable ids.
#[derive(Debug, Clone, Default)]
pub struct VarSpace {
    by_ref: HashMap<VarRef, VarId>,
    refs: Vec<VarRef>,
    labels: Vec<String>,
}

impl VarSpace {
    /// Creates a variable space covering every block and edge of every
    /// instance (split variables are interned on demand).
    pub fn new(instances: &Instances) -> VarSpace {
        let mut space = VarSpace::default();
        for (i, _inst) in instances.instances.iter().enumerate() {
            let inst = InstanceId(i);
            let cfg = instances.cfg(inst);
            for b in 0..cfg.num_blocks() {
                space.intern(VarRef::Block(inst, BlockId(b)), &instances.instances[i].label);
            }
            for e in 0..cfg.num_edges() {
                space.intern(VarRef::Edge(inst, EdgeId(e)), &instances.instances[i].label);
            }
        }
        space
    }

    /// Interns a reference, returning its dense id.
    pub fn intern(&mut self, r: VarRef, instance_label: &str) -> VarId {
        if let Some(&id) = self.by_ref.get(&r) {
            return id;
        }
        let id = VarId(self.refs.len());
        self.by_ref.insert(r, id);
        self.refs.push(r);
        let short = match r {
            VarRef::Block(_, b) => format!("x{}", b.0 + 1),
            VarRef::Edge(_, e) => format!("d{}", e.0 + 1),
            VarRef::SplitCold(_, b) => format!("xc{}", b.0 + 1),
            VarRef::SplitWarm(_, b) => format!("xw{}", b.0 + 1),
        };
        self.labels.push(format!("{short}@{instance_label}"));
        id
    }

    /// Looks up an already-interned reference.
    pub fn id(&self, r: VarRef) -> Option<VarId> {
        self.by_ref.get(&r).copied()
    }

    /// The reference behind a dense id.
    pub fn var_ref(&self, id: VarId) -> VarRef {
        self.refs[id.0]
    }

    /// Human-readable label of a variable (`x3@main/f1:check_data`).
    pub fn label(&self, id: VarId) -> &str {
        &self.labels[id.0]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True when no variable has been interned.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Iterates over `(VarId, VarRef)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, VarRef)> + '_ {
        self.refs.iter().enumerate().map(|(i, &r)| (VarId(i), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_arch::{AsmBuilder, FuncId, Program};

    fn two_func_instances() -> Instances {
        let mut leaf = AsmBuilder::new("leaf");
        leaf.ret();
        let mut main = AsmBuilder::new("main");
        main.call(FuncId(0));
        main.ret();
        let p =
            Program::new(vec![leaf.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
                .unwrap();
        Instances::expand(&p, FuncId(1)).unwrap()
    }

    #[test]
    fn covers_all_blocks_and_edges() {
        let inst = two_func_instances();
        let space = VarSpace::new(&inst);
        let expected: usize = (0..inst.len())
            .map(|i| {
                let cfg = inst.cfg(InstanceId(i));
                cfg.num_blocks() + cfg.num_edges()
            })
            .sum();
        assert_eq!(space.len(), expected);
        assert!(!space.is_empty());
    }

    #[test]
    fn intern_is_idempotent() {
        let inst = two_func_instances();
        let mut space = VarSpace::new(&inst);
        let r = VarRef::Block(InstanceId(0), BlockId(0));
        let a = space.intern(r, "main");
        let b = space.intern(r, "main");
        assert_eq!(a, b);
        assert_eq!(space.id(r), Some(a));
    }

    #[test]
    fn labels_carry_instance_context() {
        let inst = two_func_instances();
        let space = VarSpace::new(&inst);
        let labels: Vec<&str> = (0..space.len()).map(|i| space.label(VarId(i))).collect();
        assert!(labels.iter().any(|l| l.starts_with("x1@main")));
        assert!(labels.iter().any(|l| l.contains("f1:leaf")));
    }

    #[test]
    fn roundtrip_id_to_ref() {
        let inst = two_func_instances();
        let space = VarSpace::new(&inst);
        for (id, r) in space.iter() {
            assert_eq!(space.id(r), Some(id));
            assert_eq!(space.var_ref(id), r);
        }
    }

    #[test]
    fn display_formats() {
        let r = VarRef::Block(InstanceId(2), BlockId(0));
        assert_eq!(r.to_string(), "x1@i2");
        let d = VarRef::Edge(InstanceId(0), EdgeId(3));
        assert_eq!(d.to_string(), "d4@i0");
    }
}
