//! The IPET estimator: functionality-constraint resolution, DNF set
//! expansion, null pruning, ILP assembly and the final `[t_min, t_max]`.

use crate::dsl::{parse_annotations, Annotations, LinExpr, Ref, RefKind, Stmt};
use crate::error::AnalysisError;
use crate::lincon::{set_is_null, LinCon};
use crate::structural::{flow_spec, structural_constraints};
use crate::vars::{VarRef, VarSpace};
use ipet_arch::{FuncId, Program};
use ipet_audit::{
    certify_witness, AuditReport, CertFailure, CertVerdict, ClaimKind, FlowSpec, SetCertificate,
};
use ipet_cfg::{BlockId, InstanceId, Instances, LoopInfo};
use ipet_hw::{block_cost, BlockCost, Machine};
use ipet_lp::{
    round_witness, solve_ilp_budgeted, solve_lp_metered, BoundQuality, BudgetMeter, IlpResolution,
    IlpStats, LpOutcome, Problem, ProblemBuilder, Relation, Sense, SolveBudget, SolverFaults,
    VarId,
};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Resource budget and degradation policy for one analysis run.
///
/// The [`SolveBudget`] is shared across every ILP the analysis solves: the
/// tick deadline caps the *sum* of solver work over all constraint sets and
/// both senses, which is what a wall-clock deadline means for the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisBudget {
    /// Solver resource limits (tick deadline, LP iterations, B&B nodes,
    /// DNF set cap).
    pub solve: SolveBudget,
    /// When `true` (the default), budget exhaustion degrades to a safe but
    /// looser bound tagged [`BoundQuality::Relaxed`] /
    /// [`BoundQuality::Partial`]; when `false` it becomes a hard
    /// [`AnalysisError`].
    pub degrade: bool,
}

impl AnalysisBudget {
    /// The default policy: effectively unlimited budget, degradation on.
    pub fn unlimited() -> AnalysisBudget {
        AnalysisBudget { solve: SolveBudget::unlimited(), degrade: true }
    }
}

impl Default for AnalysisBudget {
    fn default() -> AnalysisBudget {
        AnalysisBudget::unlimited()
    }
}

/// How call contexts are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContextMode {
    /// One CFG instance per acyclic call string (the paper's "separate set
    /// of x_i variables ... for this instance of the call"). Required for
    /// caller-scoped constraints such as `x8.f1`.
    #[default]
    PerCallSite,
    /// The paper's eq.-(12) formulation: one instance per function, callee
    /// entry flow = sum of all `f`-edges targeting it. Smaller ILPs;
    /// caller-scoped constraints lose their context sensitivity.
    Shared,
}

/// How the worst-case objective treats the instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// The paper's baseline: every block execution pays cold-cache fetch
    /// costs ("we assume that the execution will always result in
    /// cache-misses").
    #[default]
    AllMiss,
    /// The refinement sketched in §IV: the first iteration of a loop is
    /// treated as a separate virtual block with cold costs; later
    /// iterations pay warm costs. Applied only to loops whose body is
    /// call-free and provably conflict-free in the i-cache, so the bound
    /// stays safe.
    FirstIterSplit,
}

/// An estimated time interval in cycles (the paper's `[t_min, t_max]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TimeBound {
    /// Estimated best-case cycles (`t_min`).
    pub lower: u64,
    /// Estimated worst-case cycles (`t_max`).
    pub upper: u64,
}

impl TimeBound {
    /// True when `self` encloses `other` (the correctness criterion of
    /// Fig. 1: the estimated bound must contain the actual bound).
    pub fn encloses(&self, other: TimeBound) -> bool {
        self.lower <= other.lower && other.upper <= self.upper
    }

    /// The paper's pessimism measure
    /// `[(M_l - E_l) / M_l, (E_u - M_u) / M_u]` against a reference bound.
    pub fn pessimism_against(&self, reference: TimeBound) -> (f64, f64) {
        let lo = if reference.lower == 0 {
            0.0
        } else {
            (reference.lower as f64 - self.lower as f64) / reference.lower as f64
        };
        let hi = if reference.upper == 0 {
            0.0
        } else {
            (self.upper as f64 - reference.upper as f64) / reference.upper as f64
        };
        (lo, hi)
    }
}

/// Per-constraint-set solver report.
#[derive(Debug, Clone, PartialEq)]
pub struct SetReport {
    /// Index among the surviving (non-pruned) sets.
    pub index: usize,
    /// Worst-case objective for this set (`None` when the set is
    /// infeasible at the ILP level).
    pub wcet: Option<u64>,
    /// Best-case objective for this set.
    pub bcet: Option<u64>,
    /// Solver statistics of the WCET ILP.
    pub wcet_stats: IlpStats,
    /// Solver statistics of the BCET ILP.
    pub bcet_stats: IlpStats,
    /// How this set's contribution was obtained: [`BoundQuality::Exact`]
    /// when both solves completed, [`BoundQuality::Relaxed`] when either
    /// fell back to its LP-relaxation bound.
    pub quality: BoundQuality,
}

/// Result of one full IPET analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// The estimated bound `[t_min, t_max]`.
    pub bound: TimeBound,
    /// Constraint sets produced by DNF expansion, before pruning
    /// (Table I's "Sets" column counts these).
    pub sets_total: usize,
    /// Sets eliminated by the trivial null test.
    pub sets_pruned: usize,
    /// Per-set reports for the sets that reached the solver.
    pub sets: Vec<SetReport>,
    /// Basic-block counts of the worst-case solution, labelled
    /// `x<k>@<instance>` (only non-zero entries).
    pub wcet_counts: BTreeMap<String, i64>,
    /// Basic-block counts of the best-case solution.
    pub bcet_counts: BTreeMap<String, i64>,
    /// Cycles each CFG instance contributes to the WCET (instance label →
    /// cycles), summing to `bound.upper` for an [`BoundQuality::Exact`]
    /// analysis. For a degraded analysis the breakdown reflects the best
    /// *witnessed* solution, which the degraded bound only covers.
    pub wcet_contributions: BTreeMap<String, u64>,
    /// Trust level of `bound`: exact, relaxed (budget exhaustion fell back
    /// to LP-relaxation bounds), or partial (constraint sets were skipped
    /// or disjunctions dropped, covered by a common-constraint relaxation).
    pub quality: BoundQuality,
    /// Surviving constraint sets the solver never reached before the budget
    /// ran out. Their contribution to `bound` comes from the
    /// common-constraint cover relaxation, not a per-set solve.
    pub sets_skipped: usize,
    /// Indices (into `sets`) of the reports whose bound is degraded.
    pub degraded_sets: Vec<usize>,
}

impl Estimate {
    /// Renders the estimate the way the paper's tool reports it (§V):
    /// the bound in cycles, the constraint-set accounting, solver
    /// statistics, and the worst-case block counts.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ =
            writeln!(out, "estimated bound: [{}, {}] cycles", self.bound.lower, self.bound.upper);
        let _ = writeln!(out, "bound quality: {}", self.quality);
        let _ = writeln!(
            out,
            "constraint sets: {} total, {} pruned as null, {} solved",
            self.sets_total,
            self.sets_pruned,
            self.sets.len()
        );
        if self.sets_skipped > 0 {
            let _ = writeln!(
                out,
                "  {} sets skipped on budget exhaustion (covered by the \
                 common-constraint relaxation)",
                self.sets_skipped
            );
        }
        if !self.degraded_sets.is_empty() {
            let list: Vec<String> = self.degraded_sets.iter().map(|i| i.to_string()).collect();
            let _ = writeln!(out, "  degraded sets (LP-relaxation bound): {}", list.join(", "));
        }
        let stats = self.total_stats();
        let _ = writeln!(
            out,
            "ILP: {} LP calls over {} nodes; first relaxation integral: {}",
            stats.lp_calls, stats.nodes, stats.first_relaxation_integral
        );
        let _ = writeln!(out, "WCET contribution by instance:");
        for (label, cycles) in &self.wcet_contributions {
            let pct = 100.0 * *cycles as f64 / self.bound.upper.max(1) as f64;
            let _ = writeln!(out, "  {label:<40} {cycles:>10}  ({pct:4.1}%)");
        }
        let _ = writeln!(out, "worst-case block counts:");
        for (label, count) in &self.wcet_counts {
            let _ = writeln!(out, "  {label:<40} {count}");
        }
        out
    }

    /// Sum of ILP statistics over every solved ILP (WCET and BCET).
    pub fn total_stats(&self) -> IlpStats {
        let mut acc = IlpStats { first_relaxation_integral: true, ..IlpStats::default() };
        for s in &self.sets {
            for st in [s.wcet_stats, s.bcet_stats] {
                acc.lp_calls += st.lp_calls;
                acc.nodes += st.nodes;
                acc.first_relaxation_integral &= st.first_relaxation_integral;
            }
        }
        acc
    }
}

/// One ILP the analysis needs solved: a surviving constraint set paired
/// with an optimization sense.
///
/// Jobs are emitted by [`Analyzer::plan`] in the canonical order
/// `set 0 × Maximize, set 0 × Minimize, set 1 × Maximize, ...` — job `i`
/// belongs to set `i / 2` with sense `Maximize` when `i` is even. The
/// problems are fully assembled (structural + functionality + cache-split
/// rows), self-contained, and independent of each other: any executor —
/// serial, threaded, or cached — may solve them in any order.
#[derive(Debug, Clone)]
pub struct IlpJob {
    /// Index of the constraint set among the surviving (post-prune,
    /// canonically ordered) sets.
    pub set: usize,
    /// `Maximize` for the WCET side, `Minimize` for the BCET side.
    pub sense: Sense,
    /// The assembled ILP.
    pub problem: Problem,
}

/// Outcome of one [`IlpJob`], fed back to [`AnalysisPlan::complete`].
#[derive(Debug, Clone)]
pub enum JobVerdict {
    /// The job ran (possibly degrading) and produced a resolution.
    Solved(IlpResolution, IlpStats),
    /// The job was never attempted — the budget ran out before dispatch.
    /// Its constraint set is covered by the common-constraint relaxation.
    Skipped,
}

/// Per-variable metadata an [`AnalysisPlan`] keeps so the verdict fold can
/// rebuild counts and contribution attribution without the analyzer.
#[derive(Debug, Clone)]
struct VarMeta {
    /// Display label (`x<k>@<instance>`).
    label: String,
    /// True for basic-block count variables (the ones reported in counts).
    is_block: bool,
    /// Label of the owning CFG instance (empty for edge variables).
    instance_label: String,
    /// Worst-case cycles this variable contributes per unit count
    /// (0 for edges and for block variables whose cost the cache split
    /// moved onto virtual cold/warm variables).
    contrib_cost: u64,
}

/// The job graph of one analysis: every ILP to solve plus everything needed
/// to fold the verdicts back into an [`Estimate`].
///
/// Produced by [`Analyzer::plan`]. The plan is fully owned — it borrows
/// neither the analyzer nor the program — so plans from many programs can
/// be collected and their jobs batched through one solve pool.
///
/// [`AnalysisPlan::complete`] is a pure, order-independent fold: each
/// verdict contributes to the running max/min and `BoundQuality::combine`
/// is commutative and associative, so executors may finish jobs in any
/// order (work stealing, caching, replay) and the resulting `Estimate` is
/// identical to the serial one, bit for bit.
#[derive(Debug, Clone)]
pub struct AnalysisPlan {
    jobs: Vec<IlpJob>,
    budget: AnalysisBudget,
    /// Cartesian-product set count before the cap and pruning (Table I).
    sets_total: usize,
    sets_pruned: usize,
    /// Set count before null pruning (for the all-infeasible error).
    sets_before_prune: usize,
    /// Surviving sets; `jobs.len() == 2 * num_sets`.
    num_sets: usize,
    /// `Partial` when the DNF cap dropped disjunctive statements.
    quality_floor: BoundQuality,
    /// LP relaxation over the constraints common to every set, used to
    /// cover sets whose jobs were skipped (worst/best sense).
    cover_worst: Problem,
    cover_best: Problem,
    /// Loop labels reported if a solve comes back unbounded.
    unbounded_loops: Vec<String>,
    vars: Vec<VarMeta>,
    /// CFG flow structure for the auditor's independent flow replay, built
    /// from the CFG topology rather than the assembled constraint matrix.
    flow: FlowSpec,
}

impl AnalysisPlan {
    /// The ILP jobs, in canonical order (see [`IlpJob`]).
    pub fn jobs(&self) -> &[IlpJob] {
        &self.jobs
    }

    /// The budget the plan was built under.
    pub fn budget(&self) -> &AnalysisBudget {
        &self.budget
    }

    /// Number of surviving constraint sets (`jobs().len() / 2`).
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Folds job verdicts into the final [`Estimate`].
    ///
    /// `verdicts[i]` answers `jobs()[i]`; missing trailing entries count as
    /// [`JobVerdict::Skipped`]. Sets with a skipped or exhausted job are
    /// covered by the common-constraint LP relaxation and degrade the
    /// overall quality to `Partial`, exactly like the serial pipeline.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`] — the same failures the serial path surfaces
    /// (unbounded loops, numerical breakdown, budget exhaustion with
    /// degradation disabled), reported in canonical job order regardless of
    /// the order the executor finished them in.
    pub fn complete(&self, verdicts: &[JobVerdict]) -> Result<Estimate, AnalysisError> {
        self.complete_impl(verdicts, false).map(|(estimate, _)| estimate)
    }

    /// Like [`complete`](AnalysisPlan::complete), but additionally runs the
    /// `ipet-audit` certifier over every verdict and returns the per-set
    /// certificate report alongside the estimate.
    ///
    /// The estimate is **bit-identical** to the unaudited one: certification
    /// only observes, it never changes a bound. A rejected certificate is
    /// reported through [`AuditReport::all_certified`]; callers decide what
    /// a rejection means (the CLI exits with a distinct code).
    pub fn complete_audited(
        &self,
        verdicts: &[JobVerdict],
    ) -> Result<(Estimate, AuditReport), AnalysisError> {
        self.complete_impl(verdicts, true)
    }

    /// The ILP a given set/sense verdict answered, for re-certification.
    fn job_problem(&self, set: usize, sense: Sense) -> &Problem {
        &self.jobs[2 * set + (sense == Sense::Minimize) as usize].problem
    }

    /// Certifies an `Exact` resolution: rounded witness feasibility, exact
    /// objective equality with the claimed bound, and CFG flow replay.
    fn audit_exact(&self, set: usize, sense: Sense, x: &[f64], claimed: u64) -> CertVerdict {
        match certify_witness(self.job_problem(set, sense), x, claimed as i64, ClaimKind::Equal) {
            Err(failure) => CertVerdict::Rejected(failure),
            Ok(cert) => match self.flow.check(&cert.counts) {
                Err(failure) => CertVerdict::Rejected(failure),
                Ok(()) => CertVerdict::Certified { value: claimed },
            },
        }
    }

    /// Certifies a `Relaxed` incumbent against its set's problem and the
    /// claimed outer bound (in integer cycles); returns the exactly
    /// witnessed objective on success.
    ///
    /// This runs on *every* incumbent, audited or not: an incumbent that
    /// fails exact feasibility or flow replay is dropped instead of being
    /// folded into the reported witness counts.
    fn certify_incumbent(
        &self,
        set: usize,
        sense: Sense,
        x: &[f64],
        bound_cycles: u64,
    ) -> Result<u64, CertFailure> {
        let kind = match sense {
            Sense::Maximize => ClaimKind::CoversFromAbove,
            Sense::Minimize => ClaimKind::CoversFromBelow,
        };
        let cert = certify_witness(self.job_problem(set, sense), x, bound_cycles as i64, kind)?;
        self.flow.check(&cert.counts)?;
        Ok(cert.objective.max(0) as u64)
    }

    fn complete_impl(
        &self,
        verdicts: &[JobVerdict],
        audit: bool,
    ) -> Result<(Estimate, AuditReport), AnalysisError> {
        let budget = &self.budget;
        let mut quality = self.quality_floor;
        let mut reports: Vec<SetReport> = Vec::new();
        let mut degraded_sets: Vec<usize> = Vec::new();
        // Degraded bounds have no witness vector, so the running bound and
        // the best *witnessed* solution (for counts/contributions) are
        // tracked separately.
        let mut worst_bound: Option<u64> = None;
        let mut worst_witness: Option<(u64, Vec<f64>)> = None;
        let mut best_bound: Option<u64> = None;
        let mut best_witness: Option<(u64, Vec<f64>)> = None;
        let mut solved = 0usize;

        let to_cycles = |value: f64| -> Result<u64, AnalysisError> {
            if !value.is_finite() {
                return Err(AnalysisError::Numerical);
            }
            Ok(value.round().max(0.0) as u64)
        };

        let mut certificates: Vec<SetCertificate> = Vec::new();

        for set in 0..self.num_sets {
            let w_verdict = verdicts.get(2 * set).unwrap_or(&JobVerdict::Skipped);
            let b_verdict = verdicts.get(2 * set + 1).unwrap_or(&JobVerdict::Skipped);
            let mut set_quality = BoundQuality::Exact;
            let mut set_skipped = false;
            // Covered = skipped/quarantined, replaced per arm below.
            let mut wcet_cert = CertVerdict::Covered;
            let mut bcet_cert = CertVerdict::Covered;

            let (wcet, w_stats) = match w_verdict {
                JobVerdict::Solved(res, stats) => {
                    let wcet = match res {
                        IlpResolution::Exact { x, value } => {
                            let v = to_cycles(*value)?;
                            if audit {
                                wcet_cert = self.audit_exact(set, Sense::Maximize, x, v);
                            }
                            if worst_witness.as_ref().map(|(b, _)| v > *b).unwrap_or(true) {
                                worst_witness = Some((v, x.clone()));
                            }
                            Some(v)
                        }
                        IlpResolution::Relaxed { bound, incumbent } => {
                            if !budget.degrade {
                                return Err(AnalysisError::SolverLimit);
                            }
                            // The relaxation value safely over-covers this
                            // set's true maximum; ceil keeps it safe in
                            // integer cycles.
                            let v = to_cycles(bound.ceil())?;
                            set_quality = set_quality.combine(BoundQuality::Relaxed);
                            let mut witnessed = None;
                            let mut rejection = None;
                            if let Some((x, _)) = incumbent {
                                // Satellite fix: an incumbent is only a
                                // witness once it passes exact
                                // re-certification; infeasible incumbents
                                // are dropped, not reported.
                                match self.certify_incumbent(set, Sense::Maximize, x, v) {
                                    Ok(w) => {
                                        ipet_trace::counter("audit.incumbent.accepted", 1);
                                        witnessed = Some(w);
                                        if worst_witness
                                            .as_ref()
                                            .map(|(b, _)| w > *b)
                                            .unwrap_or(true)
                                        {
                                            worst_witness = Some((w, x.clone()));
                                        }
                                    }
                                    Err(failure) => {
                                        ipet_trace::counter("audit.incumbent.dropped", 1);
                                        rejection = Some(failure);
                                    }
                                }
                            }
                            if audit {
                                wcet_cert = match rejection {
                                    Some(failure) => CertVerdict::Rejected(failure),
                                    None => CertVerdict::CertifiedRelaxed { bound: v, witnessed },
                                };
                            }
                            Some(v)
                        }
                        IlpResolution::Infeasible => {
                            wcet_cert = CertVerdict::Infeasible;
                            None
                        }
                        IlpResolution::Unbounded => {
                            return Err(AnalysisError::Unbounded {
                                unbounded_loops: self.unbounded_loops.clone(),
                            })
                        }
                        IlpResolution::Numerical => return Err(AnalysisError::Numerical),
                        IlpResolution::Exhausted => {
                            if !budget.degrade {
                                return Err(AnalysisError::BudgetExhausted);
                            }
                            set_skipped = true;
                            None
                        }
                    };
                    (wcet, *stats)
                }
                JobVerdict::Skipped => {
                    if !budget.degrade {
                        return Err(AnalysisError::BudgetExhausted);
                    }
                    set_skipped = true;
                    (None, IlpStats::default())
                }
            };
            if let Some(v) = wcet {
                worst_bound = Some(worst_bound.map_or(v, |b| b.max(v)));
            }

            // The BCET side only counts when the WCET side was attempted:
            // a set whose WCET job exhausted is covered whole.
            let (bcet, b_stats) = match (set_skipped, b_verdict) {
                (true, _) => (None, IlpStats::default()),
                (false, JobVerdict::Solved(res, stats)) => {
                    let bcet = match res {
                        IlpResolution::Exact { x, value } => {
                            let v = to_cycles(*value)?;
                            if audit {
                                bcet_cert = self.audit_exact(set, Sense::Minimize, x, v);
                            }
                            if best_witness.as_ref().map(|(b, _)| v < *b).unwrap_or(true) {
                                best_witness = Some((v, x.clone()));
                            }
                            Some(v)
                        }
                        IlpResolution::Relaxed { bound, incumbent } => {
                            if !budget.degrade {
                                return Err(AnalysisError::SolverLimit);
                            }
                            // The relaxation value safely under-covers this
                            // set's true minimum; floor keeps it safe in
                            // integer cycles.
                            let v = to_cycles(bound.floor())?;
                            set_quality = set_quality.combine(BoundQuality::Relaxed);
                            let mut witnessed = None;
                            let mut rejection = None;
                            if let Some((x, _)) = incumbent {
                                match self.certify_incumbent(set, Sense::Minimize, x, v) {
                                    Ok(w) => {
                                        ipet_trace::counter("audit.incumbent.accepted", 1);
                                        witnessed = Some(w);
                                        if best_witness
                                            .as_ref()
                                            .map(|(b, _)| w < *b)
                                            .unwrap_or(true)
                                        {
                                            best_witness = Some((w, x.clone()));
                                        }
                                    }
                                    Err(failure) => {
                                        ipet_trace::counter("audit.incumbent.dropped", 1);
                                        rejection = Some(failure);
                                    }
                                }
                            }
                            if audit {
                                bcet_cert = match rejection {
                                    Some(failure) => CertVerdict::Rejected(failure),
                                    None => CertVerdict::CertifiedRelaxed { bound: v, witnessed },
                                };
                            }
                            Some(v)
                        }
                        IlpResolution::Infeasible => {
                            bcet_cert = CertVerdict::Infeasible;
                            None
                        }
                        // Minimizing a non-negative objective cannot be
                        // unbounded; a solver verdict to the contrary is
                        // numerical breakdown.
                        IlpResolution::Unbounded | IlpResolution::Numerical => {
                            return Err(AnalysisError::Numerical)
                        }
                        IlpResolution::Exhausted => {
                            if !budget.degrade {
                                return Err(AnalysisError::BudgetExhausted);
                            }
                            set_skipped = true;
                            None
                        }
                    };
                    (bcet, *stats)
                }
                (false, JobVerdict::Skipped) => {
                    if !budget.degrade {
                        return Err(AnalysisError::BudgetExhausted);
                    }
                    set_skipped = true;
                    (None, IlpStats::default())
                }
            };
            if let Some(v) = bcet {
                best_bound = Some(best_bound.map_or(v, |b| b.min(v)));
            }

            if audit {
                // A set covered by the common-constraint relaxation has no
                // certificate at all — even for an arm that solved first.
                if set_skipped {
                    wcet_cert = CertVerdict::Covered;
                    bcet_cert = CertVerdict::Covered;
                }
                certificates.push(SetCertificate { set, wcet: wcet_cert, bcet: bcet_cert });
            }

            if set_skipped {
                continue;
            }
            if set_quality != BoundQuality::Exact {
                degraded_sets.push(reports.len());
            }
            reports.push(SetReport {
                index: set,
                wcet,
                bcet,
                wcet_stats: w_stats,
                bcet_stats: b_stats,
                quality: set_quality,
            });
            solved += 1;
        }

        // Sets whose jobs never ran are covered by the LP relaxation of the
        // common constraints: its feasible region contains every skipped
        // set, so its max/min bound whatever they could attain. One LP per
        // sense, on a fresh meter — Bland's rule terminates.
        let sets_skipped = self.num_sets - solved;
        if sets_skipped > 0 {
            quality = quality.combine(BoundQuality::Partial);
            ipet_trace::counter("core.cover.solves", 2);
            match solve_lp_metered(
                &self.cover_worst,
                &SolveBudget::unlimited(),
                &BudgetMeter::new(),
                &mut SolverFaults::none(),
            ) {
                LpOutcome::Optimal { value, .. } => {
                    let v = to_cycles(value.ceil())?;
                    worst_bound = Some(worst_bound.map_or(v, |b| b.max(v)));
                }
                // An infeasible cover means every skipped set is infeasible
                // too; they contribute nothing to the bound.
                LpOutcome::Infeasible => {}
                LpOutcome::Unbounded => {
                    return Err(AnalysisError::Unbounded {
                        unbounded_loops: self.unbounded_loops.clone(),
                    })
                }
                LpOutcome::Numerical => return Err(AnalysisError::Numerical),
                LpOutcome::LimitReached => return Err(AnalysisError::BudgetExhausted),
            }
            match solve_lp_metered(
                &self.cover_best,
                &SolveBudget::unlimited(),
                &BudgetMeter::new(),
                &mut SolverFaults::none(),
            ) {
                LpOutcome::Optimal { value, .. } => {
                    let v = to_cycles(value.floor())?;
                    best_bound = Some(best_bound.map_or(v, |b| b.min(v)));
                }
                LpOutcome::Infeasible => {}
                LpOutcome::Unbounded | LpOutcome::Numerical => {
                    return Err(AnalysisError::Numerical)
                }
                LpOutcome::LimitReached => return Err(AnalysisError::BudgetExhausted),
            }
        }
        if !degraded_sets.is_empty() {
            quality = quality.combine(BoundQuality::Relaxed);
        }

        let upper = worst_bound
            .ok_or(AnalysisError::AllSetsInfeasible { total: self.sets_before_prune })?;
        let lower =
            best_bound.ok_or(AnalysisError::AllSetsInfeasible { total: self.sets_before_prune })?;
        let worst_x = worst_witness.map(|(_, x)| x).unwrap_or_default();
        let best_x = best_witness.map(|(_, x)| x).unwrap_or_default();

        // The one sanctioned f64→count conversion: witnesses that refuse to
        // round to integer counts are numerical garbage, not reportable.
        let worst_rounded = round_witness(&worst_x).map_err(|_| AnalysisError::Numerical)?;
        let best_rounded = round_witness(&best_x).map_err(|_| AnalysisError::Numerical)?;

        let counts = |xr: &[i64]| -> BTreeMap<String, i64> {
            let mut out = BTreeMap::new();
            for (id, m) in self.vars.iter().enumerate() {
                if m.is_block {
                    let v = xr.get(id).copied().unwrap_or(0);
                    if v != 0 {
                        out.insert(m.label.clone(), v);
                    }
                }
            }
            out
        };

        // Attribute the WCET objective to instances: block variables carry
        // their worst-cold cost unless the cache split moved the cost onto
        // the cold/warm virtual variables.
        let mut contributions: BTreeMap<String, u64> = BTreeMap::new();
        for (id, m) in self.vars.iter().enumerate() {
            let value = worst_rounded.get(id).copied().unwrap_or(0) as u64;
            if value == 0 || m.contrib_cost == 0 {
                continue;
            }
            *contributions.entry(m.instance_label.clone()).or_insert(0) += value * m.contrib_cost;
        }

        let report = AuditReport { sets: certificates };
        if audit {
            ipet_trace::counter("audit.runs", 1);
            ipet_trace::counter("audit.certified", report.certified() as u64);
            ipet_trace::counter("audit.rejected", report.rejected() as u64);
        }

        ipet_trace::counter("core.complete.calls", 1);
        ipet_trace::counter("core.sets.solved", solved as u64);
        ipet_trace::counter("core.sets.skipped", sets_skipped as u64);
        ipet_trace::counter("core.sets.degraded", degraded_sets.len() as u64);
        Ok((
            Estimate {
                bound: TimeBound { lower, upper },
                sets_total: self.sets_total,
                sets_pruned: self.sets_pruned,
                sets: reports,
                wcet_counts: counts(&worst_rounded),
                bcet_counts: counts(&best_rounded),
                wcet_contributions: contributions,
                quality,
                sets_skipped,
                degraded_sets,
            },
            report,
        ))
    }
}

/// The IPET analyzer for one program on one machine.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Analyzer<'p> {
    program: &'p Program,
    machine: Machine,
    instances: Instances,
    /// `costs[func][block]`
    costs: Vec<Vec<BlockCost>>,
    cache_mode: CacheMode,
}

impl<'p> Analyzer<'p> {
    /// Builds the analyzer: expands call-site instances and computes the
    /// per-block cost bounds.
    ///
    /// # Errors
    ///
    /// Fails on recursion or instance-expansion overflow.
    pub fn new(program: &'p Program, machine: Machine) -> Result<Analyzer<'p>, AnalysisError> {
        Analyzer::new_with_context(program, machine, ContextMode::PerCallSite)
    }

    /// Builds the analyzer with an explicit [`ContextMode`].
    ///
    /// # Errors
    ///
    /// Fails on recursion or instance-expansion overflow.
    pub fn new_with_context(
        program: &'p Program,
        machine: Machine,
        context: ContextMode,
    ) -> Result<Analyzer<'p>, AnalysisError> {
        let instances = match context {
            ContextMode::PerCallSite => Instances::expand(program, program.entry)?,
            ContextMode::Shared => Instances::expand_shared(program, program.entry)?,
        };
        let costs = instances
            .cfgs
            .iter()
            .enumerate()
            .map(|(f, cfg)| {
                cfg.blocks.iter().map(|b| block_cost(&machine, &program.functions[f], b)).collect()
            })
            .collect();
        Ok(Analyzer { program, machine, instances, costs, cache_mode: CacheMode::AllMiss })
    }

    /// Selects the cache treatment for the worst-case objective.
    pub fn with_cache_mode(mut self, mode: CacheMode) -> Analyzer<'p> {
        self.cache_mode = mode;
        self
    }

    /// The expanded instances (for figure rendering and diagnostics).
    pub fn instances(&self) -> &Instances {
        &self.instances
    }

    /// The machine model in use.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The program under analysis.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Cost bounds of one basic block.
    pub fn block_cost(&self, func: FuncId, block: BlockId) -> BlockCost {
        self.costs[func.0][block.0]
    }

    /// The loops the user must bound, as `(function, header block)` pairs —
    /// what cinderella asks for after constructing structural constraints.
    pub fn loops_needing_bounds(&self) -> Vec<(String, BlockId)> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for i in 0..self.instances.len() {
            let cfg = self.instances.cfg(InstanceId(i));
            for l in cfg.loops() {
                if seen.insert((cfg.func, l.header)) {
                    out.push((cfg.func_name.clone(), l.header));
                }
            }
        }
        out
    }

    /// The paper's Experiment-1 "calculated bound": block counters from an
    /// instrumented run multiplied by the per-block cost bounds.
    ///
    /// `worst_counts` should come from the worst-case data set, and
    /// `best_counts` from the best-case data set.
    pub fn calculated_bound(
        &self,
        best_counts: &BTreeMap<(FuncId, BlockId), u64>,
        worst_counts: &BTreeMap<(FuncId, BlockId), u64>,
    ) -> TimeBound {
        let lower = best_counts.iter().map(|(&(f, b), &c)| c * self.costs[f.0][b.0].best).sum();
        let upper =
            worst_counts.iter().map(|(&(f, b), &c)| c * self.costs[f.0][b.0].worst_cold).sum();
        TimeBound { lower, upper }
    }

    /// Finite-difference sensitivity of the WCET to each loop bound: for
    /// every `loop` annotation, the increase in the estimated WCET if the
    /// loop ran one more iteration. Real-time engineers use this to find
    /// which bound to attack first; it also prices the cost of annotation
    /// slack.
    ///
    /// Returns `(function, statement index within that function's
    /// annotations, base hi, delta cycles)` per loop statement.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn wcet_sensitivity(
        &self,
        annotations: &str,
    ) -> Result<Vec<(String, usize, i64, i64)>, AnalysisError> {
        let anns = parse_annotations(annotations)?;
        let base = self.analyze_parsed(&anns)?;
        let mut out = Vec::new();
        for (fi, (func, stmts)) in anns.functions.iter().enumerate() {
            for (si, stmt) in stmts.iter().enumerate() {
                let Stmt::Loop { hi, .. } = stmt else {
                    continue;
                };
                let mut widened = anns.clone();
                if let Stmt::Loop { hi: h, .. } = &mut widened.functions[fi].1[si] {
                    *h += 1;
                }
                let wider = self.analyze_parsed(&widened)?;
                out.push((
                    func.clone(),
                    si,
                    *hi,
                    wider.bound.upper as i64 - base.bound.upper as i64,
                ));
            }
        }
        Ok(out)
    }

    /// Runs the full analysis with annotation source text.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze(&self, annotations: &str) -> Result<Estimate, AnalysisError> {
        self.analyze_with(annotations, &AnalysisBudget::default())
    }

    /// Runs the full analysis with annotation source text under `budget`.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_with(
        &self,
        annotations: &str,
        budget: &AnalysisBudget,
    ) -> Result<Estimate, AnalysisError> {
        let anns = parse_annotations(annotations)?;
        self.analyze_parsed_with(&anns, budget)
    }

    /// Runs the full analysis with pre-parsed annotations.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_parsed(&self, anns: &Annotations) -> Result<Estimate, AnalysisError> {
        self.analyze_parsed_with(anns, &AnalysisBudget::default())
    }

    /// Runs the full analysis with pre-parsed annotations under `budget`.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_parsed_with(
        &self,
        anns: &Annotations,
        budget: &AnalysisBudget,
    ) -> Result<Estimate, AnalysisError> {
        self.analyze_parsed_with_faults(anns, budget, &mut SolverFaults::none())
    }

    /// [`Analyzer::analyze_parsed_with`] plus deterministic fault injection:
    /// `faults` is threaded into every LP/ILP call of the analysis, letting
    /// tests force each budget-exhaustion path at an exact call index.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_parsed_with_faults(
        &self,
        anns: &Annotations,
        budget: &AnalysisBudget,
        faults: &mut SolverFaults,
    ) -> Result<Estimate, AnalysisError> {
        let plan = self.plan(anns, budget)?;
        let verdicts = Analyzer::run_serial(&plan, budget, faults);
        plan.complete(&verdicts)
    }

    /// [`Analyzer::analyze_parsed_with_faults`] plus exact-arithmetic
    /// certification of every verdict: returns the per-set certificate
    /// report alongside the (bit-identical) estimate.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn analyze_audited_with_faults(
        &self,
        anns: &Annotations,
        budget: &AnalysisBudget,
        faults: &mut SolverFaults,
    ) -> Result<(Estimate, AuditReport), AnalysisError> {
        let plan = self.plan(anns, budget)?;
        let verdicts = Analyzer::run_serial(&plan, budget, faults);
        plan.complete_audited(&verdicts)
    }

    /// The serial executor: one shared meter, jobs in canonical order, the
    /// run stopping at the first exhaustion (every later job is skipped and
    /// its set covered by the common-constraint relaxation). The deadline is
    /// checked at each set boundary — a set's BCET job still runs after its
    /// WCET job spent the deadline, and reports `Exhausted` through the
    /// solver's own top-of-search check.
    fn run_serial(
        plan: &AnalysisPlan,
        budget: &AnalysisBudget,
        faults: &mut SolverFaults,
    ) -> Vec<JobVerdict> {
        let meter = BudgetMeter::new();
        let mut verdicts: Vec<JobVerdict> = Vec::with_capacity(plan.jobs().len());
        for job in plan.jobs() {
            if job.sense == Sense::Maximize && meter.deadline_hit(&budget.solve) {
                break;
            }
            let (res, stats) = solve_ilp_budgeted(&job.problem, &budget.solve, &meter, faults);
            let exhausted = matches!(res, IlpResolution::Exhausted);
            verdicts.push(JobVerdict::Solved(res, stats));
            if exhausted {
                break;
            }
        }
        verdicts
    }

    /// Builds the analysis **job graph**: resolves annotations, expands the
    /// DNF constraint sets, prunes null sets, orders the survivors
    /// canonically, and assembles one ILP per surviving set and sense —
    /// without solving anything.
    ///
    /// The returned [`AnalysisPlan`] owns everything (no borrow of the
    /// analyzer), exposes the jobs for any executor, and folds the verdicts
    /// back into an [`Estimate`] via [`AnalysisPlan::complete`].
    ///
    /// **Canonical set order:** surviving sets are stable-sorted by the
    /// rendered text of their constraints (each set's constraints in
    /// statement order, compared lexicographically). The order is therefore
    /// a pure function of the constraint content — independent of executor,
    /// thread count, and hash-map iteration — which is what makes reports
    /// and exit codes reproducible across `--jobs` values.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`] for the planning-time failures (unknown
    /// functions, bad references, DNF blow-up with degradation disabled,
    /// all sets null).
    pub fn plan(
        &self,
        anns: &Annotations,
        budget: &AnalysisBudget,
    ) -> Result<AnalysisPlan, AnalysisError> {
        let _span = ipet_trace::span("core.plan");
        ipet_trace::counter("core.plan.calls", 1);
        // Validate function names early.
        for (name, _) in &anns.functions {
            if self.program.function_by_name(name).is_none() {
                return Err(AnalysisError::UnknownFunction(name.clone()));
            }
        }

        let mut space = VarSpace::new(&self.instances);

        // Resolve annotations per instance into statement-level
        // disjunctions. Each entry is a non-empty list of alternative
        // conjunctive constraint lists.
        let mut statements: Vec<Vec<Vec<LinCon>>> = Vec::new();
        let mut bounded_headers: HashSet<(InstanceId, BlockId)> = HashSet::new();

        for i in 0..self.instances.len() {
            let inst = InstanceId(i);
            let func_name = self.instances.cfg(inst).func_name.clone();
            for stmt in anns.for_function(&func_name) {
                match stmt {
                    Stmt::Loop { header, lo, hi } => {
                        let cons =
                            self.resolve_loop(inst, header, *lo, *hi, &mut bounded_headers)?;
                        statements.push(vec![cons]);
                    }
                    Stmt::Cons(or) => {
                        let mut alts = Vec::new();
                        for conj in or.to_dnf() {
                            let mut set = Vec::new();
                            for (lhs, rel, rhs) in conj {
                                set.push(self.resolve_rel(inst, &lhs, rel, &rhs)?);
                            }
                            alts.push(set);
                        }
                        statements.push(alts);
                    }
                }
            }
        }

        // Cartesian product across statements = the paper's "set of
        // constraint sets" ("the size of the constraint sets is doubled
        // every time a functionality constraint with | is added").
        let sets_total: usize = statements.iter().map(|s| s.len()).product::<usize>().max(1);
        let mut quality_floor = BoundQuality::Exact;
        if sets_total > budget.solve.max_sets {
            if !budget.degrade {
                return Err(AnalysisError::SolverLimit);
            }
            // DNF blow-up past the cap: drop the disjunctive statements and
            // keep only the conjunctive ones. Every real constraint set
            // implies the kept rows, so the single surviving set is a
            // relaxation of all of them — safe for both WCET (feasible
            // region grows, max grows) and BCET (min shrinks).
            statements.retain(|s| s.len() == 1);
            quality_floor = BoundQuality::Partial;
        }

        let mut functionality_sets: Vec<Vec<LinCon>> = vec![Vec::new()];
        for alts in &statements {
            let mut next = Vec::with_capacity(functionality_sets.len() * alts.len());
            for base in &functionality_sets {
                for alt in alts {
                    let mut merged = base.clone();
                    merged.extend(alt.iter().cloned());
                    next.push(merged);
                }
            }
            functionality_sets = next;
        }

        // Null-set pruning.
        let before = functionality_sets.len();
        functionality_sets.retain(|s| !set_is_null(s));
        let sets_pruned = before - functionality_sets.len();
        if functionality_sets.is_empty() {
            return Err(AnalysisError::AllSetsInfeasible { total: before });
        }

        // Canonical deterministic set order: stable-sort the survivors by
        // their rendered constraint text. `LinCon`'s display normalizes
        // terms (merged, zero-dropped, sorted by variable), so the key is a
        // pure function of constraint content and the resulting job order
        // is reproducible across executors and `--jobs` values.
        let mut keyed: Vec<(Vec<String>, Vec<LinCon>)> = functionality_sets
            .into_iter()
            .map(|s| (s.iter().map(|c| c.to_string()).collect(), s))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        let functionality_sets: Vec<Vec<LinCon>> = keyed.into_iter().map(|(_, s)| s).collect();

        // Shared structural rows and (for the worst case) split rows.
        let structural = structural_constraints(&self.instances);
        let (split_rows, split_objective) = self.build_split(&mut space);

        // Constraints common to *every* set (the non-disjunctive
        // statements): the cover relaxation bounding any set the budget
        // forces us to skip.
        let common: Vec<LinCon> =
            statements.iter().filter(|s| s.len() == 1).flat_map(|s| s[0].iter().cloned()).collect();

        let mut jobs = Vec::with_capacity(functionality_sets.len() * 2);
        for (idx, set) in functionality_sets.iter().enumerate() {
            jobs.push(IlpJob {
                set: idx,
                sense: Sense::Maximize,
                problem: self.assemble(
                    &space,
                    Sense::Maximize,
                    &structural,
                    set,
                    &split_rows,
                    &split_objective,
                ),
            });
            jobs.push(IlpJob {
                set: idx,
                sense: Sense::Minimize,
                problem: self.assemble(
                    &space,
                    Sense::Minimize,
                    &structural,
                    set,
                    &[],
                    &HashMap::new(),
                ),
            });
        }
        let cover_worst = self.assemble(
            &space,
            Sense::Maximize,
            &structural,
            &common,
            &split_rows,
            &split_objective,
        );
        let cover_best =
            self.assemble(&space, Sense::Minimize, &structural, &common, &[], &HashMap::new());

        let vars: Vec<VarMeta> = space
            .iter()
            .map(|(id, r)| {
                let (is_block, instance_label, contrib_cost) = match r {
                    VarRef::Block(inst, blk) => {
                        let func = self.instances.cfg(inst).func;
                        let cost = match split_objective.get(&r) {
                            Some(&c) => c as u64,
                            None => self.costs[func.0][blk.0].worst_cold,
                        };
                        (true, self.instances.instances[inst.0].label.clone(), cost)
                    }
                    VarRef::SplitCold(inst, _) | VarRef::SplitWarm(inst, _) => (
                        false,
                        self.instances.instances[inst.0].label.clone(),
                        split_objective.get(&r).copied().unwrap_or(0.0) as u64,
                    ),
                    VarRef::Edge(_, _) => (false, String::new(), 0),
                };
                VarMeta {
                    label: space.label(id).to_string(),
                    is_block,
                    instance_label,
                    contrib_cost,
                }
            })
            .collect();

        ipet_trace::counter("core.sets.expanded", sets_total as u64);
        ipet_trace::counter("core.sets.pruned", sets_pruned as u64);
        ipet_trace::counter("core.jobs.emitted", jobs.len() as u64);
        ipet_trace::gauge_max("core.sets.peak", sets_total as u64);
        Ok(AnalysisPlan {
            num_sets: functionality_sets.len(),
            jobs,
            budget: *budget,
            sets_total,
            sets_pruned,
            sets_before_prune: before,
            quality_floor,
            cover_worst,
            cover_best,
            unbounded_loops: self.unbounded_loop_labels(&bounded_headers),
            vars,
            flow: flow_spec(&self.instances, &space),
        })
    }

    // -- resolution helpers -------------------------------------------------

    fn follow_path(&self, inst: InstanceId, r: &Ref) -> Result<InstanceId, AnalysisError> {
        let mut cur = inst;
        for &hop in &r.path {
            cur = self.instances.child_at(cur, hop - 1).ok_or_else(|| {
                AnalysisError::BadReference {
                    func: self.instances.cfg(inst).func_name.clone(),
                    reference: r.to_string(),
                    reason: format!("no call site f{hop}"),
                }
            })?;
        }
        Ok(cur)
    }

    fn resolve_ref(&self, inst: InstanceId, r: &Ref) -> Result<VarRef, AnalysisError> {
        let target = self.follow_path(inst, r)?;
        let cfg = self.instances.cfg(target);
        let bad = |reason: String| AnalysisError::BadReference {
            func: self.instances.cfg(inst).func_name.clone(),
            reference: r.to_string(),
            reason,
        };
        match r.kind {
            RefKind::X => {
                if r.index > cfg.num_blocks() {
                    return Err(bad(format!(
                        "function {} has only {} blocks",
                        cfg.func_name,
                        cfg.num_blocks()
                    )));
                }
                Ok(VarRef::Block(target, BlockId(r.index - 1)))
            }
            RefKind::D => {
                if r.index > cfg.num_edges() {
                    return Err(bad(format!(
                        "function {} has only {} edges",
                        cfg.func_name,
                        cfg.num_edges()
                    )));
                }
                Ok(VarRef::Edge(target, ipet_cfg::EdgeId(r.index - 1)))
            }
            RefKind::F => {
                let (edge, _) = cfg.call_edge(r.index - 1).ok_or_else(|| {
                    bad(format!("function {} has no call site f{}", cfg.func_name, r.index))
                })?;
                Ok(VarRef::Edge(target, edge))
            }
        }
    }

    fn resolve_linexpr(
        &self,
        inst: InstanceId,
        e: &LinExpr,
    ) -> Result<(Vec<(VarRef, f64)>, f64), AnalysisError> {
        let mut terms = Vec::with_capacity(e.terms.len());
        for (c, r) in &e.terms {
            terms.push((self.resolve_ref(inst, r)?, *c as f64));
        }
        Ok((terms, e.constant as f64))
    }

    fn resolve_rel(
        &self,
        inst: InstanceId,
        lhs: &LinExpr,
        rel: Relation,
        rhs: &LinExpr,
    ) -> Result<LinCon, AnalysisError> {
        let (mut terms, lconst) = self.resolve_linexpr(inst, lhs)?;
        let (rterms, rconst) = self.resolve_linexpr(inst, rhs)?;
        for (v, c) in rterms {
            terms.push((v, -c));
        }
        Ok(LinCon { terms, relation: rel, rhs: rconst - lconst })
    }

    fn resolve_loop(
        &self,
        inst: InstanceId,
        header: &Ref,
        lo: i64,
        hi: i64,
        bounded: &mut HashSet<(InstanceId, BlockId)>,
    ) -> Result<Vec<LinCon>, AnalysisError> {
        let cfg_name = self.instances.cfg(inst).func_name.clone();
        if header.kind != RefKind::X {
            return Err(AnalysisError::BadReference {
                func: cfg_name,
                reference: header.to_string(),
                reason: "loop headers must be x-references".into(),
            });
        }
        if lo < 0 || hi < lo {
            return Err(AnalysisError::BadLoopBound { func: cfg_name, lo, hi });
        }
        let target = self.follow_path(inst, header)?;
        let cfg = self.instances.cfg(target);
        let block = BlockId(header.index - 1);
        let lp = cfg.loops().into_iter().find(|l| l.header == block).ok_or_else(|| {
            AnalysisError::NotALoopHeader { func: cfg.func_name.clone(), block: block.to_string() }
        })?;
        bounded.insert((target, block));

        // The paper's eqs. (14)-(15) relate the count of the block inside
        // the loop to the count of the block before the loop
        // (`1·x1 <= x2 <= 10·x1`). The equivalent graph-level statement —
        // independent of how the compiler shaped the header — bounds the
        // *iterations per entry*: with E = Σ d over entry edges and
        // B = Σ d over back edges,  lo·E <= B <= hi·E.
        let back_terms = |scale: f64| -> Vec<(VarRef, f64)> {
            let mut t: Vec<(VarRef, f64)> =
                lp.back_edges.iter().map(|e| (VarRef::Edge(target, *e), 1.0)).collect();
            for e in &lp.entry_edges {
                t.push((VarRef::Edge(target, *e), scale));
            }
            t
        };
        Ok(vec![
            LinCon::ge(back_terms(-(lo as f64)), 0.0),
            LinCon::le(back_terms(-(hi as f64)), 0.0),
        ])
    }

    fn unbounded_loop_labels(&self, bounded: &HashSet<(InstanceId, BlockId)>) -> Vec<String> {
        let mut out = Vec::new();
        for i in 0..self.instances.len() {
            let inst = InstanceId(i);
            let cfg = self.instances.cfg(inst);
            for l in cfg.loops() {
                if !bounded.contains(&(inst, l.header)) {
                    out.push(format!("{}({})", cfg.func_name, l.header));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    // -- ILP assembly --------------------------------------------------------

    /// Builds the split rows and split objective coefficients for
    /// [`CacheMode::FirstIterSplit`] (empty under [`CacheMode::AllMiss`]).
    fn build_split(&self, space: &mut VarSpace) -> (Vec<LinCon>, HashMap<VarRef, f64>) {
        let mut rows = Vec::new();
        let mut obj: HashMap<VarRef, f64> = HashMap::new();
        if self.cache_mode != CacheMode::FirstIterSplit {
            return (rows, obj);
        }
        for i in 0..self.instances.len() {
            let inst = InstanceId(i);
            let cfg = self.instances.cfg(inst);
            let func = cfg.func;
            let function = &self.program.functions[func.0];
            let loops: Vec<LoopInfo> = cfg.loops();
            // Innermost qualifying loop per block.
            let mut chosen: HashMap<BlockId, &LoopInfo> = HashMap::new();
            for l in &loops {
                if !self.loop_qualifies(func, l) {
                    continue;
                }
                for &b in &l.body {
                    match chosen.get(&b) {
                        Some(prev) if prev.body.len() <= l.body.len() => {}
                        _ => {
                            chosen.insert(b, l);
                        }
                    }
                }
            }
            let label = self.instances.instances[i].label.clone();
            for (&b, l) in &chosen {
                let cost = self.costs[func.0][b.0];
                if cost.worst_cold == cost.worst_warm {
                    continue; // nothing to gain
                }
                let _ = function; // block addresses were used in qualify()
                let cold = VarRef::SplitCold(inst, b);
                let warm = VarRef::SplitWarm(inst, b);
                space.intern(cold, &label);
                space.intern(warm, &label);
                let x = VarRef::Block(inst, b);
                rows.push(LinCon::eq(vec![(cold, 1.0), (warm, 1.0), (x, -1.0)], 0.0));
                let mut cap = vec![(cold, 1.0)];
                for e in &l.entry_edges {
                    cap.push((VarRef::Edge(inst, *e), -1.0));
                }
                rows.push(LinCon::le(cap, 0.0));
                obj.insert(cold, cost.worst_cold as f64);
                obj.insert(warm, cost.worst_warm as f64);
                obj.insert(x, 0.0);
            }
        }
        (rows, obj)
    }

    /// A loop qualifies for warm-iteration costing when its body contains
    /// no calls and its instruction range self-evidently fits the i-cache
    /// without conflicts.
    fn loop_qualifies(&self, func: FuncId, l: &LoopInfo) -> bool {
        let cfg = &self.instances.cfgs[func.0];
        let function = &self.program.functions[func.0];
        if l.body.iter().any(|&b| cfg.blocks[b.0].call.is_some()) {
            return false;
        }
        let start =
            l.body.iter().map(|&b| function.instr_addr(cfg.blocks[b.0].start)).min().unwrap_or(0);
        let end = l
            .body
            .iter()
            .map(|&b| function.instr_addr(cfg.blocks[b.0].end - 1) + ipet_arch::INSTR_BYTES)
            .max()
            .unwrap_or(0);
        self.machine.icache.range_is_conflict_free(start, end)
    }

    fn assemble(
        &self,
        space: &VarSpace,
        sense: Sense,
        structural: &[LinCon],
        functionality: &[LinCon],
        split_rows: &[LinCon],
        split_objective: &HashMap<VarRef, f64>,
    ) -> Problem {
        let mut b = ProblemBuilder::new(sense);
        let mut ids: Vec<VarId> = Vec::with_capacity(space.len());
        for (id, r) in space.iter() {
            let vid = b.add_var(space.label(id).to_string(), true);
            debug_assert_eq!(vid.0, id.0);
            ids.push(vid);
            // Objective: block costs (possibly overridden by the split).
            let coeff = match (sense, r) {
                (Sense::Maximize, VarRef::Block(inst, blk)) => {
                    let func = self.instances.cfg(inst).func;
                    match split_objective.get(&r) {
                        Some(&c) => c, // 0.0 when split vars carry the cost
                        None => self.costs[func.0][blk.0].worst_cold as f64,
                    }
                }
                (Sense::Maximize, VarRef::SplitCold(_, _) | VarRef::SplitWarm(_, _)) => {
                    split_objective.get(&r).copied().unwrap_or(0.0)
                }
                (Sense::Minimize, VarRef::Block(inst, blk)) => {
                    let func = self.instances.cfg(inst).func;
                    self.costs[func.0][blk.0].best as f64
                }
                _ => 0.0,
            };
            if coeff != 0.0 {
                b.objective(vid, coeff);
            }
        }
        let add = |b: &mut ProblemBuilder, c: &LinCon| {
            let terms: Vec<(VarId, f64)> = c
                .terms
                .iter()
                .map(|&(r, coef)| {
                    let id = space.id(r).expect("constraint variable interned");
                    (ids[id.0], coef)
                })
                .collect();
            b.constraint(terms, c.relation, c.rhs);
        };
        for c in structural {
            add(&mut b, c);
        }
        for c in functionality {
            add(&mut b, c);
        }
        if sense == Sense::Maximize {
            for c in split_rows {
                add(&mut b, c);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_arch::{AluOp, AsmBuilder, Cond, Program, Reg};

    fn while_loop_program(n: i32) -> Program {
        let mut b = AsmBuilder::new("main");
        let head = b.fresh_label();
        let out = b.fresh_label();
        b.ldc(Reg::T0, 0);
        b.bind(head);
        b.br(Cond::Ge, Reg::T0, n, out);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(head);
        b.bind(out);
        b.ret();
        Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap()
    }

    #[test]
    fn loop_bound_produces_finite_wcet() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let est = a.analyze("fn main { loop x2 in [10, 10]; }").unwrap();
        assert!(est.bound.lower > 0);
        assert!(est.bound.lower <= est.bound.upper);
        assert_eq!(est.sets_total, 1);
        assert_eq!(est.sets_pruned, 0);
        // Header executes 11 times in the worst case (10 iterations + exit test).
        let header = est.wcet_counts.iter().find(|(k, _)| k.starts_with("x2@")).unwrap();
        assert_eq!(*header.1, 11);
    }

    #[test]
    fn missing_loop_bound_reports_unbounded() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        match a.analyze("") {
            Err(AnalysisError::Unbounded { unbounded_loops }) => {
                assert_eq!(unbounded_loops, vec!["main(B2)".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loops_needing_bounds_lists_header() {
        let p = while_loop_program(4);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let loops = a.loops_needing_bounds();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].0, "main");
        assert_eq!(loops[0].1, BlockId(1));
    }

    #[test]
    fn tighter_loop_bound_tightens_wcet() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let wide = a.analyze("fn main { loop x2 in [0, 100]; }").unwrap();
        let tight = a.analyze("fn main { loop x2 in [0, 10]; }").unwrap();
        assert!(tight.bound.upper < wide.bound.upper);
        assert_eq!(tight.bound.lower, wide.bound.lower);
    }

    #[test]
    fn disjunction_doubles_sets_and_null_sets_prune() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        // x3 (the body) = 0 | x3 = 5, combined with x3 >= 1 makes the first
        // branch null.
        let est =
            a.analyze("fn main { loop x2 in [0, 10]; (x3 = 0) | (x3 = 5); x3 >= 1; }").unwrap();
        assert_eq!(est.sets_total, 2);
        assert_eq!(est.sets_pruned, 1);
        assert_eq!(est.sets.len(), 1);
        let body = est.wcet_counts.iter().find(|(k, _)| k.starts_with("x3@")).unwrap();
        assert_eq!(*body.1, 5);
    }

    #[test]
    fn all_sets_null_is_an_error() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        match a.analyze("fn main { loop x2 in [0,10]; x3 = 1; x3 = 2; }") {
            Err(AnalysisError::AllSetsInfeasible { total }) => assert_eq!(total, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_function_rejected() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        assert!(matches!(
            a.analyze("fn nosuch { x1 = 1; }"),
            Err(AnalysisError::UnknownFunction(_))
        ));
    }

    #[test]
    fn bad_references_rejected() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        assert!(matches!(
            a.analyze("fn main { loop x2 in [0,10]; x99 = 1; }"),
            Err(AnalysisError::BadReference { .. })
        ));
        assert!(matches!(
            a.analyze("fn main { loop x2 in [0,10]; x1.f1 = 1; }"),
            Err(AnalysisError::BadReference { .. })
        ));
        assert!(matches!(
            a.analyze("fn main { loop x1 in [0,10]; }"),
            Err(AnalysisError::NotALoopHeader { .. })
        ));
        assert!(matches!(
            a.analyze("fn main { loop x2 in [5,2]; }"),
            Err(AnalysisError::BadLoopBound { .. })
        ));
    }

    #[test]
    fn first_relaxation_is_integral_for_flow_problems() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let est = a.analyze("fn main { loop x2 in [1, 10]; }").unwrap();
        let stats = est.total_stats();
        assert!(stats.first_relaxation_integral, "{stats:?}");
    }

    #[test]
    fn calls_contribute_callee_cost() {
        // main calls leaf; leaf has nontrivial cost; WCET(main) > WCET of
        // main's own blocks alone.
        let mut leaf = AsmBuilder::new("leaf");
        leaf.alu(AluOp::Div, Reg::RV, Reg::A0, 3);
        leaf.ret();
        let mut main = AsmBuilder::new("main");
        main.call(FuncId(0));
        main.ret();
        let p =
            Program::new(vec![leaf.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
                .unwrap();
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let est = a.analyze("").unwrap();
        // Callee blocks must appear with count 1 in the worst case.
        assert!(est.wcet_counts.keys().any(|k| k.contains("f1:leaf")));
        // And the bound exceeds the cost of main's two blocks alone.
        let main_only: u64 = (0..2).map(|b| a.block_cost(FuncId(1), BlockId(b)).worst_cold).sum();
        assert!(est.bound.upper > main_only);
    }

    #[test]
    fn caller_scoped_constraint_pins_callee_blocks() {
        // leaf has a diamond; pin its then-branch through the caller scope.
        let mut leaf = AsmBuilder::new("leaf");
        let els = leaf.fresh_label();
        let join = leaf.fresh_label();
        leaf.br(Cond::Eq, Reg::A0, 0, els);
        leaf.ldc(Reg::RV, 1);
        leaf.jmp(join);
        leaf.bind(els);
        leaf.ldc(Reg::RV, 2);
        leaf.bind(join);
        leaf.ret();
        let mut main = AsmBuilder::new("main");
        main.call(FuncId(0));
        main.ret();
        let p =
            Program::new(vec![leaf.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
                .unwrap();
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        // Force the cheap arm via x-of-callee-at-site syntax.
        let est = a.analyze("fn main { x2.f1 = 0; }").unwrap();
        assert!(!est.wcet_counts.keys().any(|k| k.starts_with("x2@main/f1:leaf")));
        let est2 = a.analyze("fn main { x3.f1 = 0; }").unwrap();
        assert!(est2.bound.upper != est.bound.upper || est2.wcet_counts != est.wcet_counts);
    }

    #[test]
    fn split_mode_tightens_loop_wcet_and_stays_above_best() {
        let p = while_loop_program(50);
        let base = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let split = Analyzer::new(&p, Machine::i960kb())
            .unwrap()
            .with_cache_mode(CacheMode::FirstIterSplit);
        let ann = "fn main { loop x2 in [50, 50]; }";
        let e_base = base.analyze(ann).unwrap();
        let e_split = split.analyze(ann).unwrap();
        assert!(
            e_split.bound.upper < e_base.bound.upper,
            "split {} vs base {}",
            e_split.bound.upper,
            e_base.bound.upper
        );
        assert!(e_split.bound.lower == e_base.bound.lower);
        assert!(e_split.bound.lower <= e_split.bound.upper);
    }

    #[test]
    fn wcet_contributions_sum_to_the_bound() {
        // A caller + callee: the breakdown must cover the whole WCET and
        // attribute nonzero cycles to both instances.
        let mut leaf = AsmBuilder::new("leaf");
        leaf.alu(AluOp::Div, Reg::RV, Reg::A0, 3);
        leaf.ret();
        let mut main = AsmBuilder::new("main");
        main.call(FuncId(0));
        main.ret();
        let p =
            Program::new(vec![leaf.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
                .unwrap();
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let est = a.analyze("").unwrap();
        let total: u64 = est.wcet_contributions.values().sum();
        assert_eq!(total, est.bound.upper);
        assert!(est.wcet_contributions.contains_key("main"));
        assert!(est.wcet_contributions.contains_key("main/f1:leaf"));
        assert!(est.render().contains("WCET contribution"));
    }

    #[test]
    fn contributions_sum_under_cache_split_too() {
        let p = while_loop_program(50);
        let a = Analyzer::new(&p, Machine::i960kb())
            .unwrap()
            .with_cache_mode(CacheMode::FirstIterSplit);
        let est = a.analyze("fn main { loop x2 in [50, 50]; }").unwrap();
        let total: u64 = est.wcet_contributions.values().sum();
        assert_eq!(total, est.bound.upper);
    }

    #[test]
    fn sensitivity_prices_one_extra_iteration() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let ann = "fn main { loop x2 in [10, 10]; }";
        let sens = a.wcet_sensitivity(ann).unwrap();
        assert_eq!(sens.len(), 1);
        let (func, _, hi, delta) = &sens[0];
        assert_eq!(func, "main");
        assert_eq!(*hi, 10);
        // One more iteration costs one header + one body execution.
        let header = a.block_cost(FuncId(0), BlockId(1)).worst_cold as i64;
        let body = a.block_cost(FuncId(0), BlockId(2)).worst_cold as i64;
        assert_eq!(*delta, header + body);
    }

    #[test]
    fn structural_only_ilp_is_a_network_matrix() {
        // The §III-D theory: the automatically derived structural system
        // is totally unimodular (network-like), which is why the first LP
        // relaxation keeps coming out integral.
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let space = VarSpace::new(&a.instances);
        let structural = structural_constraints(&a.instances);
        let problem = a.assemble(&space, Sense::Maximize, &structural, &[], &[], &HashMap::new());
        assert!(ipet_lp::is_network_matrix(&problem));

        // A loop bound introduces a 10-coefficient and breaks the network
        // property — yet the relaxation stays integral in practice, the
        // paper's empirical §III-D point.
        let bound = a
            .resolve_loop(
                ipet_cfg::InstanceId(0),
                &crate::dsl::Ref { kind: crate::dsl::RefKind::X, index: 2, path: vec![] },
                1,
                10,
                &mut HashSet::new(),
            )
            .unwrap();
        let with_bound =
            a.assemble(&space, Sense::Maximize, &structural, &bound, &[], &HashMap::new());
        assert!(!ipet_lp::is_network_matrix(&with_bound));
        let (_, stats) = ipet_lp::solve_ilp(&with_bound);
        assert!(stats.first_relaxation_integral);
    }

    #[test]
    fn time_bound_helpers() {
        let outer = TimeBound { lower: 10, upper: 100 };
        let inner = TimeBound { lower: 20, upper: 80 };
        assert!(outer.encloses(inner));
        assert!(!inner.encloses(outer));
        let (lo, hi) = outer.pessimism_against(inner);
        assert!((lo - 0.5).abs() < 1e-9);
        assert!((hi - 0.25).abs() < 1e-9);
    }

    // -- budgets, degradation, fault injection ------------------------------

    #[test]
    fn roomy_budget_matches_default_analysis_exactly() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let ann = "fn main { loop x2 in [0, 10]; }";
        let plain = a.analyze(ann).unwrap();
        let budgeted = a.analyze_with(ann, &AnalysisBudget::unlimited()).unwrap();
        assert_eq!(plain.bound, budgeted.bound);
        assert_eq!(budgeted.quality, BoundQuality::Exact);
        assert_eq!(budgeted.sets_skipped, 0);
        assert!(budgeted.degraded_sets.is_empty());
    }

    #[test]
    fn fractional_root_under_node_budget_degrades_to_relaxed() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        // `2*x3 <= 7` puts the LP optimum at x3 = 3.5, forcing real
        // branching; one node is not enough to close the tree.
        let ann = "fn main { loop x2 in [0, 10]; 2*x3 <= 7; }";
        let exact = a.analyze(ann).unwrap();
        assert_eq!(exact.quality, BoundQuality::Exact);

        let mut budget = AnalysisBudget::unlimited();
        budget.solve.max_nodes = 1;
        let degraded = a.analyze_with(ann, &budget).unwrap();
        assert_eq!(degraded.quality, BoundQuality::Relaxed);
        assert!(!degraded.degraded_sets.is_empty());
        // The relaxed bound must stay safe: at least as wide as the truth.
        assert!(degraded.bound.upper >= exact.bound.upper);
        assert!(degraded.bound.lower <= exact.bound.lower);
        assert!(degraded.render().contains("bound quality: relaxed"));
    }

    #[test]
    fn zero_tick_deadline_skips_sets_but_still_bounds_safely() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let ann = "fn main { loop x2 in [0, 10]; (x3 = 0) | (x3 = 5); }";
        let exact = a.analyze(ann).unwrap();

        let mut budget = AnalysisBudget::unlimited();
        budget.solve.deadline_ticks = Some(0);
        let partial = a.analyze_with(ann, &budget).unwrap();
        assert_eq!(partial.quality, BoundQuality::Partial);
        assert!(partial.sets_skipped > 0);
        // The cover relaxation (structural + loop bound) encloses every
        // skipped set's attainable range.
        assert!(partial.bound.encloses(exact.bound));
        assert!(partial.render().contains("sets skipped on budget exhaustion"));
    }

    #[test]
    fn no_degrade_surfaces_budget_exhausted() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let mut budget = AnalysisBudget::unlimited();
        budget.solve.deadline_ticks = Some(0);
        budget.degrade = false;
        match a.analyze_with("fn main { loop x2 in [0, 10]; }", &budget) {
            Err(AnalysisError::BudgetExhausted) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_degrade_rejects_relaxed_set_bounds_too() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let mut budget = AnalysisBudget::unlimited();
        budget.solve.max_nodes = 1;
        budget.degrade = false;
        match a.analyze_with("fn main { loop x2 in [0, 10]; 2*x3 <= 7; }", &budget) {
            Err(AnalysisError::SolverLimit) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn injected_node_fault_cascades_to_a_safe_partial_bound() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let anns = parse_annotations("fn main { loop x2 in [0, 10]; }").unwrap();
        let exact = a.analyze_parsed(&anns).unwrap();

        // Kill the very first branch-and-bound expansion: the WCET solve
        // comes back `Exhausted`, the set is skipped, and the cover
        // relaxation must still produce an enclosing bound.
        let mut faults = SolverFaults::limit_at(0);
        let est =
            a.analyze_parsed_with_faults(&anns, &AnalysisBudget::unlimited(), &mut faults).unwrap();
        assert_eq!(est.quality, BoundQuality::Partial);
        assert_eq!(est.sets_skipped, 1);
        assert!(est.bound.encloses(exact.bound));
    }

    #[test]
    fn injected_lp_infeasibility_never_panics() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let anns = parse_annotations("fn main { loop x2 in [0, 10]; }").unwrap();
        // Forcing "infeasible" on an actually-feasible set silently drops
        // it from the max/min — every set gone means AllSetsInfeasible,
        // never a panic.
        for idx in 0..4 {
            let mut faults = SolverFaults::infeasible_at(idx);
            let _ = a.analyze_parsed_with_faults(&anns, &AnalysisBudget::unlimited(), &mut faults);
        }
        // Forcing a numerical LP failure at the root surfaces as the
        // typed Numerical error.
        let mut faults = SolverFaults::numerical_at(0);
        match a.analyze_parsed_with_faults(&anns, &AnalysisBudget::unlimited(), &mut faults) {
            Err(AnalysisError::Numerical) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dnf_cap_drops_disjunctions_and_reports_partial() {
        let p = while_loop_program(10);
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let ann = "fn main { loop x2 in [0, 10]; (x3 = 0) | (x3 = 5); }";
        let exact = a.analyze(ann).unwrap();
        assert_eq!(exact.sets_total, 2);

        let mut budget = AnalysisBudget::unlimited();
        budget.solve.max_sets = 1; // 2 sets blow the cap
        let partial = a.analyze_with(ann, &budget).unwrap();
        assert_eq!(partial.quality, BoundQuality::Partial);
        // Dropping the disjunction relaxes the model in both senses.
        assert!(partial.bound.encloses(exact.bound));

        budget.degrade = false;
        match a.analyze_with(ann, &budget) {
            Err(AnalysisError::SolverLimit) => {}
            other => panic!("{other:?}"),
        }
    }
}
