//! # ipet-core
//!
//! The paper's contribution: bounding a program's running time by
//! **implicit path enumeration** — an integer linear program over basic
//! block execution counts instead of an explicit walk of the exponential
//! path space.
//!
//! The pipeline is exactly the paper's:
//!
//! 1. [`Analyzer::new`] builds the per-call-site CFG instances and derives
//!    the **structural constraints** (flow conservation, `d1 = 1`, `f`-edge
//!    coupling) automatically.
//! 2. The user supplies **functionality constraints** in a small textual
//!    DSL ([`parse_annotations`]): loop bounds (`loop x2 in [1, 10];`),
//!    linear path facts (`x3 = x8;`), disjunctions
//!    (`(x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0);`) and caller-scoped counts
//!    (`x12 = x8.f1;`).
//! 3. Disjunctions are expanded to a set of conjunctive constraint sets,
//!    null sets are pruned, and each surviving set becomes one ILP whose
//!    objective `Σ c_i·x_i` uses the block cost bounds from `ipet-hw`.
//!    The WCET is the max over sets of the maxima; the BCET the min of the
//!    minima.
//!
//! ## Example
//!
//! ```
//! use ipet_arch::{AsmBuilder, Cond, FuncId, Program, Reg, AluOp};
//! use ipet_core::Analyzer;
//! use ipet_hw::Machine;
//!
//! // while (t < 10) t++;  — a single loop needing one bound annotation.
//! let mut b = AsmBuilder::new("main");
//! let head = b.fresh_label();
//! let out = b.fresh_label();
//! b.ldc(Reg::T0, 0);
//! b.bind(head);
//! b.br(Cond::Ge, Reg::T0, 10, out);
//! b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
//! b.jmp(head);
//! b.bind(out);
//! b.ret();
//! let program = Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap();
//!
//! let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
//! let estimate = analyzer.analyze("fn main { loop x2 in [10, 10]; }").unwrap();
//! assert!(estimate.bound.lower <= estimate.bound.upper);
//! ```

mod dsl;
mod error;
mod estimate;
mod idl;
mod infer;
mod lincon;
mod structural;
mod vars;

pub use dsl::{
    parse_annotations, Annotations, BoundSource, LinExpr, LoopProvenance, OrExpr, Ref, RefKind,
    Stmt,
};
pub use error::AnalysisError;
pub use estimate::{
    AnalysisBudget, AnalysisPlan, Analyzer, CacheMode, ContextMode, Estimate, IlpJob, JobVerdict,
    SetReport, TimeBound,
};
pub use idl::{compile_idl, idl_to_dsl, parse_idl, IdlAnnotations, IdlStmt};
pub use infer::{infer_loop_bounds, inferred_annotations, InferredBound};
// Budget vocabulary shared with the solver layer, re-exported so CLI and
// bench consumers need only depend on ipet-core.
pub use ipet_audit::{certify_chord, AuditReport, CertFailure, CertVerdict, SetCertificate};
// Parametric-cost vocabulary shared with the hardware model, re-exported
// for the same reason (Estimate::wcet_formula is a ParamExpr).
pub use ipet_hw::{ParamExpr, ParamPoint, P_DMISS, P_MISS};
pub use ipet_lp::{BoundQuality, BudgetMeter, SolveBudget, SolverFaults};
pub use lincon::{set_is_null, LinCon};
pub use structural::{flow_spec, structural_constraints, structural_text};
pub use vars::{VarRef, VarSpace};
