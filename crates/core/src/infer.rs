//! Automatic derivation of loop-bound constraints — the paper's stated
//! future work: "we would also like to explore the possibility of using
//! symbolic analysis techniques to automatically derive some of the
//! functionality constraints".
//!
//! The analysis recognises the counted-loop shape the mini-C compiler
//! emits for `for (i = C; i <cond> K; i = i + S)` at the machine level:
//!
//! * the loop header loads a frame slot, optionally materialises a
//!   constant, and compare-and-branches on it;
//! * exactly one store in the loop body updates that slot, and it is a
//!   load/add-constant/store chain;
//! * a block dominating the loop initialises the slot with a constant.
//!
//! When all three hold with compile-time constants, the trip count is
//! exact and an automatically derived `loop xH in [n, n]` constraint is
//! produced. Anything data-dependent is left to the user, exactly as in
//! the paper.

use crate::estimate::Analyzer;
use ipet_arch::{AluOp, Cond, FuncId, Instr, Operand, Reg};
use ipet_cfg::{BlockId, Cfg, Dominators, LoopInfo};
use std::collections::HashSet;
use std::fmt::Write as _;

/// One automatically derived loop bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredBound {
    /// Function containing the loop.
    pub func: FuncId,
    /// Function name (for annotation text).
    pub func_name: String,
    /// Loop header block.
    pub header: BlockId,
    /// Exact iterations per entry.
    pub trips: u64,
}

impl InferredBound {
    /// Renders the bound as a DSL `loop` statement.
    pub fn to_annotation(&self) -> String {
        format!(
            "fn {} {{ loop x{} in [{}, {}]; }}",
            self.func_name,
            self.header.0 + 1,
            self.trips,
            self.trips
        )
    }
}

/// The comparison at a counted-loop header: `slot <cond> limit` continues
/// the loop.
#[derive(Debug, Clone, Copy)]
struct HeaderTest {
    slot: i32,
    cond: Cond,
    limit: i32,
}

/// Matches the header-block shape:
/// `ld t, [fp+s]; (ldc t2, K;)? br cond t, (t2|K), target`.
///
/// Returns the continue-condition (normalised so that *taken* means
/// "stay in the loop").
fn match_header(cfg: &Cfg, function: &ipet_arch::Function, l: &LoopInfo) -> Option<HeaderTest> {
    let block = &cfg.blocks[l.header.0];
    let instrs = &function.instrs[block.start..block.end];
    let (&Instr::Br { cond, a, b, target }, rest) = instrs.split_last()? else {
        return None;
    };
    // Resolve the compared register to a frame-slot load inside the block.
    let mut slot = None;
    let mut limit_reg: Option<(Reg, i32)> = None;
    for ins in rest {
        match *ins {
            Instr::Ld { dst, base, offset } if base == Reg::FP && dst == a => {
                slot = Some(offset);
            }
            Instr::Ldc { dst, imm } => {
                limit_reg = Some((dst, imm));
            }
            _ => {}
        }
    }
    let slot = slot?;
    let limit = match b {
        Operand::Imm(k) => k,
        Operand::Reg(r) => {
            let (lr, k) = limit_reg?;
            if lr != r {
                return None;
            }
            k
        }
    };
    // Taken branch goes to `target`: if that target is inside the loop the
    // condition is the continue test; otherwise it is the exit test.
    let target_block = cfg.block_of_instr(target)?;
    let continues = l.contains(target_block);
    let cond = if continues { cond } else { cond.negate() };
    Some(HeaderTest { slot, cond, limit })
}

/// Finds the unique constant-step update `slot += step` in the loop body.
/// Any other store to the slot disqualifies the loop.
fn match_step(cfg: &Cfg, function: &ipet_arch::Function, l: &LoopInfo, slot: i32) -> Option<i64> {
    let mut step: Option<i64> = None;
    for &b in &l.body {
        let block = &cfg.blocks[b.0];
        let instrs = &function.instrs[block.start..block.end];
        for (i, ins) in instrs.iter().enumerate() {
            if let Instr::St { src, base, offset } = *ins {
                if base != Reg::FP || offset != slot {
                    continue;
                }
                // Walk backwards: src must be (ld slot) + constant.
                let delta = trace_add_constant(&instrs[..i], src, slot)?;
                if step.is_some() {
                    return None; // two updates: not a simple counter
                }
                step = Some(delta);
            }
        }
    }
    step.filter(|&s| s != 0)
}

/// Checks that `reg` holds `slot_value + delta` at the end of `prefix`,
/// where the chain is `ld r,[fp+slot]; (ldc r2, C;)? alu add/sub r, r, C`.
fn trace_add_constant(prefix: &[Instr], reg: Reg, slot: i32) -> Option<i64> {
    // Find the defining ALU op of `reg`.
    let (pos, op, a, b) = prefix.iter().enumerate().rev().find_map(|(i, ins)| match *ins {
        Instr::Alu { op, dst, a, b } if dst == reg => Some((i, op, a, b)),
        _ => None,
    })?;
    let sign = match op {
        AluOp::Add => 1i64,
        AluOp::Sub => -1i64,
        _ => return None,
    };
    let delta = match b {
        Operand::Imm(k) => k as i64,
        Operand::Reg(r) => {
            // The *defining* instruction of r must be a constant load —
            // stop at the first definition walking backwards, whatever it
            // is, so a stale earlier Ldc can never be picked up.
            prefix[..pos]
                .iter()
                .rev()
                .find_map(|ins| match *ins {
                    Instr::Ldc { dst, imm } if dst == r => Some(Some(imm as i64)),
                    _ if ins.def_reg() == Some(r) => Some(None),
                    _ => None,
                })
                .flatten()?
        }
    };
    // `a` must carry the slot's value: a load from [fp+slot] not clobbered.
    let loaded = prefix[..pos].iter().rev().find_map(|ins| match *ins {
        Instr::Ld { dst, base, offset } if dst == a && base == Reg::FP && offset == slot => {
            Some(true)
        }
        Instr::Alu { dst, .. } | Instr::Mov { dst, .. } | Instr::Ldc { dst, .. } if dst == a => {
            Some(false)
        }
        _ => None,
    })?;
    if !loaded {
        return None;
    }
    Some(sign * delta)
}

/// Finds the constant the slot holds on loop entry: the latest
/// `ldc t, C; st t, [fp+slot]` in a block that dominates the header and is
/// outside the loop, with no other stores to the slot in between (we only
/// accept the straightforward case: the *immediately* dominating
/// initialisation).
fn match_init(
    cfg: &Cfg,
    function: &ipet_arch::Function,
    dom: &Dominators,
    l: &LoopInfo,
    slot: i32,
) -> Option<i64> {
    let mut init: Option<i64> = None;
    for b in 0..cfg.num_blocks() {
        let block_id = BlockId(b);
        if l.contains(block_id) || !dom.dominates(block_id, l.header) {
            continue;
        }
        let block = &cfg.blocks[b];
        let instrs = &function.instrs[block.start..block.end];
        for (i, ins) in instrs.iter().enumerate() {
            if let Instr::St { src, base, offset } = *ins {
                if base == Reg::FP && offset == slot {
                    // The stored value must come straight from a constant
                    // load: stop at src's defining instruction, whatever it
                    // is, so a stale earlier Ldc can never be picked up.
                    let c = instrs[..i]
                        .iter()
                        .rev()
                        .find_map(|p| match *p {
                            Instr::Ldc { dst, imm } if dst == src => Some(Some(imm as i64)),
                            _ if p.def_reg() == Some(src) => Some(None),
                            _ => None,
                        })
                        .flatten();
                    // Later dominating stores override earlier ones; a
                    // non-constant store forgets what we knew.
                    init = c;
                }
            }
        }
    }
    init
}

/// Exact trip count of `for (i = init; i <cond> limit; i += step)`.
/// Returns `None` when the loop does not terminate under this model.
fn trip_count(init: i64, cond: Cond, limit: i64, step: i64) -> Option<u64> {
    let holds = |i: i64| cond.holds(i as i32, limit as i32);
    // Guard against non-terminating combinations.
    match (cond, step.signum()) {
        (Cond::Lt | Cond::Le, 1) | (Cond::Gt | Cond::Ge, -1) => {}
        (Cond::Ne, _) => {
            // i != limit with a step that eventually hits it exactly.
            let diff = limit - init;
            if step == 0 || diff % step != 0 || diff / step < 0 {
                return None;
            }
            return Some((diff / step) as u64);
        }
        _ => return None,
    }
    if !holds(init) {
        return Some(0);
    }
    let span = match cond {
        Cond::Lt => limit - init,
        Cond::Le => limit - init + 1,
        Cond::Gt => init - limit,
        Cond::Ge => init - limit + 1,
        _ => unreachable!("handled above"),
    };
    let mag = step.abs();
    Some(((span + mag - 1) / mag).max(0) as u64)
}

/// Runs the inference over every function of the analyzer's program.
pub fn infer_loop_bounds(analyzer: &Analyzer<'_>) -> Vec<InferredBound> {
    let mut out = Vec::new();
    let mut seen: HashSet<(FuncId, BlockId)> = HashSet::new();
    let instances = analyzer.instances();
    for cfg in &instances.cfgs {
        let function = &analyzer.program().functions[cfg.func.0];
        let dom = Dominators::compute(cfg);
        for l in cfg.loops() {
            if !seen.insert((cfg.func, l.header)) {
                continue;
            }
            let Some(test) = match_header(cfg, function, &l) else {
                continue;
            };
            let Some(step) = match_step(cfg, function, &l, test.slot) else {
                continue;
            };
            let Some(init) = match_init(cfg, function, &dom, &l, test.slot) else {
                continue;
            };
            let Some(trips) = trip_count(init, test.cond, test.limit as i64, step) else {
                continue;
            };
            out.push(InferredBound {
                func: cfg.func,
                func_name: cfg.func_name.clone(),
                header: l.header,
                trips,
            });
        }
    }
    out
}

/// Renders all inferred bounds as annotation text, ready to concatenate
/// with user-provided constraints.
pub fn inferred_annotations(bounds: &[InferredBound]) -> String {
    let mut out = String::new();
    for b in bounds {
        let _ = writeln!(out, "{}", b.to_annotation());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_hw::Machine;

    fn analyzer_for(src: &str, entry: &str) -> (ipet_arch::Program, Machine) {
        (ipet_lang::compile(src, entry).unwrap(), Machine::i960kb())
    }

    #[test]
    fn counted_for_loop_is_inferred_exactly() {
        let (p, m) = analyzer_for(
            "int main() { int i; int s; s = 0; for (i = 0; i < 17; i = i + 1) { s = s + i; } return s; }",
            "main",
        );
        let a = Analyzer::new(&p, m).unwrap();
        let bounds = infer_loop_bounds(&a);
        assert_eq!(bounds.len(), 1);
        assert_eq!(bounds[0].trips, 17);
        // The derived annotation closes the analysis without user input.
        let est = a.analyze(&inferred_annotations(&bounds)).unwrap();
        assert!(est.bound.upper > 0);
    }

    #[test]
    fn step_and_le_variants() {
        let (p, m) = analyzer_for(
            "int main() { int i; int s; s = 0; for (i = 2; i <= 20; i = i + 3) { s = s + 1; } return s; }",
            "main",
        );
        let a = Analyzer::new(&p, m).unwrap();
        let bounds = infer_loop_bounds(&a);
        assert_eq!(bounds.len(), 1);
        // i = 2,5,8,11,14,17,20 -> 7 trips
        assert_eq!(bounds[0].trips, 7);
    }

    #[test]
    fn downward_loop() {
        let (p, m) = analyzer_for(
            "int main() { int i; int s; s = 0; for (i = 10; i > 0; i = i - 2) { s = s + 1; } return s; }",
            "main",
        );
        let a = Analyzer::new(&p, m).unwrap();
        let bounds = infer_loop_bounds(&a);
        assert_eq!(bounds.len(), 1);
        assert_eq!(bounds[0].trips, 5);
    }

    #[test]
    fn zero_trip_loop() {
        let (p, m) = analyzer_for(
            "int main() { int i; int s; s = 0; for (i = 5; i < 5; i = i + 1) { s = s + 1; } return s; }",
            "main",
        );
        let a = Analyzer::new(&p, m).unwrap();
        let bounds = infer_loop_bounds(&a);
        // The loop body is still in the CFG; the bound must be 0.
        assert_eq!(bounds.len(), 1);
        assert_eq!(bounds[0].trips, 0);
    }

    #[test]
    fn data_dependent_loop_is_not_inferred() {
        let (p, m) = analyzer_for(
            "int main(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + 1; } return s; }",
            "main",
        );
        let a = Analyzer::new(&p, m).unwrap();
        assert!(infer_loop_bounds(&a).is_empty(), "limit is a parameter, not a constant");
    }

    #[test]
    fn two_updates_disqualify() {
        let (p, m) = analyzer_for(
            "int main(int n) { int i; i = 0; while (i < 10) { if (n > 0) { i = i + 1; } else { i = i + 2; } } return i; }",
            "main",
        );
        let a = Analyzer::new(&p, m).unwrap();
        assert!(infer_loop_bounds(&a).is_empty());
    }

    #[test]
    fn inference_matches_manual_annotations_on_suite() {
        // For the data-independent benchmarks the inferred trip counts
        // must agree with the hand-written bounds.
        for name in ["matgen", "jpeg_fdct_islow", "recon", "whetstone"] {
            let b = ipet_suite::by_name(name).unwrap();
            let p = b.program().unwrap();
            let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
            let inferred = infer_loop_bounds(&a);
            assert!(!inferred.is_empty(), "{name}: nothing inferred");
            // Every inferred bound reproduces the manual one: analysis with
            // inferred text alone must give the same WCET when it covers
            // all loops.
            let manual = a.analyze(&b.annotations(&p)).unwrap();
            let all_loops: usize = a.loops_needing_bounds().len();
            if inferred.len() == all_loops {
                let auto = a.analyze(&inferred_annotations(&inferred)).unwrap();
                assert_eq!(auto.bound.upper, manual.bound.upper, "{name}");
            }
        }
    }

    #[test]
    fn trip_count_arithmetic() {
        assert_eq!(trip_count(0, Cond::Lt, 10, 1), Some(10));
        assert_eq!(trip_count(0, Cond::Le, 10, 1), Some(11));
        assert_eq!(trip_count(0, Cond::Lt, 10, 3), Some(4));
        assert_eq!(trip_count(10, Cond::Gt, 0, -2), Some(5));
        assert_eq!(trip_count(10, Cond::Ge, 0, -2), Some(6));
        assert_eq!(trip_count(0, Cond::Ne, 10, 2), Some(5));
        assert_eq!(trip_count(0, Cond::Ne, 9, 2), None, "overshoots");
        assert_eq!(trip_count(0, Cond::Lt, 10, -1), None, "diverges");
        assert_eq!(trip_count(5, Cond::Lt, 5, 1), Some(0));
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use crate::estimate::Analyzer;
    use ipet_hw::Machine;

    /// Regression: `i = 0 - 4` compiles to ldc 0; ldc 4; sub; st — the
    /// inference must NOT pick up the stale `ldc 0` past the subtraction
    /// and silently derive a too-small (unsound) trip count.
    #[test]
    fn computed_initialisers_are_not_misread_as_constants() {
        let p = ipet_lang::compile(
            "int main() { int i; int s; s = 0; for (i = 0 - 4; i <= 4; i = i + 1) { s = s + 1; } return s; }",
            "main",
        )
        .unwrap();
        let a = Analyzer::new(&p, Machine::i960kb()).unwrap();
        let bounds = infer_loop_bounds(&a);
        // Either nothing is inferred, or the inferred count is the true 9.
        for b in &bounds {
            assert_eq!(b.trips, 9, "an inferred bound must be exact");
        }
    }
}
