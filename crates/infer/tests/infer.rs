//! End-to-end checks of the inference rules against the paper's
//! benchmark idioms and hand-built corner cases.

use ipet_core::{parse_annotations, Analyzer, Annotations, BoundSource};
use ipet_hw::Machine;
use ipet_infer::{infer_and_merge, InferError, InferMode};
use ipet_lang::{compile, parse_module, Module};

fn build(src: &str, entry: &str) -> (ipet_arch::Program, Module) {
    let program = compile(src, entry).expect("compile");
    let module = parse_module(src).expect("parse");
    (program, module)
}

/// Infers with no user annotations at all and returns the provenance rows.
fn infer_only(src: &str, entry: &str) -> Vec<ipet_core::LoopProvenance> {
    let (program, module) = build(src, entry);
    let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
    let out = infer_and_merge(Some(&module), &analyzer, &Annotations::default(), InferMode::Only)
        .expect("inference");
    out.annotations.provenance
}

fn rule_of(source: &BoundSource) -> &str {
    match source {
        BoundSource::Annotated => "annotated",
        BoundSource::Inferred { rule, .. } | BoundSource::Merged { rule, .. } => rule,
    }
}

#[test]
fn check_data_flag_loop_matches_hand_annotation() {
    // The paper's fig. 2 example: `while (morecheck)` cleared either by a
    // data-dependent hit or by the counter check `if (i >= DATASIZE)`.
    let b = ipet_suite::by_name("check_data").unwrap();
    let rows = infer_only(b.source, b.entry);
    assert_eq!(rows.len(), 1);
    assert_eq!((rows[0].lo, rows[0].hi), (1, 10), "hand annotation is [1, 10]");
    assert_eq!(rule_of(&rows[0].source), "guarded-exit");
}

#[test]
fn matgen_nested_counted_loops_need_no_annotations() {
    let b = ipet_suite::by_name("matgen").unwrap();
    let (program, module) = build(b.source, b.entry);
    let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
    let out = infer_and_merge(Some(&module), &analyzer, &Annotations::default(), InferMode::Only)
        .expect("matgen loops are all counted");
    for p in &out.annotations.provenance {
        assert_eq!((p.lo, p.hi), (20, 20));
        assert_eq!(rule_of(&p.source), "counted");
    }
    assert_eq!(out.counts.inferred, out.counts.total);
    assert_eq!(out.counts.failed, 0);

    // The annotation-free estimate is bit-identical to the annotated one
    // (matgen has no extra functionality constraints).
    assert!(b.extra_annotations.is_empty());
    let annotated = analyzer.analyze(&b.annotations(&program)).unwrap();
    let inferred = analyzer.analyze_parsed(&out.annotations).unwrap();
    assert_eq!(inferred.bound, annotated.bound);
}

#[test]
fn piksrt_inner_loop_falls_back_to_annotation() {
    // The inner insertion loop starts at `i = j - 1` (data-dependent), so
    // no rule may bound it; Merge keeps the hand annotation, while the
    // counted outer loop merges exactly.
    let b = ipet_suite::by_name("piksrt").unwrap();
    let (program, module) = build(b.source, b.entry);
    let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
    let user = parse_annotations(&b.annotations(&program)).unwrap();
    let out =
        infer_and_merge(Some(&module), &analyzer, &user, InferMode::Merge).expect("merge mode");
    assert_eq!(out.counts.total, 2);
    assert_eq!(out.counts.annotated, 2);
    assert_eq!(out.counts.inferred, 1, "only the outer loop is counted");
    assert_eq!(out.counts.tightened, 0);
    assert!(out.disagreements.is_empty());
    let outer = out
        .annotations
        .provenance
        .iter()
        .find(|p| matches!(p.source, BoundSource::Merged { .. }))
        .expect("outer loop merges annotation with inference");
    assert_eq!((outer.lo, outer.hi), (9, 9));

    // Same result as the purely annotated run.
    let annotated = analyzer.analyze(&b.annotations(&program)).unwrap();
    let merged = analyzer.analyze_parsed(&out.annotations).unwrap();
    assert_eq!(merged.bound, annotated.bound);
}

#[test]
fn only_mode_lists_unbounded_loops_by_source_line() {
    let b = ipet_suite::by_name("piksrt").unwrap();
    let (program, module) = build(b.source, b.entry);
    let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
    let err = infer_and_merge(Some(&module), &analyzer, &Annotations::default(), InferMode::Only)
        .expect_err("the inner loop is data-dependent");
    let InferError::Unbounded(loops) = &err;
    assert_eq!(loops.len(), 1);
    assert_eq!(loops[0].func, "piksrt");
    assert!(loops[0].line.is_some(), "mini-C targets carry source lines");
    let msg = err.to_string();
    assert!(msg.contains("piksrt(B"), "names the loop: {msg}");
    assert!(msg.contains("at line"), "cites the source line: {msg}");
}

#[test]
fn do_while_bounds_are_iterations_minus_one() {
    let rows =
        infer_only("int f(int x) { int i = 0; do { i = i + 1; } while (i < 5); return i; }", "f");
    assert_eq!(rows.len(), 1);
    assert_eq!((rows[0].lo, rows[0].hi), (4, 4), "5 iterations, 4 back edges");
    assert_eq!(rule_of(&rows[0].source), "counted");
}

#[test]
fn counted_loop_with_break_keeps_upper_bound_only() {
    let rows = infer_only(
        "int f(int x) {
             int i; int s = 0;
             for (i = 0; i < 12; i = i + 1) { if (x == i) { break; } s = s + i; }
             return s;
         }",
        "f",
    );
    assert_eq!(rows.len(), 1);
    assert_eq!((rows[0].lo, rows[0].hi), (0, 12));
    assert_eq!(rule_of(&rows[0].source), "counted-exit");
}

#[test]
fn conjunction_guard_takes_tightest_conjunct() {
    let rows = infer_only(
        "int f(int x) {
             int i = 0; int n = 0;
             while (i < 8 && n < 3) { i = i + 1; }
             return i;
         }",
        "f",
    );
    assert_eq!(rows.len(), 1);
    assert_eq!((rows[0].lo, rows[0].hi), (0, 8));
    assert_eq!(rule_of(&rows[0].source), "guard-and");
}

#[test]
fn conditionally_stepped_counter_gets_monotonic_upper_bound() {
    let rows = infer_only(
        "int f(int x) {
             int i = 0;
             while (i < 10) { if (x > 0) { i = i + 1; } else { i = i + 2; } }
             return i;
         }",
        "f",
    );
    assert_eq!(rows.len(), 1);
    assert_eq!((rows[0].lo, rows[0].hi), (0, 10), "slowest step bounds the count");
    assert_eq!(rule_of(&rows[0].source), "monotonic");
}

#[test]
fn merge_tightens_a_loose_annotation() {
    let src = "int f(int x) { int i; int s = 0;
               for (i = 0; i < 20; i = i + 1) { s = s + i; } return s; }";
    let (program, module) = build(src, "f");
    let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
    let user = parse_annotations("fn f { loop x2 in [0, 100]; }").unwrap();
    let out = infer_and_merge(Some(&module), &analyzer, &user, InferMode::Merge).unwrap();
    assert_eq!(out.counts.tightened, 1);
    let p = &out.annotations.provenance[0];
    assert_eq!((p.lo, p.hi), (20, 20));
    match &p.source {
        BoundSource::Merged { annotated, inferred, .. } => {
            assert_eq!(*annotated, (0, 100));
            assert_eq!(*inferred, (20, 20));
        }
        other => panic!("expected merged provenance, got {other:?}"),
    }
}

#[test]
fn disjoint_annotation_wins_and_is_reported() {
    let src = "int f(int x) { int i; int s = 0;
               for (i = 0; i < 20; i = i + 1) { s = s + i; } return s; }";
    let (program, module) = build(src, "f");
    let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
    let user = parse_annotations("fn f { loop x2 in [2, 3]; }").unwrap();
    let out = infer_and_merge(Some(&module), &analyzer, &user, InferMode::Merge).unwrap();
    assert_eq!(out.disagreements.len(), 1);
    assert_eq!(out.disagreements[0].annotated, (2, 3));
    assert_eq!(out.disagreements[0].inferred, (20, 20));
    let p = &out.annotations.provenance[0];
    assert_eq!((p.lo, p.hi), (2, 3), "the annotation is kept");
    assert_eq!(p.source, BoundSource::Annotated);
    assert_eq!(out.counts.tightened, 0);
}

#[test]
fn prefer_annot_only_fills_gaps() {
    let b = ipet_suite::by_name("piksrt").unwrap();
    let (program, module) = build(b.source, b.entry);
    let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
    let user = parse_annotations(&b.annotations(&program)).unwrap();
    let out = infer_and_merge(Some(&module), &analyzer, &user, InferMode::PreferAnnot).unwrap();
    assert!(out.annotations.provenance.iter().all(|p| p.source == BoundSource::Annotated));
    assert_eq!(out.counts.annotated, 2);
    assert_eq!(out.counts.inferred, 0);
}

#[test]
fn provenance_reaches_the_rendered_report() {
    let b = ipet_suite::by_name("matgen").unwrap();
    let (program, module) = build(b.source, b.entry);
    let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
    let out = infer_and_merge(Some(&module), &analyzer, &Annotations::default(), InferMode::Only)
        .unwrap();
    let est = analyzer.analyze_parsed(&out.annotations).unwrap();
    let report = est.render();
    assert!(report.contains("loop bounds:"), "report: {report}");
    assert!(report.contains("inferred:counted"), "report: {report}");
}

#[test]
fn machine_rule_covers_targets_without_an_ast() {
    // Passing no module forces the machine-level trip counter to carry
    // the whole inference, as it does for `.s` targets.
    let b = ipet_suite::by_name("matgen").unwrap();
    let program = compile(b.source, b.entry).unwrap();
    let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
    let out = infer_and_merge(None, &analyzer, &Annotations::default(), InferMode::Only)
        .expect("machine counting handles constant loops");
    for p in &out.annotations.provenance {
        assert_eq!((p.lo, p.hi), (20, 20));
        assert_eq!(rule_of(&p.source), "machine-counted");
    }
}
