//! AST-level loop-bound rules.
//!
//! Each rule abstracts one loop-counter idiom into a back-edge interval.
//! The abstraction is a small difference-constraint domain in the spirit of
//! Sinn-Zuleger-Veith: a loop counter is tracked as `init + k·step` along
//! the paths of one iteration, and the guard relation is solved for the
//! number of completed iterations. Everything here is *sound-or-silent*:
//! when a loop does not match a rule exactly (data-dependent initial value,
//! writes from a nested loop, a `continue` that can skip the increment, an
//! overflowing computation), the rule returns `None` and the caller falls
//! back to annotations or the machine-level trip counter.
//!
//! Mini-C has no pointers and no recursion, so a call can never modify a
//! caller's locals — counters and exit flags that are local variables are
//! only changed by the assignments this module can see. Only locals are
//! therefore tracked; globals are treated as unknown everywhere.

use ipet_lang::{BinOp, Expr, ExprKind, FuncDecl, Item, Module, Stmt, UnOp};
use std::collections::{BTreeMap, BTreeSet};

/// Upper bound on the number of distinct acyclic paths enumerated through
/// one loop body before a rule gives up.
const MAX_PATHS: usize = 64;

/// Magnitude cap on counter values, guard constants and steps. Mini-C
/// integers are 32-bit at runtime; keeping every abstract quantity at or
/// below 2^29 guarantees the concrete counter stays strictly inside the
/// i32 range (threshold plus one overshooting step is at most 2^30), so
/// the no-wraparound assumption behind the trip formulas always holds.
const VAL_LIMIT: i64 = 1 << 29;

/// Within the wraparound-safe magnitude range.
fn small(v: i64) -> bool {
    v.checked_abs().is_some_and(|a| a <= VAL_LIMIT)
}

/// A bound derived for one AST loop, in back-edge-traversal units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AstBound {
    pub lo: i64,
    pub hi: i64,
    pub rule: &'static str,
    pub line: u32,
}

/// One AST loop in pre-order: its bound (if any rule applied) and the
/// number of loops nested anywhere below it (for structure matching
/// against the CFG's natural-loop forest).
#[derive(Debug)]
pub(crate) struct AstLoop {
    pub bound: Option<AstBound>,
    pub descendants: usize,
}

/// Runs the rules over one function, returning its loops in pre-order.
pub(crate) fn function_loops(module: &Module, func: &FuncDecl) -> Vec<AstLoop> {
    let consts = module_consts(module);
    let locals = collect_locals(func);
    let mut env: Env = BTreeMap::new();
    let mut out = Vec::new();
    walk_stmts(&func.body, &mut env, &Cx { consts: &consts, locals: &locals }, &mut out);
    out
}

/// Compile-time constants (`const NAME = v;`).
fn module_consts(module: &Module) -> BTreeMap<String, i64> {
    let mut m = BTreeMap::new();
    for item in &module.items {
        if let Item::Const { name, value, .. } = item {
            m.insert(name.clone(), *value);
        }
    }
    m
}

/// All local scalar names of a function: parameters plus every `int`
/// declaration at any depth.
fn collect_locals(func: &FuncDecl) -> BTreeSet<String> {
    fn scan(stmts: &[Stmt], out: &mut BTreeSet<String>) {
        for s in stmts {
            match s {
                Stmt::Decl { name, .. } => {
                    out.insert(name.clone());
                }
                Stmt::If { then_branch, else_branch, .. } => {
                    scan(then_branch, out);
                    scan(else_branch, out);
                }
                Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => scan(body, out),
                Stmt::For { init, step, body, .. } => {
                    if let Some(i) = init {
                        scan(std::slice::from_ref(i), out);
                    }
                    if let Some(st) = step {
                        scan(std::slice::from_ref(st), out);
                    }
                    scan(body, out);
                }
                _ => {}
            }
        }
    }
    let mut out: BTreeSet<String> = func.params.iter().cloned().collect();
    scan(&func.body, &mut out);
    out
}

/// Shared read-only context for the walk.
struct Cx<'a> {
    consts: &'a BTreeMap<String, i64>,
    locals: &'a BTreeSet<String>,
}

/// Flow-sensitive constant environment over locals; absent = unknown.
type Env = BTreeMap<String, i64>;

/// Constant-folds an expression using compile-time constants and, when
/// `env` is supplied, flow-sensitive local values. All arithmetic is
/// checked; overflow makes the fold fail rather than wrap.
fn fold(e: &Expr, cx: &Cx<'_>, env: Option<&Env>) -> Option<i64> {
    match &e.kind {
        ExprKind::Num(n) => Some(*n),
        ExprKind::Var(name) => {
            cx.consts.get(name).copied().or_else(|| env.and_then(|v| v.get(name).copied()))
        }
        ExprKind::Unary(UnOp::Neg, inner) => fold(inner, cx, env)?.checked_neg(),
        ExprKind::Unary(UnOp::Not, inner) => Some(i64::from(fold(inner, cx, env)? == 0)),
        ExprKind::Binary(op, a, b) => {
            let (a, b) = (fold(a, cx, env)?, fold(b, cx, env)?);
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div if b != 0 => a.checked_div(b),
                BinOp::Rem if b != 0 => a.checked_rem(b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Applies one `Decl`/`Assign` to the environment (locals only).
fn apply_stmt(s: &Stmt, env: &mut Env, cx: &Cx<'_>) {
    match s {
        Stmt::Decl { name, init, .. } if cx.locals.contains(name) => {
            match init.as_ref().and_then(|e| fold(e, cx, Some(env))) {
                Some(v) => {
                    env.insert(name.clone(), v);
                }
                None => {
                    env.remove(name);
                }
            }
        }
        Stmt::Assign { name, value, .. } if cx.locals.contains(name) => {
            match fold(value, cx, Some(env)) {
                Some(v) => {
                    env.insert(name.clone(), v);
                }
                None => {
                    env.remove(name);
                }
            }
        }
        _ => {}
    }
}

/// Every scalar name assigned (or declared) anywhere inside a statement,
/// including `for` init/step clauses.
fn assigned_vars(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::Decl { name, .. } | Stmt::Assign { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::If { then_branch, else_branch, .. } => {
                assigned_vars(then_branch, out);
                assigned_vars(else_branch, out);
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => assigned_vars(body, out),
            Stmt::For { init, step, body, .. } => {
                if let Some(i) = init {
                    assigned_vars(std::slice::from_ref(i), out);
                }
                if let Some(st) = step {
                    assigned_vars(std::slice::from_ref(st), out);
                }
                assigned_vars(body, out);
            }
            _ => {}
        }
    }
}

/// Walks a statement list maintaining the constant environment and
/// collecting loop results in pre-order.
fn walk_stmts(stmts: &[Stmt], env: &mut Env, cx: &Cx<'_>, out: &mut Vec<AstLoop>) {
    for s in stmts {
        match s {
            Stmt::Decl { .. } | Stmt::Assign { .. } => apply_stmt(s, env, cx),
            Stmt::If { then_branch, else_branch, .. } => {
                let mut e1 = env.clone();
                let mut e2 = env.clone();
                walk_stmts(then_branch, &mut e1, cx, out);
                walk_stmts(else_branch, &mut e2, cx, out);
                // Keep only bindings the branches agree on.
                env.clear();
                for (k, v) in &e1 {
                    if e2.get(k) == Some(v) {
                        env.insert(k.clone(), *v);
                    }
                }
            }
            Stmt::While { .. } | Stmt::DoWhile { .. } | Stmt::For { .. } => {
                // A `for` initialiser runs exactly once, before the guard.
                if let Stmt::For { init: Some(init), .. } = s {
                    apply_stmt(init, env, cx);
                }
                let idx = out.len();
                out.push(AstLoop { bound: analyze_loop(s, env, cx), descendants: 0 });
                // Inside and after the loop, everything it assigns is
                // unknown (iteration count is what we are estimating).
                let mut assigned = BTreeSet::new();
                let body = match s {
                    Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                        assigned_vars(body, &mut assigned);
                        body
                    }
                    Stmt::For { step, body, .. } => {
                        assigned_vars(body, &mut assigned);
                        if let Some(st) = step {
                            assigned_vars(std::slice::from_ref(st), &mut assigned);
                        }
                        body
                    }
                    _ => unreachable!(),
                };
                for name in &assigned {
                    env.remove(name);
                }
                // Nested loops see the havocked environment: their
                // initial state on an arbitrary outer iteration.
                let mut body_env = env.clone();
                walk_stmts(body, &mut body_env, cx, out);
                out[idx].descendants = out.len() - idx - 1;
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Guard normalisation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NRel {
    Lt,
    Le,
    Gt,
    Ge,
    Ne,
    Eq,
}

impl NRel {
    fn flip(self) -> NRel {
        match self {
            NRel::Lt => NRel::Gt,
            NRel::Le => NRel::Ge,
            NRel::Gt => NRel::Lt,
            NRel::Ge => NRel::Le,
            NRel::Ne => NRel::Ne,
            NRel::Eq => NRel::Eq,
        }
    }
}

/// Splits a guard into `&&`-conjuncts.
fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match &e.kind {
        ExprKind::Binary(BinOp::LAnd, a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        _ => vec![e],
    }
}

/// Normalises a relational conjunct to `var REL k` with `k` a
/// compile-time constant. The bound on `k` must not depend on locals —
/// a variable limit could be rewritten inside the loop.
fn normalize_rel(e: &Expr, cx: &Cx<'_>) -> Option<(String, NRel, i64)> {
    let ExprKind::Binary(op, a, b) = &e.kind else { return None };
    let rel = match op {
        BinOp::Lt => NRel::Lt,
        BinOp::Le => NRel::Le,
        BinOp::Gt => NRel::Gt,
        BinOp::Ge => NRel::Ge,
        BinOp::Ne => NRel::Ne,
        BinOp::Eq => NRel::Eq,
        _ => return None,
    };
    match (&a.kind, &b.kind) {
        (ExprKind::Var(c), _) if cx.locals.contains(c) => {
            fold(b, cx, None).map(|k| (c.clone(), rel, k))
        }
        (_, ExprKind::Var(c)) if cx.locals.contains(c) => {
            fold(a, cx, None).map(|k| (c.clone(), rel.flip(), k))
        }
        _ => None,
    }
}

/// Is the guard a bare truthiness test of a local flag (`v` / `v != 0`)?
fn flag_of(e: &Expr, cx: &Cx<'_>) -> Option<String> {
    match &e.kind {
        ExprKind::Var(v) if cx.locals.contains(v) => Some(v.clone()),
        ExprKind::Binary(BinOp::Ne, a, b) => match (&a.kind, &b.kind) {
            (ExprKind::Var(v), ExprKind::Num(0)) | (ExprKind::Num(0), ExprKind::Var(v))
                if cx.locals.contains(v) =>
            {
                Some(v.clone())
            }
            _ => None,
        },
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Trip counting
// ---------------------------------------------------------------------------

/// `ceil(a / b)` for `a >= 0`, `b > 0`, checked.
fn ceil_div(a: i64, b: i64) -> Option<i64> {
    Some(a.checked_add(b - 1)? / b)
}

/// Iterations of a top-tested loop: the counter starts at `init`, moves by
/// the signed `step` once per iteration, and the body runs while
/// `counter REL k` holds. `None` when the rule cannot prove termination
/// (wrong direction) or the arithmetic overflows.
fn trips_top_tested(init: i64, rel: NRel, k: i64, step: i64) -> Option<i64> {
    if !small(init) || !small(k) || !small(step) {
        return None;
    }
    if step > 0 {
        match rel {
            NRel::Lt if init >= k => Some(0),
            NRel::Lt => ceil_div(k.checked_sub(init)?, step),
            NRel::Le if init > k => Some(0),
            NRel::Le => ceil_div(k.checked_sub(init)?.checked_add(1)?, step),
            NRel::Ne if init == k => Some(0),
            NRel::Ne => {
                let dist = k.checked_sub(init)?;
                (dist > 0 && dist % step == 0).then_some(dist / step)
            }
            NRel::Eq => Some(i64::from(init == k)),
            NRel::Gt | NRel::Ge => None,
        }
    } else if step < 0 {
        let step = step.checked_neg()?;
        match rel {
            NRel::Gt if init <= k => Some(0),
            NRel::Gt => ceil_div(init.checked_sub(k)?, step),
            NRel::Ge if init < k => Some(0),
            NRel::Ge => ceil_div(init.checked_sub(k)?.checked_add(1)?, step),
            NRel::Ne if init == k => Some(0),
            NRel::Ne => {
                let dist = init.checked_sub(k)?;
                (dist > 0 && dist % step == 0).then_some(dist / step)
            }
            NRel::Eq => Some(i64::from(init == k)),
            NRel::Lt | NRel::Le => None,
        }
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Body scans
// ---------------------------------------------------------------------------

/// If `s` is `c = c + k` / `c = c - k` / `c = k + c` with a constant `k`,
/// returns `(c, signed step)`.
fn as_increment<'a>(s: &'a Stmt, cx: &Cx<'_>) -> Option<(&'a str, i64)> {
    let Stmt::Assign { name, value, .. } = s else { return None };
    if !cx.locals.contains(name) {
        return None;
    }
    let ExprKind::Binary(op, a, b) = &value.kind else { return None };
    let step = match (op, &a.kind, &b.kind) {
        (BinOp::Add, ExprKind::Var(v), _) if v == name => fold(b, cx, None)?,
        (BinOp::Add, _, ExprKind::Var(v)) if v == name => fold(a, cx, None)?,
        (BinOp::Sub, ExprKind::Var(v), _) if v == name => fold(b, cx, None)?.checked_neg()?,
        _ => return None,
    };
    Some((name.as_str(), step))
}

/// Collects every write (assignment or shadowing declaration) to `name`,
/// recording whether any sits inside a nested loop.
fn writes_to<'a>(stmts: &'a [Stmt], name: &str, in_loop: bool, out: &mut Vec<(&'a Stmt, bool)>) {
    for s in stmts {
        match s {
            Stmt::Decl { name: n, .. } | Stmt::Assign { name: n, .. } if n == name => {
                out.push((s, in_loop));
            }
            Stmt::If { then_branch, else_branch, .. } => {
                writes_to(then_branch, name, in_loop, out);
                writes_to(else_branch, name, in_loop, out);
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                writes_to(body, name, true, out);
            }
            Stmt::For { init, step, body, .. } => {
                if let Some(i) = init {
                    writes_to(std::slice::from_ref(i), name, true, out);
                }
                if let Some(st) = step {
                    writes_to(std::slice::from_ref(st), name, true, out);
                }
                writes_to(body, name, true, out);
            }
            _ => {}
        }
    }
}

/// `break` at this loop's own level (not inside a nested loop, where it
/// would bind to that loop instead).
fn has_break_at_level(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Break { .. } => true,
        Stmt::If { then_branch, else_branch, .. } => {
            has_break_at_level(then_branch) || has_break_at_level(else_branch)
        }
        _ => false,
    })
}

/// `continue` at this loop's own level.
fn has_continue_at_level(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Continue { .. } => true,
        Stmt::If { then_branch, else_branch, .. } => {
            has_continue_at_level(then_branch) || has_continue_at_level(else_branch)
        }
        _ => false,
    })
}

/// `return` anywhere, including inside nested loops (it exits the whole
/// function, so it is an early exit for every enclosing loop).
fn has_return_deep(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Return { .. } => true,
        Stmt::If { then_branch, else_branch, .. } => {
            has_return_deep(then_branch) || has_return_deep(else_branch)
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => has_return_deep(body),
        Stmt::For { body, .. } => has_return_deep(body),
        _ => false,
    })
}

// ---------------------------------------------------------------------------
// Path enumeration
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum PathEnd {
    /// Runs to the end of the body (or `continue`s): takes the back edge.
    Continues,
    /// `break`/`return`: leaves without a back edge.
    Exits,
}

/// Abstract state of one acyclic path through a loop body, tracking a
/// single counter and (optionally) an exit flag.
#[derive(Clone)]
struct PathState {
    end: Option<PathEnd>,
    /// Net signed counter movement along the path so far.
    inc: i64,
    /// Counter movement since the guarded clearing check was last
    /// evaluated; must be 0 at path end for the check to have seen the
    /// final counter value.
    since_check: i64,
    /// The path assigned 0 to the exit flag.
    cleared: bool,
    /// Checked arithmetic failed somewhere on the path.
    poisoned: bool,
}

struct PathCx<'a> {
    cx: &'a Cx<'a>,
    counter: &'a str,
    /// Exit flag (guarded-exit rule only).
    flag: Option<&'a str>,
    /// The clearing `if` statement, identified by address.
    check: Option<&'a Stmt>,
}

/// Enumerates acyclic paths through `stmts`, mutating `states` in place.
/// Returns `false` (give up) when the path count exceeds [`MAX_PATHS`].
/// Nested loops are skipped — callers must verify beforehand that neither
/// the counter nor the flag is written inside one.
fn walk_paths(stmts: &[Stmt], states: &mut Vec<PathState>, pcx: &PathCx<'_>) -> bool {
    for s in stmts {
        if states.len() > MAX_PATHS {
            return false;
        }
        match s {
            Stmt::Assign { name, value, .. } => {
                if name == pcx.counter {
                    // Shape was pre-verified; extract the step again.
                    let step = as_increment(s, pcx.cx).map(|(_, st)| st);
                    for st in states.iter_mut().filter(|st| st.end.is_none()) {
                        match step.and_then(|d| {
                            Some((st.inc.checked_add(d)?, st.since_check.checked_add(d)?))
                        }) {
                            Some((inc, since)) => {
                                st.inc = inc;
                                st.since_check = since;
                            }
                            None => st.poisoned = true,
                        }
                    }
                } else if Some(name.as_str()) == pcx.flag {
                    let v = fold(value, pcx.cx, None);
                    for st in states.iter_mut().filter(|st| st.end.is_none()) {
                        if v == Some(0) {
                            st.cleared = true;
                        } else {
                            st.poisoned = true;
                        }
                    }
                }
            }
            Stmt::If { then_branch, else_branch, .. } => {
                if pcx.check.is_some_and(|c| std::ptr::eq(c, s)) {
                    for st in states.iter_mut().filter(|st| st.end.is_none()) {
                        st.since_check = 0;
                    }
                }
                let mut then_states: Vec<PathState> =
                    states.iter().filter(|st| st.end.is_none()).cloned().collect();
                let mut else_states: Vec<PathState> = then_states.clone();
                if !walk_paths(then_branch, &mut then_states, pcx)
                    || !walk_paths(else_branch, &mut else_states, pcx)
                {
                    return false;
                }
                states.retain(|st| st.end.is_some());
                states.extend(then_states);
                states.extend(else_states);
            }
            Stmt::Break { .. } | Stmt::Return { .. } => {
                for st in states.iter_mut().filter(|st| st.end.is_none()) {
                    st.end = Some(PathEnd::Exits);
                }
            }
            Stmt::Continue { .. } => {
                for st in states.iter_mut().filter(|st| st.end.is_none()) {
                    st.end = Some(PathEnd::Continues);
                }
            }
            _ => {}
        }
    }
    true
}

/// Runs path enumeration over a loop body and returns the final states.
fn body_paths(body: &[Stmt], pcx: &PathCx<'_>) -> Option<Vec<PathState>> {
    let mut states =
        vec![PathState { end: None, inc: 0, since_check: 0, cleared: false, poisoned: false }];
    if !walk_paths(body, &mut states, pcx) {
        return None;
    }
    for st in &mut states {
        if st.end.is_none() {
            st.end = Some(PathEnd::Continues);
        }
    }
    if states.iter().any(|st| st.poisoned) {
        return None;
    }
    Some(states)
}

// ---------------------------------------------------------------------------
// The rules
// ---------------------------------------------------------------------------

/// Tries every rule on one loop statement, most precise first.
fn analyze_loop(s: &Stmt, env: &Env, cx: &Cx<'_>) -> Option<AstBound> {
    let line = s.line() as u32;
    let (cond, body, step, is_do) = match s {
        Stmt::While { cond, body, .. } => (Some(cond), body.as_slice(), None, false),
        Stmt::DoWhile { body, cond, .. } => (Some(cond), body.as_slice(), None, true),
        Stmt::For { cond, step, body, .. } => {
            (cond.as_ref(), body.as_slice(), step.as_deref(), false)
        }
        _ => return None,
    };
    let cond = cond?;
    counted_rule(cond, body, step, is_do, env, cx, line)
        .or_else(|| {
            if is_do || step.is_some() {
                None
            } else {
                guarded_exit_rule(cond, body, env, cx, line)
            }
        })
        .or_else(|| monotonic_rule(cond, body, step, is_do, env, cx, line))
}

/// Exact trip counting: constant initial value, constant-bound guard,
/// exactly one unconditional constant step per iteration.
fn counted_rule(
    cond: &Expr,
    body: &[Stmt],
    for_step: Option<&Stmt>,
    is_do: bool,
    env: &Env,
    cx: &Cx<'_>,
    line: u32,
) -> Option<AstBound> {
    let conj = conjuncts(cond);
    let mut bounds: Vec<i64> = Vec::new();
    let mut sole_exact = false;
    for c in &conj {
        let Some((var, rel, k)) = normalize_rel(c, cx) else { continue };
        let init = match env.get(&var) {
            Some(v) => *v,
            None => continue,
        };
        let mut writes = Vec::new();
        writes_to(body, &var, false, &mut writes);
        // Where does the step come from?
        let (step, body_writes_ok, unconditional) = match for_step {
            Some(st) => match as_increment(st, cx) {
                Some((name, s)) if name == var => (s, writes.is_empty(), true),
                // The `for` step updates some other variable; the guard
                // variable would have to move inside the body instead.
                _ => match single_top_level_increment(body, &var, cx) {
                    Some(s) => (s, writes.len() == 1, !has_continue_at_level(body)),
                    None => continue,
                },
            },
            None => match single_top_level_increment(body, &var, cx) {
                Some(s) => (s, writes.len() == 1, !has_continue_at_level(body)),
                None => continue,
            },
        };
        if !body_writes_ok || !unconditional {
            continue;
        }
        let Some(trips) = trips_top_tested(init, rel, k, step) else { continue };
        let back = if is_do { trips.max(1) - 1 } else { trips };
        bounds.push(back);
        if conj.len() == 1 {
            sole_exact = true;
        }
    }
    let hi = *bounds.iter().min()?;
    let early_exit = has_break_at_level(body) || has_return_deep(body);
    let exact = sole_exact && !early_exit;
    let (lo, rule) = if exact {
        (hi, "counted")
    } else if conj.len() > 1 {
        (0, "guard-and")
    } else {
        (0, "counted-exit")
    };
    Some(AstBound { lo, hi, rule, line })
}

/// Exactly one top-level (hence unconditional) increment of `var` in the
/// statement list.
fn single_top_level_increment(body: &[Stmt], var: &str, cx: &Cx<'_>) -> Option<i64> {
    let mut found = None;
    for s in body {
        if let Some((name, step)) = as_increment(s, cx) {
            if name == var {
                if found.is_some() {
                    return None;
                }
                found = Some(step);
            }
        }
    }
    found
}

/// The flag-controlled search loop of `check_data` (paper fig. 2):
/// `while (v)` where `v` is only ever cleared to 0 inside the body, and a
/// counter `c` grows monotonically toward a guarded clearing check
/// `if (c REL K) v = 0;`. Every path that keeps looping must move the
/// counter and then evaluate the check, so the loop completes at most
/// `ceil((K' - init) / s_min)` iterations even when the data-dependent
/// clears never fire.
fn guarded_exit_rule(
    cond: &Expr,
    body: &[Stmt],
    env: &Env,
    cx: &Cx<'_>,
    line: u32,
) -> Option<AstBound> {
    let flag = flag_of(cond, cx)?;
    // Every write to the flag must be a constant 0 outside nested loops.
    let mut fwrites = Vec::new();
    writes_to(body, &flag, false, &mut fwrites);
    if fwrites.is_empty() {
        return None;
    }
    for (w, in_loop) in &fwrites {
        let Stmt::Assign { value, .. } = w else { return None };
        if *in_loop || fold(value, cx, None) != Some(0) {
            return None;
        }
    }
    // Candidate clearing checks: `if (c REL K) { ... v = 0; ... }` with an
    // unconditional clear in the then-branch.
    let mut candidates = Vec::new();
    collect_clear_checks(body, &flag, cx, &mut candidates);
    let mut best: Option<i64> = None;
    for (check, var, rel, k) in candidates {
        if let Some(hi) = guarded_hi(body, check, &var, rel, k, &flag, env, cx) {
            best = Some(best.map_or(hi, |b| b.min(hi)));
        }
    }
    let hi = best?;
    let lo = i64::from(
        env.get(&flag).is_some_and(|v| *v != 0)
            && !has_break_at_level(body)
            && !has_return_deep(body),
    );
    Some(AstBound { lo, hi: hi.max(lo), rule: "guarded-exit", line })
}

/// Finds `if (c REL K)` statements whose then-branch unconditionally
/// assigns the flag (rel oriented so the counter moves toward `K`).
fn collect_clear_checks<'a>(
    stmts: &'a [Stmt],
    flag: &str,
    cx: &Cx<'_>,
    out: &mut Vec<(&'a Stmt, String, NRel, i64)>,
) {
    for s in stmts {
        if let Stmt::If { cond, then_branch, else_branch, .. } = s {
            if let Some((var, rel, k)) = normalize_rel(cond, cx) {
                if matches!(rel, NRel::Ge | NRel::Gt | NRel::Le | NRel::Lt)
                    && then_branch
                        .iter()
                        .any(|t| matches!(t, Stmt::Assign { name, .. } if name == flag))
                {
                    out.push((s, var, rel, k));
                }
            }
            collect_clear_checks(then_branch, flag, cx, out);
            collect_clear_checks(else_branch, flag, cx, out);
        }
    }
}

/// Upper bound for one candidate counter of the guarded-exit rule.
#[allow(clippy::too_many_arguments)]
fn guarded_hi(
    body: &[Stmt],
    check: &Stmt,
    var: &str,
    rel: NRel,
    k: i64,
    flag: &str,
    env: &Env,
    cx: &Cx<'_>,
) -> Option<i64> {
    if !cx.locals.contains(var) {
        return None;
    }
    let init = *env.get(var)?;
    // All counter writes must be constant steps, outside nested loops,
    // moving toward the bound.
    let dir: i64 = match rel {
        NRel::Ge | NRel::Gt => 1,
        NRel::Le | NRel::Lt => -1,
        _ => return None,
    };
    let mut cwrites = Vec::new();
    writes_to(body, var, false, &mut cwrites);
    if cwrites.is_empty() {
        return None;
    }
    if !small(init) || !small(k) {
        return None;
    }
    for (w, in_loop) in &cwrites {
        let step = as_increment(w, cx).map(|(_, s)| s)?;
        if *in_loop || !small(step) || step * dir <= 0 {
            return None;
        }
    }
    let states =
        body_paths(body, &PathCx { cx, counter: var, flag: Some(flag), check: Some(check) })?;
    // Every path that takes the back edge without clearing the flag must
    // have moved the counter toward the bound and then evaluated the
    // check with the final counter value.
    let mut guaranteed: Option<i64> = None;
    for st in &states {
        if st.end == Some(PathEnd::Continues) && !st.cleared {
            if !small(st.inc) || st.inc * dir <= 0 || st.since_check != 0 {
                return None;
            }
            let moved = st.inc * dir;
            guaranteed = Some(guaranteed.map_or(moved, |g| g.min(moved)));
        }
    }
    // All paths clear or exit: at most one completed iteration.
    let Some(s_min) = guaranteed else { return Some(1) };
    // Effective threshold: first counter value that satisfies `c REL K`.
    let k_eff = match rel {
        NRel::Ge | NRel::Le => k,
        NRel::Gt => k.checked_add(1)?,
        NRel::Lt => k.checked_sub(1)?,
        _ => return None,
    };
    let dist = k_eff.checked_sub(init)?.checked_mul(dir)?;
    if dist <= 0 {
        // Already past the threshold: the first completed iteration clears.
        return Some(1);
    }
    ceil_div(dist, s_min)
}

/// Monotonic-counter upper bound: every continuing path moves the guard
/// variable toward the bound by at least some constant, so the loop
/// completes at most `trips(init, rel, K, s_min)` iterations. The lower
/// bound is 0 (any path may exit early or the guard may fail sooner).
fn monotonic_rule(
    cond: &Expr,
    body: &[Stmt],
    for_step: Option<&Stmt>,
    is_do: bool,
    env: &Env,
    cx: &Cx<'_>,
    line: u32,
) -> Option<AstBound> {
    let conj = conjuncts(cond);
    let mut best: Option<i64> = None;
    for c in &conj {
        let Some((var, rel, k)) = normalize_rel(c, cx) else { continue };
        let Some(&init) = env.get(&var) else { continue };
        let dir: i64 = match rel {
            NRel::Lt | NRel::Le => 1,
            NRel::Gt | NRel::Ge => -1,
            _ => continue,
        };
        let step_inc = for_step.and_then(|st| match as_increment(st, cx) {
            Some((name, s)) if name == var => Some(s),
            _ => None,
        });
        let mut writes = Vec::new();
        writes_to(body, &var, false, &mut writes);
        let mut ok = true;
        for (w, in_loop) in &writes {
            match as_increment(w, cx) {
                Some((_, s)) if !*in_loop && small(s) && s * dir > 0 => {}
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || (writes.is_empty() && step_inc.is_none()) {
            continue;
        }
        if step_inc.is_none() && has_continue_at_level(body) {
            // `continue` may skip every body increment; only a `for` step
            // (which still runs on `continue`) keeps the guarantee.
            continue;
        }
        let Some(states) = body_paths(body, &PathCx { cx, counter: &var, flag: None, check: None })
        else {
            continue;
        };
        let mut s_min: Option<i64> = None;
        let mut all_paths_move = true;
        for st in &states {
            if st.end == Some(PathEnd::Exits) {
                continue;
            }
            let moved = st.inc.checked_add(step_inc.unwrap_or(0)).and_then(|m| m.checked_mul(dir));
            match moved {
                Some(m) if m > 0 && small(m) => s_min = Some(s_min.map_or(m, |g| g.min(m))),
                _ => {
                    all_paths_move = false;
                    break;
                }
            }
        }
        let Some(s_min) = s_min else { continue };
        if !all_paths_move {
            continue;
        }
        let Some(trips) = trips_top_tested(init, rel, k, s_min * dir) else { continue };
        let back = if is_do { trips.max(1) - 1 } else { trips };
        best = Some(best.map_or(back, |b| b.min(back)));
    }
    best.map(|hi| AstBound { lo: 0, hi, rule: "monotonic", line })
}
