//! # ipet-infer
//!
//! Automatic loop-bound inference with provenance-tracked constraint
//! emission.
//!
//! The paper requires the user to annotate every loop with an iteration
//! interval before the ILP can be bounded (§III: "the user provides loop
//! bounds as functionality constraints"). This crate derives those same
//! constraint rows mechanically: it walks the mini-C AST alongside the
//! CFG's natural-loop forest, abstracts each loop counter into a
//! difference constraint (initial value, per-iteration step, guard
//! relation), and emits `loop xH in [lo, hi]` statements identical to the
//! hand-written ones — each tagged with a [`BoundSource`] provenance
//! record that flows through the analysis plan into the per-routine
//! report and the trace JSON.
//!
//! The contract is *sound-or-silent*: a rule either proves its interval
//! or stays quiet. When a loop defeats the abstraction the caller falls
//! back to the user's annotation ([`InferMode::Merge`] /
//! [`InferMode::PreferAnnot`]) or fails with a diagnostic listing the
//! unbounded loops by source line ([`InferMode::Only`]).
//!
//! Two independent inference layers feed the merge:
//!
//! * **AST rules** (the `rules` module) — `counted` (exact trip counts for
//!   constant-stepped counters), `guarded-exit` (flag-controlled search
//!   loops like the paper's `check_data`), `guard-and` (conjunction
//!   guards take the tightest conjunct) and `monotonic` (upper bounds
//!   from counters that provably move toward the guard every iteration).
//! * **Machine rule** — [`ipet_core::infer_loop_bounds`]'s trip counting
//!   over the compiled instruction stream (`machine-counted`), which also
//!   covers `.s` targets that never had an AST.

use ipet_core::{Analyzer, Annotations, BoundSource, LoopProvenance, Ref, RefKind, Stmt};
use ipet_lang::Module;
use std::collections::BTreeMap;
use std::fmt;

mod rules;

/// How inferred bounds combine with user annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferMode {
    /// Use both: where a loop has an annotation and an inferred bound,
    /// take the intersection (the tighter of each end) and report
    /// disagreements. The default for `--infer`.
    #[default]
    Merge,
    /// Use only inferred bounds; loops the abstraction cannot bound make
    /// the analysis fail with a diagnostic (`--infer=only`).
    Only,
    /// Annotations win; inferred bounds only fill unannotated loops
    /// (`--infer=prefer-annot`).
    PreferAnnot,
}

impl InferMode {
    /// Parses the `--infer[=MODE]` / serve-request spelling.
    pub fn parse(s: &str) -> Option<InferMode> {
        match s {
            "" | "merge" => Some(InferMode::Merge),
            "only" => Some(InferMode::Only),
            "prefer-annot" => Some(InferMode::PreferAnnot),
            _ => None,
        }
    }
}

/// A loop no rule could bound, reported by [`InferMode::Only`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnboundedLoop {
    /// Function name.
    pub func: String,
    /// 0-based header block index (`x{header+1}` in annotation syntax).
    pub header: usize,
    /// Source line of the loop header, when the target carries line info.
    pub line: Option<u32>,
}

impl fmt::Display for UnboundedLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(B{})", self.func, self.header + 1)?;
        if let Some(l) = self.line {
            write!(f, " at line {l}")?;
        }
        Ok(())
    }
}

/// An annotation and an inferred bound with an empty intersection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disagreement {
    /// Function name.
    pub func: String,
    /// 0-based header block index.
    pub header: usize,
    /// The user's `[lo, hi]`.
    pub annotated: (i64, i64),
    /// The abstraction's `[lo, hi]`.
    pub inferred: (i64, i64),
    /// Rule that produced the inferred interval.
    pub rule: String,
    /// Source line of the loop, when known.
    pub line: Option<u32>,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(B{}): inferred [{}, {}] ({}) disagrees with annotation [{}, {}]; keeping the \
             annotation",
            self.func,
            self.header + 1,
            self.inferred.0,
            self.inferred.1,
            self.rule,
            self.annotated.0,
            self.annotated.1
        )?;
        if let Some(l) = self.line {
            write!(f, " (line {l})")?;
        }
        Ok(())
    }
}

/// Outcome tallies, mirrored into the `infer.loops.*` trace counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferCounts {
    /// Loops needing bounds across the program.
    pub total: u64,
    /// Loops whose final bound uses an inferred interval (alone or merged).
    pub inferred: u64,
    /// Loops whose final bound uses an annotation (alone or merged).
    pub annotated: u64,
    /// Loops left unbounded by both sources.
    pub failed: u64,
    /// Merged loops where inference strictly tightened the annotation.
    pub tightened: u64,
}

/// Result of [`infer_and_merge`].
#[derive(Debug, Clone)]
pub struct InferOutcome {
    /// The merged annotation set: the user's statements with loop bounds
    /// replaced by the merged intervals, provenance rows attached.
    pub annotations: Annotations,
    /// Annotation/inference conflicts (annotation kept).
    pub disagreements: Vec<Disagreement>,
    /// Outcome tallies.
    pub counts: InferCounts,
}

/// Inference failure (only produced by [`InferMode::Only`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// Some loops could not be bounded by any rule.
    Unbounded(Vec<UnboundedLoop>),
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::Unbounded(loops) => {
                writeln!(f, "loop-bound inference failed; no rule could bound:")?;
                for l in loops {
                    writeln!(f, "  {l}")?;
                }
                write!(f, "hint: annotate these loops, or use --infer (merge) to combine both")
            }
        }
    }
}

impl std::error::Error for InferError {}

/// One inferred interval, pre-merge.
#[derive(Debug, Clone)]
struct Inferred {
    lo: i64,
    hi: i64,
    rule: String,
    line: u32,
}

/// Runs loop-bound inference over the analyzer's program and merges the
/// result with the user's annotations according to `mode`.
///
/// `module` is the mini-C AST when the target came through the language
/// frontend; pass `None` for `.s` targets (the machine-level rule still
/// applies). Annotation `loop` statements that scope into callees via
/// `.fN` paths are passed through untouched — only whole-function bounds
/// participate in the merge.
///
/// Emits the `infer.loops.{total,inferred,annotated,failed,tightened}`
/// trace counters exactly once per call.
///
/// # Errors
///
/// [`InferError::Unbounded`] in [`InferMode::Only`] when any loop defeats
/// every rule; the error lists each such loop with its source line.
pub fn infer_and_merge(
    module: Option<&Module>,
    analyzer: &Analyzer<'_>,
    user: &Annotations,
    mode: InferMode,
) -> Result<InferOutcome, InferError> {
    let program = analyzer.program();
    let loops = analyzer.loops_needing_bounds();

    // Source line of a loop header, for provenance and diagnostics.
    let src_line = |func: &str, header: usize| -> Option<u32> {
        let (fid, _) = program.function_by_name(func)?;
        let cfg = &analyzer.instances().cfgs[fid.0];
        program.functions[fid.0].src_line(cfg.blocks[header].start)
    };

    // Layer 1: AST rules, mapped onto CFG headers per function.
    let mut inferred: BTreeMap<(String, usize), Inferred> = BTreeMap::new();
    if let Some(module) = module {
        let mut done: Vec<&str> = Vec::new();
        for (fname, _) in &loops {
            if done.contains(&fname.as_str()) {
                continue;
            }
            done.push(fname);
            let Some(decl) = module.functions().find(|f| &f.name == fname) else { continue };
            let Some((fid, _)) = program.function_by_name(fname) else { continue };
            let cfg = &analyzer.instances().cfgs[fid.0];
            let cfg_loops = cfg.loops();
            let ast_loops = rules::function_loops(module, decl);
            if ast_loops.len() != cfg_loops.len() || !nesting_matches(&ast_loops, &cfg_loops) {
                // Optimisation reshaped the loop forest (or the frontend
                // and CFG disagree); stay silent rather than guess.
                continue;
            }
            for (al, cl) in ast_loops.iter().zip(&cfg_loops) {
                if let Some(b) = &al.bound {
                    inferred.insert(
                        (fname.clone(), cl.header.0),
                        Inferred { lo: b.lo, hi: b.hi, rule: b.rule.to_string(), line: b.line },
                    );
                }
            }
        }
    }

    // Layer 2: machine-level trip counting fills the remaining gaps.
    for mb in ipet_core::infer_loop_bounds(analyzer) {
        let key = (mb.func_name.clone(), mb.header.0);
        let trips = mb.trips as i64;
        inferred.entry(key).or_insert_with(|| Inferred {
            lo: trips,
            hi: trips,
            rule: "machine-counted".to_string(),
            line: src_line(&mb.func_name, mb.header.0).unwrap_or(0),
        });
    }

    // User annotations: whole-function loop bounds participate in the
    // merge; everything else (constraints, `.fN`-scoped bounds) passes
    // through untouched.
    let mut annotated: BTreeMap<(String, usize), (i64, i64)> = BTreeMap::new();
    let known =
        |fname: &String, header: usize| loops.iter().any(|(f, h)| f == fname && h.0 == header);
    for (fname, stmts) in &user.functions {
        for s in stmts {
            if let Stmt::Loop { header, lo, hi } = s {
                if header.kind == RefKind::X
                    && header.path.is_empty()
                    && header.index >= 1
                    && known(fname, header.index - 1)
                {
                    let e = annotated
                        .entry((fname.clone(), header.index - 1))
                        .or_insert((i64::MIN, i64::MAX));
                    // Multiple annotations on one loop are all ILP rows;
                    // their conjunction is the intersection.
                    e.0 = e.0.max(*lo);
                    e.1 = e.1.min(*hi);
                }
            }
        }
    }

    let passthrough = |fname: &String, s: &Stmt| -> bool {
        match s {
            Stmt::Loop { header, .. } => {
                header.kind != RefKind::X
                    || !header.path.is_empty()
                    || header.index < 1
                    || !known(fname, header.index - 1)
            }
            _ => true,
        }
    };

    // Merge, in the deterministic order of `loops_needing_bounds`.
    let mut counts = InferCounts::default();
    let mut disagreements = Vec::new();
    let mut unbounded = Vec::new();
    let mut rows: Vec<(String, Stmt, LoopProvenance)> = Vec::new();
    let push_row = |rows: &mut Vec<(String, Stmt, LoopProvenance)>,
                    func: &str,
                    header: usize,
                    lo: i64,
                    hi: i64,
                    source: BoundSource| {
        let stmt = Stmt::Loop {
            header: Ref { kind: RefKind::X, index: header + 1, path: Vec::new() },
            lo,
            hi,
        };
        let prov = LoopProvenance { func: func.to_string(), header, lo, hi, source };
        rows.push((func.to_string(), stmt, prov));
    };

    for (fname, hdr) in &loops {
        counts.total += 1;
        let key = (fname.clone(), hdr.0);
        let ann = annotated.get(&key).copied();
        let inf = inferred.get(&key).cloned();
        match mode {
            InferMode::Only => match inf {
                Some(i) => {
                    counts.inferred += 1;
                    push_row(
                        &mut rows,
                        fname,
                        hdr.0,
                        i.lo,
                        i.hi,
                        BoundSource::Inferred { rule: i.rule, line: i.line },
                    );
                }
                None => {
                    counts.failed += 1;
                    unbounded.push(UnboundedLoop {
                        func: fname.clone(),
                        header: hdr.0,
                        line: src_line(fname, hdr.0),
                    });
                }
            },
            InferMode::PreferAnnot => match (ann, inf) {
                (Some((lo, hi)), _) => {
                    counts.annotated += 1;
                    push_row(&mut rows, fname, hdr.0, lo, hi, BoundSource::Annotated);
                }
                (None, Some(i)) => {
                    counts.inferred += 1;
                    push_row(
                        &mut rows,
                        fname,
                        hdr.0,
                        i.lo,
                        i.hi,
                        BoundSource::Inferred { rule: i.rule, line: i.line },
                    );
                }
                (None, None) => counts.failed += 1,
            },
            InferMode::Merge => match (ann, inf) {
                (Some(a), Some(i)) => {
                    let lo = a.0.max(i.lo);
                    let hi = a.1.min(i.hi);
                    if lo > hi {
                        // Disjoint: one of the two is wrong. Keep the
                        // user's interval (the conservative choice for a
                        // tool that must never silently override an
                        // annotation) and surface the conflict.
                        counts.annotated += 1;
                        disagreements.push(Disagreement {
                            func: fname.clone(),
                            header: hdr.0,
                            annotated: a,
                            inferred: (i.lo, i.hi),
                            rule: i.rule,
                            line: (i.line != 0)
                                .then_some(i.line)
                                .or_else(|| src_line(fname, hdr.0)),
                        });
                        push_row(&mut rows, fname, hdr.0, a.0, a.1, BoundSource::Annotated);
                    } else {
                        counts.annotated += 1;
                        counts.inferred += 1;
                        if lo > a.0 || hi < a.1 {
                            counts.tightened += 1;
                        }
                        push_row(
                            &mut rows,
                            fname,
                            hdr.0,
                            lo,
                            hi,
                            BoundSource::Merged {
                                rule: i.rule,
                                line: i.line,
                                annotated: a,
                                inferred: (i.lo, i.hi),
                            },
                        );
                    }
                }
                (Some((lo, hi)), None) => {
                    counts.annotated += 1;
                    push_row(&mut rows, fname, hdr.0, lo, hi, BoundSource::Annotated);
                }
                (None, Some(i)) => {
                    counts.inferred += 1;
                    push_row(
                        &mut rows,
                        fname,
                        hdr.0,
                        i.lo,
                        i.hi,
                        BoundSource::Inferred { rule: i.rule, line: i.line },
                    );
                }
                (None, None) => counts.failed += 1,
            },
        }
    }

    ipet_trace::counter("infer.loops.total", counts.total);
    ipet_trace::counter("infer.loops.inferred", counts.inferred);
    ipet_trace::counter("infer.loops.annotated", counts.annotated);
    ipet_trace::counter("infer.loops.failed", counts.failed);
    ipet_trace::counter("infer.loops.tightened", counts.tightened);

    if mode == InferMode::Only && !unbounded.is_empty() {
        return Err(InferError::Unbounded(unbounded));
    }

    // Assemble: user statements minus the replaced loop bounds, then the
    // merged rows grouped per function in first-appearance order.
    let mut functions: Vec<(String, Vec<Stmt>)> = Vec::new();
    for (fname, stmts) in &user.functions {
        let kept: Vec<Stmt> = stmts.iter().filter(|s| passthrough(fname, s)).cloned().collect();
        if !kept.is_empty() {
            functions.push((fname.clone(), kept));
        }
    }
    let mut provenance = Vec::new();
    for (fname, stmt, prov) in rows {
        match functions.iter_mut().rev().find(|(n, _)| n == &fname) {
            Some((_, stmts)) => stmts.push(stmt),
            None => functions.push((fname, vec![stmt])),
        }
        provenance.push(prov);
    }

    Ok(InferOutcome { annotations: Annotations { functions, provenance }, disagreements, counts })
}

/// Checks that the AST loop forest (pre-order with descendant counts) has
/// the same nesting structure as the CFG's natural loops (sorted by
/// header): loop `j` nests in loop `i` in one iff it does in the other.
fn nesting_matches(ast: &[rules::AstLoop], cfg: &[ipet_cfg::LoopInfo]) -> bool {
    for i in 0..ast.len() {
        for j in (i + 1)..ast.len() {
            let ast_nested = j <= i + ast[i].descendants;
            if ast_nested != cfg[i].contains(cfg[j].header) {
                return false;
            }
        }
    }
    true
}
