//! Warm-started pooled solving must be observationally identical to cold
//! solving: same estimates, same per-set reports, same certificates, at
//! any worker count. Warm starting is a pure optimization — these tests
//! pin down that it never shows through.

use ipet_core::{parse_annotations, AnalysisBudget, AnalysisPlan, Analyzer, BoundQuality};
use ipet_hw::Machine;
use ipet_pool::SolvePool;

/// Multi-set programs (disjunctive annotations) exercise the delta path;
/// piksrt (single set) exercises the empty-delta / bare-base path.
const BENCHES: &[&str] = &["piksrt", "check_data", "dhry"];

fn plans_for(names: &[&str], budget: &AnalysisBudget, warm: bool) -> Vec<AnalysisPlan> {
    names
        .iter()
        .map(|name| {
            let bench = ipet_suite::by_name(name).expect("bundled benchmark");
            let program = bench.program().expect("compiles");
            let analyzer =
                Analyzer::new(&program, Machine::i960kb()).expect("analyzer").with_warm_start(warm);
            let anns = parse_annotations(&bench.annotations(&program)).expect("annotations");
            analyzer.plan(&anns, budget).expect("plan")
        })
        .collect()
}

#[test]
fn warm_pooled_equals_cold_pooled_at_any_worker_count() {
    let budget = AnalysisBudget::default();
    let warm_plans = plans_for(BENCHES, &budget, true);
    let cold_plans = plans_for(BENCHES, &budget, false);
    assert!(warm_plans.iter().all(|p| p.warm_start()));
    assert!(cold_plans.iter().all(|p| !p.warm_start()));

    let cold = SolvePool::new(1).run_plans(&cold_plans, &budget.solve);
    for workers in [1usize, 8] {
        let warm = SolvePool::new(workers).run_plans(&warm_plans, &budget.solve);
        for ((w, c), name) in warm.estimates.iter().zip(&cold.estimates).zip(BENCHES) {
            let (w, c) = (w.as_ref().expect("warm ok"), c.as_ref().expect("cold ok"));
            assert_eq!(w, c, "{name}: warm estimate differs from cold at --jobs {workers}");
            assert_eq!(w.quality, BoundQuality::Exact, "{name}");
        }
    }
}

#[test]
fn warm_pooled_equals_serial_analyzer() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget, true);
    let batch = SolvePool::new(4).run_plans(&plans, &budget.solve);
    for (name, pooled) in BENCHES.iter().zip(&batch.estimates) {
        let bench = ipet_suite::by_name(name).unwrap();
        let program = bench.program().unwrap();
        let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
        let serial = analyzer.analyze(&bench.annotations(&program)).expect("serial");
        assert_eq!(pooled.as_ref().expect("pooled"), &serial, "{name}");
    }
}

#[test]
fn warm_audited_runs_certify_everything() {
    let budget = AnalysisBudget::default();
    let warm_plans = plans_for(BENCHES, &budget, true);
    let cold_plans = plans_for(BENCHES, &budget, false);
    let warm = SolvePool::new(4).run_plans_audited(&warm_plans, &budget.solve);
    let cold = SolvePool::new(4).run_plans_audited(&cold_plans, &budget.solve);
    for ((w, c), name) in warm.results.iter().zip(&cold.results).zip(BENCHES) {
        let (we, wr) = w.as_ref().expect("warm ok");
        let (ce, cr) = c.as_ref().expect("cold ok");
        assert!(wr.all_certified(), "{name}: warm run has uncertified sets");
        assert_eq!(we, ce, "{name}: audited warm estimate differs from cold");
        assert_eq!(wr.certified(), cr.certified(), "{name}");
        assert_eq!(wr.rejected(), cr.rejected(), "{name}");
    }
}

#[test]
fn warm_respects_tick_deadlines_identically() {
    // A deadline disqualifies warm starting (shards must gate degradation,
    // and the base solve would be unbudgeted work); a warm-enabled plan
    // under a deadline must behave exactly like a cold one.
    let mut budget = AnalysisBudget::default();
    budget.solve.deadline_ticks = Some(40);
    let warm_plans = plans_for(BENCHES, &budget, true);
    let cold_plans = plans_for(BENCHES, &budget, false);
    let warm = SolvePool::new(3).run_plans(&warm_plans, &budget.solve);
    let cold = SolvePool::new(3).run_plans(&cold_plans, &budget.solve);
    for ((w, c), name) in warm.estimates.iter().zip(&cold.estimates).zip(BENCHES) {
        match (w, c) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "{name}"),
            (Err(x), Err(y)) => assert_eq!(format!("{x:?}"), format!("{y:?}"), "{name}"),
            _ => panic!("{name}: Ok/Err disagreement between warm and cold under deadline"),
        }
    }
    assert_eq!(warm.report.total_ticks, cold.report.total_ticks, "deadline runs must not diverge");
}
