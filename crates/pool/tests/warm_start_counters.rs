//! Exact counter accounting for the pool's warm-start machinery. Kept in
//! its own integration binary (single test) because the trace recorder is
//! process-global: counters from concurrently running tests would bleed
//! into the assertions.

use ipet_core::{parse_annotations, AnalysisBudget, AnalysisPlan, Analyzer};
use ipet_hw::Machine;
use ipet_pool::SolvePool;

fn plan_for(name: &str, budget: &AnalysisBudget) -> AnalysisPlan {
    let bench = ipet_suite::by_name(name).expect("bundled benchmark");
    let program = bench.program().expect("compiles");
    let analyzer = Analyzer::new(&program, Machine::i960kb()).expect("analyzer");
    let anns = parse_annotations(&bench.annotations(&program)).expect("annotations");
    analyzer.plan(&anns, budget).expect("plan")
}

fn counter(doc: &ipet_trace::TraceDoc, name: &str) -> u64 {
    doc.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn base_solves_are_shared_and_warm_hits_save_pivots() {
    let recorder = ipet_trace::install();
    let budget = AnalysisBudget::default();
    // check_data carries disjunctive annotations: several delta sets per
    // base, so warm starts have something to amortize.
    let plans = vec![plan_for("check_data", &budget), plan_for("check_data", &budget)];
    assert!(plans[0].num_sets() > 1, "test premise: multi-set program");

    recorder.reset();
    let pool = SolvePool::new(4);
    let first = pool.run_plans(&plans, &budget.solve);
    let doc = ipet_trace::snapshot().expect("recorder installed");

    // Two plans, two bases each (worst + best), but the plans are
    // identical: the second plan's bases replay the first's snapshots.
    assert_eq!(counter(&doc, "lp.warm.base_solves"), 2, "one solve per distinct base");
    assert_eq!(counter(&doc, "pool.cache.base_hits"), 2, "second plan reuses both bases");
    assert!(counter(&doc, "lp.warm.hits") > 0, "multi-set jobs must warm-start");
    assert!(counter(&doc, "lp.warm.pivots_saved") > 0, "warm starts must save pivots");
    assert_eq!(counter(&doc, "lp.warm.misses"), 0, "this suite warm-starts cleanly");

    // A second batch on the same pool answers every job from the solve
    // cache, and the base snapshots replay too — no new base solves.
    recorder.reset();
    let second = pool.run_plans(&plans, &budget.solve);
    let doc = ipet_trace::snapshot().expect("recorder installed");
    assert_eq!(second.report.misses, 0, "second batch is fully cached");
    assert_eq!(counter(&doc, "lp.warm.base_solves"), 0);
    assert_eq!(counter(&doc, "pool.cache.base_hits"), 4, "all four base lookups replay");
    for (a, b) in first.estimates.iter().zip(&second.estimates) {
        assert_eq!(a.as_ref().expect("ok"), b.as_ref().expect("ok"));
    }
}
