//! Crash isolation: a panicking solver worker never takes the batch down.
//!
//! A transient injected panic is caught, retried once on a fresh thread,
//! and the batch result is bit-identical to an unfaulted run. A sticky
//! panic (one that fires on the retry too) quarantines the job as
//! exhausted, degrading the affected bound to `Partial` quality instead of
//! crashing — and does so identically at any worker count.

use ipet_core::{parse_annotations, AnalysisBudget, AnalysisPlan, Analyzer, BoundQuality};
use ipet_hw::Machine;
use ipet_lp::SolverFaults;
use ipet_pool::SolvePool;

const BENCHES: &[&str] = &["piksrt", "check_data", "dhry"];

fn plans_for(names: &[&str], budget: &AnalysisBudget) -> Vec<AnalysisPlan> {
    names
        .iter()
        .map(|name| {
            let bench = ipet_suite::by_name(name).expect("bundled benchmark");
            let program = bench.program().expect("compiles");
            let analyzer = Analyzer::new(&program, Machine::i960kb()).expect("analyzer");
            let anns = parse_annotations(&bench.annotations(&program)).expect("annotations");
            analyzer.plan(&anns, budget).expect("plan")
        })
        .collect()
}

/// Panics do leave the default panic-hook message on stderr; keep the test
/// output readable by silencing the hook for the faulted runs. The hook is
/// process-global, so faulted runs are serialized under one lock.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = HOOK_LOCK.lock().expect("hook lock");
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

#[test]
fn transient_panic_is_retried_and_changes_nothing() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    let clean = SolvePool::new(3).run_plans(&plans, &budget.solve);
    // `panic_at(0)` with a per-representative template: every
    // representative's *first* attempt panics, every retry succeeds.
    let faulted = quietly(|| {
        SolvePool::with_faults(3, SolverFaults::panic_at(0)).run_plans(&plans, &budget.solve)
    });

    for ((a, b), name) in clean.estimates.iter().zip(&faulted.estimates).zip(BENCHES) {
        let (a, b) = (a.as_ref().expect("clean"), b.as_ref().expect("faulted"));
        assert_eq!(a, b, "{name}: retried run must be bit-identical to the clean run");
        assert_eq!(b.quality, BoundQuality::Exact, "{name}");
    }
    assert_eq!(clean.report.hits, faulted.report.hits);
    assert_eq!(clean.report.misses, faulted.report.misses);
}

#[test]
fn sticky_panic_quarantines_and_degrades_instead_of_crashing() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    // Sticky: the retry panics too, so every representative is quarantined
    // and every set is covered by the common-constraint relaxation.
    let batch = quietly(|| {
        SolvePool::with_faults(2, SolverFaults::panic_always_at(0)).run_plans(&plans, &budget.solve)
    });
    for (est, name) in batch.estimates.iter().zip(BENCHES) {
        let est = est.as_ref().expect("degraded, not crashed");
        assert_eq!(est.quality, BoundQuality::Partial, "{name}");
        assert!(est.bound.lower <= est.bound.upper, "{name}");
    }
}

#[test]
fn quarantine_outcome_is_identical_at_any_worker_count() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    let runs: Vec<_> = [1usize, 8]
        .iter()
        .map(|&w| {
            quietly(|| {
                SolvePool::with_faults(w, SolverFaults::panic_always_at(0))
                    .run_plans(&plans, &budget.solve)
            })
        })
        .collect();
    let a: Vec<_> = runs[0].estimates.iter().map(|e| e.as_ref().expect("ok")).collect();
    let b: Vec<_> = runs[1].estimates.iter().map(|e| e.as_ref().expect("ok")).collect();
    assert_eq!(a, b, "quarantine must be deterministic across --jobs 1 and --jobs 8");
}

#[test]
fn quarantined_results_are_not_cached() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(&["piksrt"], &budget);
    let pool = quietly(|| {
        let pool = SolvePool::with_faults(2, SolverFaults::panic_always_at(0));
        let crashed = pool.run_plans(&plans, &budget.solve);
        assert_eq!(crashed.estimates[0].as_ref().expect("degraded").quality, BoundQuality::Partial);
        pool
    });
    // The quarantined `Exhausted` markers must not have been inserted: a
    // second batch on the same pool probes the cache and must miss (and
    // then crash-degrade again under the sticky fault — it must NOT replay
    // its way back to a phantom Exact result).
    let again = quietly(|| pool.run_plans(&plans, &budget.solve));
    assert_eq!(again.report.hits, 0, "no quarantined entry may be replayed");
    assert_eq!(again.estimates[0].as_ref().expect("ok").quality, BoundQuality::Partial);
}

#[test]
fn audited_pooled_run_certifies_every_exact_set() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    let pool = SolvePool::new(4);
    let plain = pool.run_plans(&plans, &budget.solve);
    let audited = SolvePool::new(4).run_plans_audited(&plans, &budget.solve);

    for ((plain, audited), name) in plain.estimates.iter().zip(&audited.results).zip(BENCHES) {
        let plain = plain.as_ref().expect("ok");
        let (est, report) = audited.as_ref().expect("ok");
        assert_eq!(plain, est, "{name}: auditing must not change the estimate");
        assert_eq!(report.rejected(), 0, "{name}: every verdict must certify");
        assert!(report.all_certified(), "{name}");
    }
}
