//! External cancellation: a batch run under a cancelled [`CancelToken`]
//! degrades to certified-safe bounds instead of wedging, cancelled results
//! never enter the caches, and a token that is never cancelled changes
//! nothing at all.

use ipet_core::{parse_annotations, AnalysisBudget, AnalysisPlan, Analyzer, BoundQuality};
use ipet_hw::Machine;
use ipet_lp::CancelToken;
use ipet_pool::SolvePool;

const BENCHES: &[&str] = &["piksrt", "check_data", "dhry"];

fn plans_for(names: &[&str], budget: &AnalysisBudget) -> Vec<AnalysisPlan> {
    names
        .iter()
        .map(|name| {
            let bench = ipet_suite::by_name(name).expect("bundled benchmark");
            let program = bench.program().expect("compiles");
            let analyzer = Analyzer::new(&program, Machine::i960kb()).expect("analyzer");
            let anns = parse_annotations(&bench.annotations(&program)).expect("annotations");
            analyzer.plan(&anns, budget).expect("plan")
        })
        .collect()
}

#[test]
fn uncancelled_token_changes_nothing() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    let plain = SolvePool::new(3).run_plans(&plans, &budget.solve);
    let token = CancelToken::new();
    let tokened = SolvePool::new(3).run_plans_cancellable(&plans, &budget.solve, &token);
    for ((a, b), name) in plain.estimates.iter().zip(&tokened.estimates).zip(BENCHES) {
        let (a, b) = (a.as_ref().expect("ok"), b.as_ref().expect("ok"));
        assert_eq!(a, b, "{name}: an uncancelled token must be inert");
        assert_eq!(b.quality, BoundQuality::Exact, "{name}");
    }
    assert_eq!(plain.report.hits, tokened.report.hits);
    assert_eq!(plain.report.misses, tokened.report.misses);
}

#[test]
fn pre_cancelled_batch_degrades_safely_and_promptly() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    let token = CancelToken::new();
    token.cancel();
    let pool = SolvePool::new(3);
    let batch = pool.run_plans_cancellable(&plans, &budget.solve, &token);
    for (est, name) in batch.estimates.iter().zip(BENCHES) {
        let est = est.as_ref().expect("degraded, not crashed or wedged");
        assert_ne!(est.quality, BoundQuality::Exact, "{name}: cancelled solve cannot be exact");
        assert!(est.bound.lower <= est.bound.upper, "{name}: bound must stay well-formed");
    }
}

#[test]
fn cancelled_results_are_not_cached() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(&["piksrt"], &budget);
    let pool = SolvePool::new(2);

    let token = CancelToken::new();
    token.cancel();
    let cancelled = pool.run_plans_cancellable(&plans, &budget.solve, &token);
    assert_ne!(cancelled.estimates[0].as_ref().expect("ok").quality, BoundQuality::Exact);

    // A fresh run on the same pool must miss the cache (nothing from the
    // cancelled batch may have been inserted) and then produce the true
    // exact answer, identical to a never-cancelled pool.
    let fresh = pool.run_plans(&plans, &budget.solve);
    assert_eq!(fresh.report.hits, 0, "no cancelled entry may be replayed");
    let est = fresh.estimates[0].as_ref().expect("ok");
    assert_eq!(est.quality, BoundQuality::Exact);
    let reference = SolvePool::new(2).run_plans(&plans, &budget.solve);
    assert_eq!(est, reference.estimates[0].as_ref().expect("ok"));
}

#[test]
fn cancelled_bound_covers_the_exact_bound() {
    // Safety under cancellation: the degraded upper bound must still cover
    // the true WCET (it comes from the common-constraint relaxation, which
    // is always a sound over-approximation).
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    let exact = SolvePool::new(2).run_plans(&plans, &budget.solve);
    let token = CancelToken::new();
    token.cancel();
    let cancelled = SolvePool::new(2).run_plans_cancellable(&plans, &budget.solve, &token);
    for ((e, c), name) in exact.estimates.iter().zip(&cancelled.estimates).zip(BENCHES) {
        let (e, c) = (e.as_ref().expect("ok"), c.as_ref().expect("ok"));
        assert!(
            c.bound.upper >= e.bound.upper,
            "{name}: cancelled upper bound {} must cover exact {}",
            c.bound.upper,
            e.bound.upper
        );
    }
}

#[test]
fn audited_cancellable_run_still_degrades_safely() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(&["piksrt"], &budget);
    let token = CancelToken::new();
    token.cancel();
    let batch = SolvePool::new(2).run_plans_audited_cancellable(&plans, &budget.solve, &token);
    let (est, report) = batch.results[0].as_ref().expect("ok");
    assert_ne!(est.quality, BoundQuality::Exact);
    assert_eq!(report.rejected(), 0, "nothing certifiable may be rejected");
}

#[test]
fn mid_flight_cancellation_terminates_the_batch() {
    // Cancel from another thread while the batch runs. Whatever the race
    // outcome, the batch must return (promptness is the property under
    // test; the 60s guard below turns a wedge into a failure), every
    // estimate must be well-formed, and exact answers must match the
    // reference exactly.
    let budget = AnalysisBudget::default();
    let plans = plans_for(&["dhry", "fullsearch", "whetstone", "des"], &budget);
    let reference = SolvePool::new(2).run_plans(&plans, &budget.solve);

    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            token.cancel();
        })
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let runner = std::thread::spawn(move || {
        let pool = SolvePool::new(2);
        let batch = pool.run_plans_cancellable(&plans, &budget.solve, &token);
        let _ = tx.send(batch);
    });
    let batch = rx
        .recv_timeout(std::time::Duration::from_secs(60))
        .expect("cancelled batch must terminate promptly, not wedge");
    canceller.join().expect("canceller");
    runner.join().expect("runner");

    for (est, reference) in batch.estimates.iter().zip(&reference.estimates) {
        let (est, reference) = (est.as_ref().expect("ok"), reference.as_ref().expect("ok"));
        assert!(est.bound.lower <= est.bound.upper);
        if est.quality == BoundQuality::Exact {
            assert_eq!(est, reference, "an exact answer under cancellation is the true answer");
        } else {
            assert!(est.bound.upper >= reference.bound.upper, "degraded bound must stay safe");
        }
    }
}
