//! Persistent-store tier on real benchmarks: a second *process* (modeled
//! here as a second pool with a fresh in-memory cache) replays certified
//! solves from disk bit-identically, and any damage to the file degrades
//! to cold solves with the same bounds.

use ipet_core::{parse_annotations, AnalysisBudget, AnalysisPlan, Analyzer};
use ipet_hw::Machine;
use ipet_pool::SolvePool;
use ipet_store::{Store, StoreMode};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const BENCHES: &[&str] = &["piksrt", "check_data", "dhry"];

fn scratch(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("ipet-pool-store-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

fn plans_for(names: &[&str], budget: &AnalysisBudget) -> Vec<AnalysisPlan> {
    names
        .iter()
        .map(|name| {
            let bench = ipet_suite::by_name(name).expect("bundled benchmark");
            let program = bench.program().expect("compiles");
            let analyzer = Analyzer::new(&program, Machine::i960kb()).expect("analyzer");
            let anns = parse_annotations(&bench.annotations(&program)).expect("annotations");
            analyzer.plan(&anns, budget).expect("plan")
        })
        .collect()
}

#[test]
fn second_process_replays_from_disk_bit_identically() {
    let dir = scratch("replay");
    let path = dir.join("solves.store");
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);

    // "Process" 1: cold solves, fed into the store, flushed to disk.
    let cold = {
        let store = Arc::new(Store::open(&path));
        assert_eq!(store.mode(), StoreMode::ReadWrite);
        let pool = SolvePool::new(2).with_store(Arc::clone(&store));
        let batch = pool.run_plans(&plans, &budget.solve);
        assert!(batch.report.misses > 0, "first run must solve fresh");
        assert_eq!(store.stats().hits, 0);
        store.flush().expect("flush");
        batch
    };
    assert!(path.exists());

    // "Process" 2: fresh pool, fresh in-memory cache — every answer must
    // come from the store, and must equal the cold run exactly.
    let store = Arc::new(Store::open(&path));
    assert!(store.stats().loaded > 0, "entries persisted");
    assert_eq!(store.stats().quarantined, 0);
    let pool = SolvePool::new(2).with_store(Arc::clone(&store));
    let warm = pool.run_plans(&plans, &budget.solve);
    assert_eq!(warm.report.misses, 0, "warm run must be answered by the store");
    assert!(store.stats().hits > 0);
    for ((a, b), name) in cold.estimates.iter().zip(&warm.estimates).zip(BENCHES) {
        let (a, b) = (a.as_ref().expect("ok"), b.as_ref().expect("ok"));
        assert_eq!(a, b, "{name}: store replay differs from cold solve");
    }
}

#[test]
fn corrupted_store_degrades_to_cold_solves_with_identical_bounds() {
    let dir = scratch("corrupt");
    let path = dir.join("solves.store");
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);

    let baseline = {
        let store = Arc::new(Store::open(&path));
        let pool = SolvePool::new(2).with_store(Arc::clone(&store));
        let batch = pool.run_plans(&plans, &budget.solve);
        store.flush().expect("flush");
        batch
    };

    // Flip one bit in every record's payload region.
    let mut bytes = std::fs::read(&path).expect("read store");
    let step = (bytes.len() / 16).max(1);
    let mut i = 24; // past the header and the first record header
    while i < bytes.len() {
        bytes[i] ^= 0x10;
        i += step;
    }
    std::fs::write(&path, &bytes).expect("corrupt store");

    let store = Arc::new(Store::open(&path));
    assert!(store.stats().quarantined > 0, "damage must be quarantined");
    let pool = SolvePool::new(2).with_store(Arc::clone(&store));
    let recovered = pool.run_plans(&plans, &budget.solve);
    for ((a, b), name) in baseline.estimates.iter().zip(&recovered.estimates).zip(BENCHES) {
        let (a, b) = (a.as_ref().expect("ok"), b.as_ref().expect("ok"));
        assert_eq!(a, b, "{name}: recovery from corruption changed a bound");
    }
    // And the recovery run repairs the store: a subsequent flush rewrites
    // clean records that replay again.
    store.flush().expect("repair flush");
    let store2 = Arc::new(Store::open(&path));
    assert_eq!(store2.stats().quarantined, 0, "flush must rewrite clean records");
    assert!(store2.stats().loaded > 0);
}

#[test]
fn changed_annotations_invalidate_stale_entries() {
    let dir = scratch("invalidate");
    let path = dir.join("solves.store");
    let budget = AnalysisBudget::default();

    let bench = ipet_suite::by_name("piksrt").expect("bundled benchmark");
    let program = bench.program().expect("compiles");
    let analyzer = Analyzer::new(&program, Machine::i960kb()).expect("analyzer");
    let anns_a = parse_annotations(&bench.annotations(&program)).expect("annotations");

    {
        let store = Arc::new(Store::open(&path));
        let pool = SolvePool::new(1).with_store(Arc::clone(&store));
        let plan = analyzer.plan(&anns_a, &budget).expect("plan");
        let _ = pool.run_plans(std::slice::from_ref(&plan), &budget.solve);
        store.flush().expect("flush");
        assert!(!store.is_empty());
    }

    // Same program, different loop bound: the invalidation hash changes,
    // so the persisted entries must be dropped, not replayed or kept.
    let text = bench.annotations(&program).replace("[0, 9]", "[0, 7]");
    let anns_b = parse_annotations(&text).expect("modified annotations");
    assert_ne!(anns_a, anns_b, "test premise: annotations changed");
    let store = Arc::new(Store::open(&path));
    let loaded = store.stats().loaded;
    assert!(loaded > 0);
    let pool = SolvePool::new(1).with_store(Arc::clone(&store));
    let plan = analyzer.plan(&anns_b, &budget).expect("plan");
    let batch = pool.run_plans(std::slice::from_ref(&plan), &budget.solve);
    assert!(batch.estimates[0].is_ok());
    assert_eq!(store.stats().hits, 0, "stale entries must not replay");
    assert!(store.stats().invalidated > 0, "stale entries must be dropped");
}
