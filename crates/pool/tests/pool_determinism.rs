//! Pool-level guarantees on real benchmarks: pooled results equal the
//! serial analyzer, worker count never changes anything observable, and
//! cached replay reproduces bounds and `BoundQuality` exactly.

use ipet_core::{parse_annotations, AnalysisBudget, AnalysisPlan, Analyzer, BoundQuality};
use ipet_hw::Machine;
use ipet_pool::{CacheOutcome, SolvePool};

/// Benchmarks with different set counts: piksrt (1 set), check_data
/// (disjunctions), dhry (8 sets, 3 after pruning).
const BENCHES: &[&str] = &["piksrt", "check_data", "dhry"];

fn plans_for(names: &[&str], budget: &AnalysisBudget) -> Vec<AnalysisPlan> {
    names
        .iter()
        .map(|name| {
            let bench = ipet_suite::by_name(name).expect("bundled benchmark");
            let program = bench.program().expect("compiles");
            let analyzer = Analyzer::new(&program, Machine::i960kb()).expect("analyzer");
            let anns = parse_annotations(&bench.annotations(&program)).expect("annotations");
            analyzer.plan(&anns, budget).expect("plan")
        })
        .collect()
}

#[test]
fn pooled_run_equals_serial_analyzer_without_deadline() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    let pool = SolvePool::new(4);
    let batch = pool.run_plans(&plans, &budget.solve);

    for (name, pooled) in BENCHES.iter().zip(&batch.estimates) {
        let bench = ipet_suite::by_name(name).unwrap();
        let program = bench.program().unwrap();
        let analyzer = Analyzer::new(&program, Machine::i960kb()).unwrap();
        let serial = analyzer.analyze(&bench.annotations(&program)).expect("serial");
        let pooled = pooled.as_ref().expect("pooled");
        assert_eq!(pooled, &serial, "{name}: pooled result differs from serial");
        assert_eq!(pooled.quality, BoundQuality::Exact, "{name}");
    }
}

#[test]
fn worker_count_changes_nothing_observable() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    let one = SolvePool::new(1).run_plans(&plans, &budget.solve);
    let eight = SolvePool::new(8).run_plans(&plans, &budget.solve);

    let est1: Vec<_> = one.estimates.iter().map(|e| e.as_ref().expect("ok")).collect();
    let est8: Vec<_> = eight.estimates.iter().map(|e| e.as_ref().expect("ok")).collect();
    assert_eq!(est1, est8, "estimates must be identical at --jobs 1 and --jobs 8");
    assert_eq!(one.report.hits, eight.report.hits, "hit counts must be deterministic");
    assert_eq!(one.report.misses, eight.report.misses, "miss counts must be deterministic");
    let cached1: Vec<CacheOutcome> = one.report.outcomes.iter().map(|o| o.cache).collect();
    let cached8: Vec<CacheOutcome> = eight.report.outcomes.iter().map(|o| o.cache).collect();
    assert_eq!(cached1, cached8, "per-job cache outcomes must be deterministic");
}

#[test]
fn deadline_sharding_degrades_identically_at_any_worker_count() {
    // Tight enough that solves exhaust or relax; what matters is that
    // every observable — bound, quality, per-set reports — agrees between
    // worker counts, not which degradation occurs.
    let mut budget = AnalysisBudget::default();
    budget.solve.deadline_ticks = Some(40);
    let plans = plans_for(BENCHES, &budget);
    let one = SolvePool::new(1).run_plans(&plans, &budget.solve);
    let five = SolvePool::new(5).run_plans(&plans, &budget.solve);
    for ((a, b), name) in one.estimates.iter().zip(&five.estimates).zip(BENCHES) {
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "{name}"),
            (Err(x), Err(y)) => assert_eq!(format!("{x:?}"), format!("{y:?}"), "{name}"),
            _ => panic!("{name}: Ok/Err disagreement between worker counts"),
        }
    }
}

#[test]
fn cached_replay_yields_identical_bounds_and_quality() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    let pool = SolvePool::new(2);

    let first = pool.run_plans(&plans, &budget.solve);
    let second = pool.run_plans(&plans, &budget.solve);

    assert_eq!(second.report.misses, 0, "second run must be answered entirely by the cache");
    assert!(second.report.outcomes.iter().all(|o| o.cache == CacheOutcome::Hit));
    for ((a, b), name) in first.estimates.iter().zip(&second.estimates).zip(BENCHES) {
        let (a, b) = (a.as_ref().expect("ok"), b.as_ref().expect("ok"));
        assert_eq!(a.bound, b.bound, "{name}: replayed bound differs");
        assert_eq!(a.quality, b.quality, "{name}: replayed quality differs");
        assert_eq!(a, b, "{name}: replayed estimate differs");
    }
}

#[test]
fn worker_tick_tallies_sum_to_total() {
    let budget = AnalysisBudget::default();
    let plans = plans_for(BENCHES, &budget);
    let pool = SolvePool::new(3);
    let batch = pool.run_plans(&plans, &budget.solve);
    assert_eq!(batch.report.worker_ticks.len(), 3);
    assert_eq!(batch.report.worker_ticks.iter().sum::<u64>(), batch.report.total_ticks);
    assert!(batch.report.total_ticks > 0, "real solves must spend pivot ticks");
}

#[test]
fn structurally_identical_jobs_across_plans_are_deduplicated() {
    // Submitting the same benchmark twice must solve its ILPs once: the
    // second plan's jobs are within-batch replays, and both analyses
    // nevertheless agree exactly.
    let budget = AnalysisBudget::default();
    let plans = plans_for(&["piksrt", "piksrt"], &budget);
    let pool = SolvePool::new(2);
    let batch = pool.run_plans(&plans, &budget.solve);
    let n = plans[0].jobs().len();
    assert_eq!(batch.report.misses, n as u64, "first copy solved fresh");
    assert_eq!(batch.report.hits, n as u64, "second copy replayed");
    let a = batch.estimates[0].as_ref().expect("ok");
    let b = batch.estimates[1].as_ref().expect("ok");
    assert_eq!(a, b);
}

/// Wall-clock scaling probe — a measurement, not an assertion: on a
/// multi-core machine `workers=8` should beat `workers=1` clearly (the
/// batch holds several independent 10-25ms ILPs); on a single-core machine
/// the two are at parity, so the probe skips itself with a printed reason
/// rather than producing a meaningless comparison (it used to hide behind
/// `#[ignore]`, which silently no-oped everywhere). The results are
/// bit-identical either way, which the tests above pin down.
///
/// Run with `--nocapture` to see the timings (or the skip reason).
#[test]
fn parallel_scaling_probe() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 2 {
        eprintln!(
            "parallel_scaling_probe: skipped — only {cores} core(s) available, \
             a 1-vs-8-worker wall-clock comparison would be meaningless"
        );
        return;
    }
    let budget = AnalysisBudget::default();
    let plans = plans_for(&["dhry", "fullsearch", "whetstone", "des"], &budget);
    for workers in [1usize, 8] {
        let pool = SolvePool::new(workers);
        let t = std::time::Instant::now();
        let _ = pool.run_plans(&plans, &budget.solve);
        eprintln!("parallel_scaling_probe: workers={workers}: {:?}", t.elapsed());
    }
}
