//! # ipet-pool
//!
//! Parallel solve orchestration for the IPET pipeline: a work-stealing
//! worker pool that takes every independent ILP job produced by an
//! analysis — one per surviving DNF constraint set and objective sense —
//! and solves them across a configurable number of threads, backed by a
//! content-addressed solve cache.
//!
//! The subsystem exists because the paper's method is embarrassingly
//! parallel *between* ILPs but each ILP must stay sequential: one analysis
//! yields `2 × |sets|` independent solves, and a benchmark table yields
//! that again per program. [`SolvePool::run_plans`] batches any number of
//! [`AnalysisPlan`](ipet_core::AnalysisPlan)s (from [`Analyzer::plan`](ipet_core::Analyzer::plan))
//! into one job list and folds each plan's verdicts back with
//! [`AnalysisPlan::complete`](ipet_core::AnalysisPlan::complete).
//!
//! Since the base+delta decomposition, the jobs of one routine share a
//! [`BaseProblem`](ipet_lp::BaseProblem): the pool solves each distinct
//! base LP once per batch (serially, before dispatch; repeats count
//! `pool.cache.base_hits`), hands the snapshot to the workers, and
//! warm-starts every delta from it via
//! [`solve_delta_warm`](ipet_lp::solve_delta_warm). The solve cache is
//! keyed on the `(base, delta)` fingerprint pair. Warm results are
//! accepted only when provably bit-identical to a cold solve, so none of
//! the properties below are weakened.
//!
//! Three properties are load-bearing and tested:
//!
//! * **Determinism** — bounds, qualities, report ordering and cache
//!   hit/miss counts are bit-for-bit identical for any worker count. With
//!   no tick deadline the pooled result equals the serial
//!   `Analyzer::analyze` result exactly; with a deadline the pool shards
//!   it deterministically, so `--jobs 1` and `--jobs 8` still agree with
//!   each other.
//! * **Sound caching** — the cache replays a result only after structural
//!   equality passes and the cached witness *re-certifies* against the
//!   probe problem in exact integer arithmetic (the `cache` module docs); a
//!   cache defect can cost time, never an unsound bound.
//! * **Budget accounting** — per-worker tick spend is reported, and the
//!   shared [`BudgetMeter`](ipet_lp::BudgetMeter) semantics guarantee at
//!   most one charge of overshoot per worker.
//! * **Crash isolation** — a panicking solve never takes the batch down:
//!   it is caught, retried once on a fresh thread, and on a second panic
//!   quarantined as an exhausted job that degrades the affected bound to
//!   `Partial` quality (`pool.panic.*` counters tell the story).
//!
//! Batches can also run under an external [`CancelToken`](ipet_lp::CancelToken)
//! ([`SolvePool::run_plans_cancellable`]): cancelling makes every in-flight
//! solve observe an exhausted deadline at its next budget checkpoint, so
//! the batch degrades to certified-safe relaxed bounds and returns promptly
//! instead of wedging a worker. Cancelled results never enter the caches.
//!
//! A pool can additionally be backed by a persistent, crash-safe store
//! ([`SolvePool::with_store`], see `ipet-store`): after an in-memory miss
//! the store is probed under the same structural + exact-certification
//! gates, and every fresh `Exact` solve is fed back for future processes
//! to replay. The store is a third replay tier — it changes where answers
//! come from, never what they are.

mod cache;
mod pool;

pub use cache::{CacheOutcome, CacheStats, SolveCache};
pub use pool::{AuditedPlanBatch, BatchReport, JobOutcome, PlanBatch, SolvePool};
