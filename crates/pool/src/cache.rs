//! The content-addressed solve cache.
//!
//! Solved ILPs are stored under their [`Fingerprint`] — a normalized,
//! permutation-invariant content hash from `ipet-lp` — so structurally
//! identical problems across constraint sets, benchmarks and repeated runs
//! are solved once and replayed.
//!
//! ## Soundness: validated replay
//!
//! A fingerprint match alone never authorizes a replay. The fingerprint is
//! the *index*; correctness comes from two gates applied on every probe:
//!
//! 1. **Structural equality** — the cached problem must match the probe
//!    problem row for row ([`same_structure`], which ignores debug names
//!    and term noise but nothing else). α-equivalent-but-permuted problems
//!    share a bucket yet are *not* replayed: an `Exact` witness vector is
//!    indexed by variable order, so replaying it across a permutation would
//!    corrupt the block counts downstream. Such near-hits are counted as
//!    [`CacheOutcome::Rejected`] telemetry instead.
//! 2. **Witness re-certification** — an `Exact` resolution is replayed only
//!    if its cached witness *certifies* against the probe problem in exact
//!    integer arithmetic ([`ipet_audit::certify_witness`]): the witness
//!    rounds to integer counts within the shared tolerance, satisfies every
//!    constraint row exactly, and reproduces the cached objective value
//!    exactly. This can only fail on a hash-bucket collision or an
//!    implementation bug; either way the probe is treated as a miss and
//!    solved fresh, so a cache defect can cost time but never an unsound
//!    bound. Successful re-certifications count `audit.cache.recertified`;
//!    failures count `audit.cache.rejected`.

use ipet_audit::{certify_witness, ClaimKind};
use ipet_lp::{
    fingerprint, round_claimed, same_structure, Fingerprint, IlpResolution, IlpStats, Problem,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How a job's answer was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Solved fresh (and inserted into the cache).
    Miss,
    /// Replayed from the cache (cross-batch) or from a structurally
    /// identical job solved earlier in the same batch.
    Hit,
    /// A fingerprint bucket held only α-equivalent-but-permuted entries (or
    /// an entry that failed witness validation): solved fresh.
    Rejected,
}

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Jobs answered by replay.
    pub hits: u64,
    /// Jobs solved fresh.
    pub misses: u64,
    /// Fingerprint matches refused by the structural/witness gates.
    pub rejected: u64,
}

struct CacheEntry {
    problem: Problem,
    resolution: IlpResolution,
    stats: IlpStats,
}

/// A thread-safe map from problem fingerprints to validated solve results.
#[derive(Default)]
pub struct SolveCache {
    buckets: Mutex<HashMap<u128, Vec<CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> SolveCache {
        SolveCache::default()
    }

    /// Cumulative statistics over the cache's lifetime.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Computes the cache key of `problem`.
    pub fn key(problem: &Problem) -> Fingerprint {
        fingerprint(problem)
    }

    /// Looks up a validated replay for `problem`, updating hit/reject
    /// telemetry. Returns `None` (counting nothing — the caller records the
    /// miss on insert) when no entry passes both gates.
    pub fn probe(&self, key: Fingerprint, problem: &Problem) -> Option<(IlpResolution, IlpStats)> {
        let buckets = self.buckets.lock().expect("cache lock");
        let bucket = buckets.get(&key.0)?;
        let mut near_hit = false;
        for entry in bucket {
            if !same_structure(&entry.problem, problem) {
                near_hit = true;
                continue;
            }
            if let IlpResolution::Exact { x, value } = &entry.resolution {
                // Replay is authorized by the auditor, not a tolerance: the
                // cached witness must round to integer counts, satisfy every
                // row of the *probe* problem exactly, and reproduce the
                // cached objective exactly (all in i128 arithmetic).
                let certified = round_claimed(*value)
                    .ok()
                    .and_then(|claimed| certify_witness(problem, x, claimed, ClaimKind::Equal).ok())
                    .is_some();
                if !certified {
                    ipet_trace::counter("audit.cache.rejected", 1);
                    near_hit = true;
                    continue;
                }
                ipet_trace::counter("audit.cache.recertified", 1);
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some((entry.resolution.clone(), entry.stats));
        }
        if near_hit {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Inserts a fresh solve result and counts the miss that caused it.
    pub fn insert(
        &self,
        key: Fingerprint,
        problem: &Problem,
        resolution: &IlpResolution,
        stats: IlpStats,
    ) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut buckets = self.buckets.lock().expect("cache lock");
        buckets.entry(key.0).or_default().push(CacheEntry {
            problem: problem.clone(),
            resolution: resolution.clone(),
            stats,
        });
    }

    /// Counts `n` replays served from within-batch deduplication (the
    /// members of a job group whose representative was solved once).
    pub fn count_batch_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_lp::{ProblemBuilder, Relation, Sense};

    fn toy() -> Problem {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 3.0);
        b.objective(y, 2.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        b.constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        b.build()
    }

    #[test]
    fn probe_miss_then_hit() {
        let cache = SolveCache::new();
        let p = toy();
        let key = SolveCache::key(&p);
        assert!(cache.probe(key, &p).is_none());
        let res = IlpResolution::Exact { x: vec![2.0, 2.0], value: 10.0 };
        cache.insert(key, &p, &res, IlpStats::default());
        let (replayed, _) = cache.probe(key, &p).expect("hit");
        assert_eq!(replayed, res);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, rejected: 0 });
    }

    #[test]
    fn permuted_entry_is_rejected_not_replayed() {
        // Same problem with variables swapped: same fingerprint, different
        // structure — the witness must not transfer.
        let cache = SolveCache::new();
        let p = toy();
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let y = b.add_var("y", true);
        let x = b.add_var("x", true);
        b.objective(x, 3.0);
        b.objective(y, 2.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        b.constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        let q = b.build();
        let key = SolveCache::key(&p);
        assert_eq!(key, SolveCache::key(&q), "test premise: α-equivalent");
        cache.insert(
            key,
            &p,
            &IlpResolution::Exact { x: vec![2.0, 2.0], value: 10.0 },
            IlpStats::default(),
        );
        assert!(cache.probe(SolveCache::key(&q), &q).is_none());
        assert_eq!(cache.stats().rejected, 1);
    }

    #[test]
    fn corrupt_witness_fails_validation() {
        let cache = SolveCache::new();
        let p = toy();
        let key = SolveCache::key(&p);
        // Witness violates x <= 2: the gate must refuse the replay.
        cache.insert(
            key,
            &p,
            &IlpResolution::Exact { x: vec![4.0, 0.0], value: 12.0 },
            IlpStats::default(),
        );
        assert!(cache.probe(key, &p).is_none());
        assert_eq!(cache.stats().rejected, 1);
    }
}
