//! The worker pool: deterministic dedup, deadline sharding, panic-isolated
//! work-stealing execution, warm-started base+delta solving, and the
//! plan-level driver.

use crate::cache::{CacheOutcome, CacheStats, SolveCache};
use ipet_audit::{certify_witness, AuditReport, ClaimKind};
use ipet_core::{AnalysisError, AnalysisPlan, Estimate, JobVerdict};
use ipet_lp::{
    solve_delta_warm, solve_ilp_budgeted, warm_eligible, BaseProblem, BaseSolution, BudgetMeter,
    CancelToken, DeltaSet, Fingerprint, IlpResolution, IlpStats, Problem, SolveBudget,
    SolverFaults,
};
use ipet_store::Store;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Answer for one job of a batch.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The solver's resolution (replayed verbatim for cache hits).
    pub resolution: IlpResolution,
    /// Statistics of the solve that produced the resolution. A replayed
    /// job reports the original solve's statistics — they describe the
    /// work the answer *embodies*, not work done again.
    pub stats: IlpStats,
    /// Whether the answer was solved fresh, replayed, or solved fresh after
    /// the cache rejected a fingerprint near-hit.
    pub cache: CacheOutcome,
}

/// Everything a batch run reports besides the per-job answers.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job answers, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Jobs answered by replay in this batch (within-batch dedup plus
    /// cross-batch cache hits). Deterministic for any worker count because
    /// dedup happens before dispatch.
    pub hits: u64,
    /// Jobs solved fresh in this batch.
    pub misses: u64,
    /// Ticks spent by each worker (length = configured worker count).
    pub worker_ticks: Vec<u64>,
    /// Total ticks committed by the batch (sum of `worker_ticks`).
    pub total_ticks: u64,
    /// Wall-clock time of the parallel solve phase (excludes dedup,
    /// cache probing, base solving and result fan-out, which are serial
    /// and cheap).
    pub wall: std::time::Duration,
}

impl BatchReport {
    /// An empty report (no jobs, no ticks) — the identity of
    /// [`BatchReport::absorb`], for accumulating multi-round sweeps.
    pub fn empty() -> BatchReport {
        BatchReport {
            outcomes: Vec::new(),
            hits: 0,
            misses: 0,
            worker_ticks: Vec::new(),
            total_ticks: 0,
            wall: std::time::Duration::ZERO,
        }
    }

    /// Merges another round's report into this one: outcomes concatenate,
    /// tallies and ticks add (worker ticks element-wise, padding with the
    /// longer roster), wall clocks sum. Used by sweeps that run several
    /// pool batches and must report one aggregate, so downstream tick
    /// accounting (`bench::gate`) sees the same shape as a single batch.
    pub fn absorb(&mut self, other: BatchReport) {
        self.outcomes.extend(other.outcomes);
        self.hits += other.hits;
        self.misses += other.misses;
        if self.worker_ticks.len() < other.worker_ticks.len() {
            self.worker_ticks.resize(other.worker_ticks.len(), 0);
        }
        for (mine, theirs) in self.worker_ticks.iter_mut().zip(other.worker_ticks) {
            *mine += theirs;
        }
        self.total_ticks += other.total_ticks;
        self.wall += other.wall;
    }
}

/// Result of [`SolvePool::run_plans`]: one estimate per plan plus the
/// batch-level report.
pub struct PlanBatch {
    /// Per-plan analysis results, in plan order.
    pub estimates: Vec<Result<Estimate, AnalysisError>>,
    /// The underlying batch report (outcomes, hits/misses, worker ticks).
    pub report: BatchReport,
}

/// Result of [`SolvePool::run_plans_audited`]: each plan's estimate is
/// paired with the exact-arithmetic certificate report for its sets.
pub struct AuditedPlanBatch {
    /// Per-plan analysis results with certificates, in plan order.
    pub results: Vec<Result<(Estimate, AuditReport), AnalysisError>>,
    /// The underlying batch report (outcomes, hits/misses, worker ticks).
    pub report: BatchReport,
}

/// One unit of batch work: the composed problem to answer, its cache key,
/// and (when a base snapshot is available) the warm decomposition.
struct PoolJob<'a> {
    /// The full `base ∘ delta` problem — what the answer must be correct
    /// for, and what cold solves, retries and cache validation run against.
    problem: &'a Problem,
    /// Cache key: `job_key(base_fp, delta_fp)` for plan jobs, the plain
    /// content fingerprint for bare problems.
    key: Fingerprint,
    /// `(base-table slot, delta rows)` for a warm-started solve; `None`
    /// solves cold.
    warm: Option<(usize, &'a DeltaSet)>,
    /// `(identity, invalidation)` hashes of the originating plan; plan
    /// jobs carry them so the persistent store can scope its replays.
    /// Bare problems ([`SolvePool::solve_batch`]) have no analysis
    /// context and never touch the store.
    ctx: Option<(u128, u128)>,
}

/// Mixes a `(base, delta)` fingerprint pair into one asymmetric cache key,
/// so `(a, b)` and `(b, a)` index different buckets. An empty delta
/// fingerprints to zero, keying the bare base. The key is only an index:
/// replay is still gated by structural equality and exact witness
/// re-certification against the composed problem.
fn job_key(base: Fingerprint, delta: Fingerprint) -> Fingerprint {
    Fingerprint(
        base.0.rotate_left(1) ^ delta.0.wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C835),
    )
}

/// The exact-arithmetic certification gate injected into warm solves: a
/// warm result is only accepted if the auditor would certify it.
fn certify_exact(problem: &Problem, x: &[f64], claimed: i64) -> bool {
    certify_witness(problem, x, claimed, ClaimKind::Equal).is_ok()
}

/// A base LP solved once, kept for reuse across jobs, plans and batches.
struct BaseEntry {
    fingerprint: Fingerprint,
    problem: Problem,
    solution: BaseSolution,
}

/// A work-stealing ILP solve pool with a content-addressed solve cache and
/// warm-started base+delta execution.
///
/// ## Determinism
///
/// Results are bit-for-bit identical for any worker count:
///
/// * **Dedup before dispatch** — jobs are grouped by fingerprint and
///   structural equality *before* any solver runs, so which jobs are solved
///   (one representative per group) and which are replayed never depends on
///   scheduling. Hit/miss counts are deterministic too.
/// * **Deadline sharding** — a tick deadline is split across the
///   representative solves up front (`d / n` each, the first `d mod n` of
///   them getting one extra tick), so each solve sees the same budget at
///   any worker count and degrades (`IlpResolution::Exhausted` /
///   `Relaxed`) identically. The pool's meters only *account* for spend;
///   they never gate a solve on a concurrently updated counter, because
///   that would make degradation schedule-dependent.
/// * **Bases before dispatch** — warm-start base LPs are solved serially
///   before any worker starts, once per distinct base (reuse counts
///   `pool.cache.base_hits`), so whether a job warm-starts is a pure
///   function of the plans and the budget — never of scheduling. The warm
///   path itself only accepts results that are bit-identical to a cold
///   solve (integral, unique, exactly certified), so warm execution cannot
///   perturb any outcome.
/// * **Order-independent folding** — callers fold outcomes by job index
///   ([`AnalysisPlan::complete`] accepts verdicts in canonical job order
///   regardless of completion order), so work stealing cannot reorder
///   anything observable.
/// * **Panic isolation** — each representative solve runs under
///   `catch_unwind`. A panicking solve is retried once on a fresh worker
///   thread (with transient injected panics disarmed); a second panic
///   quarantines the job as [`IlpResolution::Exhausted`], which the plan
///   folds into a `Partial`-quality covered bound instead of crashing the
///   batch. Because dedup and sharding precede dispatch, the caught /
///   retried / quarantined outcome of every job is the same at any worker
///   count. Retries always solve the composed problem cold.
pub struct SolvePool {
    workers: usize,
    cache: SolveCache,
    /// Base LP snapshots keyed by base fingerprint, validated by exact
    /// problem equality: a snapshot is raw simplex state and only
    /// transfers between *identical* problems.
    bases: Mutex<Vec<BaseEntry>>,
    /// Fault template for test harnesses: re-armed (cloned) for each
    /// representative solve, so e.g. `panic_at(0)` panics every
    /// representative's first attempt deterministically.
    faults: SolverFaults,
    /// Optional persistent second replay tier ([`ipet_store::Store`]):
    /// probed after an in-memory miss, fed by every fresh `Exact` solve.
    /// Its replays pass the same structural + exact-certification gates
    /// as the in-memory cache, so attaching a store can never change an
    /// answer — only where it came from.
    store: Option<Arc<Store>>,
}

impl SolvePool {
    /// A pool with `workers` worker threads (clamped to at least 1) and an
    /// empty cache.
    pub fn new(workers: usize) -> SolvePool {
        SolvePool::with_faults(workers, SolverFaults::none())
    }

    /// A pool whose workers run under an injected-fault template (cloned
    /// per representative solve). Test-only in spirit: production callers
    /// use [`SolvePool::new`].
    pub fn with_faults(workers: usize, faults: SolverFaults) -> SolvePool {
        SolvePool {
            workers: workers.max(1),
            cache: SolveCache::new(),
            bases: Mutex::new(Vec::new()),
            faults,
            store: None,
        }
    }

    /// Attaches a persistent store as a second replay tier. The pool only
    /// probes and feeds it; opening, flushing and lifetime stay with the
    /// caller (who typically shares the same `Arc` with a serve loop).
    pub fn with_store(mut self, store: Arc<Store>) -> SolvePool {
        self.store = Some(store);
        self
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative cache statistics across every batch this pool ran.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Solves a batch of bare problems under `budget`, returning per-job
    /// outcomes in submission order. Every solve is cold — base+delta
    /// warm starting needs the decomposition and goes through
    /// [`SolvePool::run_plans`] / [`SolvePool::run_plans_audited`].
    pub fn solve_batch(&self, problems: &[Problem], budget: &SolveBudget) -> BatchReport {
        let jobs: Vec<PoolJob<'_>> = problems
            .iter()
            .map(|p| PoolJob { problem: p, key: SolveCache::key(p), warm: None, ctx: None })
            .collect();
        self.solve_jobs(&jobs, &[], budget, &CancelToken::new())
    }

    /// Builds the batch's job list and warm-start base table for `plans`.
    ///
    /// Base LPs are solved serially, once per distinct base (pool-level
    /// snapshot cache gated on exact problem equality; reuse counts
    /// `pool.cache.base_hits`), before any worker dispatch. Plans that
    /// opted out ([`warm_start()`](AnalysisPlan::warm_start) is false),
    /// budgets that forbid warm starts, armed fault templates, and bases
    /// whose LP is not warm-startable all yield cold jobs.
    fn prepare_jobs<'a>(
        &self,
        plans: &'a [AnalysisPlan],
        budget: &SolveBudget,
        cancel: &CancelToken,
    ) -> (Vec<PoolJob<'a>>, Vec<(&'a BaseProblem, BaseSolution)>) {
        let warm_batch = warm_eligible(budget) && !self.faults.armed();
        let mut table: Vec<(&'a BaseProblem, BaseSolution)> = Vec::new();
        let mut jobs: Vec<PoolJob<'a>> = Vec::new();
        for plan in plans {
            let ctx = (plan.identity_hash(), plan.invalidation_hash());
            if let Some(store) = &self.store {
                // Retire persisted entries whose inputs have changed before
                // any of this plan's probes can see them.
                store.note_context(ctx.0, ctx.1);
            }
            let slots: Vec<Option<usize>> = if warm_batch && plan.warm_start() {
                plan.bases().iter().map(|base| self.base_slot(base, &mut table, cancel)).collect()
            } else {
                Vec::new()
            };
            for job in plan.jobs() {
                let base = &plan.bases()[job.base];
                let key = job_key(base.fingerprint(), base.delta_fingerprint(&job.delta));
                let warm = slots.get(job.base).copied().flatten().map(|s| (s, &job.delta));
                jobs.push(PoolJob { problem: &job.problem, key, warm, ctx: Some(ctx) });
            }
        }
        (jobs, table)
    }

    /// Resolves `base` to a slot in the batch's snapshot table, solving its
    /// LP once and caching the snapshot in the pool on first sight.
    /// Returns `None` when the base is not warm-startable (its jobs then
    /// solve cold).
    fn base_slot<'a>(
        &self,
        base: &'a BaseProblem,
        table: &mut Vec<(&'a BaseProblem, BaseSolution)>,
        cancel: &CancelToken,
    ) -> Option<usize> {
        let mut cache = self.bases.lock().expect("base cache lock");
        let cached = cache
            .iter()
            .find(|e| e.fingerprint == base.fingerprint() && e.problem == *base.problem());
        let solution = match cached {
            Some(entry) => {
                ipet_trace::counter("pool.cache.base_hits", 1);
                entry.solution.clone()
            }
            None => {
                let meter = BudgetMeter::with_cancel(cancel.clone());
                let solution = base.solve_base(&meter)?;
                cache.push(BaseEntry {
                    fingerprint: base.fingerprint(),
                    problem: base.problem().clone(),
                    solution: solution.clone(),
                });
                solution
            }
        };
        table.push((base, solution));
        Some(table.len() - 1)
    }

    /// The batch executor behind [`SolvePool::solve_batch`] and the plan
    /// drivers: dedups, probes the cache, shards the deadline, dispatches
    /// to the workers (warm where a job carries a base snapshot slot) and
    /// fans the answers back out in submission order.
    fn solve_jobs(
        &self,
        jobs: &[PoolJob<'_>],
        bases: &[(&BaseProblem, BaseSolution)],
        budget: &SolveBudget,
        cancel: &CancelToken,
    ) -> BatchReport {
        let _span = ipet_trace::span("pool.solve_batch");
        ipet_trace::counter("pool.batches", 1);
        ipet_trace::counter("pool.jobs", jobs.len() as u64);
        // 1. Deterministic dedup: group jobs by (fingerprint, structure).
        //    `groups[g]` lists the job indices sharing one representative
        //    (the first member); first-occurrence order keeps the grouping
        //    independent of hash-map iteration.
        let keys: Vec<Fingerprint> = jobs.iter().map(|j| j.key).collect();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut group_of: Vec<usize> = vec![0; jobs.len()];
        for (j, job) in jobs.iter().enumerate() {
            let found = groups.iter().position(|g| {
                keys[g[0]] == keys[j] && ipet_lp::same_structure(jobs[g[0]].problem, job.problem)
            });
            match found {
                Some(g) => {
                    groups[g].push(j);
                    group_of[j] = g;
                }
                None => {
                    group_of[j] = groups.len();
                    groups.push(vec![j]);
                }
            }
        }

        // 2. Cross-batch cache probe per group representative. Probing is
        //    serial, so the rejected-counter delta attributes near-hit
        //    rejections to the group that caused them.
        let mut answers: Vec<Option<(IlpResolution, IlpStats)>> = Vec::with_capacity(groups.len());
        let mut group_rejected: Vec<bool> = vec![false; groups.len()];
        let mut to_solve: Vec<usize> = Vec::new(); // indices into `groups`
        for (g, members) in groups.iter().enumerate() {
            let rep = members[0];
            let rejected_before = self.cache.stats().rejected;
            match self.cache.probe(keys[rep], jobs[rep].problem) {
                Some(hit) => answers.push(Some(hit)),
                None => {
                    // Second tier: the persistent store (plan jobs only).
                    // Its probe re-runs the same gates, so a hit here is
                    // as trustworthy as an in-memory one.
                    let disk = match (&self.store, jobs[rep].ctx) {
                        (Some(store), Some((identity, invalidation))) => {
                            store.probe(keys[rep], identity, invalidation, jobs[rep].problem)
                        }
                        _ => None,
                    };
                    match disk {
                        Some(hit) => answers.push(Some(hit)),
                        None => {
                            answers.push(None);
                            group_rejected[g] = self.cache.stats().rejected > rejected_before;
                            to_solve.push(g);
                        }
                    }
                }
            }
        }

        ipet_trace::counter("pool.dedup.replays", (jobs.len() - groups.len()) as u64);
        ipet_trace::counter("pool.groups.solved", to_solve.len() as u64);

        // 3. Deterministic deadline sharding over the representative solves.
        let shards = shard_deadline(budget.deadline_ticks, to_solve.len());
        ipet_trace::counter(
            "pool.shards.deadline",
            shards.iter().filter(|s| s.is_some()).count() as u64,
        );

        // 4. Work-stealing execution: a shared cursor hands representative
        //    solves to whichever worker frees up first; each solve runs
        //    under its own sharded budget, a fresh meter and a re-armed
        //    fault clone, isolated by `catch_unwind`, and each worker
        //    tallies the ticks it spent. A job with a base snapshot slot
        //    warm-starts (`solve_delta_warm` falls back cold on its own
        //    whenever the warm result cannot be certified bit-identical);
        //    other jobs solve the composed problem cold. A solve that
        //    panics is retried once on a fresh thread (transient injected
        //    panics disarmed, always cold); a second panic quarantines the
        //    job as `Exhausted`.
        // Per-representative slot: (resolution, stats, uncacheable). A slot
        // is uncacheable when its solve was quarantined after a double
        // panic, or ran under a cancelled token.
        let slots: Mutex<Vec<Option<(IlpResolution, IlpStats, bool)>>> =
            Mutex::new(vec![None; to_solve.len()]);
        let cursor = AtomicUsize::new(0);
        let tallies: Mutex<Vec<u64>> = Mutex::new(vec![0; self.workers]);
        let t0 = std::time::Instant::now();
        std::thread::scope(|scope| {
            for w in 0..self.workers.min(to_solve.len()) {
                let (slots, cursor, tallies) = (&slots, &cursor, &tallies);
                let (shards, to_solve, groups) = (&shards, &to_solve, &groups);
                let faults_template = &self.faults;
                let cancel = &cancel;
                scope.spawn(move || {
                    let _worker = ipet_trace::set_worker(w as u64);
                    let mut my_ticks = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= to_solve.len() {
                            break;
                        }
                        let rep = groups[to_solve[i]][0];
                        let job_budget = SolveBudget { deadline_ticks: shards[i], ..*budget };
                        let meter = BudgetMeter::with_cancel((*cancel).clone());
                        let mut faults = faults_template.clone();
                        let attempt = catch_unwind(AssertUnwindSafe(|| match jobs[rep].warm {
                            Some((slot, delta)) => {
                                let (base, solution) = &bases[slot];
                                solve_delta_warm(
                                    base,
                                    Some(solution),
                                    delta,
                                    &job_budget,
                                    &meter,
                                    &mut faults,
                                    &certify_exact,
                                )
                            }
                            None => solve_ilp_budgeted(
                                jobs[rep].problem,
                                &job_budget,
                                &meter,
                                &mut faults,
                            ),
                        }));
                        ipet_trace::counter("pool.worker.jobs", 1);
                        ipet_trace::counter("pool.worker.ticks", meter.ticks());
                        my_ticks = my_ticks.saturating_add(meter.ticks());
                        let (res, stats, quarantined) = match attempt {
                            Ok((res, stats)) => (res, stats, false),
                            Err(_) => {
                                ipet_trace::counter("pool.panic.caught", 1);
                                let mut retry_faults = faults_template.clone();
                                retry_faults.disarm_panic();
                                match retry_on_fresh_worker(
                                    jobs[rep].problem,
                                    job_budget,
                                    retry_faults,
                                    (*cancel).clone(),
                                ) {
                                    Some((res, stats, ticks)) => {
                                        ipet_trace::counter("pool.panic.retried", 1);
                                        ipet_trace::counter("pool.worker.ticks", ticks);
                                        my_ticks = my_ticks.saturating_add(ticks);
                                        (res, stats, false)
                                    }
                                    None => {
                                        ipet_trace::counter("pool.panic.quarantined", 1);
                                        (IlpResolution::Exhausted, IlpStats::default(), true)
                                    }
                                }
                            }
                        };
                        // A solve that ran while the token was cancelled may
                        // carry a degradation that reflects the cancellation,
                        // not the problem — keep it out of the caches just
                        // like a quarantined crash.
                        let uncacheable = quarantined || cancel.is_cancelled();
                        if !quarantined && uncacheable {
                            ipet_trace::counter("pool.cancelled", 1);
                        }
                        slots.lock().expect("slot lock")[i] = Some((res, stats, uncacheable));
                    }
                    tallies.lock().expect("tick lock")[w] = my_ticks;
                });
            }
        });
        let wall = t0.elapsed();
        let solved = slots.into_inner().expect("slot lock");
        let worker_ticks = tallies.into_inner().expect("tick lock");

        // 5. Install the fresh solves (cache misses) and splice them into
        //    the per-group answers. Uncacheable jobs (quarantined after a
        //    double panic, or solved under a cancelled token) are *not*
        //    cached: their markers describe this run's crash or
        //    cancellation, not the problem, and must not be replayed into
        //    future batches.
        for (i, g) in to_solve.iter().enumerate() {
            let rep = groups[*g][0];
            let (res, stats, uncacheable) = solved[i].clone().expect("every representative solved");
            if !uncacheable {
                self.cache.insert(keys[rep], jobs[rep].problem, &res, stats);
                if let (Some(store), Some((identity, invalidation))) = (&self.store, jobs[rep].ctx)
                {
                    // Feed the persistent tier; it keeps only `Exact`
                    // resolutions (the only kind a replay can re-certify).
                    store.insert(keys[rep], identity, invalidation, jobs[rep].problem, &res, stats);
                }
            }
            answers[*g] = Some((res, stats));
        }

        // 6. Fan the group answers back out to every member. The fresh
        //    representatives are the batch's misses; everything else is a
        //    replay. Within-batch replays (jobs beyond each group's
        //    representative: `jobs - groups`) weren't seen by probe(), so
        //    count them into the cache stats here.
        let fresh: std::collections::HashSet<usize> =
            to_solve.iter().map(|g| groups[*g][0]).collect();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let outcomes: Vec<JobOutcome> = (0..jobs.len())
            .map(|j| {
                let g = group_of[j];
                let (resolution, stats) = answers[g].clone().expect("every group answered");
                let cache = if fresh.contains(&j) {
                    misses += 1;
                    if group_rejected[g] {
                        CacheOutcome::Rejected
                    } else {
                        CacheOutcome::Miss
                    }
                } else {
                    hits += 1;
                    CacheOutcome::Hit
                };
                JobOutcome { resolution, stats, cache }
            })
            .collect();
        self.cache.count_batch_hits((jobs.len() - groups.len()) as u64);
        ipet_trace::counter("pool.cache.hits", hits);
        ipet_trace::counter("pool.cache.misses", misses);
        ipet_trace::counter(
            "pool.cache.rejected",
            group_rejected.iter().filter(|&&r| r).count() as u64,
        );

        let total_ticks = worker_ticks.iter().sum();
        BatchReport { outcomes, hits, misses, worker_ticks, total_ticks, wall }
    }

    /// Runs every job of every plan through the pool as one batch and folds
    /// the verdicts back per plan. Jobs of warm-started plans reuse each
    /// plan's shared base optimum ([`AnalysisPlan::bases`]); the cache is
    /// keyed on the `(base, delta)` fingerprint pair.
    ///
    /// Jobs are concatenated in plan order (each plan's jobs in their
    /// canonical order), so the batch — and with it the dedup grouping, the
    /// shard assignment and every outcome — is a pure function of the plans
    /// and the budget, independent of the worker count.
    pub fn run_plans(&self, plans: &[AnalysisPlan], budget: &SolveBudget) -> PlanBatch {
        self.run_plans_cancellable(plans, budget, &CancelToken::new())
    }

    /// [`SolvePool::run_plans`] under an external cancellation token.
    ///
    /// Cancelling the token makes every in-flight and not-yet-started solve
    /// of this batch observe an exhausted deadline at its next budget
    /// checkpoint (B&B node expansion, LP entry, set-driver step), so the
    /// batch degrades to certified-safe relaxed/partial bounds and returns
    /// promptly instead of wedging a worker. Results produced under a
    /// cancelled token are never inserted into the in-memory or persistent
    /// caches — cancellation is wall-clock nondeterminism and must not leak
    /// into future batches.
    pub fn run_plans_cancellable(
        &self,
        plans: &[AnalysisPlan],
        budget: &SolveBudget,
        cancel: &CancelToken,
    ) -> PlanBatch {
        let (jobs, bases) = self.prepare_jobs(plans, budget, cancel);
        let report = self.solve_jobs(&jobs, &bases, budget, cancel);
        let mut offset = 0usize;
        let estimates = plans
            .iter()
            .map(|plan| {
                let n = plan.jobs().len();
                let verdicts: Vec<JobVerdict> = report.outcomes[offset..offset + n]
                    .iter()
                    .map(|o| JobVerdict::Solved(o.resolution.clone(), o.stats))
                    .collect();
                offset += n;
                plan.complete(&verdicts)
            })
            .collect();
        PlanBatch { estimates, report }
    }

    /// [`SolvePool::run_plans`] with exact-arithmetic certification: every
    /// plan's verdicts are folded through
    /// [`AnalysisPlan::complete_audited`](ipet_core::AnalysisPlan::complete_audited),
    /// pairing each estimate with its per-set certificate report. The
    /// estimates themselves are bit-identical to the unaudited run — the
    /// auditor only observes (and warm-accepted answers were already gated
    /// on the same exact certification it applies).
    pub fn run_plans_audited(
        &self,
        plans: &[AnalysisPlan],
        budget: &SolveBudget,
    ) -> AuditedPlanBatch {
        self.run_plans_audited_cancellable(plans, budget, &CancelToken::new())
    }

    /// [`SolvePool::run_plans_audited`] under an external cancellation
    /// token; see [`SolvePool::run_plans_cancellable`] for the semantics.
    pub fn run_plans_audited_cancellable(
        &self,
        plans: &[AnalysisPlan],
        budget: &SolveBudget,
        cancel: &CancelToken,
    ) -> AuditedPlanBatch {
        let (jobs, bases) = self.prepare_jobs(plans, budget, cancel);
        let report = self.solve_jobs(&jobs, &bases, budget, cancel);
        let mut offset = 0usize;
        let results = plans
            .iter()
            .map(|plan| {
                let n = plan.jobs().len();
                let verdicts: Vec<JobVerdict> = report.outcomes[offset..offset + n]
                    .iter()
                    .map(|o| JobVerdict::Solved(o.resolution.clone(), o.stats))
                    .collect();
                offset += n;
                plan.complete_audited(&verdicts)
            })
            .collect();
        AuditedPlanBatch { results, report }
    }
}

/// Runs the retry attempt of a panicked solve on a dedicated fresh thread,
/// so whatever state the first panic left on the original worker's stack
/// cannot contaminate it. Returns `None` when the retry panics too.
fn retry_on_fresh_worker(
    problem: &Problem,
    budget: SolveBudget,
    mut faults: SolverFaults,
    cancel: CancelToken,
) -> Option<(IlpResolution, IlpStats, u64)> {
    let problem = problem.clone();
    let handle = std::thread::Builder::new()
        .name("ipet-pool-retry".into())
        .spawn(move || {
            let meter = BudgetMeter::with_cancel(cancel);
            let (res, stats) = solve_ilp_budgeted(&problem, &budget, &meter, &mut faults);
            (res, stats, meter.ticks())
        })
        .expect("spawn retry worker");
    handle.join().ok()
}

/// Splits a tick deadline across `n` solves: `d / n` each, the first
/// `d mod n` solves getting one extra tick, so the shards sum to exactly
/// `d` and depend only on `(d, n)` — never on scheduling or worker count.
fn shard_deadline(deadline: Option<u64>, n: usize) -> Vec<Option<u64>> {
    let Some(d) = deadline else {
        return vec![None; n];
    };
    if n == 0 {
        return Vec::new();
    }
    let n64 = n as u64;
    (0..n64).map(|i| Some(d / n64 + u64::from(i < d % n64))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_sum_to_deadline_and_differ_by_at_most_one() {
        for d in [0u64, 1, 7, 100, 1001] {
            for n in 1..=9usize {
                let shards = shard_deadline(Some(d), n);
                assert_eq!(shards.len(), n);
                let vals: Vec<u64> = shards.iter().map(|s| s.unwrap()).collect();
                assert_eq!(vals.iter().sum::<u64>(), d);
                let (min, max) = (vals.iter().min().unwrap(), vals.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
        assert_eq!(shard_deadline(None, 3), vec![None, None, None]);
    }

    #[test]
    fn job_keys_are_asymmetric_and_delta_sensitive() {
        let a = Fingerprint(0x1234_5678_9abc_def0);
        let b = Fingerprint(0x0fed_cba9_8765_4321);
        assert_ne!(job_key(a, b), job_key(b, a));
        assert_ne!(job_key(a, Fingerprint(0)), job_key(a, b));
        assert_eq!(job_key(a, b), job_key(a, b));
    }
}
