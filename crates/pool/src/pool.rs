//! The worker pool: deterministic dedup, deadline sharding, panic-isolated
//! work-stealing execution, and the plan-level driver.

use crate::cache::{CacheOutcome, CacheStats, SolveCache};
use ipet_audit::AuditReport;
use ipet_core::{AnalysisError, AnalysisPlan, Estimate, JobVerdict};
use ipet_lp::{
    solve_ilp_budgeted, BudgetMeter, Fingerprint, IlpResolution, IlpStats, Problem, SolveBudget,
    SolverFaults,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Answer for one job of a batch.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The solver's resolution (replayed verbatim for cache hits).
    pub resolution: IlpResolution,
    /// Statistics of the solve that produced the resolution. A replayed
    /// job reports the original solve's statistics — they describe the
    /// work the answer *embodies*, not work done again.
    pub stats: IlpStats,
    /// Whether the answer was solved fresh, replayed, or solved fresh after
    /// the cache rejected a fingerprint near-hit.
    pub cache: CacheOutcome,
}

/// Everything a batch run reports besides the per-job answers.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job answers, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Jobs answered by replay in this batch (within-batch dedup plus
    /// cross-batch cache hits). Deterministic for any worker count because
    /// dedup happens before dispatch.
    pub hits: u64,
    /// Jobs solved fresh in this batch.
    pub misses: u64,
    /// Ticks spent by each worker (length = configured worker count).
    pub worker_ticks: Vec<u64>,
    /// Total ticks committed by the batch (sum of `worker_ticks`).
    pub total_ticks: u64,
    /// Wall-clock time of the parallel solve phase (excludes dedup,
    /// cache probing and result fan-out, which are serial and cheap).
    pub wall: std::time::Duration,
}

/// Result of [`SolvePool::run_plans`]: one estimate per plan plus the
/// batch-level report.
pub struct PlanBatch {
    /// Per-plan analysis results, in plan order.
    pub estimates: Vec<Result<Estimate, AnalysisError>>,
    /// The underlying batch report (outcomes, hits/misses, worker ticks).
    pub report: BatchReport,
}

/// Result of [`SolvePool::run_plans_audited`]: each plan's estimate is
/// paired with the exact-arithmetic certificate report for its sets.
pub struct AuditedPlanBatch {
    /// Per-plan analysis results with certificates, in plan order.
    pub results: Vec<Result<(Estimate, AuditReport), AnalysisError>>,
    /// The underlying batch report (outcomes, hits/misses, worker ticks).
    pub report: BatchReport,
}

/// A work-stealing ILP solve pool with a content-addressed solve cache.
///
/// ## Determinism
///
/// Results are bit-for-bit identical for any worker count:
///
/// * **Dedup before dispatch** — jobs are grouped by fingerprint and
///   structural equality *before* any solver runs, so which jobs are solved
///   (one representative per group) and which are replayed never depends on
///   scheduling. Hit/miss counts are deterministic too.
/// * **Deadline sharding** — a tick deadline is split across the
///   representative solves up front (`d / n` each, the first `d mod n` of
///   them getting one extra tick), so each solve sees the same budget at
///   any worker count and degrades (`IlpResolution::Exhausted` /
///   `Relaxed`) identically. The pool's meters only *account* for spend;
///   they never gate a solve on a concurrently updated counter, because
///   that would make degradation schedule-dependent.
/// * **Order-independent folding** — callers fold outcomes by job index
///   ([`AnalysisPlan::complete`] accepts verdicts in canonical job order
///   regardless of completion order), so work stealing cannot reorder
///   anything observable.
/// * **Panic isolation** — each representative solve runs under
///   `catch_unwind`. A panicking solve is retried once on a fresh worker
///   thread (with transient injected panics disarmed); a second panic
///   quarantines the job as [`IlpResolution::Exhausted`], which the plan
///   folds into a `Partial`-quality covered bound instead of crashing the
///   batch. Because dedup and sharding precede dispatch, the caught /
///   retried / quarantined outcome of every job is the same at any worker
///   count.
pub struct SolvePool {
    workers: usize,
    cache: SolveCache,
    /// Fault template for test harnesses: re-armed (cloned) for each
    /// representative solve, so e.g. `panic_at(0)` panics every
    /// representative's first attempt deterministically.
    faults: SolverFaults,
}

impl SolvePool {
    /// A pool with `workers` worker threads (clamped to at least 1) and an
    /// empty cache.
    pub fn new(workers: usize) -> SolvePool {
        SolvePool::with_faults(workers, SolverFaults::none())
    }

    /// A pool whose workers run under an injected-fault template (cloned
    /// per representative solve). Test-only in spirit: production callers
    /// use [`SolvePool::new`].
    pub fn with_faults(workers: usize, faults: SolverFaults) -> SolvePool {
        SolvePool { workers: workers.max(1), cache: SolveCache::new(), faults }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative cache statistics across every batch this pool ran.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Solves a batch of problems under `budget`, returning per-job
    /// outcomes in submission order.
    pub fn solve_batch(&self, problems: &[Problem], budget: &SolveBudget) -> BatchReport {
        let _span = ipet_trace::span("pool.solve_batch");
        ipet_trace::counter("pool.batches", 1);
        ipet_trace::counter("pool.jobs", problems.len() as u64);
        // 1. Deterministic dedup: group jobs by (fingerprint, structure).
        //    `groups[g]` lists the job indices sharing one representative
        //    (the first member); first-occurrence order keeps the grouping
        //    independent of hash-map iteration.
        let keys: Vec<Fingerprint> = problems.iter().map(SolveCache::key).collect();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut group_of: Vec<usize> = vec![0; problems.len()];
        for (j, p) in problems.iter().enumerate() {
            let found = groups
                .iter()
                .position(|g| keys[g[0]] == keys[j] && ipet_lp::same_structure(&problems[g[0]], p));
            match found {
                Some(g) => {
                    groups[g].push(j);
                    group_of[j] = g;
                }
                None => {
                    group_of[j] = groups.len();
                    groups.push(vec![j]);
                }
            }
        }

        // 2. Cross-batch cache probe per group representative. Probing is
        //    serial, so the rejected-counter delta attributes near-hit
        //    rejections to the group that caused them.
        let mut answers: Vec<Option<(IlpResolution, IlpStats)>> = Vec::with_capacity(groups.len());
        let mut group_rejected: Vec<bool> = vec![false; groups.len()];
        let mut to_solve: Vec<usize> = Vec::new(); // indices into `groups`
        for (g, members) in groups.iter().enumerate() {
            let rep = members[0];
            let rejected_before = self.cache.stats().rejected;
            match self.cache.probe(keys[rep], &problems[rep]) {
                Some(hit) => answers.push(Some(hit)),
                None => {
                    answers.push(None);
                    group_rejected[g] = self.cache.stats().rejected > rejected_before;
                    to_solve.push(g);
                }
            }
        }

        ipet_trace::counter("pool.dedup.replays", (problems.len() - groups.len()) as u64);
        ipet_trace::counter("pool.groups.solved", to_solve.len() as u64);

        // 3. Deterministic deadline sharding over the representative solves.
        let shards = shard_deadline(budget.deadline_ticks, to_solve.len());
        ipet_trace::counter(
            "pool.shards.deadline",
            shards.iter().filter(|s| s.is_some()).count() as u64,
        );

        // 4. Work-stealing execution: a shared cursor hands representative
        //    solves to whichever worker frees up first; each solve runs
        //    under its own sharded budget, a fresh meter and a re-armed
        //    fault clone, isolated by `catch_unwind`, and each worker
        //    tallies the ticks it spent. A solve that panics is retried
        //    once on a fresh thread (transient injected panics disarmed);
        //    a second panic quarantines the job as `Exhausted`.
        let slots: Mutex<Vec<Option<(IlpResolution, IlpStats, bool)>>> =
            Mutex::new(vec![None; to_solve.len()]);
        let cursor = AtomicUsize::new(0);
        let tallies: Mutex<Vec<u64>> = Mutex::new(vec![0; self.workers]);
        let t0 = std::time::Instant::now();
        std::thread::scope(|scope| {
            for w in 0..self.workers.min(to_solve.len()) {
                let (slots, cursor, tallies) = (&slots, &cursor, &tallies);
                let (shards, to_solve, groups) = (&shards, &to_solve, &groups);
                let faults_template = &self.faults;
                scope.spawn(move || {
                    let _worker = ipet_trace::set_worker(w as u64);
                    let mut my_ticks = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= to_solve.len() {
                            break;
                        }
                        let rep = groups[to_solve[i]][0];
                        let job_budget = SolveBudget { deadline_ticks: shards[i], ..*budget };
                        let meter = BudgetMeter::new();
                        let mut faults = faults_template.clone();
                        let attempt = catch_unwind(AssertUnwindSafe(|| {
                            solve_ilp_budgeted(&problems[rep], &job_budget, &meter, &mut faults)
                        }));
                        ipet_trace::counter("pool.worker.jobs", 1);
                        ipet_trace::counter("pool.worker.ticks", meter.ticks());
                        my_ticks = my_ticks.saturating_add(meter.ticks());
                        let (res, stats, quarantined) = match attempt {
                            Ok((res, stats)) => (res, stats, false),
                            Err(_) => {
                                ipet_trace::counter("pool.panic.caught", 1);
                                let mut retry_faults = faults_template.clone();
                                retry_faults.disarm_panic();
                                match retry_on_fresh_worker(
                                    &problems[rep],
                                    job_budget,
                                    retry_faults,
                                ) {
                                    Some((res, stats, ticks)) => {
                                        ipet_trace::counter("pool.panic.retried", 1);
                                        ipet_trace::counter("pool.worker.ticks", ticks);
                                        my_ticks = my_ticks.saturating_add(ticks);
                                        (res, stats, false)
                                    }
                                    None => {
                                        ipet_trace::counter("pool.panic.quarantined", 1);
                                        (IlpResolution::Exhausted, IlpStats::default(), true)
                                    }
                                }
                            }
                        };
                        slots.lock().expect("slot lock")[i] = Some((res, stats, quarantined));
                    }
                    tallies.lock().expect("tick lock")[w] = my_ticks;
                });
            }
        });
        let wall = t0.elapsed();
        let solved = slots.into_inner().expect("slot lock");
        let worker_ticks = tallies.into_inner().expect("tick lock");

        // 5. Install the fresh solves (cache misses) and splice them into
        //    the per-group answers. Quarantined jobs are *not* cached: the
        //    `Exhausted` marker describes this run's crash, not the
        //    problem, and must not be replayed into future batches.
        for (i, g) in to_solve.iter().enumerate() {
            let rep = groups[*g][0];
            let (res, stats, quarantined) = solved[i].clone().expect("every representative solved");
            if !quarantined {
                self.cache.insert(keys[rep], &problems[rep], &res, stats);
            }
            answers[*g] = Some((res, stats));
        }

        // 6. Fan the group answers back out to every member. The fresh
        //    representatives are the batch's misses; everything else is a
        //    replay. Within-batch replays (jobs beyond each group's
        //    representative: `jobs - groups`) weren't seen by probe(), so
        //    count them into the cache stats here.
        let fresh: std::collections::HashSet<usize> =
            to_solve.iter().map(|g| groups[*g][0]).collect();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let outcomes: Vec<JobOutcome> = (0..problems.len())
            .map(|j| {
                let g = group_of[j];
                let (resolution, stats) = answers[g].clone().expect("every group answered");
                let cache = if fresh.contains(&j) {
                    misses += 1;
                    if group_rejected[g] {
                        CacheOutcome::Rejected
                    } else {
                        CacheOutcome::Miss
                    }
                } else {
                    hits += 1;
                    CacheOutcome::Hit
                };
                JobOutcome { resolution, stats, cache }
            })
            .collect();
        self.cache.count_batch_hits((problems.len() - groups.len()) as u64);
        ipet_trace::counter("pool.cache.hits", hits);
        ipet_trace::counter("pool.cache.misses", misses);
        ipet_trace::counter(
            "pool.cache.rejected",
            group_rejected.iter().filter(|&&r| r).count() as u64,
        );

        let total_ticks = worker_ticks.iter().sum();
        BatchReport { outcomes, hits, misses, worker_ticks, total_ticks, wall }
    }

    /// Runs every job of every plan through the pool as one batch and folds
    /// the verdicts back per plan.
    ///
    /// Jobs are concatenated in plan order (each plan's jobs in their
    /// canonical order), so the batch — and with it the dedup grouping, the
    /// shard assignment and every outcome — is a pure function of the plans
    /// and the budget, independent of the worker count.
    pub fn run_plans(&self, plans: &[AnalysisPlan], budget: &SolveBudget) -> PlanBatch {
        let problems: Vec<Problem> = plans
            .iter()
            .flat_map(|plan| plan.jobs().iter().map(|job| job.problem.clone()))
            .collect();
        let report = self.solve_batch(&problems, budget);
        let mut offset = 0usize;
        let estimates = plans
            .iter()
            .map(|plan| {
                let n = plan.jobs().len();
                let verdicts: Vec<JobVerdict> = report.outcomes[offset..offset + n]
                    .iter()
                    .map(|o| JobVerdict::Solved(o.resolution.clone(), o.stats))
                    .collect();
                offset += n;
                plan.complete(&verdicts)
            })
            .collect();
        PlanBatch { estimates, report }
    }

    /// [`SolvePool::run_plans`] with exact-arithmetic certification: every
    /// plan's verdicts are folded through
    /// [`AnalysisPlan::complete_audited`](ipet_core::AnalysisPlan::complete_audited),
    /// pairing each estimate with its per-set certificate report. The
    /// estimates themselves are bit-identical to the unaudited run — the
    /// auditor only observes.
    pub fn run_plans_audited(
        &self,
        plans: &[AnalysisPlan],
        budget: &SolveBudget,
    ) -> AuditedPlanBatch {
        let problems: Vec<Problem> = plans
            .iter()
            .flat_map(|plan| plan.jobs().iter().map(|job| job.problem.clone()))
            .collect();
        let report = self.solve_batch(&problems, budget);
        let mut offset = 0usize;
        let results = plans
            .iter()
            .map(|plan| {
                let n = plan.jobs().len();
                let verdicts: Vec<JobVerdict> = report.outcomes[offset..offset + n]
                    .iter()
                    .map(|o| JobVerdict::Solved(o.resolution.clone(), o.stats))
                    .collect();
                offset += n;
                plan.complete_audited(&verdicts)
            })
            .collect();
        AuditedPlanBatch { results, report }
    }
}

/// Runs the retry attempt of a panicked solve on a dedicated fresh thread,
/// so whatever state the first panic left on the original worker's stack
/// cannot contaminate it. Returns `None` when the retry panics too.
fn retry_on_fresh_worker(
    problem: &Problem,
    budget: SolveBudget,
    mut faults: SolverFaults,
) -> Option<(IlpResolution, IlpStats, u64)> {
    let problem = problem.clone();
    let handle = std::thread::Builder::new()
        .name("ipet-pool-retry".into())
        .spawn(move || {
            let meter = BudgetMeter::new();
            let (res, stats) = solve_ilp_budgeted(&problem, &budget, &meter, &mut faults);
            (res, stats, meter.ticks())
        })
        .expect("spawn retry worker");
    handle.join().ok()
}

/// Splits a tick deadline across `n` solves: `d / n` each, the first
/// `d mod n` solves getting one extra tick, so the shards sum to exactly
/// `d` and depend only on `(d, n)` — never on scheduling or worker count.
fn shard_deadline(deadline: Option<u64>, n: usize) -> Vec<Option<u64>> {
    let Some(d) = deadline else {
        return vec![None; n];
    };
    if n == 0 {
        return Vec::new();
    }
    let n64 = n as u64;
    (0..n64).map(|i| Some(d / n64 + u64::from(i < d % n64))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_sum_to_deadline_and_differ_by_at_most_one() {
        for d in [0u64, 1, 7, 100, 1001] {
            for n in 1..=9usize {
                let shards = shard_deadline(Some(d), n);
                assert_eq!(shards.len(), n);
                let vals: Vec<u64> = shards.iter().map(|s| s.unwrap()).collect();
                assert_eq!(vals.iter().sum::<u64>(), d);
                let (min, max) = (vals.iter().min().unwrap(), vals.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
        assert_eq!(shard_deadline(None, 3), vec![None, None, None]);
    }
}
