//! Chaos soak harness for `cinderella serve`: N concurrent clients issue
//! randomized requests over a unix socket while the harness drops
//! connections mid-stream, injects store IO faults and SIGKILLs the
//! daemon at a random moment. The property under test is the daemon's
//! acknowledgment contract:
//!
//! > Every `done` line a client has *read* describes solves that are
//! > already durable, and replaying them after a restart is bit-identical
//! > to a serial cold solve.
//!
//! Concretely, after each round the harness re-runs `cinderella analyze
//! --store` for every target acknowledged exact and asserts (a) the bound
//! equals the serial cold reference and (b) — in rounds without injected
//! write faults — the run replays entirely from the store (`misses=0`).
//! The store must also self-repair: reopening after a SIGKILL (stale
//! lock, possibly torn tail) must never wedge or quarantine acknowledged
//! records outside torn-write rounds.
//!
//! Every protocol event is appended eagerly to a transcript file (path in
//! `CHAOS_TRANSCRIPT`, printed on stderr) so a failing CI run can upload
//! the full interleaving as an artifact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const ACTIONS_PER_CLIENT: usize = 8;
/// Fast-solving targets only: the soak wants request *churn*, not one
/// four-second solve hogging the round.
const TARGETS: [&str; 5] = ["piksrt", "fullsearch", "check_data", "whetstone", "des"];

struct Round {
    name: &'static str,
    /// Extra daemon flags (store IO fault injection).
    flags: &'static [&'static str],
    /// SIGKILL delay in ms; `None` ends the round with a graceful
    /// `shutdown` op instead.
    kill_after_ms: Option<u64>,
    /// Whether acknowledged solves are expected on disk afterwards
    /// (false when write faults were injected).
    durable: bool,
}

const ROUNDS: [Round; 4] = [
    Round { name: "calm", flags: &[], kill_after_ms: None, durable: true },
    Round { name: "sigkill", flags: &[], kill_after_ms: Some(2500), durable: true },
    Round {
        name: "torn-write",
        flags: &["--inject-torn-write", "2"],
        kill_after_ms: Some(2000),
        durable: false,
    },
    Round {
        name: "fail-write",
        flags: &["--inject-fail-write", "3"],
        kill_after_ms: Some(3000),
        durable: false,
    },
];

struct Transcript {
    file: Mutex<std::fs::File>,
}

impl Transcript {
    fn open() -> (Arc<Transcript>, PathBuf) {
        let path = std::env::var("CHAOS_TRANSCRIPT").map(PathBuf::from).unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("cinderella-chaos-{}.log", std::process::id()))
        });
        let file = std::fs::File::create(&path).expect("create transcript");
        eprintln!("chaos: transcript at {}", path.display());
        (Arc::new(Transcript { file: Mutex::new(file) }), path)
    }

    fn log(&self, line: &str) {
        let mut f = self.file.lock().expect("transcript lock");
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
    }
}

/// One acknowledged-exact solve, as the client saw it.
#[derive(Clone)]
struct Ack {
    target: String,
    lower: u64,
    upper: u64,
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cinderella-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cinderella"))
}

/// Serial cold reference: `analyze <target>` with no store, no pool
/// concurrency. The bound every later replay must reproduce exactly.
fn reference_bound(target: &str) -> (u64, u64) {
    let out = bin().args(["analyze", target]).output().expect("reference analyze");
    assert_eq!(out.status.code(), Some(0), "reference solve of {target} must be exact");
    parse_bound(&String::from_utf8_lossy(&out.stdout))
        .unwrap_or_else(|| panic!("no bound line for {target}"))
}

/// Parses `estimated bound: [lo, hi] cycles`.
fn parse_bound(stdout: &str) -> Option<(u64, u64)> {
    let line = stdout.lines().find(|l| l.starts_with("estimated bound:"))?;
    let inner = line.split(['[', ']']).nth(1)?;
    let mut it = inner.split(", ");
    let lo = it.next()?.parse().ok()?;
    let hi = it.next()?.parse().ok()?;
    Some((lo, hi))
}

fn store_line(stdout: &str) -> &str {
    stdout.lines().find(|l| l.starts_with("store:")).unwrap_or("store: <missing>")
}

fn wait_for_socket(sock: &Path) {
    let t0 = Instant::now();
    while !sock.exists() {
        assert!(t0.elapsed() < Duration::from_secs(10), "socket never appeared");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Reads lines until a `done` line; `None` when the daemon died or the
/// stream broke first (expected under chaos — such requests are simply
/// not acknowledged).
fn try_read_done(reader: &mut impl BufRead) -> Option<ipet_trace::Json> {
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return None,
            Ok(_) => {}
        }
        let v = ipet_trace::parse_json(line.trim()).ok()?;
        if v.get("done").is_some() {
            return Some(v);
        }
    }
}

/// One client's randomized action stream. Records every acknowledged
/// exact bound; tolerates every failure mode the harness injects.
fn run_client(
    round: usize,
    id: usize,
    sock: PathBuf,
    transcript: Arc<Transcript>,
    acks: Arc<Mutex<Vec<Ack>>>,
) {
    let mut rng = StdRng::seed_from_u64((round as u64) * 1000 + id as u64);
    for action in 0..ACTIONS_PER_CLIENT {
        std::thread::sleep(Duration::from_millis(rng.gen_range(0..60u64)));
        let Ok(mut conn) = UnixStream::connect(&sock) else {
            transcript.log(&format!("r{round} c{id} a{action}: connect failed (daemon gone?)"));
            return;
        };
        let mut reader = BufReader::new(match conn.try_clone() {
            Ok(r) => r,
            Err(_) => return,
        });
        let target = TARGETS[rng.gen_range(0..TARGETS.len())];
        let roll = rng.gen_range(0..100u32);
        let (label, request) = if roll < 55 {
            ("plain", format!(r#"{{"id": {id}, "target": "{target}"}}"#))
        } else if roll < 65 {
            ("audit", format!(r#"{{"id": {id}, "target": "{target}", "audit": true}}"#))
        } else if roll < 75 {
            ("deadline0", format!(r#"{{"id": {id}, "target": "{target}", "deadline": 0}}"#))
        } else if roll < 82 {
            ("garbage", "{not json at all".to_string())
        } else if roll < 90 {
            ("op", r#"{"op": "stats"}"#.to_string())
        } else {
            // Dropped connection mid-stream: send and vanish without
            // reading — the daemon must cancel, not compute into the
            // dead pipe.
            transcript.log(&format!("r{round} c{id} a{action}: drop-mid-request {target}"));
            let _ = writeln!(conn, r#"{{"id": {id}, "target": "{target}"}}"#);
            continue; // conn drops here
        };
        if writeln!(conn, "{request}").is_err() {
            transcript.log(&format!("r{round} c{id} a{action}: write failed (daemon gone?)"));
            return;
        }
        let Some(done) = try_read_done(&mut reader) else {
            transcript.log(&format!("r{round} c{id} a{action}: {label} unacknowledged"));
            continue;
        };
        let status = done.get("status").and_then(ipet_trace::Json::as_u64).unwrap_or(u64::MAX);
        transcript.log(&format!("r{round} c{id} a{action}: {label} {target} -> {}", done.render()));
        if label != "op" && label != "garbage" {
            // Whatever happened — exact, degraded, shed, cancelled — the
            // client always got a typed answer, never a hang.
            assert!(status <= 3, "protocol status out of contract: {}", done.render());
        }
        if status == 0 && done.get("target").is_some() {
            let bound = done.get("bound").and_then(ipet_trace::Json::as_arr).expect("bound");
            acks.lock().expect("acks").push(Ack {
                target: target.to_string(),
                lower: bound[0].as_u64().expect("lower"),
                upper: bound[1].as_u64().expect("upper"),
            });
        }
    }
}

#[test]
fn chaos_soak_every_acknowledged_bound_survives_restart_bit_identical() {
    let (transcript, transcript_path) = Transcript::open();
    let references: Vec<(&str, (u64, u64))> =
        TARGETS.iter().map(|t| (*t, reference_bound(t))).collect();
    transcript.log(&format!("references: {references:?}"));

    for (round_no, round) in ROUNDS.iter().enumerate() {
        let dir = scratch(&format!("r{round_no}"));
        let sock = dir.join("serve.sock");
        let store = dir.join("solves.store");
        let mut args = vec![
            "serve".to_string(),
            "--socket".into(),
            sock.to_str().unwrap().into(),
            "--store".into(),
            store.to_str().unwrap().into(),
            "--max-inflight".into(),
            "4".into(),
            "--max-queue".into(),
            "8".into(),
            "--timeout-ms".into(),
            "20000".into(),
        ];
        args.extend(round.flags.iter().map(|s| s.to_string()));
        transcript.log(&format!("=== round {round_no} ({}): {args:?}", round.name));
        let mut child: Child = bin()
            .args(&args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("serve spawns");
        wait_for_socket(&sock);

        let acks = Arc::new(Mutex::new(Vec::<Ack>::new()));
        let mut clients: Vec<_> = (0..CLIENTS)
            .map(|id| {
                let sock = sock.clone();
                let transcript = Arc::clone(&transcript);
                let acks = Arc::clone(&acks);
                std::thread::spawn(move || run_client(round_no, id, sock, transcript, acks))
            })
            .collect();

        match round.kill_after_ms {
            Some(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                transcript.log(&format!("r{round_no}: SIGKILL after {ms}ms"));
                let _ = child.kill(); // SIGKILL: no handler, no flush, no mercy
                let _ = child.wait();
            }
            None => {
                for c in clients.drain(..) {
                    c.join().expect("client");
                }
                if let Ok(mut conn) = UnixStream::connect(&sock) {
                    let _ = writeln!(conn, r#"{{"op": "shutdown"}}"#);
                    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
                    let _ = try_read_done(&mut reader);
                }
                let status = child.wait().expect("daemon exit");
                assert_eq!(status.code(), Some(0), "graceful round must exit 0");
            }
        }
        // Clients that were mid-request when the daemon died just stop.
        for c in clients {
            c.join().expect("client");
        }

        // The verdict: everything acknowledged must replay bit-identical
        // to the serial cold reference — after a SIGKILL, behind a stale
        // lock, with or without a torn tail.
        let acks = acks.lock().expect("acks").clone();
        let acked_targets: BTreeSet<String> = acks.iter().map(|a| a.target.clone()).collect();
        transcript.log(&format!(
            "r{round_no}: {} acks over {} targets",
            acks.len(),
            acked_targets.len()
        ));
        for ack in &acks {
            let (_, reference) = references
                .iter()
                .find(|(t, _)| *t == ack.target)
                .expect("ack target has a reference");
            assert_eq!(
                (ack.lower, ack.upper),
                *reference,
                "round {round_no} ({}): acknowledged bound for {} diverges from the serial \
                 cold solve (transcript: {})",
                round.name,
                ack.target,
                transcript_path.display()
            );
        }
        for target in &acked_targets {
            let out = bin()
                .args(["analyze", target, "--store", store.to_str().unwrap()])
                .output()
                .expect("replay analyze");
            let stdout = String::from_utf8_lossy(&out.stdout);
            transcript.log(&format!("r{round_no}: replay {target}: {}", store_line(&stdout)));
            assert_eq!(
                out.status.code(),
                Some(0),
                "round {round_no} ({}): post-restart solve of {target} must succeed \
                 (transcript: {})",
                round.name,
                transcript_path.display()
            );
            let replayed = parse_bound(&stdout).expect("replay bound");
            let (_, reference) =
                references.iter().find(|(t, _)| *t == target.as_str()).expect("reference");
            assert_eq!(
                replayed,
                *reference,
                "round {round_no} ({}): post-restart bound for {target} diverges \
                 (transcript: {})",
                round.name,
                transcript_path.display()
            );
            if round.durable {
                assert!(
                    store_line(&stdout).contains("misses=0"),
                    "round {round_no} ({}): acknowledged solves for {target} must already be \
                     on disk: {} (transcript: {})",
                    round.name,
                    store_line(&stdout),
                    transcript_path.display()
                );
            }
            if round.name != "torn-write" {
                assert!(
                    store_line(&stdout).contains("quarantined=0"),
                    "round {round_no} ({}): store must reopen clean: {} (transcript: {})",
                    round.name,
                    store_line(&stdout),
                    transcript_path.display()
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
