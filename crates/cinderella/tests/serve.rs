//! Integration tests of `cinderella serve`: the NDJSON protocol over stdin
//! and a unix socket, and — the reason the store exists — SIGKILL mid-batch
//! losing nothing that was already acknowledged.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("cinderella-serve-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_serve(extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_cinderella"))
        .arg("serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns")
}

/// Reads response lines for one request until its `done` line, returning
/// (per-set lines, done line).
fn read_response(reader: &mut impl BufRead) -> (Vec<ipet_trace::Json>, ipet_trace::Json) {
    let mut sets = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response line");
        assert!(n > 0, "stream ended before a done line");
        let v = ipet_trace::parse_json(line.trim()).expect("response line is JSON");
        if v.get("done").is_some() {
            return (sets, v);
        }
        sets.push(v);
    }
}

fn status_of(done: &ipet_trace::Json) -> u64 {
    done.get("status").and_then(ipet_trace::Json::as_u64).expect("status field")
}

fn analyze_with_store(target: &str, store: &str) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cinderella"))
        .args(["analyze", target, "--store", store])
        .output()
        .expect("binary runs");
    (out.status.code().expect("exit code"), String::from_utf8_lossy(&out.stdout).into_owned())
}

fn store_line(s: &str) -> String {
    s.lines().find(|l| l.starts_with("store:")).expect("store summary line").to_string()
}

#[test]
fn stdin_protocol_streams_sets_then_done_and_survives_bad_requests() {
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());

    writeln!(stdin, r#"{{"id": 1, "target": "piksrt"}}"#).unwrap();
    let (sets, done) = read_response(&mut reader);
    assert!(!sets.is_empty(), "at least one per-set line");
    assert_eq!(sets[0].get("id").and_then(ipet_trace::Json::as_u64), Some(1));
    assert!(sets[0].get("wcet").and_then(ipet_trace::Json::as_u64).is_some());
    assert_eq!(status_of(&done), 0);
    assert_eq!(done.get("target").and_then(ipet_trace::Json::as_str), Some("piksrt"));
    let bound = done.get("bound").and_then(ipet_trace::Json::as_arr).expect("bound array");
    assert_eq!(bound.len(), 2);

    // Garbage and unknown targets produce status-1 lines, not a dead daemon.
    writeln!(stdin, "this is not json").unwrap();
    let (_, err) = read_response(&mut reader);
    assert_eq!(status_of(&err), 1);
    assert!(err.get("error").is_some());

    writeln!(stdin, r#"{{"id": 2, "target": "nosuchbench"}}"#).unwrap();
    let (_, err) = read_response(&mut reader);
    assert_eq!(status_of(&err), 1);

    // A zero tick deadline degrades that request only (status 2). The
    // target must be one this daemon has not solved yet: replays from the
    // live cache cost no ticks and stay exact.
    writeln!(stdin, r#"{{"id": 3, "target": "des", "deadline": 0}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 2);

    // … and the daemon still answers the next request exactly.
    writeln!(stdin, r#"{{"id": 4, "target": "check_data", "audit": true}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 0);

    drop(stdin); // EOF shuts the daemon down cleanly
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0));
}

#[test]
fn infer_requests_carry_outcome_counts_and_match_annotated_bounds() {
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());

    // Annotated baseline for matgen.
    writeln!(stdin, r#"{{"id": 1, "target": "matgen"}}"#).unwrap();
    let (_, annotated) = read_response(&mut reader);
    assert_eq!(status_of(&annotated), 0);
    let baseline = annotated.get("bound").cloned().expect("bound array");

    // Inference alone (annotated loop bounds dropped) reproduces the
    // same bound, and the done line reports where the bounds came from.
    writeln!(stdin, r#"{{"id": 2, "target": "matgen", "infer": "only"}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 0);
    assert_eq!(done.get("bound"), Some(&baseline), "inferred bound differs from annotated");
    let counts = done.get("infer").expect("infer counts object");
    let n = |k: &str| counts.get(k).and_then(ipet_trace::Json::as_u64).expect("count field");
    assert!(n("total") > 0);
    assert_eq!(n("inferred"), n("total"));
    assert_eq!(n("failed"), 0);

    // `infer: true` means merge mode; annotations stay in play.
    writeln!(stdin, r#"{{"id": 3, "target": "matgen", "infer": true}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 0);
    assert_eq!(done.get("bound"), Some(&baseline));

    // piksrt's inner loop defeats inference, so `only` mode fails the
    // request — status 1 with the unbounded loop named — and the daemon
    // keeps serving.
    writeln!(stdin, r#"{{"id": 4, "target": "piksrt", "infer": "only"}}"#).unwrap();
    let (_, err) = read_response(&mut reader);
    assert_eq!(status_of(&err), 1);
    let msg = err.get("error").and_then(ipet_trace::Json::as_str).expect("error message");
    assert!(msg.contains("piksrt(B"), "names the unbounded loop: {msg}");
    assert!(msg.contains("at line"), "cites the source line: {msg}");

    writeln!(stdin, r#"{{"id": 5, "target": "check_data", "infer": true, "audit": true}}"#)
        .unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 0, "inferred bounds certify under audit");

    drop(stdin);
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

#[test]
fn sigkill_mid_batch_loses_nothing_acknowledged() {
    let dir = scratch("kill");
    let store = dir.join("solves.store");
    let store = store.to_str().unwrap();

    // Baseline report without any store.
    let base = Command::new(env!("CARGO_BIN_EXE_cinderella"))
        .args(["analyze", "piksrt", "--no-store"])
        .output()
        .unwrap();
    assert!(base.status.success());
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("pool:") && !l.starts_with("store:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let baseline = strip(&String::from_utf8_lossy(&base.stdout));

    let mut child = spawn_serve(&["--store", store]);
    let mut stdin = child.stdin.take().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());

    // Request 1 completes: its `done` line means its solves are flushed.
    writeln!(stdin, r#"{{"id": 1, "target": "piksrt"}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 0);

    // Request 2 goes in and the daemon is SIGKILLed mid-flight: no signal
    // handler can run, so this only passes if every flush was atomic.
    writeln!(stdin, r#"{{"id": 2, "target": "dhry"}}"#).unwrap();
    stdin.flush().unwrap();
    child.kill().unwrap();
    child.wait().unwrap();

    // The store must reopen with zero quarantined records and replay
    // request 1's solves bit-identically.
    let (code, out) = analyze_with_store("piksrt", store);
    assert_eq!(code, 0);
    let line = store_line(&out);
    assert!(line.contains("quarantined=0"), "SIGKILL corrupted the store: {line}");
    assert!(line.contains("misses=0"), "completed solves must replay: {line}");
    assert!(!line.contains("hits=0"), "{line}");
    assert_eq!(strip(&out), baseline, "replay after SIGKILL differs from a cold run");
}

#[test]
fn socket_mode_serves_connections_and_shuts_down_on_request() {
    let dir = scratch("socket");
    let sock = dir.join("serve.sock");
    let store = dir.join("solves.store");

    let mut child =
        spawn_serve(&["--socket", sock.to_str().unwrap(), "--store", store.to_str().unwrap()]);
    // Wait for the socket to appear.
    let mut tries = 0;
    while !sock.exists() {
        std::thread::sleep(std::time::Duration::from_millis(50));
        tries += 1;
        assert!(tries < 200, "socket never appeared");
    }

    // First connection: one request, then EOF (daemon keeps listening).
    {
        let conn = std::os::unix::net::UnixStream::connect(&sock).expect("connect");
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        writeln!(writer, r#"{{"id": 10, "target": "piksrt"}}"#).unwrap();
        let (sets, done) = read_response(&mut reader);
        assert!(!sets.is_empty());
        assert_eq!(status_of(&done), 0);
    }

    // Second connection proves the daemon survived the first EOF, replays
    // from its live pool/store, and honors the shutdown op.
    {
        let conn = std::os::unix::net::UnixStream::connect(&sock).expect("reconnect");
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        writeln!(writer, r#"{{"id": 11, "target": "piksrt"}}"#).unwrap();
        let (_, done) = read_response(&mut reader);
        assert_eq!(status_of(&done), 0);
        writeln!(writer, r#"{{"op": "shutdown"}}"#).unwrap();
        let (_, done) = read_response(&mut reader);
        assert_eq!(done.get("shutdown"), Some(&ipet_trace::Json::Bool(true)));
    }

    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0));
    assert!(!sock.exists(), "socket file cleaned up on shutdown");
    assert!(store.exists(), "store flushed on shutdown");

    // The store written by the daemon replays in a plain analyze run.
    let (code, out) = analyze_with_store("piksrt", store.to_str().unwrap());
    assert_eq!(code, 0);
    assert!(store_line(&out).contains("misses=0"), "{}", store_line(&out));
}
