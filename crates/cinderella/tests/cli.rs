//! End-to-end tests of the `cinderella` command-line tool.

use std::process::Command;

fn cinderella(args: &[&str]) -> (bool, String, String) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_cinderella")).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_names_all_benchmarks() {
    let (ok, stdout, _) = cinderella(&["list"]);
    assert!(ok);
    for b in ipet_suite::all() {
        assert!(stdout.contains(b.name), "missing {}", b.name);
    }
}

#[test]
fn cfg_prints_structural_constraints() {
    let (ok, stdout, _) = cinderella(&["cfg", "check_data"]);
    assert!(ok);
    assert!(stdout.contains("x1 = d1"));
    assert!(stdout.contains("d1 = 1"));
    assert!(stdout.contains("block costs"));
}

#[test]
fn analyze_reports_bound_and_sets() {
    let (ok, stdout, _) = cinderella(&["analyze", "check_data"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("estimated bound: ["));
    assert!(stdout.contains("constraint sets: 2 total"));
    assert!(stdout.contains("first relaxation integral: true"));
}

#[test]
fn analyze_measure_checks_containment() {
    let (ok, stdout, _) = cinderella(&["analyze", "piksrt", "--measure"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("measured bound"));
    assert!(stdout.contains("pessimism vs measured"));
}

#[test]
fn analyze_cache_split_tightens() {
    let (_, base, _) = cinderella(&["analyze", "matgen"]);
    let (_, split, _) = cinderella(&["analyze", "matgen", "--cache-split"]);
    let upper = |s: &str| -> u64 {
        let line = s.lines().find(|l| l.starts_with("estimated bound")).unwrap();
        let inner = line.split('[').nth(1).unwrap().split(']').next().unwrap();
        inner.split(',').nth(1).unwrap().trim().parse().unwrap()
    };
    assert!(upper(&split) < upper(&base));
}

#[test]
fn unknown_benchmark_fails_cleanly() {
    let (ok, _, stderr) = cinderella(&["analyze", "nosuch"]);
    assert!(!ok);
    assert!(stderr.contains("no benchmark named"));
}

#[test]
fn compiles_and_analyzes_a_source_file() {
    let dir = std::env::temp_dir().join("cinderella-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.mc");
    std::fs::write(
        &src,
        "int main() { int i; int s; s = 0; for (i = 0; i < 8; i = i + 1) { s = s + i; } return s; }",
    )
    .unwrap();
    let ann = dir.join("prog.ann");
    std::fs::write(&ann, "fn main { loop x2 in [8, 8]; }").unwrap();
    let (ok, stdout, stderr) =
        cinderella(&["analyze", src.to_str().unwrap(), "--annotations", ann.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("estimated bound"));
}

#[test]
fn missing_loop_bound_names_the_loop() {
    let dir = std::env::temp_dir().join("cinderella-cli-test2");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("loopy.mc");
    std::fs::write(&src, "int main() { int i; i = 0; while (i < 10) { i = i + 1; } return i; }")
        .unwrap();
    let (ok, _, stderr) = cinderella(&["analyze", src.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("add loop bounds"), "{stderr}");
}

#[test]
fn listing_marks_blocks_on_source_lines() {
    let (ok, stdout, _) = cinderella(&["listing", "check_data"]);
    assert!(ok);
    assert!(stdout.contains("check_data:x1"));
    assert!(stdout.contains("while (morecheck)"));
}

#[test]
fn infer_derives_bounds_for_counted_loops() {
    let dir = std::env::temp_dir().join("cinderella-cli-test3");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("counted.mc");
    std::fs::write(
        &src,
        "int main() { int i; int s; s = 0; for (i = 0; i < 12; i = i + 1) { s = s + i; } return s; }",
    )
    .unwrap();
    let (ok, stdout, stderr) = cinderella(&["analyze", src.to_str().unwrap(), "--infer"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("automatically derived loop bounds"));
    assert!(stdout.contains("loop x2 in [12, 12]"));
    assert!(stdout.contains("estimated bound"));
}

#[test]
fn idl_annotations_are_accepted() {
    let dir = std::env::temp_dir().join("cinderella-cli-test4");
    std::fs::create_dir_all(&dir).unwrap();
    let idl = dir.join("check.idl");
    std::fs::write(
        &idl,
        "idl check_data {\n iterates x2 [1, 10];\n exactlyone x6 x8;\n samepath x6 x13;\n}",
    )
    .unwrap();
    let (ok, stdout, stderr) =
        cinderella(&["analyze", "check_data", "--idl", idl.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("constraint sets: 2 total"));
}

#[test]
fn dsp3210_machine_changes_the_bound() {
    let upper = |s: &str| -> u64 {
        let line = s.lines().find(|l| l.starts_with("estimated bound")).unwrap();
        let inner = line.split('[').nth(1).unwrap().split(']').next().unwrap();
        inner.split(',').nth(1).unwrap().trim().parse().unwrap()
    };
    let (_, i960, _) = cinderella(&["analyze", "fft"]);
    let (ok, dsp, _) = cinderella(&["analyze", "fft", "--machine", "dsp3210"]);
    assert!(ok);
    assert_ne!(upper(&i960), upper(&dsp));
}

#[test]
fn unknown_machine_is_rejected() {
    let (ok, _, stderr) = cinderella(&["analyze", "fft", "--machine", "z80"]);
    assert!(!ok);
    assert!(stderr.contains("unknown machine"));
}

#[test]
fn assembly_files_are_accepted() {
    let dir = std::env::temp_dir().join("cinderella-cli-test5");
    std::fs::create_dir_all(&dir).unwrap();
    let asm = dir.join("prog.s");
    std::fs::write(&asm, ".entry main\nmain:\n ldc r8, 3\n mul rv, r8, 7\n ret\n").unwrap();
    let (ok, stdout, stderr) = cinderella(&["analyze", asm.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("estimated bound"));
}

#[test]
fn optimized_build_tightens_straight_line_wcet() {
    let dir = std::env::temp_dir().join("cinderella-cli-test6");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("fold.mc");
    std::fs::write(&src, "int main() { int x; x = 2 * 3 + 4; return x * 2; }").unwrap();
    let upper = |s: &str| -> u64 {
        let line = s.lines().find(|l| l.starts_with("estimated bound")).unwrap();
        let inner = line.split('[').nth(1).unwrap().split(']').next().unwrap();
        inner.split(',').nth(1).unwrap().trim().parse().unwrap()
    };
    let (_, o0, _) = cinderella(&["analyze", src.to_str().unwrap()]);
    let (ok, o1, _) = cinderella(&["analyze", src.to_str().unwrap(), "-O1"]);
    assert!(ok);
    assert!(upper(&o1) < upper(&o0), "O1 {} vs O0 {}", upper(&o1), upper(&o0));
}

#[test]
fn dot_output_is_graphviz() {
    let (ok, stdout, _) = cinderella(&["dot", "check_data"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("source ->"));
}

#[test]
fn trace_prints_block_entries() {
    let (ok, stdout, _) = cinderella(&["trace", "piksrt"]);
    assert!(ok);
    assert!(stdout.contains("worst-case block trace"));
    assert!(stdout.contains("piksrt  x1"));
    assert!(stdout.contains("total:"));
}

#[test]
fn shipped_sample_programs_analyze() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs");
    let fir = root.join("fir.mc");
    let (ok, stdout, stderr) =
        cinderella(&["analyze", fir.to_str().unwrap(), "--entry", "fir", "--infer"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("loop x2 in [64, 64]"));

    let gcd = root.join("gcd.mc");
    let ann = root.join("gcd.ann");
    let (ok, stdout, stderr) = cinderella(&[
        "analyze",
        gcd.to_str().unwrap(),
        "--entry",
        "gcd",
        "--annotations",
        ann.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("estimated bound"));

    let idl = root.join("filter.idl");
    let (ok, _, stderr) = cinderella(&[
        "analyze",
        fir.to_str().unwrap(),
        "--entry",
        "fir",
        "--idl",
        idl.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
}

#[test]
fn shared_formulation_gives_the_same_bound() {
    let bound = |args: &[&str]| -> String {
        let (ok, stdout, stderr) = cinderella(args);
        assert!(ok, "{stderr}");
        stdout.lines().find(|l| l.starts_with("estimated bound")).unwrap().to_string()
    };
    let per_site = bound(&["analyze", "whetstone"]);
    let shared = bound(&["analyze", "whetstone", "--shared"]);
    assert_eq!(per_site, shared);
}

// -- resource budgets and graceful degradation ------------------------------

/// Like [`cinderella`] but preserving the raw exit code, for the
/// 0 = exact / 2 = degraded / 1 = error contract.
fn cinderella_code(args: &[&str]) -> (i32, String, String) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_cinderella")).args(args).output().expect("binary runs");
    (
        out.status.code().expect("not killed by a signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Writes a fixture whose WCET ILP has a *fractional* LP root
/// (`2*x4 <= 7` caps the loop body at 3.5 executions), so branch-and-bound
/// genuinely has to branch — the lever the budget flags then squeeze.
fn fractional_fixture() -> (String, String) {
    let dir = std::env::temp_dir().join("cinderella-budget-test");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("frac.mc");
    std::fs::write(
        &src,
        "int main() { int i; int s; s = 0; for (i = 0; i < 8; i = i + 1) { s = s + i; } return s; }",
    )
    .unwrap();
    let ann = dir.join("frac.ann");
    std::fs::write(&ann, "fn main { loop x2 in [0, 8]; 2*x4 <= 7; }").unwrap();
    (src.to_str().unwrap().to_string(), ann.to_str().unwrap().to_string())
}

fn bound_upper(stdout: &str) -> u64 {
    let line = stdout.lines().find(|l| l.starts_with("estimated bound")).unwrap();
    let inner = line.split('[').nth(1).unwrap().split(']').next().unwrap();
    inner.split(',').nth(1).unwrap().trim().parse().unwrap()
}

#[test]
fn node_budget_degrades_to_relaxed_bound_with_exit_code_2() {
    let (src, ann) = fractional_fixture();
    let (code, exact_out, stderr) = cinderella_code(&["analyze", &src, "--annotations", &ann]);
    assert_eq!(code, 0, "{stderr}");
    assert!(exact_out.contains("bound quality: exact"));

    let (code, degraded_out, stderr) =
        cinderella_code(&["analyze", &src, "--annotations", &ann, "--max-nodes", "1"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(degraded_out.contains("bound quality: relaxed"), "{degraded_out}");
    assert!(degraded_out.contains("degraded sets (LP-relaxation bound)"));
    assert!(stderr.contains("safe but degraded"));
    // Degradation must never shrink the safe envelope.
    assert!(bound_upper(&degraded_out) >= bound_upper(&exact_out));
}

#[test]
fn zero_deadline_reports_partial_bound_with_exit_code_2() {
    let (src, ann) = fractional_fixture();
    let (code, stdout, stderr) =
        cinderella_code(&["analyze", &src, "--annotations", &ann, "--deadline", "0"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stdout.contains("bound quality: partial"), "{stdout}");
    assert!(stdout.contains("sets skipped on budget exhaustion"));
    assert!(stdout.contains("estimated bound: ["));
}

#[test]
fn no_degrade_turns_budget_exhaustion_into_a_hard_error() {
    let (src, ann) = fractional_fixture();
    let (code, _, stderr) = cinderella_code(&[
        "analyze",
        &src,
        "--annotations",
        &ann,
        "--max-nodes",
        "1",
        "--no-degrade",
    ]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("node limit"), "{stderr}");
}

#[test]
fn budget_flags_reject_garbage_values() {
    let (code, _, stderr) = cinderella_code(&["analyze", "check_data", "--deadline", "soon"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("not a non-negative integer"));
    let (code, _, stderr) = cinderella_code(&["analyze", "check_data", "--max-nodes"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--max-nodes needs a value"));
}

#[test]
fn roomy_budget_flags_leave_results_exact() {
    let (code, stdout, stderr) = cinderella_code(&[
        "analyze",
        "check_data",
        "--deadline",
        "100000000",
        "--max-nodes",
        "100000",
        "--max-sets",
        "1000",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("bound quality: exact"));
    assert!(stdout.contains("constraint sets: 2 total"));
}

#[test]
fn multi_target_analyze_reports_each_target_in_order() {
    let (ok, stdout, stderr) = cinderella(&["analyze", "piksrt", "check_data"]);
    assert!(ok, "{stderr}");
    let piksrt = stdout.find("=== piksrt ===").expect("piksrt header");
    let check = stdout.find("=== check_data ===").expect("check_data header");
    assert!(piksrt < check, "reports must follow argument order");
    assert!(stdout.contains("pool:"), "pool summary expected:\n{stdout}");
    assert_eq!(stdout.matches("estimated bound: [").count(), 2);
}

#[test]
fn jobs_flag_output_is_identical_across_worker_counts() {
    let strip_pool_line = |s: &str| -> String {
        // The summary line names the worker count by design; everything
        // else must be byte-identical.
        s.lines().filter(|l| !l.starts_with("pool:")).collect::<Vec<_>>().join("\n")
    };
    let (ok1, out1, _) = cinderella(&["analyze", "piksrt", "dhry", "--jobs", "1"]);
    let (ok8, out8, _) = cinderella(&["analyze", "piksrt", "dhry", "--jobs", "8"]);
    assert!(ok1 && ok8);
    assert_eq!(strip_pool_line(&out1), strip_pool_line(&out8));
    // Solve/replay counts are part of the pool line and must also agree.
    let pool1: Vec<&str> = out1.lines().filter(|l| l.starts_with("pool:")).collect();
    let pool8: Vec<&str> = out8.lines().filter(|l| l.starts_with("pool:")).collect();
    assert_eq!(pool1.len(), 1);
    assert_eq!(
        pool1[0].split_once("worker(s), ").map(|x| x.1),
        pool8[0].split_once("worker(s), ").map(|x| x.1),
        "cache and tick accounting must be deterministic"
    );
}

#[test]
fn no_warm_start_changes_no_reported_bound() {
    // Serial path: warm starting is accepted only when bit-identical to a
    // cold solve, so the whole report must match byte for byte.
    let (ok_w, warm, _) = cinderella(&["analyze", "check_data"]);
    let (ok_c, cold, _) = cinderella(&["analyze", "check_data", "--no-warm-start"]);
    assert!(ok_w && ok_c);
    assert_eq!(warm, cold, "--no-warm-start must not change the serial report");

    // Pooled path: everything but the pool summary line must match too
    // (cold solves spend more pivot ticks, which that line reports).
    let strip_pool_line = |s: &str| -> String {
        s.lines().filter(|l| !l.starts_with("pool:")).collect::<Vec<_>>().join("\n")
    };
    let (ok_w, warm, _) = cinderella(&["analyze", "check_data", "dhry", "--jobs", "2"]);
    let (ok_c, cold, _) =
        cinderella(&["analyze", "check_data", "dhry", "--jobs", "2", "--no-warm-start"]);
    assert!(ok_w && ok_c);
    assert_eq!(strip_pool_line(&warm), strip_pool_line(&cold));
}

#[test]
fn duplicate_targets_are_served_from_the_solve_cache() {
    let (ok, stdout, stderr) = cinderella(&["analyze", "piksrt", "piksrt", "--jobs", "2"]);
    assert!(ok, "{stderr}");
    let pool = stdout.lines().find(|l| l.starts_with("pool:")).expect("pool summary");
    assert!(pool.contains("2 solved, 2 replayed"), "{pool}");
}

#[test]
fn pooled_path_rejects_serial_only_flags() {
    let (code_ok, _, stderr) = cinderella(&["analyze", "piksrt", "check_data", "--measure"]);
    assert!(!code_ok);
    assert!(stderr.contains("serial path"), "{stderr}");
}

// -- structured tracing -----------------------------------------------------

#[test]
fn trace_json_writes_a_parsable_trace_document() {
    let dir = std::env::temp_dir().join("cinderella-cli-test7");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let _ = std::fs::remove_file(&path);

    let (ok, stdout, stderr) =
        cinderella(&["analyze", "piksrt", "--trace-json", path.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("estimated bound"), "analysis output unchanged by tracing");

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let doc = ipet_trace::parse_json(&text).expect("trace file is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some(ipet_trace::TRACE_SCHEMA),
        "schema tag"
    );
    let trace = ipet_trace::TraceDoc::from_json(&doc).expect("conforms to the trace schema");
    // One benchmark, compiled and solved: every pipeline phase must have fired.
    for counter in ["lang.compile.calls", "cfg.build.calls", "core.plan.calls", "lp.ilp.solves"] {
        assert!(
            trace.counters.get(counter).copied().unwrap_or(0) > 0,
            "expected counter {counter} in trace:\n{text}"
        );
    }
    for span in ["lang.parse", "core.plan"] {
        assert!(trace.spans.contains_key(span), "expected span {span} in trace:\n{text}");
    }
}

#[test]
fn without_trace_flag_no_trace_file_appears() {
    let dir = std::env::temp_dir().join("cinderella-cli-test8");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("absent.json");
    let _ = std::fs::remove_file(&path);
    let (ok, _, _) = cinderella(&["analyze", "piksrt"]);
    assert!(ok);
    assert!(!path.exists());
}

// ---------------------------------------------------------------------------
// --audit: exact-arithmetic certification and the fault-injection self-test.
// ---------------------------------------------------------------------------

#[test]
fn audit_certifies_an_exact_analysis() {
    let (code, stdout, stderr) = cinderella_code(&["analyze", "piksrt", "--audit"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("certificate report:"), "{stdout}");
    assert!(stdout.contains("audit: 2 verdict(s) certified, 0 rejected"), "{stdout}");
    assert!(stdout.contains("wcet certified (="), "{stdout}");
}

#[test]
fn audit_does_not_change_the_reported_bounds() {
    let (plain_code, plain, _) = cinderella_code(&["analyze", "check_data"]);
    let (audit_code, audited, _) = cinderella_code(&["analyze", "check_data", "--audit"]);
    assert_eq!(plain_code, 0);
    assert_eq!(audit_code, 0);
    let bound = |s: &str| s.lines().find(|l| l.starts_with("estimated bound")).unwrap().to_owned();
    assert_eq!(bound(&plain), bound(&audited), "the auditor must only observe");
}

#[test]
fn audit_rejects_an_injected_corrupt_witness_with_exit_3() {
    let (code, stdout, stderr) =
        cinderella_code(&["analyze", "piksrt", "--audit", "--inject-corrupt-witness", "0"]);
    assert_eq!(code, 3, "{stdout}");
    assert!(stdout.contains("REJECTED"), "{stdout}");
    assert!(stderr.contains("must not be trusted"), "{stderr}");
}

#[test]
fn audit_rejects_an_injected_corrupt_bound_with_exit_3() {
    let (code, stdout, _) =
        cinderella_code(&["analyze", "piksrt", "--audit", "--inject-corrupt-bound", "0"]);
    assert_eq!(code, 3, "{stdout}");
    assert!(stdout.contains("objective replay"), "{stdout}");
}

#[test]
fn pooled_audit_agrees_across_worker_counts() {
    let args = |jobs: &'static str| {
        vec!["analyze", "piksrt", "check_data", "dhry", "--audit", "--jobs", jobs]
    };
    let (code1, one, _) = cinderella_code(&args("1"));
    let (code8, eight, _) = cinderella_code(&args("8"));
    assert_eq!(code1, 0, "{one}");
    assert_eq!(code8, 0, "{eight}");
    // The pool summary names its configured worker count; everything else
    // must match byte for byte.
    let normalize = |s: String| {
        s.replace("pool: 1 worker(s)", "pool: N worker(s)")
            .replace("pool: 8 worker(s)", "pool: N worker(s)")
    };
    let (one, eight) = (normalize(one), normalize(eight));
    assert_eq!(one, eight, "audited pooled stdout must be identical for any --jobs");
    assert!(one.contains("certificate report:"));
    assert!(one.matches("rejected").count() >= 3, "one summary line per target");
}

#[test]
fn fault_injection_requires_the_serial_path() {
    let (code, _, stderr) = cinderella_code(&[
        "analyze",
        "piksrt",
        "check_data",
        "--audit",
        "--inject-corrupt-witness",
        "0",
    ]);
    assert_eq!(code, 1);
    assert!(stderr.contains("serial path"), "{stderr}");
}

#[test]
fn trace_json_to_a_nonexistent_directory_fails_cleanly_before_analysis() {
    let path = "/nonexistent-cinderella-dir/trace.json";
    let (code, stdout, stderr) = cinderella_code(&["analyze", "piksrt", "--trace-json", path]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("--trace-json"), "{stderr}");
    assert!(stderr.contains("does not exist"), "{stderr}");
    // Fail-fast: the path is rejected before any analysis output appears.
    assert!(!stdout.contains("estimated bound"), "{stdout}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn audit_trace_json_to_a_nonexistent_directory_fails_cleanly() {
    let path = "/nonexistent-cinderella-dir/audit.json";
    let (code, stdout, stderr) =
        cinderella_code(&["analyze", "piksrt", "--audit", "--trace-json", path]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("does not exist"), "{stderr}");
    assert!(!stdout.contains("estimated bound"), "{stdout}");
}

#[test]
fn trace_json_to_a_directory_path_fails_cleanly() {
    let dir = std::env::temp_dir().join("cinderella-cli-trace-dir");
    std::fs::create_dir_all(&dir).unwrap();
    let (code, _, stderr) =
        cinderella_code(&["analyze", "piksrt", "--trace-json", dir.to_str().unwrap()]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("is a directory"), "{stderr}");
}

#[test]
fn audit_trace_json_embeds_certificates_next_to_the_trace() {
    let dir = std::env::temp_dir().join("cinderella-cli-test9");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("audit.json");
    let _ = std::fs::remove_file(&path);

    let (code, _, stderr) =
        cinderella_code(&["analyze", "piksrt", "--audit", "--trace-json", path.to_str().unwrap()]);
    assert_eq!(code, 0, "{stderr}");
    let text = std::fs::read_to_string(&path).expect("audit document written");
    let doc = ipet_trace::parse_json(&text).expect("valid JSON");
    assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("ipet-audit-v1"));
    let certs = doc.get("certificates").and_then(|c| c.as_arr()).expect("certificates array");
    assert_eq!(certs.len(), 1);
    assert_eq!(certs[0].get("rejected").and_then(|n| n.as_u64()), Some(0));
    // The embedded trace is a full ipet-trace document, including the
    // audit.* counters the certification run emitted.
    let trace = doc.get("trace").expect("embedded trace");
    let trace = ipet_trace::TraceDoc::from_json(trace).expect("embedded trace conforms");
    assert!(trace.counters.get("audit.runs").copied().unwrap_or(0) > 0);
    assert_eq!(trace.counters.get("audit.rejected").copied(), Some(0));
}

// ---------------------------------------------------------------------------
// --store: the crash-safe persistent solve store.
// ---------------------------------------------------------------------------

fn store_scratch(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("cinderella-store-cli-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The analysis report with the environment-dependent summary lines
/// removed: `pool:` names tick totals, `store:` names hit/miss traffic.
/// Everything else must be byte-identical across store states.
fn strip_summaries(s: &str) -> String {
    s.lines()
        .filter(|l| !l.starts_with("pool:") && !l.starts_with("store:"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn store_line(s: &str) -> String {
    s.lines().find(|l| l.starts_with("store:")).expect("store summary line").to_string()
}

#[test]
fn second_run_replays_from_the_store_byte_identically() {
    let dir = store_scratch("warm");
    let store = dir.join("solves.store");
    let store = store.to_str().unwrap();

    let (ok, cold, stderr) =
        cinderella(&["analyze", "piksrt", "check_data", "--store", store, "--jobs", "2"]);
    assert!(ok, "{stderr}");
    let cold_line = store_line(&cold);
    assert!(cold_line.contains("mode=rw"), "{cold_line}");
    assert!(cold_line.contains("hits=0"), "cold run cannot hit: {cold_line}");
    assert!(cold_line.contains("flushes=1"), "{cold_line}");

    let (ok, warm, stderr) =
        cinderella(&["analyze", "piksrt", "check_data", "--store", store, "--jobs", "2"]);
    assert!(ok, "{stderr}");
    let warm_line = store_line(&warm);
    assert!(warm_line.contains("misses=0"), "warm run must replay: {warm_line}");
    assert!(!warm_line.contains("hits=0"), "warm run must hit the store: {warm_line}");

    // The bounds — and everything else in the report — must be identical.
    assert_eq!(strip_summaries(&cold), strip_summaries(&warm));

    // And identical to a run with the store disabled outright.
    let (ok, no_store, _) =
        cinderella(&["analyze", "piksrt", "check_data", "--no-store", "--jobs", "2"]);
    assert!(ok);
    assert_eq!(strip_summaries(&warm), strip_summaries(&no_store));
}

#[test]
fn every_io_fault_degrades_to_cold_solves_with_identical_bounds() {
    let dir = store_scratch("faults");
    let baseline = {
        let (ok, out, stderr) = cinderella(&["analyze", "piksrt", "--no-store", "--jobs", "2"]);
        assert!(ok, "{stderr}");
        strip_summaries(&out)
    };
    let faults: &[(&str, &[&str])] = &[
        ("fail-write", &["--inject-fail-write", "0"]),
        ("torn-write", &["--inject-torn-write", "0"]),
        ("corrupt-record", &["--inject-corrupt-record", "0"]),
        ("fail-open", &["--inject-fail-open"]),
    ];
    for (name, flags) in faults {
        let store = dir.join(format!("{name}.store"));
        let mut args = vec!["analyze", "piksrt", "--store", store.to_str().unwrap(), "--jobs", "2"];
        args.extend_from_slice(flags);
        // Seed a store (under fault), then run again over the damaged
        // remains: both runs must succeed with the fault-free bounds.
        for round in 0..2 {
            let (code, out, stderr) = cinderella_code(&args);
            assert_eq!(code, 0, "{name} round {round}: {stderr}");
            assert_eq!(
                strip_summaries(&out),
                baseline,
                "{name} round {round}: an IO fault changed the report"
            );
        }
    }
    // The counters tell the degradation story.
    let (_, out, _) = cinderella(&[
        "analyze",
        "piksrt",
        "--store",
        dir.join("x.store").to_str().unwrap(),
        "--inject-fail-write",
        "0",
    ]);
    assert!(store_line(&out).contains("write_failed=1"), "{}", store_line(&out));
    let (_, out, _) = cinderella(&[
        "analyze",
        "piksrt",
        "--store",
        dir.join("y.store").to_str().unwrap(),
        "--inject-fail-open",
    ]);
    assert!(store_line(&out).contains("mode=mem"), "{}", store_line(&out));
}

#[test]
fn hand_corrupted_store_falls_back_and_repairs() {
    let dir = store_scratch("corrupt");
    let store = dir.join("solves.store");
    let path = store.to_str().unwrap();

    let (ok, cold, _) = cinderella(&["analyze", "dhry", "--store", path]);
    assert!(ok);

    // Flip a bit in every record region of the file.
    let mut bytes = std::fs::read(&store).unwrap();
    let step = (bytes.len() / 8).max(1);
    let mut i = 24;
    while i < bytes.len() {
        bytes[i] ^= 0x40;
        i += step;
    }
    std::fs::write(&store, &bytes).unwrap();

    let (code, out, stderr) = cinderella_code(&["analyze", "dhry", "--store", path]);
    assert_eq!(code, 0, "{stderr}");
    assert!(!store_line(&out).contains("quarantined=0"), "{}", store_line(&out));
    assert_eq!(strip_summaries(&cold), strip_summaries(&out), "corruption changed the report");

    // The recovery run rewrote the file; a third run replays cleanly.
    let (ok, healed, _) = cinderella(&["analyze", "dhry", "--store", path]);
    assert!(ok);
    let line = store_line(&healed);
    assert!(line.contains("quarantined=0"), "{line}");
    assert!(line.contains("misses=0"), "{line}");
    assert_eq!(strip_summaries(&cold), strip_summaries(&healed));
}

#[test]
fn store_requires_the_pooled_path_and_io_faults_require_a_store() {
    let dir = store_scratch("reject");
    let path = dir.join("s.store");
    let (code, _, stderr) =
        cinderella_code(&["analyze", "piksrt", "--store", path.to_str().unwrap(), "--measure"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--store"), "{stderr}");
    let (code, _, stderr) = cinderella_code(&["analyze", "piksrt", "--inject-fail-write", "0"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--store"), "{stderr}");
}
