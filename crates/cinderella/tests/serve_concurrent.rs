//! Concurrency and overload behavior of `cinderella serve`: admission
//! control and shedding, health/stats ops under load, the request line
//! cap, watchdog timeouts, client-disconnect cancellation, and the
//! SIGTERM graceful drain.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ipet_trace::Json;

fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("cinderella-serve-conc-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_serve(extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_cinderella"))
        .arg("serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns")
}

fn wait_for_socket(sock: &Path) {
    let t0 = Instant::now();
    while !sock.exists() {
        assert!(t0.elapsed() < Duration::from_secs(10), "socket never appeared");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn connect(sock: &Path) -> (UnixStream, BufReader<UnixStream>) {
    let conn = UnixStream::connect(sock).expect("connect");
    let reader = BufReader::new(conn.try_clone().expect("clone"));
    (conn, reader)
}

/// Reads lines until the request's `done` line, returning (set lines, done).
fn read_response(reader: &mut impl BufRead) -> (Vec<Json>, Json) {
    let mut sets = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response line");
        assert!(n > 0, "stream ended before a done line");
        let v = ipet_trace::parse_json(line.trim()).expect("response line is JSON");
        if v.get("done").is_some() {
            return (sets, v);
        }
        sets.push(v);
    }
}

fn status_of(done: &Json) -> u64 {
    done.get("status").and_then(Json::as_u64).expect("status field")
}

/// Polls `{"op": "stats"}` on a fresh connection until `pred` accepts the
/// stats object (bounded wait).
fn wait_for_stats(sock: &Path, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let t0 = Instant::now();
    loop {
        let (mut conn, mut reader) = connect(sock);
        writeln!(conn, r#"{{"op": "stats"}}"#).expect("stats request");
        let (_, done) = read_response(&mut reader);
        let stats = done.get("stats").expect("stats object").clone();
        if pred(&stats) {
            return stats;
        }
        assert!(t0.elapsed() < Duration::from_secs(30), "stats never showed {what}: {stats:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn counter(stats: &Json, group: &str, name: &str) -> u64 {
    stats
        .get(group)
        .and_then(|g| g.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no {group}.{name} in {stats:?}"))
}

/// dhry takes seconds to solve cold in a debug build — the reliable way to
/// hold an in-flight slot while the test pokes the daemon from the side.
const SLOW_TARGET: &str = "dhry";

#[test]
fn overload_sheds_with_a_typed_response_and_ops_bypass_admission() {
    let dir = scratch("shed");
    let sock = dir.join("serve.sock");
    let mut child = spawn_serve(&[
        "--socket",
        sock.to_str().unwrap(),
        "--max-inflight",
        "1",
        "--max-queue",
        "0",
    ]);
    wait_for_socket(&sock);

    // Connection A occupies the single in-flight slot with a slow solve.
    let (mut slow_conn, mut slow_reader) = connect(&sock);
    writeln!(slow_conn, r#"{{"id": 1, "target": "{SLOW_TARGET}"}}"#).unwrap();
    wait_for_stats(&sock, "an in-flight request", |s| counter(s, "admission", "in_flight") >= 1);

    // Health answers while the daemon is saturated: ops bypass admission.
    let (mut conn, mut reader) = connect(&sock);
    writeln!(conn, r#"{{"op": "health"}}"#).unwrap();
    let (_, health) = read_response(&mut reader);
    assert_eq!(status_of(&health), 0);
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(health.get("draining"), Some(&Json::Bool(false)));
    assert!(health.get("uptime_ms").and_then(Json::as_u64).is_some());

    // A second analysis request is shed — a typed status-2 refusal, not a
    // hang and not an unbounded queue.
    writeln!(conn, r#"{{"id": 2, "target": "piksrt"}}"#).unwrap();
    let (sets, done) = read_response(&mut reader);
    assert!(sets.is_empty(), "a shed request produces no per-set lines");
    assert_eq!(status_of(&done), 2);
    assert_eq!(done.get("shed"), Some(&Json::Bool(true)));
    assert_eq!(done.get("id").and_then(Json::as_u64), Some(2));

    // Stats report the shed and the saturated admission gate.
    let stats = wait_for_stats(&sock, "the shed", |s| counter(s, "serve", "shed") >= 1);
    assert_eq!(counter(&stats, "admission", "max_inflight"), 1);
    assert_eq!(counter(&stats, "admission", "max_queue"), 0);
    assert!(counter(&stats, "serve", "connections") >= 2);

    // The slow request itself still completes exactly.
    let (_, done) = read_response(&mut slow_reader);
    assert_eq!(status_of(&done), 0);

    // Once the slot frees, the same kind of request is admitted again.
    let (mut conn, mut reader) = connect(&sock);
    writeln!(conn, r#"{{"id": 3, "target": "piksrt"}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 0);
    writeln!(conn, r#"{{"op": "shutdown"}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(done.get("shutdown"), Some(&Json::Bool(true)));
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

#[test]
fn oversized_request_line_is_refused_and_the_connection_survives() {
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());

    // Over 1 MiB of garbage on one line: refused without buffering it, and
    // without killing the stream.
    let huge = "x".repeat((1 << 20) + 512);
    writeln!(stdin, "{huge}").unwrap();
    let (_, err) = read_response(&mut reader);
    assert_eq!(status_of(&err), 1);
    assert!(err.get("error").and_then(Json::as_str).unwrap_or("").contains("exceeds"), "{err:?}");

    // The next line parses and solves normally.
    writeln!(stdin, r#"{{"id": 1, "target": "piksrt"}}"#).unwrap();
    let (sets, done) = read_response(&mut reader);
    assert!(!sets.is_empty());
    assert_eq!(status_of(&done), 0);

    drop(stdin);
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

#[test]
fn watchdog_timeout_degrades_to_a_safe_bound_and_keeps_serving() {
    let mut child = spawn_serve(&["--timeout-ms", "500"]);
    let mut stdin = child.stdin.take().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());

    // The slow target cannot finish in 500ms cold: the watchdog cancels it
    // and the request answers with a certified-safe degraded bound.
    writeln!(stdin, r#"{{"id": 1, "target": "{SLOW_TARGET}"}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 2, "{done:?}");
    assert_eq!(done.get("cancelled"), Some(&Json::Bool(true)), "{done:?}");
    let bound = done.get("bound").and_then(Json::as_arr).expect("bound array");
    let lo = bound[0].as_u64().expect("lower");
    let hi = bound[1].as_u64().expect("upper");
    assert!(lo <= hi, "degraded bound must still be well-formed: {done:?}");

    // Fast requests are untouched by the watchdog, and the daemon is not
    // poisoned by the cancellation.
    writeln!(stdin, r#"{{"id": 2, "target": "piksrt"}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 0);
    assert!(done.get("cancelled").is_none());

    drop(stdin);
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

#[test]
fn client_disconnect_cancels_the_inflight_solve() {
    let dir = scratch("gone");
    let sock = dir.join("serve.sock");
    let mut child = spawn_serve(&["--socket", sock.to_str().unwrap()]);
    wait_for_socket(&sock);

    // Start a slow solve, then vanish: the daemon must notice, cancel the
    // request instead of computing into a dead pipe, and keep serving.
    {
        let (mut conn, _reader) = connect(&sock);
        writeln!(conn, r#"{{"id": 1, "target": "{SLOW_TARGET}"}}"#).unwrap();
        wait_for_stats(&sock, "the in-flight request", |s| {
            counter(s, "admission", "in_flight") >= 1
        });
    } // both halves drop here

    // The disconnect is observed promptly — long before the slow solve
    // could have finished on its own — and the slot frees.
    let t0 = Instant::now();
    let stats = wait_for_stats(&sock, "the freed slot", |s| {
        counter(s, "serve", "client_gone") >= 1 && counter(s, "admission", "in_flight") == 0
    });
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "cancellation must beat the full solve: {stats:?}"
    );

    // A cancelled solve never enters the cache: the same target now solves
    // fresh and exact.
    let (mut conn, mut reader) = connect(&sock);
    writeln!(conn, r#"{{"id": 2, "target": "piksrt"}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 0);
    writeln!(conn, r#"{{"op": "shutdown"}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(done.get("shutdown"), Some(&Json::Bool(true)));
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

#[test]
fn sigterm_drains_in_flight_work_flushes_and_exits_zero() {
    let dir = scratch("drain");
    let sock = dir.join("serve.sock");
    let store = dir.join("solves.store");
    let mut child =
        spawn_serve(&["--socket", sock.to_str().unwrap(), "--store", store.to_str().unwrap()]);
    wait_for_socket(&sock);

    let (mut conn, mut reader) = connect(&sock);
    writeln!(conn, r#"{{"id": 1, "target": "piksrt"}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(status_of(&done), 0);

    // SIGTERM mid-stream: the daemon stops accepting, finishes what's in
    // flight, flushes, removes the socket and exits 0 — a drain, not a
    // crash.
    let term =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    assert!(term.success());
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0), "drain must exit cleanly");
    assert!(!sock.exists(), "socket file cleaned up on drain");
    assert!(store.exists(), "store flushed on drain");

    // The acknowledged solve is durable: a cold run replays it entirely.
    let out = Command::new(env!("CARGO_BIN_EXE_cinderella"))
        .args(["analyze", "piksrt", "--store", store.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().find(|l| l.starts_with("store:")).expect("store line");
    assert!(line.contains("misses=0"), "acknowledged solves must replay: {line}");
}

#[test]
fn requests_queue_behind_the_inflight_ceiling_and_run_in_turn() {
    let dir = scratch("queue");
    let sock = dir.join("serve.sock");
    let mut child = spawn_serve(&[
        "--socket",
        sock.to_str().unwrap(),
        "--max-inflight",
        "1",
        "--max-queue",
        "8",
    ]);
    wait_for_socket(&sock);

    // One slow request holds the slot; several fast ones queue behind it
    // and must all be answered (not shed — the queue has room).
    let (mut slow_conn, mut slow_reader) = connect(&sock);
    writeln!(slow_conn, r#"{{"id": 0, "target": "{SLOW_TARGET}"}}"#).unwrap();
    wait_for_stats(&sock, "an in-flight request", |s| counter(s, "admission", "in_flight") >= 1);

    let waiters: Vec<_> = (1..=3)
        .map(|id| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let (mut conn, mut reader) = connect(&sock);
                writeln!(conn, r#"{{"id": {id}, "target": "piksrt"}}"#).unwrap();
                let (_, done) = read_response(&mut reader);
                status_of(&done)
            })
        })
        .collect();
    for w in waiters {
        assert_eq!(w.join().expect("waiter"), 0, "queued requests are answered exactly");
    }
    let (_, done) = read_response(&mut slow_reader);
    assert_eq!(status_of(&done), 0);

    let (mut conn, mut reader) = connect(&sock);
    writeln!(conn, r#"{{"op": "shutdown"}}"#).unwrap();
    let (_, done) = read_response(&mut reader);
    assert_eq!(done.get("shutdown"), Some(&Json::Bool(true)));
    assert_eq!(child.wait().unwrap().code(), Some(0));
}
