//! `cinderella` — the timing-analysis tool of the reproduction, named
//! after the paper's tool ("in recognition of her hard real-time
//! constraint: she had to be back home at the stroke of midnight").
//!
//! ```text
//! cinderella list
//! cinderella cfg <benchmark|file.mc> [--entry NAME]
//! cinderella listing <benchmark|file.mc> [--entry NAME]
//! cinderella analyze <benchmark|file.mc> [--entry NAME]
//!            [--annotations FILE] [--idl FILE] [--infer]
//!            [--machine i960kb|dsp3210] [--cache-split]
//!            [--dump-structural] [--measure]
//! ```
//!
//! `cfg` prints the annotated listing: disassembly, basic blocks with
//! their `x_i` variables and costs, the structural constraints in the
//! paper's notation, and the loops that need bounds. `listing` prints the
//! annotated source in the style of the paper's Fig. 5. `analyze` runs the
//! full IPET estimation and reports the estimated bound, block costs and
//! counts — the outputs the paper describes in §V. `--infer` runs the
//! `ipet-infer` loop-bound inference and merges the derived intervals
//! with any annotations (`=only` drops annotated loop bounds, failing
//! loudly on loops the abstraction cannot bound; `=prefer-annot` lets
//! annotations win); `--idl` accepts Park-style IDL annotations;
//! `--machine dsp3210` selects the paper's §VII port target.
//!
//! `analyze` accepts **multiple targets** in one invocation and a
//! `--jobs N` worker count: all targets' ILPs are batched through the
//! `ipet-pool` work-stealing pool with its content-addressed solve cache,
//! and the per-target reports are printed in argument order. Output is
//! bit-for-bit identical for any `--jobs` value.

mod serve;

use ipet_cfg::InstanceId;
use ipet_core::{
    structural_text, AnalysisBudget, Analyzer, AuditReport, CacheMode, ContextMode, Estimate,
    SolverFaults, TimeBound,
};
use ipet_hw::Machine;
use ipet_pool::SolvePool;
use ipet_sim::measure;
use ipet_store::Store;
use std::process::ExitCode;
use std::sync::Arc;

/// What a successful run proved: `Degraded` means every reported bound is
/// still *safe*, but at least one came from a relaxation or a skipped
/// constraint set rather than an exact solve. `AuditFailed` means the
/// exact-arithmetic certifier rejected at least one reported bound — the
/// result must not be trusted.
pub(crate) enum RunStatus {
    Exact,
    Degraded,
    AuditFailed,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Exit-code contract: 0 = exact result, 2 = safe but degraded bound,
    // 3 = audit rejected a reported bound, 1 = hard error (no usable bound
    // at all).
    match run(&args) {
        Ok(RunStatus::Exact) => ExitCode::SUCCESS,
        Ok(RunStatus::Degraded) => ExitCode::from(2),
        Ok(RunStatus::AuditFailed) => ExitCode::from(3),
        Err(e) => {
            eprintln!("cinderella: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: cinderella <list|cfg|listing|dot|trace|analyze> [target] [options]\n\
     \x20 list                         list bundled benchmarks\n\
     \x20 cfg <bench|file.mc>          print disassembly, CFG and structural constraints\n\
     \x20 listing <bench|file.mc>      print the Fig.-5-style annotated source\n\
     \x20 dot <bench|file.mc>          print the CFGs in Graphviz DOT syntax\n\
     \x20 trace <bench>                print the worst-case block trace\n\
     \x20 analyze <bench|file.mc>...   estimate [t_min, t_max] (one or more targets)\n\
     \x20 serve                        long-running NDJSON analysis daemon (stdin or\n\
     \x20                               --socket PATH; see --store for warm replays)\n\
     serve:   --max-inflight N (concurrent requests; default 4) --max-queue N\n\
     \x20         (waiters before shedding; default 16) --timeout-ms MS\n\
     \x20         (per-request wall-clock watchdog; expiry degrades the bound)\n\
     options: --entry NAME --annotations FILE --idl FILE -O1 --shared\n\
     \x20        --infer[=only|prefer-annot] (derive loop bounds; default merges\n\
     \x20         with annotations taking the tighter interval per loop)\n\
     \x20        --machine i960kb|dsp3210 --cache-split --dump-structural --measure\n\
     \x20        --parametric (sweep the i-cache miss penalty and print each\n\
     \x20         routine's certified WCET bound formula wcet(p) with its\n\
     \x20         validity interval; serial path only)\n\
     \x20        --jobs N (parallel ILP workers; output identical for any N)\n\
     \x20        --no-warm-start (solve every ILP cold; bounds are identical,\n\
     \x20         only solver effort counters change)\n\
     \x20        --solver dense|sparse|auto (LP backend; default auto routes pure\n\
     \x20         flow problems to a network simplex, the rest to a presolved\n\
     \x20         sparse revised simplex; bounds are bit-identical for any choice)\n\
     \x20        --trace-json FILE (write the ipet-trace document of the run)\n\
     \x20        --audit (re-certify every bound in exact integer arithmetic)\n\
     store:   --store FILE (crash-safe persistent solve store: certified replays\n\
     \x20         across runs; bounds are bit-identical with or without it)\n\
     \x20        --no-store (pin the default: never touch a store)\n\
     budget:  --deadline TICKS --max-nodes N --max-sets N --no-degrade\n\
     faults:  --inject-corrupt-witness N --inject-corrupt-bound N\n\
     \x20        (corrupt the Nth solve; the audit must catch it; serial path only)\n\
     \x20        --inject-fail-write N --inject-torn-write N\n\
     \x20        --inject-corrupt-record N --inject-fail-open\n\
     \x20        (store IO faults; need --store; every one degrades to cold\n\
     \x20         solves with identical bounds and exit 0)\n\
     exit status: 0 exact, 2 safe-but-degraded bound, 3 audit rejection, 1 error"
        .to_string()
}

pub(crate) struct Target {
    name: String,
    program: ipet_arch::Program,
    annotations: String,
    source: Option<String>,
    /// The mini-C AST, when the target came through the language
    /// frontend — feeds the AST layer of `--infer`. `.s` targets have
    /// none (the machine-level rule still applies).
    module: Option<ipet_lang::Module>,
    bench: Option<ipet_suite::Benchmark>,
}

fn load_target(
    name: &str,
    entry: Option<&str>,
    ann_file: Option<&str>,
    idl_file: Option<&str>,
    optimize: bool,
) -> Result<Target, String> {
    let read_annotations = |fallback: String| -> Result<String, String> {
        match (ann_file, idl_file) {
            (Some(_), Some(_)) => Err("use --annotations or --idl, not both".into()),
            (Some(f), None) => std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}")),
            (None, Some(f)) => {
                let src = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
                ipet_core::compile_idl(&src).map_err(|e| e.to_string())
            }
            (None, None) => Ok(fallback),
        }
    };
    if name.ends_with(".mc") {
        let src = std::fs::read_to_string(name).map_err(|e| format!("{name}: {e}"))?;
        let entry = entry.unwrap_or("main");
        let level = if optimize { ipet_lang::OptLevel::O1 } else { ipet_lang::OptLevel::O0 };
        let program =
            ipet_lang::compile_with(&src, entry, level).map_err(|e| format!("{name}: {e}"))?;
        let annotations = read_annotations(String::new())?;
        let module = ipet_lang::parse_module(&src).ok();
        Ok(Target {
            name: name.to_string(),
            program,
            annotations,
            source: Some(src),
            module,
            bench: None,
        })
    } else if name.ends_with(".s") {
        let src = std::fs::read_to_string(name).map_err(|e| format!("{name}: {e}"))?;
        let program = ipet_arch::parse_program(&src).map_err(|e| format!("{name}: {e}"))?;
        let annotations = read_annotations(String::new())?;
        Ok(Target {
            name: name.to_string(),
            program,
            annotations,
            source: Some(src),
            module: None,
            bench: None,
        })
    } else {
        let bench = ipet_suite::by_name(name)
            .ok_or_else(|| format!("no benchmark named {name}; try `cinderella list`"))?;
        let program = bench.program().map_err(|e| format!("{name}: {e}"))?;
        let annotations = read_annotations(bench.annotations(&program))?;
        let module = ipet_lang::parse_module(bench.source).ok();
        Ok(Target {
            name: name.to_string(),
            program,
            annotations,
            source: Some(bench.source.to_string()),
            module,
            bench: Some(bench),
        })
    }
}

fn run(args: &[String]) -> Result<RunStatus, String> {
    let mut cmd = None;
    let mut targets: Vec<String> = Vec::new();
    let mut entry = None;
    let mut ann_file = None;
    let mut idl_file = None;
    let mut machine_name = "i960kb".to_string();
    let mut cache_split = false;
    let mut dump_structural = false;
    let mut do_measure = false;
    let mut parametric = false;
    let mut infer: Option<ipet_infer::InferMode> = None;
    let mut optimize = false;
    let mut shared = false;
    let mut jobs = 1usize;
    let mut warm = true;
    let mut trace_json: Option<String> = None;
    let mut audit = false;
    let mut faults = SolverFaults::none();
    let mut budget = AnalysisBudget::default();
    let mut store_path: Option<String> = None;
    let mut no_store = false;
    let mut socket: Option<String> = None;
    let mut io_faults = SolverFaults::none();
    let mut max_inflight = 4usize;
    let mut max_queue = 16usize;
    let mut timeout_ms: Option<u64> = None;

    let parse_num = |flag: &str, v: Option<&String>| -> Result<u64, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
        v.parse::<u64>().map_err(|_| format!("{flag}: `{v}` is not a non-negative integer"))
    };

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => entry = Some(it.next().ok_or("--entry needs a value")?.to_string()),
            "--annotations" => {
                ann_file = Some(it.next().ok_or("--annotations needs a value")?.to_string())
            }
            "--idl" => idl_file = Some(it.next().ok_or("--idl needs a value")?.to_string()),
            "--machine" => machine_name = it.next().ok_or("--machine needs a value")?.to_string(),
            "--infer" => infer = Some(ipet_infer::InferMode::Merge),
            "--shared" => shared = true,
            "-O1" => optimize = true,
            "--cache-split" => cache_split = true,
            "--dump-structural" => dump_structural = true,
            "--measure" => do_measure = true,
            "--parametric" => parametric = true,
            "--deadline" => budget.solve.deadline_ticks = Some(parse_num("--deadline", it.next())?),
            "--max-nodes" => budget.solve.max_nodes = parse_num("--max-nodes", it.next())? as usize,
            "--max-sets" => budget.solve.max_sets = parse_num("--max-sets", it.next())? as usize,
            "--no-degrade" => budget.degrade = false,
            "--jobs" => {
                jobs = parse_num("--jobs", it.next())?.max(1) as usize;
            }
            "--no-warm-start" => warm = false,
            "--solver" => {
                let v = it.next().ok_or("--solver needs a value (dense, sparse or auto)")?;
                let backend = ipet_lp::SolverBackend::parse(v)
                    .ok_or_else(|| format!("--solver: `{v}` is not dense, sparse or auto"))?;
                ipet_lp::set_solver_backend(backend);
            }
            "--trace-json" => {
                trace_json = Some(it.next().ok_or("--trace-json needs a value")?.to_string())
            }
            "--audit" => audit = true,
            "--inject-corrupt-witness" => {
                faults = SolverFaults::corrupt_witness_at(parse_num(
                    "--inject-corrupt-witness",
                    it.next(),
                )?);
            }
            "--inject-corrupt-bound" => {
                faults =
                    SolverFaults::corrupt_bound_at(parse_num("--inject-corrupt-bound", it.next())?);
            }
            "--store" => store_path = Some(it.next().ok_or("--store needs a value")?.to_string()),
            "--no-store" => no_store = true,
            "--socket" => socket = Some(it.next().ok_or("--socket needs a value")?.to_string()),
            "--max-inflight" => {
                max_inflight = parse_num("--max-inflight", it.next())?.max(1) as usize
            }
            "--max-queue" => max_queue = parse_num("--max-queue", it.next())? as usize,
            "--timeout-ms" => timeout_ms = Some(parse_num("--timeout-ms", it.next())?),
            "--inject-fail-write" => {
                io_faults =
                    SolverFaults::fail_write_at(parse_num("--inject-fail-write", it.next())?)
            }
            "--inject-torn-write" => {
                io_faults =
                    SolverFaults::torn_write_at(parse_num("--inject-torn-write", it.next())?)
            }
            "--inject-corrupt-record" => {
                io_faults = SolverFaults::corrupt_record_at(parse_num(
                    "--inject-corrupt-record",
                    it.next(),
                )?)
            }
            "--inject-fail-open" => io_faults = SolverFaults::fail_open(),
            other if other.starts_with("--infer=") => {
                let m = &other["--infer=".len()..];
                infer =
                    Some(ipet_infer::InferMode::parse(m).ok_or_else(|| {
                        format!("--infer={m}: expected only, prefer-annot or merge")
                    })?);
            }
            other if other.starts_with('-') => {
                return Err(format!("unexpected argument {other}\n{}", usage()))
            }
            _ if cmd.is_none() => cmd = Some(a.to_string()),
            _ => targets.push(a.to_string()),
        }
    }

    match cmd.as_deref() {
        Some("list") => {
            println!("{:<16} {:>5}  description", "name", "lines");
            for b in ipet_suite::all() {
                println!("{:<16} {:>5}  {}", b.name, b.source_lines(), b.description);
            }
            Ok(RunStatus::Exact)
        }
        Some("cfg") => {
            let t = load_target(
                single_target(&targets)?,
                entry.as_deref(),
                ann_file.as_deref(),
                idl_file.as_deref(),
                optimize,
            )?;
            print_cfg(&t.program, &machine_name).map(|()| RunStatus::Exact)
        }
        Some("trace") => {
            let t = load_target(
                single_target(&targets)?,
                entry.as_deref(),
                ann_file.as_deref(),
                idl_file.as_deref(),
                optimize,
            )?;
            let b = t
                .bench
                .as_ref()
                .ok_or("trace requires a bundled benchmark (it carries the data sets)")?;
            let machine = machine_by_name(&machine_name)?;
            let mut sim =
                ipet_sim::Simulator::new(&t.program, machine, ipet_sim::SimConfig::default());
            for (name, data) in (b.worst_seeds)() {
                sim.seed_global(name, &data).map_err(|e| e.to_string())?;
            }
            let (result, trace) = sim.run_traced(b.args_worst, 100).map_err(|e| e.to_string())?;
            println!(
                "worst-case block trace (first {} of {} block entries):",
                trace.len(),
                result.block_counts.values().sum::<u64>()
            );
            for ev in &trace {
                println!(
                    "  cycle {:>8}  {}  x{}",
                    ev.cycle,
                    t.program.functions[ev.func.0].name,
                    ev.block.0 + 1
                );
            }
            println!("total: {} cycles, {} instructions", result.cycles, result.steps);
            Ok(RunStatus::Exact)
        }
        Some("dot") => {
            let t = load_target(
                single_target(&targets)?,
                entry.as_deref(),
                ann_file.as_deref(),
                idl_file.as_deref(),
                optimize,
            )?;
            let analyzer =
                Analyzer::new(&t.program, Machine::i960kb()).map_err(|e| e.to_string())?;
            let mut seen = std::collections::HashSet::new();
            for i in 0..analyzer.instances().len() {
                let cfg = analyzer.instances().cfg(InstanceId(i));
                if seen.insert(cfg.func) {
                    println!("{}", cfg.to_dot());
                }
            }
            Ok(RunStatus::Exact)
        }
        Some("listing") => {
            let t = load_target(
                single_target(&targets)?,
                entry.as_deref(),
                ann_file.as_deref(),
                idl_file.as_deref(),
                optimize,
            )?;
            listing(&t).map(|()| RunStatus::Exact)
        }
        Some("serve") => {
            if !targets.is_empty() {
                return Err("serve takes no targets; requests arrive as NDJSON".into());
            }
            if faults.armed() {
                return Err("--inject-corrupt-* solve faults need `analyze` (serial path)".into());
            }
            serve::serve(serve::ServeConfig {
                store_path: if no_store { None } else { store_path },
                socket,
                jobs,
                machine_name,
                budget,
                warm,
                audit,
                io_faults,
                max_inflight,
                max_queue,
                timeout_ms,
            })
        }
        Some("analyze") => {
            if targets.is_empty() {
                return Err(usage());
            }
            // Fail fast on an unwritable `--trace-json` destination: the
            // document is written after the analysis, and discovering a
            // missing directory only then would waste the whole run.
            if let Some(path) = &trace_json {
                validate_output_path(path, "--trace-json")?;
            }
            // Install the recorder before compiling so the lang/cfg phases
            // of `load_target` are captured too. Without `--trace-json`
            // nothing is installed and every trace helper stays a no-op.
            let recorder = trace_json.as_ref().map(|_| {
                let r = ipet_trace::install();
                r.reset();
                r
            });
            let loaded: Vec<Target> = targets
                .iter()
                .map(|name| {
                    load_target(
                        name,
                        entry.as_deref(),
                        ann_file.as_deref(),
                        idl_file.as_deref(),
                        optimize,
                    )
                })
                .collect::<Result<_, _>>()?;
            // The persistent store rides the pooled path (it is a pool
            // tier); a store-backed run therefore excludes the serial-only
            // features, mirroring the multi-target restrictions below.
            let store = if let (Some(path), false) = (&store_path, no_store) {
                if do_measure || dump_structural || parametric {
                    return Err("--store needs the pooled path; drop \
                         --measure/--dump-structural/--parametric"
                        .into());
                }
                if faults.armed() {
                    return Err("--store cannot combine with --inject-corrupt-* solve faults \
                         (they need the serial path)"
                        .into());
                }
                Some(Arc::new(Store::open_with_faults(path, io_faults.clone())))
            } else {
                if io_faults.io_armed() {
                    return Err("--inject-fail-write/--inject-torn-write/\
                         --inject-corrupt-record/--inject-fail-open require --store"
                        .into());
                }
                None
            };
            let mut certificates: Vec<(String, AuditReport)> = Vec::new();
            let mut provenances: Vec<(String, Vec<ipet_core::LoopProvenance>)> = Vec::new();
            let status = if loaded.len() == 1 && jobs == 1 && store.is_none() {
                // The single-target serial path keeps the full feature set
                // (`--measure`, `--dump-structural`, fault injection).
                analyze(
                    &loaded[0],
                    &machine_name,
                    cache_split,
                    dump_structural,
                    do_measure,
                    parametric,
                    infer,
                    shared,
                    warm,
                    &budget,
                    audit,
                    &mut faults,
                    &mut certificates,
                    &mut provenances,
                )
            } else {
                if do_measure || dump_structural || parametric {
                    return Err("--measure, --dump-structural and --parametric need the \
                         serial path (one target, --jobs 1)"
                        .into());
                }
                if faults.armed() {
                    return Err("--inject-* fault hooks need the serial path \
                         (one target, --jobs 1)"
                        .into());
                }
                analyze_pooled(
                    &loaded,
                    &machine_name,
                    cache_split,
                    infer,
                    shared,
                    warm,
                    jobs,
                    &budget,
                    audit,
                    store.as_ref(),
                    &mut certificates,
                    &mut provenances,
                )
            };
            // Write the trace even for degraded runs — the document is most
            // interesting exactly when budgets bit. With `--audit` the
            // trace document is embedded in an `ipet-audit-v1` wrapper that
            // carries the per-set certificates alongside it.
            if let (Some(path), Some(recorder)) = (&trace_json, recorder) {
                let trace = recorder.snapshot().to_json();
                let mut doc = if audit { audit_document(trace, &certificates) } else { trace };
                // With `--infer`, the per-loop provenance rows ride along
                // in the document so consumers can audit where every
                // bound came from.
                if infer.is_some() {
                    doc = with_infer_section(doc, &provenances);
                }
                std::fs::write(path, doc.render_pretty()).map_err(|e| format!("{path}: {e}"))?;
            }
            status
        }
        _ => Err(usage()),
    }
}

/// Rejects an output path whose parent directory does not exist, naming
/// the flag, so the failure surfaces before any analysis work is spent.
fn validate_output_path(path: &str, flag: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        if !dir.as_os_str().is_empty() && !dir.is_dir() {
            return Err(format!("{flag} {path}: directory {} does not exist", dir.display()));
        }
    }
    if p.is_dir() {
        return Err(format!("{flag} {path}: is a directory"));
    }
    Ok(())
}

/// The deterministic one-line store report printed after a store-backed
/// run (scripts filter it with `grep -v '^store:'` alongside the pool
/// line when byte-comparing outputs across runs).
pub(crate) fn store_summary(store: &Store) -> String {
    let s = store.stats();
    format!(
        "store: mode={} loaded={} quarantined={} hits={} misses={} rejected={} \
         invalidated={} flushes={} write_failed={}",
        store.mode().label(),
        s.loaded,
        s.quarantined,
        s.hits,
        s.misses,
        s.rejected,
        s.invalidated,
        s.flushes,
        s.write_failed
    )
}

fn single_target(targets: &[String]) -> Result<&str, String> {
    match targets {
        [one] => Ok(one),
        [] => Err(usage()),
        _ => Err("this command takes exactly one target".into()),
    }
}

fn machine_by_name(name: &str) -> Result<Machine, String> {
    Machine::by_name(name).ok_or_else(|| format!("unknown machine {name} (i960kb, dsp3210)"))
}

fn print_cfg(program: &ipet_arch::Program, machine_name: &str) -> Result<(), String> {
    let machine = machine_by_name(machine_name)?;
    let analyzer = Analyzer::new(program, machine).map_err(|e| e.to_string())?;
    let instances = analyzer.instances();
    println!("{}", ipet_arch::disassemble_program(program));

    let mut seen = std::collections::HashSet::new();
    for i in 0..instances.len() {
        let inst = InstanceId(i);
        let cfg = instances.cfg(inst);
        if !seen.insert(cfg.func) {
            continue;
        }
        println!("{}", cfg.render());
        println!("  block costs (cycles):");
        for b in 0..cfg.num_blocks() {
            let c = analyzer.block_cost(cfg.func, ipet_cfg::BlockId(b));
            let blk = &cfg.blocks[b];
            let line = program.functions[cfg.func.0]
                .src_line(blk.start)
                .map(|l| format!(" line {l}"))
                .unwrap_or_default();
            println!(
                "    x{:<3} [{:3}..{:3}) best={:<5} worst={:<5} warm={:<5}{line}",
                b + 1,
                blk.start,
                blk.end,
                c.best,
                c.worst_cold,
                c.worst_warm
            );
        }
        println!("{}", structural_text(instances, inst));
    }

    let loops = analyzer.loops_needing_bounds();
    if loops.is_empty() {
        println!("no loops: no bound annotations needed");
    } else {
        println!("loops needing bounds:");
        for (f, h) in loops {
            println!("  fn {f} {{ loop x{} in [?, ?]; }}", h.0 + 1);
        }
    }
    Ok(())
}

/// Prints the Fig.-5-style annotated source: every source line that
/// starts a basic block is prefixed with that block's x-variable.
fn listing(t: &Target) -> Result<(), String> {
    let source = t.source.as_deref().ok_or("no source available for listing")?;
    let machine = Machine::i960kb();
    let analyzer = Analyzer::new(&t.program, machine).map_err(|e| e.to_string())?;
    let instances = analyzer.instances();
    // line -> x-variable labels across all functions.
    let mut marks: std::collections::BTreeMap<u32, Vec<String>> = std::collections::BTreeMap::new();
    let mut seen = std::collections::HashSet::new();
    for i in 0..instances.len() {
        let cfg = instances.cfg(ipet_cfg::InstanceId(i));
        if !seen.insert(cfg.func) {
            continue;
        }
        let function = &t.program.functions[cfg.func.0];
        for (bi, blk) in cfg.blocks.iter().enumerate() {
            if let Some(line) = function.src_line(blk.start) {
                marks.entry(line).or_default().push(format!("{}:x{}", cfg.func_name, bi + 1));
            }
        }
    }
    for (n, text) in source.lines().enumerate() {
        let line = n as u32 + 1;
        let mark = marks.get(&line).map(|m| m.join(",")).unwrap_or_default();
        println!("{mark:>24} | {text}");
    }
    Ok(())
}

/// The `--audit --trace-json` wrapper document: the ordinary trace document
/// embedded next to the per-target certificate reports, under a schema tag
/// of its own so consumers cannot mistake it for a bare trace.
fn audit_document(
    trace: ipet_trace::Json,
    certificates: &[(String, AuditReport)],
) -> ipet_trace::Json {
    use ipet_trace::Json;
    let targets = certificates
        .iter()
        .map(|(name, report)| {
            let sets = report
                .sets
                .iter()
                .map(|cert| {
                    Json::Obj(vec![
                        ("set".into(), Json::Num(cert.set as f64)),
                        ("wcet".into(), Json::Str(cert.wcet.describe())),
                        ("bcet".into(), Json::Str(cert.bcet.describe())),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("target".into(), Json::Str(name.clone())),
                ("certified".into(), Json::Num(report.certified() as f64)),
                ("rejected".into(), Json::Num(report.rejected() as f64)),
                ("sets".into(), Json::Arr(sets)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str("ipet-audit-v1".into())),
        ("certificates".into(), Json::Arr(targets)),
        ("trace".into(), trace),
    ])
}

/// Runs `ipet-infer` over a loaded target and returns the merged
/// annotation set, printing the derived bounds and any
/// annotation/inference disagreements.
fn infer_annotations(
    t: &Target,
    analyzer: &Analyzer<'_>,
    user: &ipet_core::Annotations,
    mode: ipet_infer::InferMode,
) -> Result<ipet_core::Annotations, String> {
    let outcome = ipet_infer::infer_and_merge(t.module.as_ref(), analyzer, user, mode)
        .map_err(|e| e.to_string())?;
    print!("{}", render_infer(&outcome));
    Ok(outcome.annotations)
}

/// The deterministic `--infer` stdout section: derived bounds in
/// annotation syntax, the outcome tallies, and any disagreements.
fn render_infer(outcome: &ipet_infer::InferOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let derived: Vec<_> = outcome
        .annotations
        .provenance
        .iter()
        .filter(|p| p.source != ipet_core::BoundSource::Annotated)
        .collect();
    if !derived.is_empty() {
        let _ = writeln!(out, "automatically derived loop bounds:");
        for p in derived {
            let _ = writeln!(
                out,
                "  fn {} {{ loop x{} in [{}, {}]; }}  # {}",
                p.func,
                p.header + 1,
                p.lo,
                p.hi,
                p.source.label()
            );
        }
    }
    let c = outcome.counts;
    let _ = writeln!(
        out,
        "loop-bound inference: {} loop(s): {} inferred, {} annotated, {} failed, {} tightened",
        c.total, c.inferred, c.annotated, c.failed, c.tightened
    );
    for d in &outcome.disagreements {
        let _ = writeln!(out, "  disagreement: {d}");
    }
    out
}

/// Appends the per-target loop-bound provenance to a `--trace-json`
/// document (works on both the bare trace and the audit wrapper).
fn with_infer_section(
    doc: ipet_trace::Json,
    provenances: &[(String, Vec<ipet_core::LoopProvenance>)],
) -> ipet_trace::Json {
    use ipet_trace::Json;
    let targets = provenances
        .iter()
        .map(|(name, rows)| {
            let loops = rows
                .iter()
                .map(|p| {
                    let mut kv = vec![
                        ("func".into(), Json::Str(p.func.clone())),
                        ("header".into(), Json::Num((p.header + 1) as f64)),
                        ("lo".into(), Json::Num(p.lo as f64)),
                        ("hi".into(), Json::Num(p.hi as f64)),
                        ("source".into(), Json::Str(p.source.label())),
                    ];
                    if let Some(line) = p.source.line() {
                        kv.push(("line".into(), Json::Num(line as f64)));
                    }
                    Json::Obj(kv)
                })
                .collect();
            Json::Obj(vec![
                ("target".into(), Json::Str(name.clone())),
                ("loops".into(), Json::Arr(loops)),
            ])
        })
        .collect();
    match doc {
        Json::Obj(mut kv) => {
            kv.push(("infer".into(), Json::Arr(targets)));
            Json::Obj(kv)
        }
        other => other,
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze(
    t: &Target,
    machine_name: &str,
    cache_split: bool,
    dump_structural: bool,
    do_measure: bool,
    parametric: bool,
    infer: Option<ipet_infer::InferMode>,
    shared: bool,
    warm: bool,
    budget: &AnalysisBudget,
    audit: bool,
    faults: &mut SolverFaults,
    certificates: &mut Vec<(String, AuditReport)>,
    provenances: &mut Vec<(String, Vec<ipet_core::LoopProvenance>)>,
) -> Result<RunStatus, String> {
    let machine = machine_by_name(machine_name)?;
    let mode = if cache_split { CacheMode::FirstIterSplit } else { CacheMode::AllMiss };
    let context = if shared { ContextMode::Shared } else { ContextMode::PerCallSite };
    let analyzer = Analyzer::new_with_context(&t.program, machine, context)
        .map_err(|e| e.to_string())?
        .with_cache_mode(mode)
        .with_warm_start(warm);

    if !t.annotations.is_empty() {
        println!("functionality constraints:\n{}", t.annotations.trim_end());
    }
    let mut anns = ipet_core::parse_annotations(&t.annotations).map_err(|e| e.to_string())?;
    if let Some(mode) = infer {
        anns = infer_annotations(t, &analyzer, &anns, mode)?;
        provenances.push((t.name.clone(), anns.provenance.clone()));
    }
    let (est, report) = if audit {
        let (est, report) = analyzer
            .analyze_audited_with_faults(&anns, budget, faults)
            .map_err(|e| e.to_string())?;
        (est, Some(report))
    } else {
        let est = analyzer
            .analyze_parsed_with_faults(&anns, budget, faults)
            .map_err(|e| e.to_string())?;
        (est, None)
    };
    print!("{}", est.render());
    if let Some(report) = &report {
        println!("certificate report:");
        print!("{}", report.render());
    }

    if dump_structural {
        let instances = analyzer.instances();
        for i in 0..instances.len() {
            println!("{}", structural_text(instances, InstanceId(i)));
        }
    }

    if parametric {
        parametric_report(t, machine, mode, context, warm, &anns, budget)?;
    }

    if do_measure {
        let b = t
            .bench
            .as_ref()
            .ok_or("--measure requires a bundled benchmark (it carries the data sets)")?;
        let worst = measure(&t.program, machine, &(b.worst_seeds)(), b.args_worst, true)
            .map_err(|e| e.to_string())?;
        let best = measure(&t.program, machine, &(b.best_seeds)(), b.args_best, false)
            .map_err(|e| e.to_string())?;
        let measured = TimeBound { lower: best.cycles, upper: worst.cycles };
        let calc = analyzer.calculated_bound(&best.block_counts, &worst.block_counts);
        println!("calculated bound: [{}, {}] cycles", calc.lower, calc.upper);
        println!("measured bound:   [{}, {}] cycles", measured.lower, measured.upper);
        let (pl, pu) = est.bound.pessimism_against(measured);
        println!("pessimism vs measured: [{pl:.2}, {pu:.2}]");
        if !est.bound.encloses(measured) {
            return Err("estimated bound does not enclose the measured bound".into());
        }
    }

    let audit_failed = report.as_ref().is_some_and(|r| !r.all_certified());
    if let Some(report) = report {
        certificates.push((t.name.clone(), report));
    }
    if audit_failed {
        eprintln!("cinderella: audit rejected a reported bound — the result must not be trusted");
        return Ok(RunStatus::AuditFailed);
    }
    if est.quality.is_exact() {
        Ok(RunStatus::Exact)
    } else {
        // Diagnostics on stderr so scripted callers parsing stdout see
        // only the report; the exit status (2) carries the same signal.
        eprintln!(
            "cinderella: bound is safe but degraded (quality: {}; {} sets skipped, {} relaxed)",
            est.quality,
            est.sets_skipped,
            est.degraded_sets.len()
        );
        Ok(RunStatus::Degraded)
    }
}

/// `--parametric`: sweeps the i-cache miss penalty over a small grid
/// (always including the selected machine's own penalty), solving
/// concretely only where the chord certificate cannot extend an existing
/// witness line (`ipet_lp::parametric`, DESIGN.md §16), and prints the
/// certified WCET bound formulas with their validity intervals.
fn parametric_report(
    t: &Target,
    machine: Machine,
    mode: CacheMode,
    context: ContextMode,
    warm: bool,
    anns: &ipet_core::Annotations,
    budget: &AnalysisBudget,
) -> Result<(), String> {
    let mut grid: Vec<u64> = vec![0, 2, 4, 8, 16, 32];
    if !grid.contains(&machine.miss_penalty) {
        grid.push(machine.miss_penalty);
        grid.sort_unstable();
    }
    let mut probe = |mp: u64| -> Result<ipet_lp::Probe, String> {
        let m = Machine { miss_penalty: mp, ..machine };
        let analyzer = Analyzer::new_with_context(&t.program, m, context)
            .map_err(|e| e.to_string())?
            .with_cache_mode(mode)
            .with_warm_start(warm);
        let est = analyzer
            .analyze_parsed_with_faults(anns, budget, &mut SolverFaults::none())
            .map_err(|e| e.to_string())?;
        let line = est.wcet_formula.as_ref().and_then(|f| {
            let (constant, slope) = f.specialize(ipet_core::P_MISS, &m.param_point())?;
            Some(ipet_lp::BoundFormula { constant, slope })
        });
        Ok(ipet_lp::Probe { values: vec![est.bound.upper as i128], formulas: vec![line] })
    };
    let sweep = ipet_lp::parametric::sweep_grid(&grid, &mut probe)?;
    println!("parametric WCET vs i-cache miss penalty (base penalty {}):", machine.miss_penalty);
    for (i, &mp) in grid.iter().enumerate() {
        let how = if sweep.formulas[i].first().copied().flatten().is_some() {
            ""
        } else {
            "  (concrete solve, no certified formula)"
        };
        println!("  penalty {mp:>3}: wcet {}{how}", sweep.values[i][0]);
    }
    let regions = sweep.regions(0);
    if regions.is_empty() {
        println!("no certified bound formula (degraded or non-exact analysis)");
    } else {
        println!("certified bound formulas (validity on the swept grid):");
        for (s, e, f) in &regions {
            println!("  p in [{}, {}]: wcet(p) = {}", grid[*s], grid[*e], f);
        }
    }
    println!(
        "parametric: {} grid point(s): {} concrete solve(s), {} formula hit(s), \
         {} region exit(s)",
        grid.len(),
        sweep.resolves,
        sweep.region_hits,
        sweep.region_exits
    );
    let base = Analyzer::new_with_context(&t.program, machine, context)
        .map_err(|e| e.to_string())?
        .with_cache_mode(mode)
        .with_warm_start(warm);
    let model = base.wcet_loop_model_parsed(anns).map_err(|e| e.to_string())?;
    if !model.is_constant() {
        println!(
            "loop-bound model (first-order around the annotated bounds, \
             not region-certified):"
        );
        println!("  wcet = {model}");
    }
    Ok(())
}

/// Multi-target / parallel `analyze`: builds every target's job graph
/// ([`Analyzer::plan`]), batches all ILPs through one `ipet-pool`
/// [`SolvePool`], and prints the per-target reports in argument order.
///
/// Everything printed on stdout is deterministic — bounds, qualities, and
/// the pool summary (solve/replay counts and total ticks are pure
/// functions of the job list and budget) — so the output is bit-for-bit
/// identical for any `--jobs` value.
#[allow(clippy::too_many_arguments)]
fn analyze_pooled(
    targets: &[Target],
    machine_name: &str,
    cache_split: bool,
    infer: Option<ipet_infer::InferMode>,
    shared: bool,
    warm: bool,
    jobs: usize,
    budget: &AnalysisBudget,
    audit: bool,
    store: Option<&Arc<Store>>,
    certificates: &mut Vec<(String, AuditReport)>,
    provenances: &mut Vec<(String, Vec<ipet_core::LoopProvenance>)>,
) -> Result<RunStatus, String> {
    let machine = machine_by_name(machine_name)?;
    let mode = if cache_split { CacheMode::FirstIterSplit } else { CacheMode::AllMiss };
    let context = if shared { ContextMode::Shared } else { ContextMode::PerCallSite };

    // Planning borrows each target's program only transiently: the plans
    // own their jobs, so the analyzers are dropped before solving starts.
    // Inference also runs here, in the serial planning phase, so its
    // counters and printed summaries are identical for any `--jobs`.
    let mut plans = Vec::with_capacity(targets.len());
    let mut infer_sections = Vec::with_capacity(targets.len());
    for t in targets {
        let analyzer = Analyzer::new_with_context(&t.program, machine, context)
            .map_err(|e| format!("{}: {e}", t.name))?
            .with_cache_mode(mode)
            .with_warm_start(warm);
        let mut anns =
            ipet_core::parse_annotations(&t.annotations).map_err(|e| format!("{}: {e}", t.name))?;
        let mut section = String::new();
        if let Some(mode) = infer {
            let outcome = ipet_infer::infer_and_merge(t.module.as_ref(), &analyzer, &anns, mode)
                .map_err(|e| format!("{}: {e}", t.name))?;
            section = render_infer(&outcome);
            anns = outcome.annotations;
            provenances.push((t.name.clone(), anns.provenance.clone()));
        }
        plans.push(analyzer.plan(&anns, budget).map_err(|e| format!("{}: {e}", t.name))?);
        infer_sections.push(section);
    }

    let mut pool = SolvePool::new(jobs);
    if let Some(store) = store {
        pool = pool.with_store(Arc::clone(store));
    }
    // With `--audit`, each plan's verdicts fold through the certifier; the
    // estimates are bit-identical either way (the auditor only observes).
    type PooledResult = Result<(Estimate, Option<AuditReport>), String>;
    let (results, total_ticks): (Vec<PooledResult>, u64) = if audit {
        let batch = pool.run_plans_audited(&plans, &budget.solve);
        let results = batch
            .results
            .into_iter()
            .map(|r| r.map(|(est, report)| (est, Some(report))).map_err(|e| e.to_string()))
            .collect();
        (results, batch.report.total_ticks)
    } else {
        let batch = pool.run_plans(&plans, &budget.solve);
        let results = batch
            .estimates
            .into_iter()
            .map(|r| r.map(|est| (est, None)).map_err(|e| e.to_string()))
            .collect();
        (results, batch.report.total_ticks)
    };

    let mut degraded = false;
    let mut audit_failed = false;
    let mut failures = Vec::new();
    for (t, (result, infer_section)) in targets.iter().zip(results.iter().zip(&infer_sections)) {
        if targets.len() > 1 {
            println!("=== {} ===", t.name);
        }
        if !t.annotations.is_empty() {
            println!("functionality constraints:\n{}", t.annotations.trim_end());
        }
        print!("{infer_section}");
        match result {
            Ok((est, report)) => {
                print!("{}", est.render());
                if let Some(report) = report {
                    println!("certificate report:");
                    print!("{}", report.render());
                    if !report.all_certified() {
                        audit_failed = true;
                        eprintln!(
                            "cinderella: {}: audit rejected a reported bound — \
                             the result must not be trusted",
                            t.name
                        );
                    }
                    certificates.push((t.name.clone(), report.clone()));
                }
                if !est.quality.is_exact() {
                    degraded = true;
                    eprintln!(
                        "cinderella: {}: bound is safe but degraded \
                         (quality: {}; {} sets skipped, {} relaxed)",
                        t.name,
                        est.quality,
                        est.sets_skipped,
                        est.degraded_sets.len()
                    );
                }
            }
            Err(e) => failures.push(format!("{}: {e}", t.name)),
        }
    }
    let stats = pool.cache_stats();
    println!(
        "pool: {jobs} worker(s), {} solved, {} replayed ({} rejected near-hits), {} ticks",
        stats.misses, stats.hits, stats.rejected, total_ticks
    );
    if let Some(store) = store {
        // Flush before reporting so the summary reflects what actually
        // reached disk. A failed flush degrades, it never fails the run:
        // every bound above was already computed and certified.
        if let Err(e) = store.flush() {
            eprintln!("cinderella: store flush failed ({e}); results were solved cold-safe");
        }
        println!("{}", store_summary(store));
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(if audit_failed {
        RunStatus::AuditFailed
    } else if degraded {
        RunStatus::Degraded
    } else {
        RunStatus::Exact
    })
}
