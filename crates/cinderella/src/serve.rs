//! `cinderella serve` — a long-running analysis daemon.
//!
//! Requests arrive as newline-delimited JSON on stdin (default) or on a
//! unix socket (`--socket PATH`, connections served sequentially); every
//! response is one JSON line. A persistent [`SolvePool`] — optionally
//! backed by a crash-safe [`Store`] — lives across requests, so repeated
//! analyses of the same programs replay certified solves instead of
//! re-solving.
//!
//! ## Protocol
//!
//! Request: `{"id": ..., "target": "piksrt", ...}` with optional fields
//! `entry`, `annotations` (extra constraint text, appended), `infer`
//! (`true` for merge mode, or `"only"` / `"prefer-annot"` / `"merge"`),
//! `machine`, `deadline` (ticks, per-request solve budget), `audit`
//! (bool). `{"op": "shutdown"}` stops the daemon (mainly for socket
//! mode; on stdin, EOF does the same).
//!
//! Response stream per request: one line per surviving constraint set
//! (`{"id", "set", "wcet", "bcet", "quality"}`), then a final line with
//! `"done": true` and a `"status"` carrying the CLI's exit-code contract —
//! 0 exact, 2 safe-but-degraded, 3 audit rejection, 1 error. When
//! inference ran, the done line carries an `"infer"` object with the
//! loop-outcome tallies (`total`/`inferred`/`annotated`/`failed`/
//! `tightened`). Request failures (unknown target, bad annotations, a
//! panic) produce a status-1 final line and the daemon keeps serving.
//!
//! ## Crash safety
//!
//! The store is flushed write-through for every request — before its
//! response lines are written, so acknowledgment implies durability — and
//! each flush is an atomic whole-file replacement. Killing the daemon at
//! any moment —
//! including SIGKILL, which cannot be handled — therefore loses at most
//! the in-flight request's solves; everything acknowledged by a `done`
//! line is already on disk. On EOF / shutdown the store is flushed one
//! final time before exit.

use crate::{machine_by_name, store_summary, RunStatus};
use ipet_core::{AnalysisBudget, Estimate};
use ipet_pool::SolvePool;
use ipet_store::Store;
use ipet_trace::Json;
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

pub(crate) struct ServeConfig {
    pub store_path: Option<String>,
    pub socket: Option<String>,
    pub jobs: usize,
    pub machine_name: String,
    pub budget: AnalysisBudget,
    pub warm: bool,
    /// Default audit policy; a request's `"audit"` field overrides it.
    pub audit: bool,
    pub io_faults: ipet_core::SolverFaults,
}

pub(crate) fn serve(cfg: ServeConfig) -> Result<RunStatus, String> {
    let store = cfg
        .store_path
        .as_ref()
        .map(|p| Arc::new(Store::open_with_faults(p, cfg.io_faults.clone())));
    if let Some(store) = &store {
        eprintln!("cinderella: serve: {}", store_summary(store));
    }
    let mut pool = SolvePool::new(cfg.jobs);
    if let Some(store) = &store {
        pool = pool.with_store(Arc::clone(store));
    }

    match cfg.socket.clone() {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            serve_stream(stdin.lock(), &mut out, &pool, store.as_ref(), &cfg)?;
        }
        Some(path) => {
            // A stale socket file from a killed daemon would make bind
            // fail; the advisory store lock already guards against two
            // *live* daemons sharing a store.
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .map_err(|e| format!("--socket {path}: {e}"))?;
            eprintln!("cinderella: serve: listening on {path}");
            // Connections are served sequentially: the pool parallelizes
            // *within* a request, and the protocol is strictly
            // request/response, so concurrent connections would only
            // interleave output streams.
            loop {
                let (conn, _) = listener.accept().map_err(|e| format!("accept: {e}"))?;
                let reader = BufReader::new(conn.try_clone().map_err(|e| e.to_string())?);
                let mut writer = conn;
                if !serve_stream(reader, &mut writer, &pool, store.as_ref(), &cfg)? {
                    break;
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    if let Some(store) = &store {
        if let Err(e) = store.flush() {
            eprintln!("cinderella: serve: final store flush failed ({e})");
        }
        eprintln!("cinderella: serve: {}", store_summary(store));
    }
    Ok(RunStatus::Exact)
}

/// Serves one NDJSON stream. Returns `Ok(true)` when the stream ended
/// (EOF — keep accepting in socket mode) and `Ok(false)` on an explicit
/// shutdown request.
fn serve_stream(
    reader: impl BufRead,
    out: &mut impl Write,
    pool: &SolvePool,
    store: Option<&Arc<Store>>,
    cfg: &ServeConfig,
) -> Result<bool, String> {
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // connection dropped mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        let (responses, shutdown) = handle_line(&line, pool, cfg);
        // Write-through, and strictly *before* the response lines go out:
        // once the client has seen this request's `done` line, its solves
        // are already durable, so a kill at any moment — even right after
        // the acknowledgment — loses nothing that was acknowledged.
        if let Some(store) = store {
            if let Err(e) = store.flush() {
                eprintln!("cinderella: serve: store flush failed ({e}); continuing in memory");
            }
        }
        for r in responses {
            let _ = writeln!(out, "{}", r.render());
        }
        let _ = out.flush();
        if shutdown {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Parses and executes one request line, panics included: a panicking
/// analysis yields a status-1 response, never a dead daemon.
fn handle_line(line: &str, pool: &SolvePool, cfg: &ServeConfig) -> (Vec<Json>, bool) {
    let req = match ipet_trace::parse_json(line) {
        Ok(v) => v,
        Err(e) => return (vec![error_response(&Json::Null, &format!("bad request: {e}"))], false),
    };
    if req.get("op").and_then(Json::as_str) == Some("shutdown") {
        let done = Json::Obj(vec![
            ("done".into(), Json::Bool(true)),
            ("status".into(), Json::Num(0.0)),
            ("shutdown".into(), Json::Bool(true)),
        ]);
        return (vec![done], true);
    }
    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let result = catch_unwind(AssertUnwindSafe(|| run_request(&req, pool, cfg)));
    match result {
        Ok(Ok(responses)) => (responses, false),
        Ok(Err(e)) => (vec![error_response(&id, &e)], false),
        Err(_) => (
            vec![error_response(&id, "internal panic; request isolated, daemon still serving")],
            false,
        ),
    }
}

fn error_response(id: &Json, message: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("done".into(), Json::Bool(true)),
        ("status".into(), Json::Num(1.0)),
        ("error".into(), Json::Str(message.into())),
    ])
}

fn opt_num(v: Option<u64>) -> Json {
    v.map(|n| Json::Num(n as f64)).unwrap_or(Json::Null)
}

/// Runs one analysis request against the shared pool, returning the
/// per-set lines plus the final `done` line.
fn run_request(req: &Json, pool: &SolvePool, cfg: &ServeConfig) -> Result<Vec<Json>, String> {
    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let target = req
        .get("target")
        .and_then(Json::as_str)
        .ok_or("request needs a \"target\" string (benchmark name or .mc/.s path)")?;
    let entry = req.get("entry").and_then(Json::as_str);
    let machine_name =
        req.get("machine").and_then(Json::as_str).unwrap_or(&cfg.machine_name).to_string();
    let machine = machine_by_name(&machine_name)?;
    let audit = match req.get("audit") {
        Some(Json::Bool(b)) => *b,
        _ => cfg.audit,
    };
    let infer = match req.get("infer") {
        Some(Json::Bool(true)) => Some(ipet_infer::InferMode::Merge),
        Some(Json::Str(s)) => Some(
            ipet_infer::InferMode::parse(s)
                .ok_or_else(|| format!("\"infer\": {s}: expected only, prefer-annot or merge"))?,
        ),
        _ => None,
    };
    let mut budget = cfg.budget;
    if let Some(d) = req.get("deadline").and_then(Json::as_u64) {
        budget.solve.deadline_ticks = Some(d);
    }

    let t = crate::load_target(target, entry, None, None, false)?;
    let analyzer = ipet_core::Analyzer::new(&t.program, machine)
        .map_err(|e| e.to_string())?
        .with_warm_start(cfg.warm);
    let mut annotations = t.annotations.clone();
    if let Some(extra) = req.get("annotations").and_then(Json::as_str) {
        annotations.push('\n');
        annotations.push_str(extra);
    }
    let mut anns = ipet_core::parse_annotations(&annotations).map_err(|e| e.to_string())?;
    let mut infer_counts = None;
    if let Some(mode) = infer {
        let outcome = ipet_infer::infer_and_merge(t.module.as_ref(), &analyzer, &anns, mode)
            .map_err(|e| e.to_string())?;
        anns = outcome.annotations;
        infer_counts = Some(outcome.counts);
    }
    let plan = analyzer.plan(&anns, &budget).map_err(|e| e.to_string())?;
    let plans = [plan];

    let (est, audit_failed): (Estimate, bool) = if audit {
        let batch = pool.run_plans_audited(&plans, &budget.solve);
        let (est, report) =
            batch.results.into_iter().next().expect("one plan").map_err(|e| e.to_string())?;
        let failed = !report.all_certified();
        (est, failed)
    } else {
        let batch = pool.run_plans(&plans, &budget.solve);
        let est =
            batch.estimates.into_iter().next().expect("one plan").map_err(|e| e.to_string())?;
        (est, false)
    };

    let mut responses: Vec<Json> = est
        .sets
        .iter()
        .map(|set| {
            Json::Obj(vec![
                ("id".into(), id.clone()),
                ("set".into(), Json::Num(set.index as f64)),
                ("wcet".into(), opt_num(set.wcet)),
                ("bcet".into(), opt_num(set.bcet)),
                ("quality".into(), Json::Str(set.quality.to_string())),
            ])
        })
        .collect();
    let status = if audit_failed {
        3
    } else if est.quality.is_exact() {
        0
    } else {
        2
    };
    responses.push(Json::Obj(vec![
        ("id".into(), id),
        ("target".into(), Json::Str(target.into())),
        ("done".into(), Json::Bool(true)),
        ("status".into(), Json::Num(status as f64)),
        (
            "bound".into(),
            Json::Arr(vec![Json::Num(est.bound.lower as f64), Json::Num(est.bound.upper as f64)]),
        ),
        ("quality".into(), Json::Str(est.quality.to_string())),
        ("sets_total".into(), Json::Num(est.sets_total as f64)),
        ("sets_skipped".into(), Json::Num(est.sets_skipped as f64)),
    ]));
    if let (Some(c), Some(Json::Obj(kv))) = (infer_counts, responses.last_mut()) {
        kv.push((
            "infer".into(),
            Json::Obj(vec![
                ("total".into(), Json::Num(c.total as f64)),
                ("inferred".into(), Json::Num(c.inferred as f64)),
                ("annotated".into(), Json::Num(c.annotated as f64)),
                ("failed".into(), Json::Num(c.failed as f64)),
                ("tightened".into(), Json::Num(c.tightened as f64)),
            ]),
        ));
    }
    Ok(responses)
}
