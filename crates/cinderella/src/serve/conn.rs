//! One protocol connection: an eager reader thread feeding a bounded
//! event channel, and a driver loop that admits, executes and answers
//! requests.
//!
//! The reader thread exists for two reasons. First, the line cap: lines
//! are read through [`read_capped_line`], so a malicious client cannot
//! grow daemon memory without bound — an oversized line becomes one
//! `Oversized` event (status-1 response, connection survives). Second,
//! disconnect detection: the reader observes the socket's EOF the moment
//! the client vanishes, even while the driver is deep in a solve, and
//! cancels the in-flight request's token — the daemon stops computing
//! into a dead pipe instead of finishing a bound nobody will read. On
//! stdin EOF is the *normal* end of input (`echo req | cinderella serve`
//! must still answer), so stdin connections never cancel on EOF.

use super::Daemon;
use ipet_lp::CancelToken;
use ipet_trace::Json;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Request lines beyond this many bytes are refused (satellite of the
/// overload story: bounded queues *and* bounded lines).
pub(crate) const MAX_LINE_BYTES: usize = 1 << 20;

/// How many parsed-but-unprocessed lines the reader may buffer ahead.
/// Bounded so a pipelining client exerts backpressure on its own socket
/// instead of growing the daemon's heap.
const READ_AHEAD: usize = 64;

pub(crate) enum Event {
    Line(String),
    /// A line exceeded [`MAX_LINE_BYTES`]; its content was discarded.
    Oversized,
    Eof,
    /// Read error — treated like EOF except it always means the client is
    /// gone, never normal end of input.
    Gone,
}

/// State shared between a connection's driver and its reader thread.
pub(crate) struct ConnShared {
    /// True once the peer is known to be unreachable.
    gone: AtomicBool,
    /// The in-flight request's cancellation token, when one is running.
    current: Mutex<Option<CancelToken>>,
    /// Whether EOF means "client vanished" (sockets) or "end of input"
    /// (stdin).
    cancel_on_eof: bool,
}

impl ConnShared {
    pub fn new(cancel_on_eof: bool) -> Arc<ConnShared> {
        Arc::new(ConnShared {
            gone: AtomicBool::new(false),
            current: Mutex::new(None),
            cancel_on_eof,
        })
    }

    pub fn is_gone(&self) -> bool {
        self.gone.load(Ordering::Acquire)
    }

    fn mark_gone(&self) {
        self.gone.store(true, Ordering::Release);
        if let Some(token) = &*self.current.lock().expect("conn token") {
            token.cancel();
        }
    }

    fn set_current(&self, token: Option<CancelToken>) {
        let cancel_now = {
            let mut current = self.current.lock().expect("conn token");
            *current = token;
            // The client may have vanished before the token was installed.
            self.is_gone()
        };
        if cancel_now {
            self.mark_gone();
        }
    }
}

/// Reads one newline-terminated line, capping it at `cap` bytes. The
/// overflow is consumed (the stream stays line-synchronized) but never
/// buffered.
fn read_capped_line(reader: &mut impl BufRead, cap: usize) -> std::io::Result<Event> {
    let mut line: Vec<u8> = Vec::new();
    let mut over = false;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF. A final unterminated line still counts.
            return Ok(if over {
                Event::Oversized
            } else if line.is_empty() {
                Event::Eof
            } else {
                Event::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(at) => {
                if !over && line.len() + at <= cap {
                    line.extend_from_slice(&buf[..at]);
                } else {
                    over = true;
                }
                reader.consume(at + 1);
                return Ok(if over {
                    Event::Oversized
                } else {
                    Event::Line(String::from_utf8_lossy(&line).into_owned())
                });
            }
            None => {
                let n = buf.len();
                if !over && line.len() + n <= cap {
                    line.extend_from_slice(buf);
                } else {
                    over = true;
                }
                reader.consume(n);
            }
        }
    }
}

/// Spawns the eager reader thread for one connection. The thread exits
/// when the stream ends or the driver hangs up the channel.
pub(crate) fn spawn_reader(
    mut reader: impl BufRead + Send + 'static,
    shared: Arc<ConnShared>,
) -> mpsc::Receiver<Event> {
    let (tx, rx) = mpsc::sync_channel::<Event>(READ_AHEAD);
    std::thread::Builder::new()
        .name("cinderella-conn-reader".into())
        .spawn(move || loop {
            match read_capped_line(&mut reader, MAX_LINE_BYTES) {
                Ok(Event::Eof) => {
                    if shared.cancel_on_eof {
                        shared.mark_gone();
                    }
                    let _ = tx.send(Event::Eof);
                    break;
                }
                Ok(event) => {
                    if tx.send(event).is_err() {
                        break; // driver closed the connection
                    }
                }
                Err(_) => {
                    shared.mark_gone();
                    let _ = tx.send(Event::Gone);
                    break;
                }
            }
        })
        .expect("spawn conn reader");
    rx
}

/// Why a connection ended.
#[derive(PartialEq)]
pub(crate) enum ConnEnd {
    /// Clean end of input.
    Eof,
    /// Client vanished (EOF mid-request, read error, or a failed write).
    Gone,
    /// The client asked the daemon to shut down.
    Shutdown,
    /// The daemon began draining; the connection was closed.
    Drained,
}

/// Drives one connection to completion: admit, execute, flush, answer.
pub(crate) fn drive(
    daemon: &Daemon,
    events: mpsc::Receiver<Event>,
    shared: &Arc<ConnShared>,
    out: &mut impl Write,
) -> ConnEnd {
    loop {
        if daemon.draining() {
            return ConnEnd::Drained;
        }
        let event = match events.recv_timeout(Duration::from_millis(50)) {
            Ok(event) => event,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return ConnEnd::Eof,
        };
        match event {
            Event::Eof => return ConnEnd::Eof,
            Event::Gone => {
                daemon.counters.client_gone();
                return ConnEnd::Gone;
            }
            Event::Oversized => {
                daemon.counters.oversized();
                let refusal = super::error_response(
                    &Json::Null,
                    &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                if !write_lines(daemon, out, &[refusal]) {
                    return ConnEnd::Gone;
                }
            }
            Event::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match serve_line(daemon, &line, shared, out) {
                    LineEnd::Served => {}
                    LineEnd::Gone => return ConnEnd::Gone,
                    LineEnd::Shutdown => return ConnEnd::Shutdown,
                }
            }
        }
    }
}

enum LineEnd {
    Served,
    Gone,
    Shutdown,
}

/// Handles one request line: ops answer immediately (bypassing
/// admission — health checks must work *especially* under overload);
/// analysis requests go through admission, the watchdog and the shared
/// pool.
fn serve_line(
    daemon: &Daemon,
    line: &str,
    shared: &Arc<ConnShared>,
    out: &mut impl Write,
) -> LineEnd {
    let req = match ipet_trace::parse_json(line) {
        Ok(v) => v,
        Err(e) => {
            let err = super::error_response(&Json::Null, &format!("bad request: {e}"));
            return if write_lines(daemon, out, &[err]) { LineEnd::Served } else { LineEnd::Gone };
        }
    };
    match req.get("op").and_then(Json::as_str) {
        Some("shutdown") => {
            let ack = Json::Obj(vec![
                ("done".into(), Json::Bool(true)),
                ("status".into(), Json::Num(0.0)),
                ("shutdown".into(), Json::Bool(true)),
            ]);
            // Acknowledge first, then drain: the client deserves to know
            // its shutdown was accepted even though the daemon stops
            // accepting everything else.
            let _ = write_lines(daemon, out, &[ack]);
            daemon.begin_drain("shutdown requested");
            return LineEnd::Shutdown;
        }
        Some("health") => {
            let line = daemon.health_line();
            return if write_lines(daemon, out, &[line]) { LineEnd::Served } else { LineEnd::Gone };
        }
        Some("stats") => {
            let line = daemon.stats_line();
            return if write_lines(daemon, out, &[line]) { LineEnd::Served } else { LineEnd::Gone };
        }
        Some(other) => {
            let id = req.get("id").cloned().unwrap_or(Json::Null);
            let err = super::error_response(&id, &format!("unknown op {other:?}"));
            return if write_lines(daemon, out, &[err]) { LineEnd::Served } else { LineEnd::Gone };
        }
        None => {}
    }

    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let permit = match daemon.admission.admit(&daemon.draining) {
        super::admission::Admit::Granted(permit) => permit,
        super::admission::Admit::Overloaded => {
            daemon.counters.shed();
            let refusal = shed_response(&id, "overloaded: in-flight and queue limits reached");
            return if write_lines(daemon, out, &[refusal]) {
                LineEnd::Served
            } else {
                LineEnd::Gone
            };
        }
        super::admission::Admit::Draining => {
            daemon.counters.shed();
            let refusal = shed_response(&id, "draining: daemon is shutting down");
            return if write_lines(daemon, out, &[refusal]) {
                LineEnd::Served
            } else {
                LineEnd::Gone
            };
        }
    };
    daemon.counters.request();

    // The token outlives the solve through three observers: the watchdog
    // (wall-clock deadline), the reader thread (client disconnect), and
    // the pool's workers (budget checkpoints).
    let token = CancelToken::new();
    shared.set_current(Some(token.clone()));
    let timer = daemon
        .cfg
        .timeout_ms
        .map(|ms| super::watchdog::RequestTimer::arm(Duration::from_millis(ms), token.clone()));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        super::run_request(&req, &daemon.pool, &daemon.cfg, &token)
    }));
    shared.set_current(None);
    let timed_out = timer.map(super::watchdog::RequestTimer::disarm).unwrap_or(false);
    if timed_out {
        daemon.counters.cancelled();
    }
    drop(permit);

    let responses = match result {
        Ok(Ok(responses)) => responses,
        Ok(Err(e)) => vec![super::error_response(&id, &e)],
        Err(_) => vec![super::error_response(
            &id,
            "internal panic; request isolated, daemon still serving",
        )],
    };

    // Write-through, and strictly *before* the response lines go out: once
    // the client has seen this request's `done` line, its solves are
    // already durable. Concurrent connections' flushes are serialized by
    // the store itself.
    if let Some(store) = &daemon.store {
        if let Err(e) = store.flush() {
            eprintln!("cinderella: serve: store flush failed ({e}); continuing in memory");
        }
    }

    if shared.is_gone() {
        // The client vanished mid-solve; nothing to write, and whatever
        // exact solves completed before the cancellation are already
        // durable for the next client.
        daemon.counters.client_gone();
        return LineEnd::Gone;
    }
    if !write_lines(daemon, out, &responses) {
        return LineEnd::Gone;
    }
    LineEnd::Served
}

fn shed_response(id: &Json, message: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("done".into(), Json::Bool(true)),
        ("status".into(), Json::Num(2.0)),
        ("shed".into(), Json::Bool(true)),
        ("error".into(), Json::Str(message.into())),
    ])
}

/// Writes response lines and flushes. A failed write means the client is
/// gone: the error is *not* swallowed — the connection is aborted and
/// counted — but it must not kill the daemon either.
fn write_lines(daemon: &Daemon, out: &mut impl Write, lines: &[Json]) -> bool {
    for line in lines {
        if writeln!(out, "{}", line.render()).is_err() {
            daemon.counters.client_gone();
            return false;
        }
    }
    if out.flush().is_err() {
        daemon.counters.client_gone();
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_reads_preserve_line_sync() {
        let long = "y".repeat(MAX_LINE_BYTES + 10);
        let text = format!("short\n{long}\nafter\n");
        let mut reader = std::io::BufReader::with_capacity(512, text.as_bytes());
        assert!(matches!(
            read_capped_line(&mut reader, MAX_LINE_BYTES),
            Ok(Event::Line(l)) if l == "short"
        ));
        assert!(matches!(read_capped_line(&mut reader, MAX_LINE_BYTES), Ok(Event::Oversized)));
        assert!(
            matches!(
                read_capped_line(&mut reader, MAX_LINE_BYTES),
                Ok(Event::Line(l)) if l == "after"
            ),
            "the line after an oversized one must parse normally"
        );
        assert!(matches!(read_capped_line(&mut reader, MAX_LINE_BYTES), Ok(Event::Eof)));
    }

    #[test]
    fn exactly_cap_sized_line_is_accepted() {
        let exact = "z".repeat(MAX_LINE_BYTES);
        let text = format!("{exact}\n");
        let mut reader = std::io::BufReader::new(text.as_bytes());
        assert!(matches!(
            read_capped_line(&mut reader, MAX_LINE_BYTES),
            Ok(Event::Line(l)) if l.len() == MAX_LINE_BYTES
        ));
    }

    #[test]
    fn unterminated_final_line_is_delivered() {
        let mut reader = std::io::BufReader::new("no newline".as_bytes());
        assert!(matches!(
            read_capped_line(&mut reader, MAX_LINE_BYTES),
            Ok(Event::Line(l)) if l == "no newline"
        ));
        assert!(matches!(read_capped_line(&mut reader, MAX_LINE_BYTES), Ok(Event::Eof)));
    }

    #[test]
    fn eof_on_a_cancelling_stream_fires_the_inflight_token() {
        let shared = ConnShared::new(true);
        let token = CancelToken::new();
        shared.set_current(Some(token.clone()));
        let events = spawn_reader(std::io::BufReader::new(&b""[..]), Arc::clone(&shared));
        assert!(matches!(events.recv().expect("eof event"), Event::Eof));
        assert!(token.is_cancelled(), "socket EOF must cancel the in-flight solve");
        assert!(shared.is_gone());
    }

    #[test]
    fn eof_on_stdin_like_stream_does_not_cancel() {
        let shared = ConnShared::new(false);
        let token = CancelToken::new();
        shared.set_current(Some(token.clone()));
        let events = spawn_reader(std::io::BufReader::new(&b""[..]), Arc::clone(&shared));
        assert!(matches!(events.recv().expect("eof event"), Event::Eof));
        assert!(!token.is_cancelled(), "stdin EOF is normal end of input");
        assert!(!shared.is_gone());
    }

    #[test]
    fn token_installed_after_disconnect_is_cancelled_immediately() {
        let shared = ConnShared::new(true);
        shared.mark_gone();
        let token = CancelToken::new();
        shared.set_current(Some(token.clone()));
        assert!(token.is_cancelled(), "a race between EOF and token install must not lose");
    }
}
