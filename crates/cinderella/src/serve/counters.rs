//! `serve.*` trace counters: one atomic per event family, mirrored into
//! [`ipet_trace`] so a `--trace-json` document carries the daemon's story.
//!
//! For a fixed request script the counters are deterministic at any
//! `--jobs`: every event is driven by protocol content (a connection, a
//! request, a shed, a bad line), never by worker scheduling. The two
//! wall-clock families — `cancelled` (watchdog timeouts) and
//! `client_gone` (disconnects observed mid-solve) — only fire when a
//! client or a deadline actually misbehaves, which a deterministic script
//! does not do.

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
pub(crate) struct Counters {
    /// Connections accepted (stdin counts as one).
    connections: AtomicU64,
    /// Analysis requests admitted past admission control.
    requests: AtomicU64,
    /// Requests refused with an `overloaded` response (queue full or
    /// draining).
    shed: AtomicU64,
    /// Requests whose wall-clock watchdog fired (degraded to a
    /// certified-safe relaxed bound).
    cancelled: AtomicU64,
    /// Connections whose client vanished (EOF mid-request or a failed
    /// response write).
    client_gone: AtomicU64,
    /// Request lines refused for exceeding the line cap.
    oversized: AtomicU64,
    /// Drains begun (shutdown op or SIGTERM; at most 1 per run).
    drains: AtomicU64,
}

impl Counters {
    fn bump(field: &AtomicU64, name: &'static str) -> u64 {
        ipet_trace::counter(name, 1);
        field.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub fn connection(&self) {
        Self::bump(&self.connections, "serve.connections");
    }
    pub fn request(&self) {
        Self::bump(&self.requests, "serve.requests");
    }
    pub fn shed(&self) {
        Self::bump(&self.shed, "serve.shed");
    }
    pub fn cancelled(&self) {
        Self::bump(&self.cancelled, "serve.cancelled");
    }
    pub fn client_gone(&self) {
        Self::bump(&self.client_gone, "serve.client_gone");
    }
    pub fn oversized(&self) {
        Self::bump(&self.oversized, "serve.oversized");
    }
    /// Returns true on the first drain (callers log exactly once).
    pub fn drain(&self) -> bool {
        Self::bump(&self.drains, "serve.drain") == 1
    }

    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            client_gone: self.client_gone.load(Ordering::Relaxed),
            oversized: self.oversized.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
        }
    }
}

pub(crate) struct CounterSnapshot {
    pub connections: u64,
    pub requests: u64,
    pub shed: u64,
    pub cancelled: u64,
    pub client_gone: u64,
    pub oversized: u64,
    pub drains: u64,
}
