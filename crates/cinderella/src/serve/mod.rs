//! `cinderella serve` — a long-running, concurrent analysis daemon.
//!
//! Requests arrive as newline-delimited JSON on stdin (default) or on a
//! unix socket (`--socket PATH`, one thread per connection); every
//! response is one JSON line. A persistent [`SolvePool`] — optionally
//! backed by a crash-safe [`Store`] — is shared across connections, so
//! repeated analyses of the same programs replay certified solves instead
//! of re-solving.
//!
//! ## Protocol
//!
//! Request: `{"id": ..., "target": "piksrt", ...}` with optional fields
//! `entry`, `annotations` (extra constraint text, appended), `infer`
//! (`true` for merge mode, or `"only"` / `"prefer-annot"` / `"merge"`),
//! `machine`, `deadline` (ticks, per-request solve budget), `audit`
//! (bool). Ops: `{"op": "shutdown"}` drains and stops the daemon (on
//! stdin, EOF does the same); `{"op": "health"}` and `{"op": "stats"}`
//! answer immediately — they bypass admission control, so liveness checks
//! work *especially* under overload.
//!
//! Response stream per request: one line per surviving constraint set
//! (`{"id", "set", "wcet", "bcet", "quality"}`), then a final line with
//! `"done": true` and a `"status"` carrying the CLI's exit-code contract —
//! 0 exact, 2 safe-but-degraded, 3 audit rejection, 1 error. When
//! inference ran, the done line carries an `"infer"` object with the
//! loop-outcome tallies. Request failures (unknown target, bad
//! annotations, a panic) produce a status-1 final line and the daemon
//! keeps serving.
//!
//! ## Overload
//!
//! At most `--max-inflight` requests solve concurrently and at most
//! `--max-queue` wait behind them; anything beyond that is refused with a
//! typed status-2 response carrying `"shed": true` — explicit
//! load-shedding, never an unbounded queue or a hung client. Request
//! lines over [`conn::MAX_LINE_BYTES`] are refused with a status-1 line
//! and the connection survives. `--timeout-ms` arms a per-request
//! wall-clock watchdog whose expiry cancels the solve through the budget
//! machinery: the request still answers, with a certified-safe relaxed
//! bound marked `"cancelled": true`. A client that disconnects mid-solve
//! cancels its request the same way instead of computing into a dead
//! pipe.
//!
//! ## Drain
//!
//! SIGTERM or a `shutdown` op begins a graceful drain: stop accepting
//! connections and requests (late arrivals are shed), let in-flight
//! requests finish (their watchdogs still bound them), flush the store
//! one final time, exit 0.
//!
//! ## Crash safety
//!
//! The store is flushed write-through for every request — before its
//! response lines are written, so acknowledgment implies durability — and
//! each flush is an atomic whole-file replacement, serialized across
//! connections by the store itself. Killing the daemon at any moment —
//! including SIGKILL, which cannot be handled — therefore loses at most
//! the in-flight requests' solves; everything acknowledged by a `done`
//! line is already on disk. Solves cancelled by a watchdog or a vanished
//! client are never persisted: their degradation is wall-clock
//! nondeterminism, and the cache must stay deterministic.

mod admission;
mod conn;
mod counters;
mod watchdog;

use crate::{machine_by_name, store_summary, RunStatus};
use admission::Admission;
use counters::Counters;
use ipet_core::{AnalysisBudget, Estimate};
use ipet_lp::CancelToken;
use ipet_pool::SolvePool;
use ipet_store::Store;
use ipet_trace::Json;
use std::io::BufReader;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub(crate) struct ServeConfig {
    pub store_path: Option<String>,
    pub socket: Option<String>,
    pub jobs: usize,
    pub machine_name: String,
    pub budget: AnalysisBudget,
    pub warm: bool,
    /// Default audit policy; a request's `"audit"` field overrides it.
    pub audit: bool,
    pub io_faults: ipet_core::SolverFaults,
    /// Concurrent request ceiling (admission control).
    pub max_inflight: usize,
    /// Requests allowed to wait behind the in-flight ceiling before
    /// shedding begins.
    pub max_queue: usize,
    /// Per-request wall-clock deadline; `None` disables the watchdog.
    pub timeout_ms: Option<u64>,
}

/// Set by the SIGTERM handler; folded into [`Daemon::draining`]. A static
/// because signal handlers cannot carry state, and storing to an atomic
/// is async-signal-safe.
static TERM_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    TERM_FLAG.store(true, Ordering::SeqCst);
}

const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

fn install_sigterm_handler() {
    // glibc's signal() installs BSD semantics (SA_RESTART), so blocking
    // reads resume after the handler runs; the accept loop is nonblocking
    // and polls the flag instead.
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

/// Everything a connection thread needs, shared by reference through a
/// [`std::thread::scope`].
pub(crate) struct Daemon {
    cfg: ServeConfig,
    pool: SolvePool,
    store: Option<Arc<Store>>,
    admission: Admission,
    counters: Counters,
    /// Local drain flag; [`Daemon::draining`] also folds in SIGTERM.
    draining: AtomicBool,
    started: Instant,
}

impl Daemon {
    fn new(cfg: ServeConfig) -> Result<Daemon, String> {
        let store = cfg
            .store_path
            .as_ref()
            .map(|p| Arc::new(Store::open_with_faults(p, cfg.io_faults.clone())));
        if let Some(store) = &store {
            eprintln!("cinderella: serve: {}", store_summary(store));
        }
        let mut pool = SolvePool::new(cfg.jobs);
        if let Some(store) = &store {
            pool = pool.with_store(Arc::clone(store));
        }
        // The stats op reports the solver-effort tallies (`lp.warm.*`,
        // `lp.sparse.*`) alongside the pool/store sections; they only
        // accumulate with the process-global trace recorder installed.
        ipet_trace::install();
        let admission = Admission::new(cfg.max_inflight, cfg.max_queue);
        Ok(Daemon {
            cfg,
            pool,
            store,
            admission,
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            started: Instant::now(),
        })
    }

    /// Begins a graceful drain (idempotent): stop admitting, shed queued
    /// waiters, let in-flight requests finish.
    pub(crate) fn begin_drain(&self, why: &str) {
        if !self.draining.swap(true, Ordering::AcqRel) {
            self.counters.drain();
            eprintln!("cinderella: serve: draining ({why})");
        }
    }

    /// True once a drain has begun. Observing a pending SIGTERM promotes
    /// it into a drain, so every polling loop doubles as the signal
    /// listener.
    pub(crate) fn draining(&self) -> bool {
        if TERM_FLAG.load(Ordering::SeqCst) {
            self.begin_drain("SIGTERM");
        }
        self.draining.load(Ordering::Acquire)
    }

    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// `{"op": "health"}` response: is the daemon up, and how loaded.
    pub(crate) fn health_line(&self) -> Json {
        Json::Obj(vec![
            ("done".into(), Json::Bool(true)),
            ("status".into(), Json::Num(0.0)),
            ("ok".into(), Json::Bool(true)),
            ("uptime_ms".into(), Json::Num(self.uptime_ms() as f64)),
            ("draining".into(), Json::Bool(self.draining.load(Ordering::Acquire))),
            ("in_flight".into(), Json::Num(self.admission.in_flight() as f64)),
            ("queued".into(), Json::Num(self.admission.queued() as f64)),
        ])
    }

    /// `{"op": "stats"}` response: serve counters, admission state, pool
    /// cache tallies and the store summary.
    pub(crate) fn stats_line(&self) -> Json {
        let c = self.counters.snapshot();
        let cache = self.pool.cache_stats();
        // Warm-start and sparse-backend solver tallies since startup, in
        // the recorder's (deterministic) name order.
        let solver_json = {
            let mut kv: Vec<(String, Json)> = Vec::new();
            if let Some(doc) = ipet_trace::snapshot() {
                for (name, value) in &doc.counters {
                    if name.starts_with("lp.warm.") || name.starts_with("lp.sparse.") {
                        kv.push((name.clone(), Json::Num(*value as f64)));
                    }
                }
            }
            Json::Obj(kv)
        };
        let store_json = match &self.store {
            None => Json::Null,
            Some(store) => {
                let s = store.stats();
                Json::Obj(vec![
                    ("mode".into(), Json::Str(format!("{:?}", store.mode()))),
                    ("loaded".into(), Json::Num(s.loaded as f64)),
                    ("quarantined".into(), Json::Num(s.quarantined as f64)),
                    ("hits".into(), Json::Num(s.hits as f64)),
                    ("misses".into(), Json::Num(s.misses as f64)),
                    ("rejected".into(), Json::Num(s.rejected as f64)),
                    ("invalidated".into(), Json::Num(s.invalidated as f64)),
                    ("flushes".into(), Json::Num(s.flushes as f64)),
                    ("write_failed".into(), Json::Num(s.write_failed as f64)),
                ])
            }
        };
        Json::Obj(vec![
            ("done".into(), Json::Bool(true)),
            ("status".into(), Json::Num(0.0)),
            (
                "stats".into(),
                Json::Obj(vec![
                    ("uptime_ms".into(), Json::Num(self.uptime_ms() as f64)),
                    ("draining".into(), Json::Bool(self.draining.load(Ordering::Acquire))),
                    (
                        "serve".into(),
                        Json::Obj(vec![
                            ("connections".into(), Json::Num(c.connections as f64)),
                            ("requests".into(), Json::Num(c.requests as f64)),
                            ("shed".into(), Json::Num(c.shed as f64)),
                            ("cancelled".into(), Json::Num(c.cancelled as f64)),
                            ("client_gone".into(), Json::Num(c.client_gone as f64)),
                            ("oversized".into(), Json::Num(c.oversized as f64)),
                            ("drains".into(), Json::Num(c.drains as f64)),
                        ]),
                    ),
                    (
                        "admission".into(),
                        Json::Obj(vec![
                            ("in_flight".into(), Json::Num(self.admission.in_flight() as f64)),
                            ("queued".into(), Json::Num(self.admission.queued() as f64)),
                            (
                                "max_inflight".into(),
                                Json::Num(self.admission.max_inflight() as f64),
                            ),
                            ("max_queue".into(), Json::Num(self.admission.max_queue() as f64)),
                        ]),
                    ),
                    (
                        "pool".into(),
                        Json::Obj(vec![
                            ("hits".into(), Json::Num(cache.hits as f64)),
                            ("misses".into(), Json::Num(cache.misses as f64)),
                            ("rejected".into(), Json::Num(cache.rejected as f64)),
                        ]),
                    ),
                    ("solver".into(), solver_json),
                    ("store".into(), store_json),
                ]),
            ),
        ])
    }
}

pub(crate) fn serve(cfg: ServeConfig) -> Result<RunStatus, String> {
    install_sigterm_handler();
    let daemon = Daemon::new(cfg)?;

    match daemon.cfg.socket.clone() {
        None => serve_stdin(&daemon),
        Some(path) => serve_socket(&daemon, &path)?,
    }

    if let Some(store) = &daemon.store {
        if let Err(e) = store.flush() {
            eprintln!("cinderella: serve: final store flush failed ({e})");
        }
        eprintln!("cinderella: serve: {}", store_summary(store));
    }
    // A drained daemon exits cleanly: shedding and degradation are the
    // overload story, not errors.
    Ok(RunStatus::Exact)
}

fn serve_stdin(daemon: &Daemon) {
    daemon.counters.connection();
    // Stdin EOF is the normal end of input (`echo req | cinderella
    // serve`), so it must finish pending requests and answer — never
    // cancel.
    let shared = conn::ConnShared::new(false);
    let events = conn::spawn_reader(BufReader::new(std::io::stdin()), Arc::clone(&shared));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    conn::drive(daemon, events, &shared, &mut out);
}

fn serve_socket(daemon: &Daemon, path: &str) -> Result<(), String> {
    // A stale socket file from a killed daemon would make bind fail; the
    // advisory store lock already guards against two *live* daemons
    // sharing a store.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)
        .map_err(|e| format!("--socket {path}: {e}"))?;
    // Nonblocking so the accept loop can poll the drain flag: SIGTERM
    // must stop the daemon even when no client ever connects again.
    listener.set_nonblocking(true).map_err(|e| format!("--socket {path}: {e}"))?;
    eprintln!("cinderella: serve: listening on {path}");

    // The scope joins every connection thread before returning, which *is*
    // the graceful drain: once the flag is up, drivers shed queued work,
    // finish what's in flight, answer, and return.
    std::thread::scope(|scope| loop {
        if daemon.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                daemon.counters.connection();
                scope.spawn(move || {
                    let _ = stream.set_nonblocking(false);
                    let reader = match stream.try_clone() {
                        Ok(r) => BufReader::new(r),
                        Err(_) => {
                            daemon.counters.client_gone();
                            return;
                        }
                    };
                    let shared = conn::ConnShared::new(true);
                    let events = conn::spawn_reader(reader, Arc::clone(&shared));
                    let mut writer = stream;
                    conn::drive(daemon, events, &shared, &mut writer);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("cinderella: serve: accept: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    });
    let _ = std::fs::remove_file(path);
    Ok(())
}

pub(crate) fn error_response(id: &Json, message: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("done".into(), Json::Bool(true)),
        ("status".into(), Json::Num(1.0)),
        ("error".into(), Json::Str(message.into())),
    ])
}

fn opt_num(v: Option<u64>) -> Json {
    v.map(|n| Json::Num(n as f64)).unwrap_or(Json::Null)
}

/// Runs one analysis request against the shared pool, returning the
/// per-set lines plus the final `done` line. The token is the request's
/// cancellation surface: the watchdog and the disconnect detector both
/// fire it, and the pool degrades to certified-safe bounds at its next
/// budget checkpoint.
pub(crate) fn run_request(
    req: &Json,
    pool: &SolvePool,
    cfg: &ServeConfig,
    cancel: &CancelToken,
) -> Result<Vec<Json>, String> {
    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let target = req
        .get("target")
        .and_then(Json::as_str)
        .ok_or("request needs a \"target\" string (benchmark name or .mc/.s path)")?;
    let entry = req.get("entry").and_then(Json::as_str);
    let machine_name =
        req.get("machine").and_then(Json::as_str).unwrap_or(&cfg.machine_name).to_string();
    let machine = machine_by_name(&machine_name)?;
    let audit = match req.get("audit") {
        Some(Json::Bool(b)) => *b,
        _ => cfg.audit,
    };
    let infer = match req.get("infer") {
        Some(Json::Bool(true)) => Some(ipet_infer::InferMode::Merge),
        Some(Json::Str(s)) => Some(
            ipet_infer::InferMode::parse(s)
                .ok_or_else(|| format!("\"infer\": {s}: expected only, prefer-annot or merge"))?,
        ),
        _ => None,
    };
    let mut budget = cfg.budget;
    if let Some(d) = req.get("deadline").and_then(Json::as_u64) {
        budget.solve.deadline_ticks = Some(d);
    }

    let t = crate::load_target(target, entry, None, None, false)?;
    let analyzer = ipet_core::Analyzer::new(&t.program, machine)
        .map_err(|e| e.to_string())?
        .with_warm_start(cfg.warm);
    let mut annotations = t.annotations.clone();
    if let Some(extra) = req.get("annotations").and_then(Json::as_str) {
        annotations.push('\n');
        annotations.push_str(extra);
    }
    let mut anns = ipet_core::parse_annotations(&annotations).map_err(|e| e.to_string())?;
    let mut infer_counts = None;
    if let Some(mode) = infer {
        let outcome = ipet_infer::infer_and_merge(t.module.as_ref(), &analyzer, &anns, mode)
            .map_err(|e| e.to_string())?;
        anns = outcome.annotations;
        infer_counts = Some(outcome.counts);
    }
    let plan = analyzer.plan(&anns, &budget).map_err(|e| e.to_string())?;
    let plans = [plan];

    let (est, audit_failed): (Estimate, bool) = if audit {
        let batch = pool.run_plans_audited_cancellable(&plans, &budget.solve, cancel);
        let (est, report) =
            batch.results.into_iter().next().expect("one plan").map_err(|e| e.to_string())?;
        let failed = !report.all_certified();
        (est, failed)
    } else {
        let batch = pool.run_plans_cancellable(&plans, &budget.solve, cancel);
        let est =
            batch.estimates.into_iter().next().expect("one plan").map_err(|e| e.to_string())?;
        (est, false)
    };

    let mut responses: Vec<Json> = est
        .sets
        .iter()
        .map(|set| {
            Json::Obj(vec![
                ("id".into(), id.clone()),
                ("set".into(), Json::Num(set.index as f64)),
                ("wcet".into(), opt_num(set.wcet)),
                ("bcet".into(), opt_num(set.bcet)),
                ("quality".into(), Json::Str(set.quality.to_string())),
            ])
        })
        .collect();
    let status = if audit_failed {
        3
    } else if est.quality.is_exact() {
        0
    } else {
        2
    };
    let mut done = vec![
        ("id".into(), id),
        ("target".into(), Json::Str(target.into())),
        ("done".into(), Json::Bool(true)),
        ("status".into(), Json::Num(status as f64)),
        (
            "bound".into(),
            Json::Arr(vec![Json::Num(est.bound.lower as f64), Json::Num(est.bound.upper as f64)]),
        ),
        ("quality".into(), Json::Str(est.quality.to_string())),
        ("sets_total".into(), Json::Num(est.sets_total as f64)),
        ("sets_skipped".into(), Json::Num(est.sets_skipped as f64)),
    ];
    if cancel.is_cancelled() {
        done.push(("cancelled".into(), Json::Bool(true)));
    }
    if let Some(c) = infer_counts {
        done.push((
            "infer".into(),
            Json::Obj(vec![
                ("total".into(), Json::Num(c.total as f64)),
                ("inferred".into(), Json::Num(c.inferred as f64)),
                ("annotated".into(), Json::Num(c.annotated as f64)),
                ("failed".into(), Json::Num(c.failed as f64)),
                ("tightened".into(), Json::Num(c.tightened as f64)),
            ]),
        ));
    }
    responses.push(Json::Obj(done));
    Ok(responses)
}
