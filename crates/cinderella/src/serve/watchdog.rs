//! Per-request wall-clock watchdog. The solver's own budgets are counted
//! in deterministic ticks; the daemon additionally promises its *clients*
//! wall-clock latency, which only a timer can enforce. The timer fires the
//! request's [`CancelToken`], and the cancellation rides the existing
//! budget machinery: the solve observes an exhausted deadline at its next
//! checkpoint and degrades to a certified-safe relaxed bound. A timed-out
//! request therefore still answers — late work is shed, never wedged.

use ipet_lp::CancelToken;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::Duration;

pub(crate) struct RequestTimer {
    /// Dropping the sender tells the timer the request finished.
    done: Option<mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<bool>>,
}

impl RequestTimer {
    /// Arms a timer that cancels `token` after `timeout` unless
    /// [`disarm`](RequestTimer::disarm) is called first.
    pub fn arm(timeout: Duration, token: CancelToken) -> RequestTimer {
        let (done, finished) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("cinderella-watchdog".into())
            .spawn(move || match finished.recv_timeout(timeout) {
                // The request outlived its deadline: cancel and report.
                Err(RecvTimeoutError::Timeout) => {
                    token.cancel();
                    true
                }
                // Sender dropped: the request finished in time.
                Err(RecvTimeoutError::Disconnected) | Ok(()) => false,
            })
            .expect("spawn watchdog");
        RequestTimer { done: Some(done), handle: Some(handle) }
    }

    /// Stops the timer, returning true when it had already fired.
    pub fn disarm(mut self) -> bool {
        drop(self.done.take());
        self.handle.take().map(|h| h.join().unwrap_or(false)).unwrap_or(false)
    }
}

impl Drop for RequestTimer {
    fn drop(&mut self) {
        drop(self.done.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_timeout_and_cancels_the_token() {
        let token = CancelToken::new();
        let timer = RequestTimer::arm(Duration::from_millis(10), token.clone());
        while !token.is_cancelled() {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(timer.disarm(), "an expired timer reports that it fired");
    }

    #[test]
    fn disarmed_in_time_never_cancels() {
        let token = CancelToken::new();
        let timer = RequestTimer::arm(Duration::from_secs(60), token.clone());
        assert!(!timer.disarm(), "a disarmed timer must not report firing");
        assert!(!token.is_cancelled());
    }
}
