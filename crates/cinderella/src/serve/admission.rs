//! Bounded admission control: at most `max_inflight` requests solve at
//! once, at most `max_queue` wait behind them, and everything beyond that
//! is shed with an explicit `overloaded` response instead of queuing
//! without bound. Shedding is the overload story the protocol promises: a
//! client always gets *an answer* promptly — a bound, an error, or a typed
//! refusal — never a silently growing backlog.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

#[derive(Default)]
struct Gate {
    active: usize,
    queued: usize,
}

pub(crate) struct Admission {
    max_inflight: usize,
    max_queue: usize,
    gate: Mutex<Gate>,
    freed: Condvar,
}

/// RAII slot: dropping it releases the in-flight slot and wakes one queued
/// waiter.
pub(crate) struct Permit<'a>(&'a Admission);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut gate = self.0.gate.lock().expect("admission gate");
        gate.active = gate.active.saturating_sub(1);
        drop(gate);
        self.0.freed.notify_one();
    }
}

pub(crate) enum Admit<'a> {
    /// Run now; drop the permit when done.
    Granted(Permit<'a>),
    /// Both the in-flight slots and the queue are full.
    Overloaded,
    /// The daemon is draining and accepts no new work.
    Draining,
}

impl Admission {
    pub fn new(max_inflight: usize, max_queue: usize) -> Admission {
        Admission {
            max_inflight: max_inflight.max(1),
            max_queue,
            gate: Mutex::new(Gate::default()),
            freed: Condvar::new(),
        }
    }

    /// Admits, queues, or sheds one request. Queued waiters re-check the
    /// drain flag every tick, so a drain begun while they wait sheds them
    /// promptly instead of letting them start after "stop accepting".
    pub fn admit(&self, draining: &AtomicBool) -> Admit<'_> {
        let mut gate = self.gate.lock().expect("admission gate");
        if draining.load(Ordering::Acquire) {
            return Admit::Draining;
        }
        if gate.active < self.max_inflight {
            gate.active += 1;
            return Admit::Granted(Permit(self));
        }
        if gate.queued >= self.max_queue {
            return Admit::Overloaded;
        }
        gate.queued += 1;
        loop {
            let (next, _) =
                self.freed.wait_timeout(gate, Duration::from_millis(50)).expect("admission gate");
            gate = next;
            if draining.load(Ordering::Acquire) {
                gate.queued -= 1;
                return Admit::Draining;
            }
            if gate.active < self.max_inflight {
                gate.queued -= 1;
                gate.active += 1;
                return Admit::Granted(Permit(self));
            }
        }
    }

    pub fn in_flight(&self) -> usize {
        self.gate.lock().expect("admission gate").active
    }

    pub fn queued(&self) -> usize {
        self.gate.lock().expect("admission gate").queued
    }

    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    pub fn max_queue(&self) -> usize {
        self.max_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn grants_until_full_then_queues_then_sheds() {
        let adm = Admission::new(2, 1);
        let quiet = AtomicBool::new(false);
        let a = adm.admit(&quiet);
        let b = adm.admit(&quiet);
        assert!(matches!(a, Admit::Granted(_)));
        assert!(matches!(b, Admit::Granted(_)));
        assert_eq!(adm.in_flight(), 2);

        // Third request queues; from another thread, release one slot and
        // watch the waiter get it.
        std::thread::scope(|scope| {
            let adm = &adm;
            let quiet = &quiet;
            let waiter = scope.spawn(move || matches!(adm.admit(quiet), Admit::Granted(_)));
            while adm.queued() == 0 {
                std::thread::yield_now();
            }
            // Queue is now full: a fourth request is shed immediately.
            assert!(matches!(adm.admit(quiet), Admit::Overloaded));
            drop(a);
            assert!(waiter.join().expect("waiter"), "queued request runs once a slot frees");
        });
        // `a` and the waiter's permit are gone; only `b` is still held.
        assert_eq!(adm.in_flight(), 1);
        drop(b);
        assert_eq!(adm.in_flight(), 0);
    }

    #[test]
    fn draining_sheds_new_and_queued_requests() {
        let adm = Admission::new(1, 4);
        let draining = AtomicBool::new(false);
        let held = adm.admit(&draining);
        assert!(matches!(held, Admit::Granted(_)));

        std::thread::scope(|scope| {
            let adm = &adm;
            let draining = &draining;
            let queued = scope.spawn(move || matches!(adm.admit(draining), Admit::Draining));
            while adm.queued() == 0 {
                std::thread::yield_now();
            }
            draining.store(true, Ordering::Release);
            assert!(queued.join().expect("queued"), "drain sheds queued waiters");
        });
        assert!(matches!(adm.admit(&draining), Admit::Draining));
        drop(held);
    }
}
