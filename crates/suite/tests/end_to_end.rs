//! End-to-end: every benchmark analyses, simulates, and the estimated
//! bound encloses both the calculated and the measured bound.

use ipet_core::{Analyzer, TimeBound};
use ipet_sim::measure;
use ipet_sim::Machine;

#[test]
fn estimated_bound_encloses_measured_bound_for_every_benchmark() {
    for b in ipet_suite::all() {
        let program = b.program().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let machine = Machine::i960kb();
        let analyzer = Analyzer::new(&program, machine).unwrap();
        let ann = b.annotations(&program);
        let est = analyzer
            .analyze(&ann)
            .unwrap_or_else(|e| panic!("{}: analysis failed: {e}\n{ann}", b.name));

        let worst = measure(&program, machine, &(b.worst_seeds)(), b.args_worst, true)
            .unwrap_or_else(|e| panic!("{}: worst-case run failed: {e}", b.name));
        let best = measure(&program, machine, &(b.best_seeds)(), b.args_best, false)
            .unwrap_or_else(|e| panic!("{}: best-case run failed: {e}", b.name));
        let measured = TimeBound { lower: best.cycles, upper: worst.cycles };
        assert!(
            est.bound.encloses(measured),
            "{}: estimated {:?} does not enclose measured {:?}",
            b.name,
            est.bound,
            measured
        );

        let calculated = analyzer.calculated_bound(&best.block_counts, &worst.block_counts);
        assert!(
            est.bound.encloses(calculated),
            "{}: estimated {:?} does not enclose calculated {:?}",
            b.name,
            est.bound,
            calculated
        );
        println!(
            "{:16} est=[{}, {}] calc=[{}, {}] meas=[{}, {}] sets={}/{}",
            b.name,
            est.bound.lower,
            est.bound.upper,
            calculated.lower,
            calculated.upper,
            measured.lower,
            measured.upper,
            est.sets_total - est.sets_pruned,
            est.sets_total,
        );
    }
}
