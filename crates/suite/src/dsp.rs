//! The DSP / media benchmarks: `fft`, `jpeg_fdct_islow`,
//! `jpeg_idct_islow`, `recon`, `fullsearch`.

use crate::{Benchmark, PaperRow, Seeds};

fn fft_input_worst() -> Seeds {
    vec![("re", (0..32).map(|i| (i * 37) % 101 - 50).collect()), ("im", vec![0; 32])]
}

fn fft_input_best() -> Seeds {
    vec![("re", vec![0; 32]), ("im", vec![0; 32])]
}

/// A 32-point integer radix-2 FFT.
///
/// The butterfly passes are written with constant trip counts (5 stages of
/// 16 butterflies), as DSP codes are; only the bit-reversal carry loop is
/// data-dependent, which leaves the small residual pessimism the paper
/// also reports for `fft` (0.01).
pub fn fft() -> Benchmark {
    Benchmark {
        name: "fft",
        description: "Fast Fourier Transform",
        source: r#"
const N = 32;
const LOGN = 5;
int re[N];
int im[N];
int costab[16] = {1024, 1004, 946, 851, 724, 569, 392, 200,
                  0, -200, -392, -569, -724, -851, -946, -1004};
int sintab[16] = {0, 200, 392, 569, 724, 851, 946, 1004,
                  1024, 1004, 946, 851, 724, 569, 392, 200};

int bitrev() {
    int i;
    int j;
    int k;
    int t;
    j = 0;
    for (i = 0; i < N; i = i + 1) {
        if (i < j) {
            t = re[i]; re[i] = re[j]; re[j] = t;
            t = im[i]; im[i] = im[j]; im[j] = t;
        }
        k = N / 2;
        while (k >= 1 && j >= k) {
            j = j - k;
            k = k / 2;
        }
        j = j + k;
    }
    return 0;
}

int fft() {
    int s;
    int p;
    int half;
    int group;
    int pos;
    int k;
    int tw;
    int wr;
    int wi;
    int tr;
    int ti;
    bitrev();
    for (s = 0; s < LOGN; s = s + 1) {
        half = 1 << s;
        for (p = 0; p < N / 2; p = p + 1) {
            group = p / half;
            pos = p % half;
            k = group * 2 * half + pos;
            tw = pos * (N / (2 * half));
            wr = costab[tw];
            wi = 0 - sintab[tw];
            tr = (wr * re[k + half] - wi * im[k + half]) / 1024;
            ti = (wr * im[k + half] + wi * re[k + half]) / 1024;
            re[k + half] = re[k] - tr;
            im[k + half] = im[k] - ti;
            re[k] = re[k] + tr;
            im[k] = im[k] + ti;
        }
    }
    return re[0];
}
"#,
        entry: "fft",
        loop_bounds: &[("bitrev", &[(32, 32), (0, 5)]), ("fft", &[(5, 5), (16, 16)])],
        // Bit reversal is data-independent: exactly 12 swaps (x6), 31
        // carry-loop iterations (x12) and one k-exhausted exit (x9) for
        // N = 32, regardless of input.
        extra_annotations: "fn bitrev { x6 = 12; x12 = 31; x9 = 1; }\n",
        worst_seeds: fft_input_worst,
        best_seeds: fft_input_best,
        args_worst: &[],
        args_best: &[],
        paper: PaperRow { lines: 56, sets: 1, sets_after_prune: 1 },
    }
}

fn dct_block_worst() -> Seeds {
    vec![("block", (0..64).map(|i| ((i * 29) % 255) - 128).collect())]
}

fn dct_block_best() -> Seeds {
    vec![("block", vec![0; 64])]
}

/// The JPEG "islow" forward DCT: two passes (rows then columns) of
/// Loeffler-style integer butterflies over an 8x8 block. Control flow is
/// data-independent.
pub fn jpeg_fdct_islow() -> Benchmark {
    Benchmark {
        name: "jpeg_fdct_islow",
        description: "JPEG forward discrete cosine transform",
        source: r#"
const F_0_298 = 2446;
const F_0_390 = 3196;
const F_0_541 = 4433;
const F_0_765 = 6270;
const F_0_899 = 7373;
const F_1_175 = 9633;
const F_1_501 = 12299;
const F_1_847 = 15137;
const F_1_961 = 16069;
const F_2_053 = 16819;
const F_2_562 = 20995;
const F_3_072 = 25172;
int block[64];

int jpeg_fdct_islow() {
    int ctr;
    int tmp0; int tmp1; int tmp2; int tmp3;
    int tmp4; int tmp5; int tmp6; int tmp7;
    int tmp10; int tmp11; int tmp12; int tmp13;
    int z1; int z2; int z3; int z4; int z5;
    int base;
    for (ctr = 0; ctr < 8; ctr = ctr + 1) {
        base = ctr * 8;
        tmp0 = block[base + 0] + block[base + 7];
        tmp7 = block[base + 0] - block[base + 7];
        tmp1 = block[base + 1] + block[base + 6];
        tmp6 = block[base + 1] - block[base + 6];
        tmp2 = block[base + 2] + block[base + 5];
        tmp5 = block[base + 2] - block[base + 5];
        tmp3 = block[base + 3] + block[base + 4];
        tmp4 = block[base + 3] - block[base + 4];
        tmp10 = tmp0 + tmp3;
        tmp13 = tmp0 - tmp3;
        tmp11 = tmp1 + tmp2;
        tmp12 = tmp1 - tmp2;
        block[base + 0] = (tmp10 + tmp11) << 2;
        block[base + 4] = (tmp10 - tmp11) << 2;
        z1 = (tmp12 + tmp13) * F_0_541;
        block[base + 2] = (z1 + tmp13 * F_0_765) >> 11;
        block[base + 6] = (z1 - tmp12 * F_1_847) >> 11;
        z1 = tmp4 + tmp7;
        z2 = tmp5 + tmp6;
        z3 = tmp4 + tmp6;
        z4 = tmp5 + tmp7;
        z5 = (z3 + z4) * F_1_175;
        tmp4 = tmp4 * F_0_298;
        tmp5 = tmp5 * F_2_053;
        tmp6 = tmp6 * F_3_072;
        tmp7 = tmp7 * F_1_501;
        z1 = 0 - z1 * F_0_899;
        z2 = 0 - z2 * F_2_562;
        z3 = z5 - z3 * F_1_961;
        z4 = z5 - z4 * F_0_390;
        block[base + 7] = (tmp4 + z1 + z3) >> 11;
        block[base + 5] = (tmp5 + z2 + z4) >> 11;
        block[base + 3] = (tmp6 + z2 + z3) >> 11;
        block[base + 1] = (tmp7 + z1 + z4) >> 11;
    }
    for (ctr = 0; ctr < 8; ctr = ctr + 1) {
        tmp0 = block[ctr + 0] + block[ctr + 56];
        tmp7 = block[ctr + 0] - block[ctr + 56];
        tmp1 = block[ctr + 8] + block[ctr + 48];
        tmp6 = block[ctr + 8] - block[ctr + 48];
        tmp2 = block[ctr + 16] + block[ctr + 40];
        tmp5 = block[ctr + 16] - block[ctr + 40];
        tmp3 = block[ctr + 24] + block[ctr + 32];
        tmp4 = block[ctr + 24] - block[ctr + 32];
        tmp10 = tmp0 + tmp3;
        tmp13 = tmp0 - tmp3;
        tmp11 = tmp1 + tmp2;
        tmp12 = tmp1 - tmp2;
        block[ctr + 0] = (tmp10 + tmp11) >> 2;
        block[ctr + 32] = (tmp10 - tmp11) >> 2;
        z1 = (tmp12 + tmp13) * F_0_541;
        block[ctr + 16] = (z1 + tmp13 * F_0_765) >> 13;
        block[ctr + 48] = (z1 - tmp12 * F_1_847) >> 13;
        z1 = tmp4 + tmp7;
        z2 = tmp5 + tmp6;
        z3 = tmp4 + tmp6;
        z4 = tmp5 + tmp7;
        z5 = (z3 + z4) * F_1_175;
        tmp4 = tmp4 * F_0_298;
        tmp5 = tmp5 * F_2_053;
        tmp6 = tmp6 * F_3_072;
        tmp7 = tmp7 * F_1_501;
        z1 = 0 - z1 * F_0_899;
        z2 = 0 - z2 * F_2_562;
        z3 = z5 - z3 * F_1_961;
        z4 = z5 - z4 * F_0_390;
        block[ctr + 56] = (tmp4 + z1 + z3) >> 13;
        block[ctr + 40] = (tmp5 + z2 + z4) >> 13;
        block[ctr + 24] = (tmp6 + z2 + z3) >> 13;
        block[ctr + 8] = (tmp7 + z1 + z4) >> 13;
    }
    return block[0];
}
"#,
        entry: "jpeg_fdct_islow",
        loop_bounds: &[("jpeg_fdct_islow", &[(8, 8), (8, 8)])],
        extra_annotations: "",
        worst_seeds: dct_block_worst,
        best_seeds: dct_block_best,
        args_worst: &[],
        args_best: &[],
        paper: PaperRow { lines: 134, sets: 1, sets_after_prune: 1 },
    }
}

/// The JPEG "islow" inverse DCT with its famous all-zero-AC column
/// shortcut — the reason the paper's best and worst cases differ by more
/// than a factor of ten for this routine.
pub fn jpeg_idct_islow() -> Benchmark {
    Benchmark {
        name: "jpeg_idct_islow",
        description: "JPEG inverse discrete cosine transform",
        source: r#"
const F_0_298 = 2446;
const F_0_390 = 3196;
const F_0_541 = 4433;
const F_0_765 = 6270;
const F_0_899 = 7373;
const F_1_175 = 9633;
const F_1_501 = 12299;
const F_1_847 = 15137;
const F_1_961 = 16069;
const F_2_053 = 16819;
const F_2_562 = 20995;
const F_3_072 = 25172;
int coef[64];
int ws[64];

int jpeg_idct_islow() {
    int ctr;
    int dc;
    int tmp0; int tmp1; int tmp2; int tmp3;
    int tmp10; int tmp11; int tmp12; int tmp13;
    int z1; int z2; int z3; int z4;
    for (ctr = 0; ctr < 8; ctr = ctr + 1) {
        if (coef[ctr + 8] == 0 && coef[ctr + 16] == 0 && coef[ctr + 24] == 0 &&
            coef[ctr + 32] == 0 && coef[ctr + 40] == 0 && coef[ctr + 48] == 0 &&
            coef[ctr + 56] == 0) {
            dc = coef[ctr] << 2;
            ws[ctr + 0] = dc;
            ws[ctr + 8] = dc;
            ws[ctr + 16] = dc;
            ws[ctr + 24] = dc;
            ws[ctr + 32] = dc;
            ws[ctr + 40] = dc;
            ws[ctr + 48] = dc;
            ws[ctr + 56] = dc;
        } else {
            z2 = coef[ctr + 16];
            z3 = coef[ctr + 48];
            z1 = (z2 + z3) * F_0_541;
            tmp2 = z1 + z3 * (0 - F_1_847);
            tmp3 = z1 + z2 * F_0_765;
            z2 = coef[ctr];
            z3 = coef[ctr + 32];
            tmp0 = (z2 + z3) << 13;
            tmp1 = (z2 - z3) << 13;
            tmp10 = tmp0 + tmp3;
            tmp13 = tmp0 - tmp3;
            tmp11 = tmp1 + tmp2;
            tmp12 = tmp1 - tmp2;
            tmp0 = coef[ctr + 56];
            tmp1 = coef[ctr + 40];
            tmp2 = coef[ctr + 24];
            tmp3 = coef[ctr + 8];
            z1 = tmp0 + tmp3;
            z2 = tmp1 + tmp2;
            z3 = tmp0 + tmp2;
            z4 = tmp1 + tmp3;
            tmp0 = tmp0 * F_0_298;
            tmp1 = tmp1 * F_2_053;
            tmp2 = tmp2 * F_3_072;
            tmp3 = tmp3 * F_1_501;
            z1 = 0 - z1 * F_0_899;
            z2 = 0 - z2 * F_2_562;
            z3 = (z3 + z4) * F_1_175 - z3 * F_1_961;
            z4 = (z3 / 1024) - z4 * F_0_390;
            tmp0 = tmp0 + z1 + z3;
            tmp1 = tmp1 + z2 + z4;
            tmp2 = tmp2 + z2 + z3;
            tmp3 = tmp3 + z1 + z4;
            ws[ctr + 0] = (tmp10 + tmp3) >> 11;
            ws[ctr + 56] = (tmp10 - tmp3) >> 11;
            ws[ctr + 8] = (tmp11 + tmp2) >> 11;
            ws[ctr + 48] = (tmp11 - tmp2) >> 11;
            ws[ctr + 16] = (tmp12 + tmp1) >> 11;
            ws[ctr + 40] = (tmp12 - tmp1) >> 11;
            ws[ctr + 24] = (tmp13 + tmp0) >> 11;
            ws[ctr + 32] = (tmp13 - tmp0) >> 11;
        }
    }
    for (ctr = 0; ctr < 8; ctr = ctr + 1) {
        z2 = ws[ctr * 8 + 2];
        z3 = ws[ctr * 8 + 6];
        z1 = (z2 + z3) * F_0_541;
        tmp2 = z1 + z3 * (0 - F_1_847);
        tmp3 = z1 + z2 * F_0_765;
        tmp0 = (ws[ctr * 8 + 0] + ws[ctr * 8 + 4]) << 13;
        tmp1 = (ws[ctr * 8 + 0] - ws[ctr * 8 + 4]) << 13;
        tmp10 = tmp0 + tmp3;
        tmp13 = tmp0 - tmp3;
        tmp11 = tmp1 + tmp2;
        tmp12 = tmp1 - tmp2;
        tmp0 = ws[ctr * 8 + 7];
        tmp1 = ws[ctr * 8 + 5];
        tmp2 = ws[ctr * 8 + 3];
        tmp3 = ws[ctr * 8 + 1];
        z1 = tmp0 + tmp3;
        z2 = tmp1 + tmp2;
        z3 = tmp0 + tmp2;
        z4 = tmp1 + tmp3;
        tmp0 = tmp0 * F_0_298;
        tmp1 = tmp1 * F_2_053;
        tmp2 = tmp2 * F_3_072;
        tmp3 = tmp3 * F_1_501;
        z1 = 0 - z1 * F_0_899;
        z2 = 0 - z2 * F_2_562;
        z3 = (z3 + z4) * F_1_175 - z3 * F_1_961;
        z4 = (z3 / 1024) - z4 * F_0_390;
        ws[ctr * 8 + 0] = (tmp10 + tmp0 + z1 + z3) >> 18;
        ws[ctr * 8 + 7] = (tmp10 - tmp0 - z1 - z3) >> 18;
        ws[ctr * 8 + 1] = (tmp11 + tmp1 + z2 + z4) >> 18;
        ws[ctr * 8 + 6] = (tmp11 - tmp1 - z2 - z4) >> 18;
        ws[ctr * 8 + 2] = (tmp12 + tmp2) >> 18;
        ws[ctr * 8 + 5] = (tmp12 - tmp2) >> 18;
        ws[ctr * 8 + 3] = (tmp13 + tmp3) >> 18;
        ws[ctr * 8 + 4] = (tmp13 - tmp3) >> 18;
    }
    return ws[0];
}
"#,
        entry: "jpeg_idct_islow",
        loop_bounds: &[("jpeg_idct_islow", &[(8, 8), (8, 8)])],
        extra_annotations: "",
        worst_seeds: dct_block_worst_coef,
        best_seeds: dct_block_best_coef,
        args_worst: &[],
        args_best: &[],
        paper: PaperRow { lines: 160, sets: 1, sets_after_prune: 1 },
    }
}

fn dct_block_worst_coef() -> Seeds {
    // DC and the last AC row non-zero, middle rows zero: every column
    // evaluates the full zero-test chain and still takes the long arm —
    // the true worst-case input for the shortcut structure.
    vec![(
        "coef",
        (0..64)
            .map(|i| {
                let row = i / 8;
                if row == 0 || row == 7 {
                    (i * 17) % 63 + 1
                } else {
                    0
                }
            })
            .collect(),
    )]
}

fn dct_block_best_coef() -> Seeds {
    vec![("coef", vec![0; 64])]
}

fn recon_seeds() -> Seeds {
    vec![("src", (0..324).map(|i| (i * 13) % 256).collect())]
}

/// The MPEG-2 decoder's block reconstruction: copies a 16x16 prediction
/// with optional horizontal/vertical half-pel averaging (four forms).
/// The form is selected by the half-pel flags, constant over the loops.
pub fn recon() -> Benchmark {
    Benchmark {
        name: "recon",
        description: "MPEG2 decoder reconstruction routine",
        source: r#"
const W = 18;
int src[324];
int dst[256];

int recon(int xh, int yh) {
    int i;
    int j;
    int s;
    for (j = 0; j < 16; j = j + 1) {
        for (i = 0; i < 16; i = i + 1) {
            s = j * W + i;
            if (xh == 0) {
                if (yh == 0) {
                    dst[j * 16 + i] = src[s];
                } else {
                    dst[j * 16 + i] = (src[s] + src[s + W] + 1) / 2;
                }
            } else {
                if (yh == 0) {
                    dst[j * 16 + i] = (src[s] + src[s + 1] + 1) / 2;
                } else {
                    dst[j * 16 + i] = (src[s] + src[s + 1] + src[s + W] + src[s + W + 1] + 2) / 4;
                }
            }
        }
    }
    return dst[0];
}
"#,
        entry: "recon",
        loop_bounds: &[("recon", &[(16, 16), (16, 16)])],
        extra_annotations: "",
        worst_seeds: recon_seeds,
        best_seeds: recon_seeds,
        args_worst: &[1, 1],
        args_best: &[0, 0],
        paper: PaperRow { lines: 95, sets: 1, sets_after_prune: 1 },
    }
}

fn fullsearch_seeds_worst() -> Seeds {
    // Reference much larger than current everywhere: |d| computation takes
    // the negate arm every time, and SADs keep improving along the scan.
    vec![("ref", (0..1024).map(|i| 200 + (i % 7)).collect()), ("cur", vec![0; 64])]
}

fn fullsearch_seeds_best() -> Seeds {
    vec![("ref", vec![0; 1024]), ("cur", vec![0; 64])]
}

/// The MPEG-2 encoder's full-search motion estimation: an exhaustive scan
/// of a +-4 search window, 8x8 SAD per candidate.
pub fn fullsearch() -> Benchmark {
    Benchmark {
        name: "fullsearch",
        description: "MPEG2 encoder frame search routine",
        source: r#"
const RW = 32;
int ref[1024];
int cur[64];
int bestx;
int besty;

int fullsearch(int cx, int cy) {
    int mx;
    int my;
    int i;
    int j;
    int sad;
    int best;
    int d;
    best = 1 << 30;
    for (my = 0 - 4; my <= 4; my = my + 1) {
        for (mx = 0 - 4; mx <= 4; mx = mx + 1) {
            sad = 0;
            for (j = 0; j < 8; j = j + 1) {
                for (i = 0; i < 8; i = i + 1) {
                    d = cur[j * 8 + i] - ref[(cy + my + j) * RW + cx + mx + i];
                    if (d < 0) {
                        d = 0 - d;
                    }
                    sad = sad + d;
                }
            }
            if (sad < best) {
                best = sad;
                bestx = mx;
                besty = my;
            }
        }
    }
    return best;
}
"#,
        entry: "fullsearch",
        loop_bounds: &[("fullsearch", &[(9, 9), (9, 9), (8, 8), (8, 8)])],
        extra_annotations: "",
        worst_seeds: fullsearch_seeds_worst,
        best_seeds: fullsearch_seeds_best,
        args_worst: &[12, 12],
        args_best: &[12, 12],
        paper: PaperRow { lines: 121, sets: 1, sets_after_prune: 1 },
    }
}
