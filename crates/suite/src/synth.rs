//! The synthetic / systems benchmarks: `des`, `whetstone`, `dhry`.

use crate::{Benchmark, PaperRow, Seeds};

fn des_seeds() -> Seeds {
    vec![
        ("subkeys", (0..32).map(|i| (i * 2654435761u32 as i64 % 65521) as i32).collect()),
        (
            "sbox",
            (0..256)
                .map(|i| {
                    // A fixed pseudo-random substitution table.
                    let x = (i as u32).wrapping_mul(2246822519).rotate_left(13);
                    (x % 251) as i32
                })
                .collect(),
        ),
    ]
}

/// A 16-round Feistel cipher in the structural mould of DES: per-round
/// expansion, S-box substitution and permutation, plus an up-front parity
/// scan of the input block. The parity scan's two arms are annotated as
/// mutually exclusive per round, which gives the routine its two
/// constraint sets.
pub fn des() -> Benchmark {
    Benchmark {
        name: "des",
        description: "Data Encryption Standard",
        source: r#"
const ROUNDS = 16;
int key[8];
int subkeys[32];
int sbox[256];
int inblock[16];
int ip[32] = {57, 49, 41, 33, 25, 17, 9, 1,
              59, 51, 43, 35, 27, 19, 11, 3,
              61, 53, 45, 37, 29, 21, 13, 5,
              63, 55, 47, 39, 31, 23, 15, 7};
int fp[32] = {39, 7, 47, 15, 55, 23, 63, 31,
              38, 6, 46, 14, 54, 22, 62, 30,
              37, 5, 45, 13, 53, 21, 61, 29,
              36, 4, 44, 12, 52, 20, 60, 28};
int parity;

int feistel(int r, int k1, int k2) {
    int e1;
    int e2;
    int s;
    e1 = r ^ k1;
    e2 = ((r >> 4) ^ (r << 28)) ^ k2;
    s = sbox[e1 & 63] ^ sbox[((e1 >> 8) & 63) + 64];
    s = s ^ sbox[((e2 >> 16) & 63) + 128];
    s = s ^ sbox[((e2 >> 24) & 63) + 192];
    return (s << 3) ^ (s >> 5);
}

int keysched() {
    int r;
    int c;
    int d;
    c = key[0] ^ (key[1] << 4);
    d = key[2] ^ (key[3] << 4);
    for (r = 0; r < ROUNDS; r = r + 1) {
        c = ((c << 1) ^ (c >> 27)) & 268435455;
        d = ((d << 2) ^ (d >> 26)) & 268435455;
        subkeys[2 * r] = c ^ key[4 + r % 4];
        subkeys[2 * r + 1] = d ^ key[r % 8];
    }
    return subkeys[0];
}

int permute(int v, int table) {
    int i;
    int out;
    int bit;
    out = 0;
    for (i = 0; i < 32; i = i + 1) {
        if (table == 0) {
            bit = (v >> (ip[i] % 32)) & 1;
        } else {
            bit = (v >> (fp[i] % 32)) & 1;
        }
        out = (out << 1) ^ bit;
    }
    return out;
}

int checkparity() {
    int i;
    int p;
    p = 0;
    for (i = 0; i < 16; i = i + 1) {
        if (inblock[i] < 0) {
            p = p + 1;
        } else {
            p = p - 1;
        }
    }
    parity = p;
    return p;
}

int des(int l, int r) {
    int round;
    int f;
    int t;
    keysched();
    checkparity();
    l = permute(l, 0);
    r = permute(r, 0);
    for (round = 0; round < ROUNDS; round = round + 1) {
        f = feistel(r, subkeys[2 * round], subkeys[2 * round + 1]);
        t = l ^ f;
        l = r;
        r = t;
    }
    return permute(l ^ r, 1);
}
"#,
        entry: "des",
        loop_bounds: &[
            ("keysched", &[(16, 16)]),
            ("permute", &[(32, 32)]),
            ("checkparity", &[(16, 16)]),
            ("des", &[(16, 16)]),
        ],
        extra_annotations: DES_EXTRA,
        worst_seeds: || {
            let mut s = des_seeds();
            s.push(("inblock", vec![-1; 16]));
            s.push(("key", (1..=8).map(|i| i * 0x1f3).collect()));
            s
        },
        best_seeds: || {
            let mut s = des_seeds();
            s.push(("inblock", vec![1; 16]));
            s.push(("key", (1..=8).map(|i| i * 0x1f3).collect()));
            s
        },
        args_worst: &[0x1234, 0x5678],
        args_best: &[0x1234, 0x5678],
        paper: PaperRow { lines: 192, sets: 2, sets_after_prune: 2 },
    }
}

/// Sign-uniform input blocks: the parity scan takes the same arm in all
/// sixteen iterations — the increment arm (x6) or the decrement arm (x7),
/// never a mix. A disjunctive path fact in the paper's eq. (16) style.
const DES_EXTRA: &str = "
fn checkparity {
    (x6 = 16 & x7 = 0) | (x6 = 0 & x7 = 16);
}
";

/// An integer Whetstone: the classic module structure (array arithmetic,
/// procedure-call modules, conditional-jump module, integer arithmetic
/// module) with fixed module repetition counts. Control flow is
/// data-independent.
pub fn whetstone() -> Benchmark {
    Benchmark {
        name: "whetstone",
        description: "Whetstone benchmark",
        source: r#"
const N1 = 40;
const N2 = 30;
const N3 = 50;
const N4 = 60;
int e1[4];
int t;
int t2;
int j_global;

int pa(int slot) {
    int k;
    k = 0;
    while (k < 6) {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t / 1000;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t / 1000;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t / 1000;
        e1[3] = (0 - e1[0] + e1[1] + e1[2] + e1[3]) / t2;
        k = k + 1;
    }
    return e1[slot];
}

int p3(int x, int y) {
    int xt;
    int yt;
    xt = t * (x + y) / 1000;
    yt = t * (xt + y) / 1000;
    return (xt + yt) / t2;
}

int p0() {
    e1[j_global] = e1[0];
    e1[1] = e1[j_global];
    e1[2] = e1[1];
    return e1[2];
}

int mod1() {
    int i;
    int x1; int x2; int x3; int x4;
    x1 = 1000; x2 = -1000; x3 = -1000; x4 = -1000;
    for (i = 0; i < N1; i = i + 1) {
        x1 = (x1 + x2 + x3 - x4) * t / 1000;
        x2 = (x1 + x2 - x3 + x4) * t / 1000;
        x3 = (x1 - x2 + x3 + x4) * t / 1000;
        x4 = (0 - x1 + x2 + x3 + x4) * t / 1000;
    }
    return x1 + x2 + x3 + x4;
}

int mod2() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < N2; i = i + 1) {
        e1[0] = 1000;
        e1[1] = -1000;
        e1[2] = -1000;
        e1[3] = -1000;
        acc = acc + pa(0);
    }
    return acc;
}

int mod3() {
    int i;
    int j;
    j = 1;
    for (i = 0; i < N3; i = i + 1) {
        if (j == 1) {
            j = 2;
        } else {
            j = 3;
        }
        if (j > 2) {
            j = 0;
        } else {
            j = 1;
        }
        if (j < 1) {
            j = 1;
        } else {
            j = 0;
        }
    }
    return j;
}

int mod4() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < N4; i = i + 1) {
        acc = acc + p3(i, i + 1);
    }
    return acc;
}

int poly(int x) {
    int acc;
    acc = x;
    acc = (acc * x) / 1000 + 500;
    acc = (acc * x) / 1000 - 250;
    acc = (acc * acc) / 4096 + x;
    return acc;
}

int mod6() {
    int i;
    int v;
    v = 100;
    for (i = 0; i < 30; i = i + 1) {
        v = poly(v) + poly(v / 2);
        v = v % 100000;
    }
    return v;
}

int mod8() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 25; i = i + 1) {
        acc = acc + p3(acc, i);
        e1[i % 4] = acc;
    }
    return acc;
}

int whetstone() {
    int s;
    t = 499;
    t2 = 2;
    j_global = 1;
    s = mod1();
    s = s + mod2();
    s = s + mod3();
    s = s + mod4();
    s = s + mod6();
    s = s + mod8();
    s = s + p0();
    return s;
}
"#,
        entry: "whetstone",
        loop_bounds: &[
            ("pa", &[(6, 6)]),
            ("mod1", &[(40, 40)]),
            ("mod2", &[(30, 30)]),
            ("mod3", &[(50, 50)]),
            ("mod4", &[(60, 60)]),
            ("mod6", &[(30, 30)]),
            ("mod8", &[(25, 25)]),
        ],
        extra_annotations: "",
        worst_seeds: Vec::new,
        best_seeds: Vec::new,
        args_worst: &[],
        args_best: &[],
        paper: PaperRow { lines: 245, sets: 1, sets_after_prune: 1 },
    }
}

fn dhry_seeds() -> Seeds {
    vec![("arr1", (0..50).collect()), ("str1", vec![7; 30]), ("str2", vec![7; 30])]
}

fn dhry_seeds_best() -> Seeds {
    vec![("arr1", vec![0; 50]), ("str1", vec![7; 30]), ("str2", vec![8; 30])]
}

/// A Dhrystone-flavoured integer mix: record-ish array manipulation,
/// string comparison, procedure calls and a driver loop. Carries the
/// paper's hallmark annotation load: three disjunctive functionality
/// constraints whose DNF expands to eight constraint sets, five of which
/// are provably null and pruned ("8)3" in Table I).
pub fn dhry() -> Benchmark {
    Benchmark {
        name: "dhry",
        description: "Dhrystone benchmark",
        source: r#"
const LOOPS = 20;
const STRLEN = 30;
int arr1[50];
int arr2[50];
int str1[30];
int str2[30];
int intglob;
int boolglob;
int chglob;

int proc7(int a, int b) {
    return a + b + 2;
}

int proc8(int base, int loc) {
    int idx;
    int i;
    idx = loc + 5;
    arr1[idx] = base;
    arr1[idx + 1] = arr1[idx];
    arr1[idx + 30] = loc;
    for (i = idx; i < idx + 2; i = i + 1) {
        arr2[i] = i;
    }
    arr2[idx + 25] = loc;
    intglob = 5;
    return idx;
}

int func1(int a, int b) {
    if (a == b) {
        return 1;
    }
    return 0;
}

int func2() {
    int i;
    int cmp;
    cmp = 1;
    i = 0;
    while (i < STRLEN) {
        if (str1[i] != str2[i]) {
            cmp = 0;
            i = STRLEN;
        } else {
            i = i + 1;
        }
    }
    return cmp;
}

int proc6(int sel) {
    int out;
    if (sel == 0) {
        out = 2;
    } else {
        if (sel == 1) {
            if (intglob > 100) {
                out = 0;
            } else {
                out = 3;
            }
        } else {
            out = 1;
        }
    }
    return out;
}

int proc1(int depth) {
    int next;
    next = proc7(depth, 10);
    intglob = next;
    boolglob = func1(depth, next);
    return next;
}

int proc2(int x) {
    int loc;
    loc = x + 10;
    do {
        loc = loc - 1;
    } while (loc > x);
    return loc;
}

int proc3(int idx) {
    arr2[idx % 50] = intglob;
    return arr2[idx % 50];
}

int proc4() {
    boolglob = boolglob | (chglob == 66);
    chglob = 66;
    return boolglob;
}

int proc5() {
    boolglob = 0;
    return 0;
}

int func3(int enumval) {
    if (enumval == 2) {
        return 1;
    }
    return 0;
}

int dhry() {
    int run;
    int a;
    int b;
    int sum;
    int warm;
    sum = 0;
    chglob = 65;
    if (chglob == 65) {
        chglob = 66;
    }
    for (warm = 0; warm < 2; warm = warm + 1) {
        arr2[warm] = 0;
    }
    proc5();
    for (run = 0; run < LOOPS; run = run + 1) {
        a = proc1(run);
        b = proc6(run % 3);
        sum = sum + proc8(a, b);
        sum = sum + proc2(run);
        proc3(run);
        proc4();
        if (func2() == 1) {
            sum = sum + 1;
        } else {
            sum = sum - 1;
        }
        if (func3(run % 4) == 1) {
            sum = sum + 2;
        }
        if (arr1[run] > 40) {
            boolglob = 1;
        }
    }
    return sum;
}
"#,
        entry: "dhry",
        loop_bounds: &[
            ("proc8", &[(2, 2)]),
            // do-while: the bound counts back-edge traversals, which is
            // iterations - 1 for a bottom-tested loop (10 body runs).
            ("proc2", &[(9, 9)]),
            ("func2", &[(1, 30)]),
            ("dhry", &[(2, 3), (20, 20)]),
        ],
        extra_annotations: DHRY_EXTRA,
        worst_seeds: dhry_seeds,
        best_seeds: dhry_seeds_best,
        args_worst: &[],
        args_best: &[],
        paper: PaperRow { lines: 480, sets: 8, sets_after_prune: 3 },
    }
}

/// Three disjunctive annotations expanding to 2x2x2 = 8 constraint sets,
/// five of which contain a single-variable contradiction (e.g. `x3 = 0`
/// intersected with `x3 = 1`) and are pruned as null — reproducing
/// Table I's "8)3" for dhry. Block x3 is the one-shot initialisation arm;
/// block x7 the warm-up loop body (2..3 iterations).
const DHRY_EXTRA: &str = "
fn dhry {
    (x3 = 0) | (x3 = 1);
    (x3 = 1) | (x7 = 2);
    (x7 = 2) | (x3 = 0 & x7 = 3);
}
";
