//! # ipet-suite
//!
//! The benchmark programs of the paper's Table I, rewritten in mini-C, with
//! their functionality-constraint annotations and identified extreme-case
//! data sets.
//!
//! The originals come from Park's and Gupta's theses, DSP codes and
//! compiler benchmarks; they are not redistributable verbatim, so each
//! routine here is a functional re-creation at the kernel level: the same
//! loop structure, the same data-dependent branches, the same annotation
//! burden. That preserves what the experiments measure — CFG shape, the
//! number of constraint sets, and the pessimism of the path analysis.
//!
//! Each [`Benchmark`] carries:
//!
//! * mini-C `source` and the analysed `entry` routine,
//! * loop bounds (turned into `loop` annotations automatically) plus any
//!   hand-written extra functionality constraints,
//! * worst-case and best-case input data sets (the paper identifies these
//!   "by a careful study of the program"),
//! * the row of Table I it reproduces (paper line count and constraint-set
//!   count).
//!
//! ## Example
//!
//! ```
//! let bench = ipet_suite::by_name("piksrt").expect("bundled benchmark");
//! let program = bench.program().unwrap();
//! let annotations = bench.annotations(&program);
//! assert!(annotations.contains("loop"));
//! assert_eq!(bench.paper.lines, 15);
//! ```

mod dsp;
mod small;
mod synth;

use ipet_arch::Program;
use ipet_cfg::Cfg;
use ipet_lang::{compile, CompileError};
use std::fmt::Write as _;

/// Input data for one run: `(global name, values)` pairs.
pub type Seeds = Vec<(&'static str, Vec<i32>)>;

/// The Table-I row a benchmark reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// Source lines reported by the paper.
    pub lines: u32,
    /// Constraint sets before pruning, as reported (`8` for dhry).
    pub sets: u32,
    /// Constraint sets after null pruning (`3` for dhry, equal to `sets`
    /// everywhere else).
    pub sets_after_prune: u32,
}

/// One benchmark routine.
pub struct Benchmark {
    /// Routine name (Table I's "Function" column).
    pub name: &'static str,
    /// Table I's "Description" column.
    pub description: &'static str,
    /// mini-C source text.
    pub source: &'static str,
    /// The analysed/executed routine.
    pub entry: &'static str,
    /// Per-function loop bounds in loop-header order:
    /// `(function, [(lo, hi), ...])`.
    pub loop_bounds: &'static [(&'static str, &'static [(i64, i64)])],
    /// Additional functionality constraints (hand-written DSL text).
    pub extra_annotations: &'static str,
    /// Worst-case input data.
    pub worst_seeds: fn() -> Seeds,
    /// Best-case input data.
    pub best_seeds: fn() -> Seeds,
    /// Entry arguments for the worst-case run.
    pub args_worst: &'static [i32],
    /// Entry arguments for the best-case run.
    pub args_best: &'static [i32],
    /// The paper's Table-I row.
    pub paper: PaperRow,
}

impl Benchmark {
    /// Compiles the benchmark.
    ///
    /// # Errors
    ///
    /// Propagates compiler failures (the test suite guarantees none).
    pub fn program(&self) -> Result<Program, CompileError> {
        compile(self.source, self.entry)
    }

    /// Number of non-blank source lines of the mini-C re-creation.
    pub fn source_lines(&self) -> u32 {
        self.source.lines().filter(|l| !l.trim().is_empty()).count() as u32
    }

    /// Generates the full annotation text: one `loop` statement per
    /// declared bound (loops are matched to bounds in header order, the
    /// order `cinderella` asks for them), followed by the hand-written
    /// extra constraints.
    ///
    /// # Panics
    ///
    /// Panics if a function's declared bound count does not match its loop
    /// count — a bug in the benchmark definition that the tests catch.
    pub fn annotations(&self, program: &Program) -> String {
        let mut out = String::new();
        for (func_name, bounds) in self.loop_bounds {
            let (func_id, function) = program
                .function_by_name(func_name)
                .unwrap_or_else(|| panic!("{}: no function {func_name}", self.name));
            let cfg = Cfg::build(func_id, function);
            let mut loops = cfg.loops();
            loops.sort_by_key(|l| l.header);
            assert_eq!(
                loops.len(),
                bounds.len(),
                "{}: {} bounds declared for {} loops in {func_name}",
                self.name,
                bounds.len(),
                loops.len()
            );
            let _ = writeln!(out, "fn {func_name} {{");
            for (l, (lo, hi)) in loops.iter().zip(bounds.iter()) {
                let _ = writeln!(out, "    loop x{} in [{lo}, {hi}];", l.header.0 + 1);
            }
            let _ = writeln!(out, "}}");
        }
        out.push_str(self.extra_annotations);
        out
    }
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("entry", &self.entry)
            .field("paper", &self.paper)
            .finish_non_exhaustive()
    }
}

/// All Table-I benchmarks, in the paper's row order.
pub fn all() -> Vec<Benchmark> {
    vec![
        small::check_data(),
        dsp::fft(),
        small::piksrt(),
        synth::des(),
        small::line(),
        small::circle(),
        dsp::jpeg_fdct_islow(),
        dsp::jpeg_idct_islow(),
        dsp::recon(),
        dsp::fullsearch(),
        synth::whetstone(),
        synth::dhry(),
        small::matgen(),
    ]
}

/// Finds a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_benchmarks_in_table_order() {
        let names: Vec<&str> = all().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "check_data",
                "fft",
                "piksrt",
                "des",
                "line",
                "circle",
                "jpeg_fdct_islow",
                "jpeg_idct_islow",
                "recon",
                "fullsearch",
                "whetstone",
                "dhry",
                "matgen"
            ]
        );
    }

    #[test]
    fn every_benchmark_compiles_and_validates() {
        for b in all() {
            let p = b.program().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(p.validate().is_ok(), "{}", b.name);
        }
    }

    #[test]
    fn annotations_generate_for_every_benchmark() {
        for b in all() {
            let p = b.program().unwrap();
            let text = b.annotations(&p);
            assert!(b.loop_bounds.is_empty() || text.contains("loop"), "{}: {text}", b.name);
        }
    }

    #[test]
    fn by_name_roundtrip() {
        assert!(by_name("fft").is_some());
        assert!(by_name("nope").is_none());
    }
}
