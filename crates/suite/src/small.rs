//! The small benchmarks: `check_data`, `piksrt`, `line`, `circle`,
//! `matgen`.

use crate::{Benchmark, PaperRow};

/// Park's thesis example, the paper's running example (Fig. 5).
///
/// Scans `data[]` for a negative element; returns 0 when one is found.
/// Worst case: no negative element (full scan). Best case: `data[0]` is
/// negative.
pub fn check_data() -> Benchmark {
    Benchmark {
        name: "check_data",
        description: "Example from Park's thesis",
        source: r#"
const DATASIZE = 10;
int data[DATASIZE];

int check_data() {
    int i;
    int morecheck;
    int wrongone;
    morecheck = 1; i = 0; wrongone = -1;
    while (morecheck) {
        if (data[i] < 0) {
            wrongone = i; morecheck = 0;
        } else {
            i = i + 1;
            if (i >= DATASIZE) morecheck = 0;
        }
    }
    if (wrongone >= 0)
        return 0;
    else
        return 1;
}
"#,
        entry: "check_data",
        loop_bounds: &[("check_data", &[(1, 10)])],
        // The paper's eq. (16): inside the loop, the found-negative block
        // and the stop-scanning block are mutually exclusive over the whole
        // run, and eq. (17): the found-negative block and `return 0` always
        // execute together. Block numbers refer to the compiled CFG (see
        // the cinderella listing for this routine).
        extra_annotations: CHECK_DATA_EXTRA,
        worst_seeds: || vec![("data", vec![5; 10])],
        best_seeds: || vec![("data", vec![-1, 5, 5, 5, 5, 5, 5, 5, 5, 5])],
        args_worst: &[],
        args_best: &[],
        paper: PaperRow { lines: 17, sets: 2, sets_after_prune: 2 },
    }
}

/// The paper's eqs. (16) and (17) transcribed onto the compiled CFG:
/// block `x6` is the found-negative arm (paper `x3`), `x8` the
/// stop-scanning arm (paper `x5`), and `x13` the `return 0` block
/// (paper `x8`).
const CHECK_DATA_EXTRA: &str = "
fn check_data {
    (x6 = 0 & x8 = 1) | (x6 = 1 & x8 = 0);
    x6 = x13;
}
";

/// Insertion sort (Numerical Recipes' `piksrt`) over 10 elements.
///
/// Worst case: reverse-sorted input (the inner while runs `j` times per
/// outer iteration). Best case: already sorted (inner while never runs).
pub fn piksrt() -> Benchmark {
    Benchmark {
        name: "piksrt",
        description: "Insertion Sort",
        source: r#"
const N = 10;
int arr[N];

int piksrt() {
    int i;
    int j;
    int a;
    for (j = 1; j < N; j = j + 1) {
        a = arr[j];
        i = j - 1;
        while (i >= 0 && arr[i] > a) {
            arr[i + 1] = arr[i];
            i = i - 1;
        }
        arr[i + 1] = a;
    }
    return arr[0];
}
"#,
        entry: "piksrt",
        loop_bounds: &[("piksrt", &[(9, 9), (0, 9)])],
        extra_annotations: PIKSRT_EXTRA,
        worst_seeds: || vec![("arr", (0..10).rev().collect())],
        best_seeds: || vec![("arr", (0..10).collect())],
        args_worst: &[],
        args_best: &[],
        paper: PaperRow { lines: 15, sets: 1, sets_after_prune: 1 },
    }
}

/// Tightening constraints in the paper's "additional information" style:
/// the inner-loop body (`x9`) runs at most 1+2+...+9 = 45 times in total
/// (triangular, not 9 per outer iteration), and the second half of the
/// short-circuit test (`x7`) is reached at least once per outer iteration
/// (`i = j-1 >= 0` always holds on entry).
const PIKSRT_EXTRA: &str = "
fn piksrt {
    x9 <= 45;
    x7 >= 9;
}
";

/// Bresenham-style line rasteriser (the line-drawing routine from Gupta's
/// thesis is the model).
///
/// Arguments are the two endpoints. Worst case: a full-diagonal line
/// (maximum steps); best case: a single point.
pub fn line() -> Benchmark {
    Benchmark {
        name: "line",
        description: "Line drawing routine in Gupta's thesis",
        source: r#"
const XSIZE = 64;
int screen[4096];

int absval(int v) {
    if (v < 0) return -v;
    return v;
}

int line(int x0, int y0, int x1, int y1) {
    int dx;
    int dy;
    int sx;
    int sy;
    int err;
    int e2;
    int steps;
    int k;
    int x;
    int y;
    dx = absval(x1 - x0);
    dy = absval(y1 - y0);
    if (x0 < x1) sx = 1; else sx = -1;
    if (y0 < y1) sy = 1; else sy = -1;
    err = dx - dy;
    steps = dx;
    if (dy > dx) steps = dy;
    x = x0;
    y = y0;
    for (k = 0; k <= steps; k = k + 1) {
        screen[y * XSIZE + x] = 1;
        e2 = 2 * err;
        if (e2 > 0 - dy) {
            err = err - dy;
            x = x + sx;
        }
        if (e2 < dx) {
            err = err + dx;
            y = y + sy;
        }
    }
    return steps;
}
"#,
        entry: "line",
        loop_bounds: &[("line", &[(1, 64)])],
        // Every line is either x-major or y-major: the x-step arm (x19)
        // and the y-step arm (x22) counts are ordered one way or the
        // other. A disjunctive path fact in the paper's style (two sets).
        extra_annotations: "fn line { (x19 >= x22) | (x22 >= x19); }\n",
        worst_seeds: Vec::new,
        best_seeds: Vec::new,
        args_worst: &[0, 0, 63, 63],
        args_best: &[5, 5, 5, 5],
        paper: PaperRow { lines: 165, sets: 2, sets_after_prune: 2 },
    }
}

/// Midpoint circle rasteriser (the circle-drawing routine from Gupta's
/// thesis is the model).
///
/// Worst case: the largest radius; best case: radius 0.
pub fn circle() -> Benchmark {
    Benchmark {
        name: "circle",
        description: "Circle drawing routine in Gupta's thesis",
        source: r#"
const XSIZE = 64;
int screen[4096];

int plot8(int cx, int cy, int x, int y) {
    screen[(cy + y) * XSIZE + cx + x] = 1;
    screen[(cy + y) * XSIZE + cx - x] = 1;
    screen[(cy - y) * XSIZE + cx + x] = 1;
    screen[(cy - y) * XSIZE + cx - x] = 1;
    screen[(cy + x) * XSIZE + cx + y] = 1;
    screen[(cy + x) * XSIZE + cx - y] = 1;
    screen[(cy - x) * XSIZE + cx + y] = 1;
    screen[(cy - x) * XSIZE + cx - y] = 1;
    return 0;
}

int circle(int cx, int cy, int r) {
    int x;
    int y;
    int d;
    x = 0;
    y = r;
    d = 3 - 2 * r;
    while (x <= y) {
        plot8(cx, cy, x, y);
        if (d < 0) {
            d = d + 4 * x + 6;
        } else {
            d = d + 4 * (x - y) + 10;
            y = y - 1;
        }
        x = x + 1;
    }
    return x;
}
"#,
        entry: "circle",
        loop_bounds: &[("circle", &[(1, 16)])],
        // For radii up to 20 the midpoint walk makes at most 7 y-steps
        // (the else arm, x8): r - ceil(r/sqrt(2)) <= 7.
        extra_annotations: "fn circle { x8 <= 7; }\n",
        worst_seeds: Vec::new,
        best_seeds: Vec::new,
        args_worst: &[31, 31, 20],
        args_best: &[31, 31, 0],
        paper: PaperRow { lines: 88, sets: 1, sets_after_prune: 1 },
    }
}

/// The matrix-generation routine of the Linpack benchmark: fills an
/// `N x N` matrix from a multiplicative congruential generator.
/// Control flow is data-independent.
pub fn matgen() -> Benchmark {
    Benchmark {
        name: "matgen",
        description: "Matrix routine in Linpack benchmark",
        source: r#"
const N = 20;
int a[400];
int norma;

int matgen() {
    int i;
    int j;
    int seed;
    seed = 1325;
    norma = 0;
    for (i = 0; i < N; i = i + 1) {
        for (j = 0; j < N; j = j + 1) {
            seed = (3125 * seed) % 65536;
            a[j * N + i] = seed - 32768;
            norma = norma + (a[j * N + i] >> 8);
        }
    }
    return norma;
}
"#,
        entry: "matgen",
        loop_bounds: &[("matgen", &[(20, 20), (20, 20)])],
        extra_annotations: "",
        worst_seeds: Vec::new,
        best_seeds: Vec::new,
        args_worst: &[],
        args_best: &[],
        paper: PaperRow { lines: 50, sets: 1, sets_after_prune: 1 },
    }
}
