//! Property test: disassembling any valid program and re-assembling the
//! text yields the identical program (modulo source-line info, which the
//! disassembler does not carry).

use ipet_arch::{
    disassemble_program, parse_program, AluOp, AsmBuilder, Cond, FuncId, Global, Operand, Program,
    Reg,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum GenInstr {
    Mov(u8, u8),
    Ldc(u8, i32),
    Alu(usize, u8, u8, Option<i32>),
    Ld(u8, i32),
    St(u8, i32),
    Nop,
}

fn arb_instr() -> impl Strategy<Value = GenInstr> {
    prop_oneof![
        (0u8..31, 0u8..31).prop_map(|(a, b)| GenInstr::Mov(a, b)),
        (0u8..31, -1000i32..1000).prop_map(|(r, k)| GenInstr::Ldc(r, k)),
        (0usize..10, 0u8..31, 0u8..31, prop::option::of(-50i32..50))
            .prop_map(|(op, d, a, imm)| GenInstr::Alu(op, d, a, imm)),
        (0u8..31, -8i32..16).prop_map(|(r, o)| GenInstr::Ld(r, o)),
        (0u8..31, -8i32..16).prop_map(|(r, o)| GenInstr::St(r, o)),
        Just(GenInstr::Nop),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(arb_instr(), 1..25),
        prop::collection::vec(arb_instr(), 0..10),
        any::<bool>(),
        0u32..3,
        0u32..4,
        prop::collection::vec(-100i32..100, 0..4),
    )
        .prop_map(|(body, helper_body, branch, frame, params, init)| {
            let emit = |b: &mut AsmBuilder, instrs: &[GenInstr]| {
                for ins in instrs {
                    match *ins {
                        GenInstr::Mov(x, y) => {
                            b.mov(Reg::new(x).unwrap(), Reg::new(y).unwrap());
                        }
                        GenInstr::Ldc(r, k) => {
                            b.ldc(Reg::new(r).unwrap(), k);
                        }
                        GenInstr::Alu(op, d, a, imm) => {
                            let op = AluOp::ALL[op % AluOp::ALL.len()];
                            let rhs = match imm {
                                Some(k) => Operand::Imm(k),
                                None => Operand::Reg(Reg::new(a).unwrap()),
                            };
                            b.alu(op, Reg::new(d).unwrap(), Reg::new(a).unwrap(), rhs);
                        }
                        GenInstr::Ld(r, o) => {
                            b.ld(Reg::new(r).unwrap(), Reg::FP, o);
                        }
                        GenInstr::St(r, o) => {
                            b.st(Reg::new(r).unwrap(), Reg::SP, o);
                        }
                        GenInstr::Nop => {
                            b.nop();
                        }
                    }
                }
            };

            let mut helper = AsmBuilder::new("helper");
            helper.frame_words(frame).num_params(params);
            emit(&mut helper, &helper_body);
            helper.ret();

            let mut main = AsmBuilder::new("main");
            let skip = main.fresh_label();
            if branch {
                main.br(Cond::Lt, Reg::A0, 7, skip);
            }
            emit(&mut main, &body);
            main.call(FuncId(0));
            main.bind(skip);
            main.ret();

            let globals = if init.is_empty() {
                vec![]
            } else {
                vec![Global { name: "data".into(), addr: 0, words: init.len() as u32 + 1, init }]
            };
            Program::new(vec![helper.finish().unwrap(), main.finish().unwrap()], globals, FuncId(1))
                .expect("generated program valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// disassemble . parse == identity (up to src_lines).
    #[test]
    fn assembler_roundtrip(original in arb_program()) {
        let text = disassemble_program(&original);
        let parsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(parsed.entry, original.entry);
        prop_assert_eq!(&parsed.globals, &original.globals);
        prop_assert_eq!(parsed.functions.len(), original.functions.len());
        for (a, b) in parsed.functions.iter().zip(&original.functions) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.instrs, &b.instrs);
            prop_assert_eq!(a.frame_words, b.frame_words);
            prop_assert_eq!(a.num_params, b.num_params);
            prop_assert_eq!(a.base_addr, b.base_addr);
        }
    }
}
