//! Robustness: the text assembler never panics on arbitrary input.

use ipet_arch::parse_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary UTF-8 never panics the assembler.
    #[test]
    fn assembler_never_panics(src in ".*") {
        let _ = parse_program(&src);
    }

    /// Assembly-ish token soup never panics.
    #[test]
    fn assembler_survives_token_soup(
        toks in prop::collection::vec(
            prop_oneof![
                Just(".entry"), Just(".global"), Just("main:"), Just("f:"),
                Just("mov"), Just("ldc"), Just("add"), Just("br.lt"),
                Just("jmp"), Just("call"), Just("ret"), Just("ld"), Just("st"),
                Just("r1,"), Just("r2"), Just("rv,"), Just("[fp+1]"),
                Just("@3"), Just("7"), Just("words=2"), Just("\n"), Just(";x"),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_program(&src);
    }
}
