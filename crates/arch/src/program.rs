//! Programs, functions and global data.

use crate::instr::Instr;
use std::fmt;

/// Size of one encoded instruction in bytes. The i960 core instruction set
/// is fixed-width 32-bit; the i-cache model in `ipet-hw` relies on this to
/// map instruction indices to cache lines.
pub const INSTR_BYTES: u32 = 4;

/// Index of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub usize);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A word-granular global data object (scalar or array).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Source-level name; unique within a program.
    pub name: String,
    /// Word address of the first element in data memory.
    pub addr: u32,
    /// Size in 32-bit words.
    pub words: u32,
    /// Initial values; padded with zeroes to `words` at load time.
    pub init: Vec<i32>,
}

/// One function: a contiguous run of instructions plus frame metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Source-level name; unique within a program.
    pub name: String,
    /// The instruction stream. Branch targets index into this vector.
    pub instrs: Vec<Instr>,
    /// Number of 32-bit words of stack frame the function owns
    /// (locals + spill slots); the prologue is implicit.
    pub frame_words: u32,
    /// Number of register arguments (`A0..A0+num_params`).
    pub num_params: u32,
    /// Byte address of the first instruction in the unified text segment.
    /// Assigned by [`Program::layout`]; 0 until then.
    pub base_addr: u32,
    /// Optional mapping from instruction index to source line (1-based),
    /// used by annotated-listing output. Empty when unavailable.
    pub src_lines: Vec<u32>,
}

impl Function {
    /// Creates an empty function with the given name.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            instrs: Vec::new(),
            frame_words: 0,
            num_params: 0,
            base_addr: 0,
            src_lines: Vec::new(),
        }
    }

    /// Byte address of instruction `idx` once the program is laid out.
    pub fn instr_addr(&self, idx: usize) -> u32 {
        self.base_addr + idx as u32 * INSTR_BYTES
    }

    /// Source line of instruction `idx`, if line info is present.
    pub fn src_line(&self, idx: usize) -> Option<u32> {
        self.src_lines.get(idx).copied().filter(|&l| l != 0)
    }
}

/// Errors reported by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A branch target lies outside its function.
    BranchOutOfRange { func: String, instr: usize, target: usize },
    /// A call names a function id not present in the program.
    UnknownCallee { func: String, instr: usize, callee: FuncId },
    /// The entry function id is out of range.
    BadEntry(FuncId),
    /// A function body is empty (every function must at least `ret`).
    EmptyFunction(String),
    /// A function's last instruction can fall through past the end.
    FallsOffEnd(String),
    /// Two functions or two globals share a name.
    DuplicateName(String),
    /// Two globals overlap in data memory.
    OverlappingGlobals { a: String, b: String },
    /// A global's initializer is longer than its declared size.
    OversizedInit(String),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BranchOutOfRange { func, instr, target } => {
                write!(f, "branch at {func}:{instr} targets out-of-range index {target}")
            }
            ValidateError::UnknownCallee { func, instr, callee } => {
                write!(f, "call at {func}:{instr} names unknown {callee}")
            }
            ValidateError::BadEntry(id) => write!(f, "entry {id} is out of range"),
            ValidateError::EmptyFunction(n) => write!(f, "function {n} has no instructions"),
            ValidateError::FallsOffEnd(n) => {
                write!(f, "function {n} may fall through past its last instruction")
            }
            ValidateError::DuplicateName(n) => write!(f, "duplicate name {n}"),
            ValidateError::OverlappingGlobals { a, b } => {
                write!(f, "globals {a} and {b} overlap in data memory")
            }
            ValidateError::OversizedInit(n) => {
                write!(f, "global {n} has more initializers than declared words")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// A complete executable: functions, globals and an entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// All functions; [`FuncId`]s index into this vector.
    pub functions: Vec<Function>,
    /// All global data objects.
    pub globals: Vec<Global>,
    /// The function timing analysis and execution start from.
    pub entry: FuncId,
}

impl Program {
    /// Creates a program from parts and lays out the text segment.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] encountered, if any.
    pub fn new(
        functions: Vec<Function>,
        globals: Vec<Global>,
        entry: FuncId,
    ) -> Result<Program, ValidateError> {
        let mut p = Program { functions, globals, entry };
        p.layout();
        p.validate()?;
        Ok(p)
    }

    /// Assigns `base_addr` to each function, packing the text segment
    /// contiguously from address 0 in declaration order.
    pub fn layout(&mut self) {
        let mut addr = 0u32;
        for f in &mut self.functions {
            f.base_addr = addr;
            addr += f.instrs.len() as u32 * INSTR_BYTES;
        }
    }

    /// Total size of the text segment in bytes (after layout).
    pub fn text_bytes(&self) -> u32 {
        self.functions.iter().map(|f| f.instrs.len() as u32 * INSTR_BYTES).sum()
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions.iter().enumerate().find(|(_, f)| f.name == name).map(|(i, f)| (FuncId(i), f))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// The entry function.
    ///
    /// # Panics
    ///
    /// Panics if the entry id is invalid (a validated program never is).
    pub fn entry_function(&self) -> &Function {
        &self.functions[self.entry.0]
    }

    /// First data-memory word address past every global (the heap/stack
    /// region starts here; the simulator places the stack above it).
    pub fn data_words(&self) -> u32 {
        self.globals.iter().map(|g| g.addr + g.words).max().unwrap_or(0)
    }

    /// Checks structural well-formedness.
    ///
    /// # Errors
    ///
    /// See [`ValidateError`] for the conditions checked.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.entry.0 >= self.functions.len() {
            return Err(ValidateError::BadEntry(self.entry));
        }
        let mut names = std::collections::HashSet::new();
        for f in &self.functions {
            if !names.insert(f.name.clone()) {
                return Err(ValidateError::DuplicateName(f.name.clone()));
            }
            if f.instrs.is_empty() {
                return Err(ValidateError::EmptyFunction(f.name.clone()));
            }
            let last = *f.instrs.last().expect("nonempty");
            if last.falls_through() {
                return Err(ValidateError::FallsOffEnd(f.name.clone()));
            }
            for (i, ins) in f.instrs.iter().enumerate() {
                if let Some(t) = ins.branch_target() {
                    if t >= f.instrs.len() {
                        return Err(ValidateError::BranchOutOfRange {
                            func: f.name.clone(),
                            instr: i,
                            target: t,
                        });
                    }
                }
                if let Instr::Call { func } = ins {
                    if func.0 >= self.functions.len() {
                        return Err(ValidateError::UnknownCallee {
                            func: f.name.clone(),
                            instr: i,
                            callee: *func,
                        });
                    }
                }
            }
        }
        let mut gnames = std::collections::HashSet::new();
        for g in &self.globals {
            if !gnames.insert(g.name.clone()) {
                return Err(ValidateError::DuplicateName(g.name.clone()));
            }
            if g.init.len() as u32 > g.words {
                return Err(ValidateError::OversizedInit(g.name.clone()));
            }
        }
        for (i, a) in self.globals.iter().enumerate() {
            for b in &self.globals[i + 1..] {
                let disjoint = a.addr + a.words <= b.addr || b.addr + b.words <= a.addr;
                if !disjoint {
                    return Err(ValidateError::OverlappingGlobals {
                        a: a.name.clone(),
                        b: b.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Operand};
    use crate::reg::Reg;

    fn ret_fn(name: &str) -> Function {
        let mut f = Function::new(name);
        f.instrs.push(Instr::Ret);
        f
    }

    #[test]
    fn layout_packs_contiguously() {
        let mut f1 = ret_fn("a");
        f1.instrs.insert(0, Instr::Nop);
        let f2 = ret_fn("b");
        let p = Program::new(vec![f1, f2], vec![], FuncId(0)).unwrap();
        assert_eq!(p.functions[0].base_addr, 0);
        assert_eq!(p.functions[1].base_addr, 2 * INSTR_BYTES);
        assert_eq!(p.text_bytes(), 3 * INSTR_BYTES);
        assert_eq!(p.functions[1].instr_addr(0), 8);
    }

    #[test]
    fn validate_rejects_bad_entry() {
        let err = Program::new(vec![ret_fn("a")], vec![], FuncId(3)).unwrap_err();
        assert_eq!(err, ValidateError::BadEntry(FuncId(3)));
    }

    #[test]
    fn validate_rejects_empty_function() {
        let f = Function::new("empty");
        let err = Program::new(vec![f], vec![], FuncId(0)).unwrap_err();
        assert_eq!(err, ValidateError::EmptyFunction("empty".into()));
    }

    #[test]
    fn validate_rejects_fallthrough_end() {
        let mut f = Function::new("f");
        f.instrs.push(Instr::Nop);
        let err = Program::new(vec![f], vec![], FuncId(0)).unwrap_err();
        assert_eq!(err, ValidateError::FallsOffEnd("f".into()));
    }

    #[test]
    fn validate_rejects_out_of_range_branch() {
        let mut f = Function::new("f");
        f.instrs.push(Instr::Br { cond: Cond::Eq, a: Reg::RV, b: Operand::Imm(0), target: 9 });
        f.instrs.push(Instr::Ret);
        let err = Program::new(vec![f], vec![], FuncId(0)).unwrap_err();
        assert!(matches!(err, ValidateError::BranchOutOfRange { .. }));
    }

    #[test]
    fn validate_rejects_unknown_callee() {
        let mut f = Function::new("f");
        f.instrs.push(Instr::Call { func: FuncId(7) });
        f.instrs.push(Instr::Ret);
        let err = Program::new(vec![f], vec![], FuncId(0)).unwrap_err();
        assert!(matches!(err, ValidateError::UnknownCallee { .. }));
    }

    #[test]
    fn validate_rejects_duplicate_and_overlapping_globals() {
        let g1 = Global { name: "x".into(), addr: 0, words: 4, init: vec![] };
        let g2 = Global { name: "y".into(), addr: 2, words: 4, init: vec![] };
        let err = Program::new(vec![ret_fn("f")], vec![g1.clone(), g2], FuncId(0)).unwrap_err();
        assert!(matches!(err, ValidateError::OverlappingGlobals { .. }));

        let g3 = Global { name: "x".into(), addr: 8, words: 1, init: vec![] };
        let err = Program::new(vec![ret_fn("f")], vec![g1, g3], FuncId(0)).unwrap_err();
        assert_eq!(err, ValidateError::DuplicateName("x".into()));
    }

    #[test]
    fn validate_rejects_oversized_init() {
        let g = Global { name: "x".into(), addr: 0, words: 1, init: vec![1, 2] };
        let err = Program::new(vec![ret_fn("f")], vec![g], FuncId(0)).unwrap_err();
        assert_eq!(err, ValidateError::OversizedInit("x".into()));
    }

    #[test]
    fn lookups() {
        let g = Global { name: "buf".into(), addr: 4, words: 8, init: vec![] };
        let p = Program::new(vec![ret_fn("main"), ret_fn("aux")], vec![g], FuncId(0)).unwrap();
        assert_eq!(p.function_by_name("aux").unwrap().0, FuncId(1));
        assert!(p.function_by_name("nope").is_none());
        assert_eq!(p.global_by_name("buf").unwrap().words, 8);
        assert_eq!(p.data_words(), 12);
        assert_eq!(p.entry_function().name, "main");
    }
}
