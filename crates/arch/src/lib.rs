//! # ipet-arch
//!
//! An i960-flavoured 32-bit RISC instruction set used throughout the IPET
//! reproduction. The paper's tool (`cinderella`) analyses Intel i960KB
//! executables; this crate plays the role of that target architecture:
//! a fixed-width (4-byte) instruction encoding, 32 general-purpose
//! registers, compare-and-branch instructions (in the spirit of the i960
//! `cmpibe` family), and an explicit call/return model that the CFG layer
//! turns into `f`-edges.
//!
//! The crate deliberately contains no timing information: per-instruction
//! costs live in `ipet-hw`, mirroring the paper's separation between path
//! analysis and micro-architectural modelling.
//!
//! ## Example
//!
//! ```
//! use ipet_arch::{AsmBuilder, Cond, Operand, Reg};
//!
//! let mut b = AsmBuilder::new("clamp");
//! let done = b.fresh_label();
//! b.ldc(Reg::RV, 0);
//! b.br(Cond::Lt, Reg::A0, Operand::Imm(0), done);
//! b.mov(Reg::RV, Reg::A0);
//! b.bind(done);
//! b.ret();
//! let func = b.finish().unwrap();
//! assert_eq!(func.name, "clamp");
//! assert_eq!(func.instrs.len(), 4);
//! ```

mod asm;
mod builder;
mod instr;
mod program;
mod reg;
mod text;

pub use asm::{parse_program, AsmError};
pub use builder::{AsmBuilder, BuildError, Label};
pub use instr::{AluOp, Cond, Instr, InstrClass, Operand};
pub use program::{FuncId, Function, Global, Program, ValidateError, INSTR_BYTES};
pub use reg::Reg;
pub use text::{disassemble_function, disassemble_program};
