//! General-purpose register file.
//!
//! The i960KB exposes 16 global (`g0`–`g15`) and 16 local (`r0`–`r15`)
//! registers; we model a flat file of 32 registers with a software calling
//! convention encoded as associated constants.

use std::fmt;

/// One of the 32 general-purpose registers.
///
/// The inner index is guaranteed to be `< Reg::COUNT`; construct values via
/// [`Reg::new`] (checked) or the named convention constants.
///
/// ```
/// use ipet_arch::Reg;
/// assert_eq!(Reg::new(4), Some(Reg::A0));
/// assert_eq!(Reg::new(99), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// Hard-wired zero register (reads as 0; writes are ignored).
    pub const ZERO: Reg = Reg(0);
    /// Stack pointer (grows towards lower addresses).
    pub const SP: Reg = Reg(1);
    /// Frame pointer.
    pub const FP: Reg = Reg(2);
    /// Return-value register.
    pub const RV: Reg = Reg(3);
    /// First argument register. Arguments are passed in `A0..A0+n`.
    pub const A0: Reg = Reg(4);
    /// Second argument register.
    pub const A1: Reg = Reg(5);
    /// Third argument register.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register.
    pub const A3: Reg = Reg(7);
    /// First caller-saved scratch register available to code generators.
    pub const T0: Reg = Reg(8);

    /// Creates a register from a raw index, or `None` if out of range.
    pub fn new(index: u8) -> Option<Reg> {
        if (index as usize) < Reg::COUNT {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// Raw index in `0..Reg::COUNT`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The `n`-th argument register (`A0 + n`).
    ///
    /// # Panics
    ///
    /// Panics if `A0 + n` falls outside the register file.
    pub fn arg(n: u8) -> Reg {
        Reg::new(Reg::A0.0 + n).expect("argument register index out of range")
    }

    /// The `n`-th caller-saved scratch register (`T0 + n`).
    ///
    /// # Panics
    ///
    /// Panics if `T0 + n` falls outside the register file.
    pub fn temp(n: u8) -> Reg {
        Reg::new(Reg::T0.0 + n).expect("scratch register index out of range")
    }

    /// Number of scratch registers available via [`Reg::temp`].
    pub fn temp_count() -> u8 {
        Reg::COUNT as u8 - Reg::T0.0
    }

    /// Iterates over every architectural register in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::ZERO => write!(f, "zero"),
            Reg::SP => write!(f, "sp"),
            Reg::FP => write!(f, "fp"),
            Reg::RV => write!(f, "rv"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::new(255), None);
        assert!(Reg::new(31).is_some());
    }

    #[test]
    fn conventions_are_distinct() {
        let named = [Reg::ZERO, Reg::SP, Reg::FP, Reg::RV, Reg::A0, Reg::T0];
        for (i, a) in named.iter().enumerate() {
            for b in &named[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn arg_and_temp_offsets() {
        assert_eq!(Reg::arg(0), Reg::A0);
        assert_eq!(Reg::arg(3), Reg::A3);
        assert_eq!(Reg::temp(0), Reg::T0);
        assert_eq!(Reg::temp(1).index(), Reg::T0.index() + 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::temp(2).to_string(), "r10");
    }

    #[test]
    fn all_covers_register_file() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), Reg::COUNT);
        assert_eq!(regs[0], Reg::ZERO);
        assert_eq!(regs[31].index(), 31);
    }
}
