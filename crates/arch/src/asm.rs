//! A text assembler: parses the disassembler's output format back into a
//! [`Program`], so hand-written or externally generated assembly can be
//! analysed directly (`cinderella analyze prog.s`).
//!
//! Accepted syntax, one item per line (`;` and `#` start comments):
//!
//! ```text
//! .entry main                       ; optional, defaults to the first function
//! .global buf @0 words=4 init = 1 2 3
//! main: frame=2 params=1            ; frame/params optional
//!      0: ldc   r8, 5               ; the "N:" index prefix is optional
//!         add   r8, r8, r9
//!         ld    r8, [fp+1]
//!         st    r8, [sp-2]
//!         br.ne r8, 0, @6
//!         jmp   @0
//!         call  helper
//!         ret
//! ```
//!
//! Branch targets are `@index` within the current function, exactly as the
//! disassembler prints them.

use crate::instr::{AluOp, Cond, Instr, Operand};
use crate::program::{FuncId, Function, Global, Program, ValidateError};
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// Errors from the text assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// Syntax error with the 1-based line.
    Syntax { line: usize, message: String },
    /// The assembled program failed validation.
    Invalid(ValidateError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            AsmError::Invalid(e) => write!(f, "assembled program invalid: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

fn syntax(line: usize, message: impl Into<String>) -> AsmError {
    AsmError::Syntax { line, message: message.into() }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    match tok {
        "zero" => Ok(Reg::ZERO),
        "sp" => Ok(Reg::SP),
        "fp" => Ok(Reg::FP),
        "rv" => Ok(Reg::RV),
        _ => {
            let n: u8 = tok
                .strip_prefix('r')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| syntax(line, format!("bad register {tok}")))?;
            Reg::new(n).ok_or_else(|| syntax(line, format!("register {tok} out of range")))
        }
    }
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    if let Ok(imm) = tok.parse::<i32>() {
        Ok(Operand::Imm(imm))
    } else {
        Ok(Operand::Reg(parse_reg(tok, line)?))
    }
}

fn parse_target(tok: &str, line: usize) -> Result<usize, AsmError> {
    tok.strip_prefix('@')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| syntax(line, format!("bad branch target {tok} (expected @index)")))
}

/// `[fp+4]` / `[r9-2]` / `[zero+0]` → `(base, offset)`.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i32), AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| syntax(line, format!("bad memory operand {tok}")))?;
    let split =
        inner.find(['+', '-']).ok_or_else(|| syntax(line, format!("bad memory operand {tok}")))?;
    let base = parse_reg(&inner[..split], line)?;
    let offset: i32 =
        inner[split..].parse().map_err(|_| syntax(line, format!("bad offset in {tok}")))?;
    Ok((base, offset))
}

/// Splits an instruction line into mnemonic + comma/space-separated
/// operand tokens, dropping an optional leading `N:` index.
fn instruction_tokens(text: &str) -> Vec<String> {
    let mut toks: Vec<String> =
        text.replace(',', " ").split_whitespace().map(str::to_string).collect();
    if toks
        .first()
        .map(|t| t.ends_with(':') && t[..t.len() - 1].chars().all(|c| c.is_ascii_digit()))
        .unwrap_or(false)
    {
        toks.remove(0);
    }
    toks
}

/// Parses assembly text into a validated [`Program`].
///
/// # Errors
///
/// Returns [`AsmError::Syntax`] with the offending line, or
/// [`AsmError::Invalid`] if the assembled program fails
/// [`Program::validate`] (dangling targets, unknown callees, …).
pub fn parse_program(text: &str) -> Result<Program, AsmError> {
    // Pass 1: function names in order (for call resolution).
    let mut names: Vec<String> = Vec::new();
    for raw in text.lines() {
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with('.') {
            continue;
        }
        let first = line.split_whitespace().next().unwrap_or("");
        if let Some(name) = first.strip_suffix(':') {
            if !name.chars().all(|c| c.is_ascii_digit()) && !name.is_empty() {
                names.push(name.to_string());
            }
        }
    }
    let ids: HashMap<&str, FuncId> =
        names.iter().enumerate().map(|(i, n)| (n.as_str(), FuncId(i))).collect();

    // Pass 2: build everything.
    let mut globals: Vec<Global> = Vec::new();
    let mut functions: Vec<Function> = Vec::new();
    let mut current: Option<Function> = None;
    let mut entry: Option<FuncId> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        if let Some(rest) = text.strip_prefix(".entry") {
            let name = rest.trim();
            entry = Some(
                *ids.get(name)
                    .ok_or_else(|| syntax(line, format!("unknown entry function {name}")))?,
            );
            continue;
        }
        if let Some(rest) = text.strip_prefix(".global") {
            // .global name @addr words=N [init = v1 v2 ...]
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() < 3 {
                return Err(syntax(line, ".global needs: name @addr words=N"));
            }
            let name = toks[0].to_string();
            let addr: u32 = toks[1]
                .strip_prefix('@')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| syntax(line, format!("bad address {}", toks[1])))?;
            let words: u32 = toks[2]
                .strip_prefix("words=")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| syntax(line, format!("bad size {}", toks[2])))?;
            let mut init = Vec::new();
            if toks.len() > 3 {
                if toks[3] != "init" && toks[3] != "init=" {
                    return Err(syntax(line, format!("unexpected {}", toks[3])));
                }
                for t in &toks[4.min(toks.len())..] {
                    let t = t.trim_start_matches('=');
                    if t.is_empty() {
                        continue;
                    }
                    init.push(
                        t.parse::<i32>()
                            .map_err(|_| syntax(line, format!("bad initializer {t}")))?,
                    );
                }
            }
            globals.push(Global { name, addr, words, init });
            continue;
        }

        let first = text.split_whitespace().next().unwrap_or("");
        if let Some(name) = first.strip_suffix(':') {
            if !name.chars().all(|c| c.is_ascii_digit()) {
                // New function header: name: [frame=N] [params=N]
                if let Some(f) = current.take() {
                    functions.push(f);
                }
                let mut f = Function::new(name);
                for t in text.split_whitespace().skip(1) {
                    if let Some(v) = t.strip_prefix("frame=") {
                        f.frame_words =
                            v.parse().map_err(|_| syntax(line, format!("bad frame size {v}")))?;
                    } else if let Some(v) = t.strip_prefix("params=") {
                        f.num_params =
                            v.parse().map_err(|_| syntax(line, format!("bad param count {v}")))?;
                    } else {
                        return Err(syntax(line, format!("unexpected token {t}")));
                    }
                }
                current = Some(f);
                continue;
            }
        }

        // An instruction line.
        let f = current.as_mut().ok_or_else(|| syntax(line, "instruction outside a function"))?;
        let toks = instruction_tokens(text);
        if toks.is_empty() {
            continue;
        }
        let argc = toks.len() - 1;
        let need = |n: usize| -> Result<(), AsmError> {
            if argc == n {
                Ok(())
            } else {
                Err(syntax(line, format!("{} expects {n} operands, found {argc}", toks[0])))
            }
        };
        let ins = match toks[0].as_str() {
            "mov" => {
                need(2)?;
                Instr::Mov { dst: parse_reg(&toks[1], line)?, src: parse_reg(&toks[2], line)? }
            }
            "ldc" => {
                need(2)?;
                Instr::Ldc {
                    dst: parse_reg(&toks[1], line)?,
                    imm: toks[2]
                        .parse()
                        .map_err(|_| syntax(line, format!("bad immediate {}", toks[2])))?,
                }
            }
            "ld" => {
                need(2)?;
                let (base, offset) = parse_mem(&toks[2], line)?;
                Instr::Ld { dst: parse_reg(&toks[1], line)?, base, offset }
            }
            "st" => {
                need(2)?;
                let (base, offset) = parse_mem(&toks[2], line)?;
                Instr::St { src: parse_reg(&toks[1], line)?, base, offset }
            }
            "jmp" => {
                need(1)?;
                Instr::Jmp { target: parse_target(&toks[1], line)? }
            }
            "call" => {
                need(1)?;
                let callee = *ids
                    .get(toks[1].as_str())
                    .ok_or_else(|| syntax(line, format!("unknown function {}", toks[1])))?;
                Instr::Call { func: callee }
            }
            "ret" => {
                need(0)?;
                Instr::Ret
            }
            "nop" => {
                need(0)?;
                Instr::Nop
            }
            mnemonic if mnemonic.starts_with("br.") => {
                need(3)?;
                let cond = Cond::ALL
                    .into_iter()
                    .find(|c| c.mnemonic() == &mnemonic[3..])
                    .ok_or_else(|| syntax(line, format!("bad condition {mnemonic}")))?;
                Instr::Br {
                    cond,
                    a: parse_reg(&toks[1], line)?,
                    b: parse_operand(&toks[2], line)?,
                    target: parse_target(&toks[3], line)?,
                }
            }
            mnemonic => {
                let op = AluOp::ALL
                    .into_iter()
                    .find(|o| o.mnemonic() == mnemonic)
                    .ok_or_else(|| syntax(line, format!("unknown mnemonic {mnemonic}")))?;
                need(3)?;
                Instr::Alu {
                    op,
                    dst: parse_reg(&toks[1], line)?,
                    a: parse_reg(&toks[2], line)?,
                    b: parse_operand(&toks[3], line)?,
                }
            }
        };
        f.instrs.push(ins);
        f.src_lines.push(line as u32);
    }
    if let Some(f) = current.take() {
        functions.push(f);
    }

    let entry = entry.unwrap_or(FuncId(0));
    Program::new(functions, globals, entry).map_err(AsmError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_small_program() {
        let p = parse_program(
            "
            ; a tiny loop
            .global buf @0 words=4 init = 1 2 3
            .entry main
            helper: frame=1 params=1
                mov  rv, r4
                ret
            main:
                 0: ldc   r8, 0
                 1: br.ge r8, 3, @5
                 2: add   r8, r8, 1
                 3: call  helper
                 4: jmp   @1
                 5: ret
            ",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.entry_function().name, "main");
        assert_eq!(p.functions[0].frame_words, 1);
        assert_eq!(p.functions[0].num_params, 1);
        assert_eq!(p.global_by_name("buf").unwrap().init, vec![1, 2, 3]);
        assert_eq!(p.functions[1].instrs.len(), 6);
        assert!(matches!(p.functions[1].instrs[3], Instr::Call { func: FuncId(0) }));
    }

    #[test]
    fn memory_operands() {
        let p =
            parse_program("f:\n ld r8, [fp+4]\n st r8, [sp-2]\n ld r9, [zero+7]\n ret\n").unwrap();
        assert_eq!(p.functions[0].instrs[0], Instr::Ld { dst: Reg::T0, base: Reg::FP, offset: 4 });
        assert_eq!(p.functions[0].instrs[1], Instr::St { src: Reg::T0, base: Reg::SP, offset: -2 });
        assert_eq!(
            p.functions[0].instrs[2],
            Instr::Ld { dst: Reg::temp(1), base: Reg::ZERO, offset: 7 }
        );
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse_program("f:\n bogus r1\n ret\n").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { line: 2, .. }), "{err}");
        let err = parse_program("mov r1, r2\n").unwrap_err();
        assert!(err.to_string().contains("outside a function"));
        let err = parse_program("f:\n jmp @99\n ret\n").unwrap_err();
        assert!(matches!(err, AsmError::Invalid(_)));
        let err = parse_program("f:\n call nowhere\n ret\n").unwrap_err();
        assert!(err.to_string().contains("unknown function"));
        let err = parse_program(".entry ghost\nf:\n ret\n").unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn roundtrips_the_disassembler_output() {
        use crate::builder::AsmBuilder;
        let mut helper = AsmBuilder::new("helper");
        helper.frame_words(2).num_params(1);
        helper.alu(AluOp::Mul, Reg::RV, Reg::A0, 3);
        helper.ret();
        let mut main = AsmBuilder::new("main");
        let l = main.fresh_label();
        main.ldc(Reg::T0, 9);
        main.br(Cond::Ne, Reg::T0, 9, l);
        main.ld(Reg::A0, Reg::ZERO, 0);
        main.call(FuncId(0));
        main.bind(l);
        main.st(Reg::RV, Reg::ZERO, 1);
        main.ret();
        let original = Program::new(
            vec![helper.finish().unwrap(), main.finish().unwrap()],
            vec![Global { name: "g".into(), addr: 0, words: 2, init: vec![5] }],
            FuncId(1),
        )
        .unwrap();

        let text = crate::text::disassemble_program(&original);
        let parsed = parse_program(&text).unwrap();
        assert_eq!(parsed.entry, original.entry);
        assert_eq!(parsed.globals, original.globals);
        assert_eq!(parsed.functions.len(), original.functions.len());
        for (a, b) in parsed.functions.iter().zip(&original.functions) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.instrs, b.instrs);
            assert_eq!(a.frame_words, b.frame_words);
            assert_eq!(a.num_params, b.num_params);
        }
    }
}
