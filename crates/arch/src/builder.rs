//! A small assembler with symbolic labels, used by the code generator in
//! `ipet-lang` and by hand-written test programs.

use crate::instr::{AluOp, Cond, Instr, Operand};
use crate::program::{FuncId, Function};
use crate::reg::Reg;
use std::fmt;

/// A forward-referenceable position in the instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced by [`AsmBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound with [`AsmBuilder::bind`].
    UnboundLabel(usize),
    /// A label was bound twice.
    Rebound(usize),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label L{l} was never bound"),
            BuildError::Rebound(l) => write!(f, "label L{l} was bound twice"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally builds one [`Function`], resolving labels at the end.
///
/// ```
/// use ipet_arch::{AsmBuilder, Cond, Operand, Reg};
/// let mut b = AsmBuilder::new("id");
/// b.mov(Reg::RV, Reg::A0);
/// b.ret();
/// let f = b.finish().unwrap();
/// assert_eq!(f.instrs.len(), 2);
/// ```
#[derive(Debug)]
pub struct AsmBuilder {
    func: Function,
    /// `bindings[l]` is the instruction index of label `l`, if bound.
    bindings: Vec<Option<usize>>,
    /// Instructions whose `target` field holds a label id to patch.
    fixups: Vec<(usize, usize)>,
    current_line: u32,
}

impl AsmBuilder {
    /// Starts building a function with the given name.
    pub fn new(name: impl Into<String>) -> AsmBuilder {
        AsmBuilder {
            func: Function::new(name),
            bindings: Vec::new(),
            fixups: Vec::new(),
            current_line: 0,
        }
    }

    /// Sets the frame size in words for the function under construction.
    pub fn frame_words(&mut self, words: u32) -> &mut Self {
        self.func.frame_words = words;
        self
    }

    /// Sets the number of register parameters.
    pub fn num_params(&mut self, n: u32) -> &mut Self {
        self.func.num_params = n;
        self
    }

    /// Sets the source line attached to subsequently emitted instructions
    /// (0 means "no line info").
    pub fn set_line(&mut self, line: u32) -> &mut Self {
        self.current_line = line;
        self
    }

    /// Allocates a new, unbound label.
    pub fn fresh_label(&mut self) -> Label {
        self.bindings.push(None);
        Label(self.bindings.len() - 1)
    }

    /// Binds `label` to the next instruction to be emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label id is foreign to this builder.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = self.bindings.get_mut(label.0).expect("label from a different builder");
        // Rebinding is deferred to finish() so builders stay panic-free in
        // normal operation; remember only the first binding here.
        if slot.is_none() {
            *slot = Some(self.func.instrs.len());
        } else {
            // Mark as rebound by pushing an impossible fixup checked later.
            self.fixups.push((usize::MAX, label.0));
        }
        self
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.func.instrs.len()
    }

    /// True if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.func.instrs.is_empty()
    }

    fn push(&mut self, ins: Instr) -> &mut Self {
        self.func.instrs.push(ins);
        self.func.src_lines.push(self.current_line);
        self
    }

    /// Emits `mov dst, src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Mov { dst, src })
    }

    /// Emits `ldc dst, imm`.
    pub fn ldc(&mut self, dst: Reg, imm: i32) -> &mut Self {
        self.push(Instr::Ldc { dst, imm })
    }

    /// Emits a three-operand ALU instruction.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Alu { op, dst, a, b: b.into() })
    }

    /// Emits `ld dst, [base + offset]`.
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i32) -> &mut Self {
        self.push(Instr::Ld { dst, base, offset })
    }

    /// Emits `st src, [base + offset]`.
    pub fn st(&mut self, src: Reg, base: Reg, offset: i32) -> &mut Self {
        self.push(Instr::St { src, base, offset })
    }

    /// Emits a compare-and-branch to `label`.
    pub fn br(&mut self, cond: Cond, a: Reg, b: impl Into<Operand>, label: Label) -> &mut Self {
        self.fixups.push((self.func.instrs.len(), label.0));
        self.push(Instr::Br { cond, a, b: b.into(), target: usize::MAX })
    }

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.func.instrs.len(), label.0));
        self.push(Instr::Jmp { target: usize::MAX })
    }

    /// Emits `call func`.
    pub fn call(&mut self, func: FuncId) -> &mut Self {
        self.push(Instr::Call { func })
    }

    /// Emits `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Instr::Ret)
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Resolves all labels and returns the finished function.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] if any referenced label was never
    /// bound, and [`BuildError::Rebound`] if a label was bound twice.
    pub fn finish(mut self) -> Result<Function, BuildError> {
        for &(at, label) in &self.fixups {
            if at == usize::MAX {
                return Err(BuildError::Rebound(label));
            }
        }
        for (at, label) in std::mem::take(&mut self.fixups) {
            let target = self.bindings[label].ok_or(BuildError::UnboundLabel(label))?;
            match &mut self.func.instrs[at] {
                Instr::Br { target: t, .. } | Instr::Jmp { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Ok(self.func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = AsmBuilder::new("loop");
        let top = b.fresh_label();
        let out = b.fresh_label();
        b.ldc(Reg::T0, 0);
        b.bind(top);
        b.br(Cond::Ge, Reg::T0, Operand::Imm(10), out);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(top);
        b.bind(out);
        b.ret();
        let f = b.finish().unwrap();
        assert_eq!(f.instrs[1].branch_target(), Some(4));
        assert_eq!(f.instrs[3].branch_target(), Some(1));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = AsmBuilder::new("f");
        let l = b.fresh_label();
        b.jmp(l);
        b.ret();
        assert_eq!(b.finish().unwrap_err(), BuildError::UnboundLabel(0));
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut b = AsmBuilder::new("f");
        let l = b.fresh_label();
        b.bind(l);
        b.nop();
        b.bind(l);
        b.ret();
        assert_eq!(b.finish().unwrap_err(), BuildError::Rebound(0));
    }

    #[test]
    fn line_info_attaches_to_instructions() {
        let mut b = AsmBuilder::new("f");
        b.set_line(3);
        b.nop();
        b.set_line(4);
        b.ret();
        let f = b.finish().unwrap();
        assert_eq!(f.src_line(0), Some(3));
        assert_eq!(f.src_line(1), Some(4));
    }

    #[test]
    fn metadata_setters() {
        let mut b = AsmBuilder::new("f");
        b.frame_words(6).num_params(2);
        b.ret();
        let f = b.finish().unwrap();
        assert_eq!(f.frame_words, 6);
        assert_eq!(f.num_params, 2);
    }
}
