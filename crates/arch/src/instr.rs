//! Instruction set definition.
//!
//! Fixed-width instructions in the spirit of the i960KB's core integer
//! subset: ALU register/literal operations, loads and stores with
//! register+displacement addressing, compare-and-branch (`cmpib*`-style),
//! unconditional branch, call and return.

use crate::program::FuncId;
use crate::reg::Reg;
use std::fmt;

/// An ALU operation performed by [`Instr::Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Two's-complement addition (wrapping).
    Add,
    /// Two's-complement subtraction (wrapping).
    Sub,
    /// Two's-complement multiplication (wrapping); multi-cycle on the i960KB.
    Mul,
    /// Truncated signed division; the longest-latency integer operation.
    Div,
    /// Remainder of truncated signed division.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo 32).
    Shl,
    /// Arithmetic shift right (shift amount taken modulo 32).
    Shr,
}

impl AluOp {
    /// All ALU operations, in a fixed order (useful for exhaustive tests).
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
    ];

    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        }
    }

    /// Applies the operation to two signed 32-bit values.
    ///
    /// Division and remainder by zero return 0, matching the simulator's
    /// trap-free embedded semantics; all arithmetic wraps.
    pub fn apply(self, a: i32, b: i32) -> i32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32 & 31),
            AluOp::Shr => a.wrapping_shr(b as u32 & 31),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison condition of a compare-and-branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed less-or-equal.
    Le,
    /// Branch if signed greater-than.
    Gt,
    /// Branch if signed greater-or-equal.
    Ge,
}

impl Cond {
    /// All conditions, in a fixed order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

    /// Evaluates the condition on two signed values.
    pub fn holds(self, a: i32, b: i32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// The condition that holds exactly when `self` does not.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// Mnemonic suffix used by the disassembler (`br.lt` etc.).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Second source operand: a register or an immediate literal.
///
/// The i960 permits 5-bit literals in register positions; we allow full
/// 32-bit immediates for convenience (the encoding is not the point of the
/// reproduction, the CFG and timing are).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate literal operand.
    Imm(i32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(i: i32) -> Operand {
        Operand::Imm(i)
    }
}

/// Coarse instruction class consumed by the timing model in `ipet-hw`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Single-cycle integer ALU operation or register move.
    IntSimple,
    /// Multi-cycle integer multiply.
    IntMul,
    /// Multi-cycle integer divide/remainder.
    IntDiv,
    /// Data-memory load.
    Load,
    /// Data-memory store.
    Store,
    /// Conditional compare-and-branch.
    Branch,
    /// Unconditional jump.
    Jump,
    /// Procedure call.
    Call,
    /// Procedure return.
    Ret,
    /// No-operation.
    Nop,
}

/// One machine instruction.
///
/// Branch targets are *instruction indices within the containing function*;
/// the assembler resolves labels to indices and [`crate::Program::validate`]
/// checks them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst <- src` register move.
    Mov { dst: Reg, src: Reg },
    /// `dst <- imm` load constant (the i960 `lda`).
    Ldc { dst: Reg, imm: i32 },
    /// `dst <- a <op> b` three-operand ALU operation.
    Alu { op: AluOp, dst: Reg, a: Reg, b: Operand },
    /// `dst <- mem[base + offset]` word load.
    Ld { dst: Reg, base: Reg, offset: i32 },
    /// `mem[base + offset] <- src` word store.
    St { src: Reg, base: Reg, offset: i32 },
    /// Compare-and-branch: if `a <cond> b` then jump to instruction `target`.
    Br { cond: Cond, a: Reg, b: Operand, target: usize },
    /// Unconditional jump to instruction `target`.
    Jmp { target: usize },
    /// Call function `func`; the return address is saved on the hardware
    /// call stack (the i960's register cache performs the equivalent save).
    Call { func: FuncId },
    /// Return to the caller (or terminate the program when the hardware
    /// call stack is empty).
    Ret,
    /// No operation.
    Nop,
}

impl Instr {
    /// The timing class of this instruction.
    pub fn class(self) -> InstrClass {
        match self {
            Instr::Mov { .. } | Instr::Ldc { .. } => InstrClass::IntSimple,
            Instr::Alu { op, .. } => match op {
                AluOp::Mul => InstrClass::IntMul,
                AluOp::Div | AluOp::Rem => InstrClass::IntDiv,
                _ => InstrClass::IntSimple,
            },
            Instr::Ld { .. } => InstrClass::Load,
            Instr::St { .. } => InstrClass::Store,
            Instr::Br { .. } => InstrClass::Branch,
            Instr::Jmp { .. } => InstrClass::Jump,
            Instr::Call { .. } => InstrClass::Call,
            Instr::Ret => InstrClass::Ret,
            Instr::Nop => InstrClass::Nop,
        }
    }

    /// True if control may fall through to the next instruction.
    pub fn falls_through(self) -> bool {
        !matches!(self, Instr::Jmp { .. } | Instr::Ret)
    }

    /// True if this instruction ends a basic block.
    ///
    /// Calls terminate blocks, as in the paper's Fig. 4: the `f`-edge
    /// leaves the call block, flows through the callee's CFG and re-enters
    /// at the following block.
    pub fn is_terminator(self) -> bool {
        matches!(self, Instr::Br { .. } | Instr::Jmp { .. } | Instr::Ret | Instr::Call { .. })
    }

    /// The intra-function branch target, if any.
    pub fn branch_target(self) -> Option<usize> {
        match self {
            Instr::Br { target, .. } | Instr::Jmp { target } => Some(target),
            _ => None,
        }
    }

    /// The destination register written by this instruction, if any.
    pub fn def_reg(self) -> Option<Reg> {
        match self {
            Instr::Mov { dst, .. }
            | Instr::Ldc { dst, .. }
            | Instr::Alu { dst, .. }
            | Instr::Ld { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Registers read by this instruction (up to three).
    pub fn use_regs(self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(3);
        match self {
            Instr::Mov { src, .. } => out.push(src),
            Instr::Ldc { .. }
            | Instr::Jmp { .. }
            | Instr::Call { .. }
            | Instr::Ret
            | Instr::Nop => {}
            Instr::Alu { a, b, .. } => {
                out.push(a);
                if let Operand::Reg(r) = b {
                    out.push(r);
                }
            }
            Instr::Ld { base, .. } => out.push(base),
            Instr::St { src, base, .. } => {
                out.push(src);
                out.push(base);
            }
            Instr::Br { a, b, .. } => {
                out.push(a);
                if let Operand::Reg(r) = b {
                    out.push(r);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_apply_basics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), -1);
        assert_eq!(AluOp::Mul.apply(-4, 3), -12);
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply(-7, 2), -3);
        assert_eq!(AluOp::Rem.apply(7, 2), 1);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(-16, 2), -4);
    }

    #[test]
    fn alu_division_by_zero_is_total() {
        assert_eq!(AluOp::Div.apply(5, 0), 0);
        assert_eq!(AluOp::Rem.apply(5, 0), 0);
        // i32::MIN / -1 must not trap either.
        assert_eq!(AluOp::Div.apply(i32::MIN, -1), i32::MIN);
        assert_eq!(AluOp::Rem.apply(i32::MIN, -1), 0);
    }

    #[test]
    fn alu_wrapping() {
        assert_eq!(AluOp::Add.apply(i32::MAX, 1), i32::MIN);
        assert_eq!(AluOp::Mul.apply(i32::MAX, 2), -2);
    }

    #[test]
    fn cond_holds_and_negate() {
        for c in Cond::ALL {
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-3, 3)] {
                assert_eq!(c.holds(a, b), !c.negate().holds(a, b), "{c:?} {a} {b}");
            }
        }
        assert!(Cond::Le.holds(2, 2));
        assert!(!Cond::Lt.holds(2, 2));
        assert!(Cond::Ge.holds(2, 2));
    }

    #[test]
    fn classes() {
        use InstrClass::*;
        let r = Reg::T0;
        assert_eq!(Instr::Mov { dst: r, src: r }.class(), IntSimple);
        assert_eq!(Instr::Alu { op: AluOp::Mul, dst: r, a: r, b: Operand::Imm(2) }.class(), IntMul);
        assert_eq!(Instr::Alu { op: AluOp::Rem, dst: r, a: r, b: Operand::Imm(2) }.class(), IntDiv);
        assert_eq!(Instr::Ld { dst: r, base: r, offset: 0 }.class(), Load);
        assert_eq!(Instr::St { src: r, base: r, offset: 0 }.class(), Store);
        assert_eq!(Instr::Ret.class(), Ret);
        assert_eq!(Instr::Nop.class(), Nop);
    }

    #[test]
    fn terminators_and_fallthrough() {
        let br = Instr::Br { cond: Cond::Eq, a: Reg::RV, b: Operand::Imm(0), target: 0 };
        assert!(br.is_terminator());
        assert!(br.falls_through());
        let jmp = Instr::Jmp { target: 0 };
        assert!(jmp.is_terminator());
        assert!(!jmp.falls_through());
        let call = Instr::Call { func: FuncId(0) };
        assert!(call.is_terminator(), "calls end blocks (paper Fig. 4)");
        assert!(call.falls_through());
        assert!(Instr::Ret.is_terminator());
        assert!(!Instr::Ret.falls_through());
    }

    #[test]
    fn def_and_use_sets() {
        let r4 = Reg::A0;
        let r5 = Reg::A1;
        let st = Instr::St { src: r4, base: r5, offset: 8 };
        assert_eq!(st.def_reg(), None);
        assert_eq!(st.use_regs(), vec![r4, r5]);
        let alu = Instr::Alu { op: AluOp::Add, dst: r4, a: r5, b: Operand::Reg(r4) };
        assert_eq!(alu.def_reg(), Some(r4));
        assert_eq!(alu.use_regs(), vec![r5, r4]);
        let ldc = Instr::Ldc { dst: r4, imm: 7 };
        assert_eq!(ldc.def_reg(), Some(r4));
        assert!(ldc.use_regs().is_empty());
    }
}
