//! Textual disassembly of programs and functions.

use crate::instr::Instr;
use crate::program::{Function, Program};
use std::fmt::Write as _;

/// Renders one instruction as assembly text.
fn render(ins: &Instr, func_names: &[String]) -> String {
    match *ins {
        Instr::Mov { dst, src } => format!("mov   {dst}, {src}"),
        Instr::Ldc { dst, imm } => format!("ldc   {dst}, {imm}"),
        Instr::Alu { op, dst, a, b } => format!("{:<5} {dst}, {a}, {b}", op.mnemonic()),
        Instr::Ld { dst, base, offset } => format!("ld    {dst}, [{base}{offset:+}]"),
        Instr::St { src, base, offset } => format!("st    {src}, [{base}{offset:+}]"),
        Instr::Br { cond, a, b, target } => {
            format!("br.{:<2} {a}, {b}, @{target}", cond.mnemonic())
        }
        Instr::Jmp { target } => format!("jmp   @{target}"),
        Instr::Call { func } => {
            let name = func_names.get(func.0).map(String::as_str).unwrap_or("<bad>");
            format!("call  {name}")
        }
        Instr::Ret => "ret".to_string(),
        Instr::Nop => "nop".to_string(),
    }
}

/// Disassembles a single function. Branch targets are shown as `@index`.
///
/// `func_names` supplies names for `call` targets; pass the program's
/// function-name table (an empty slice degrades call targets to `<bad>`).
pub fn disassemble_function(f: &Function, func_names: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}: frame={} params={}", f.name, f.frame_words, f.num_params);
    for (i, ins) in f.instrs.iter().enumerate() {
        let _ = writeln!(out, "  {i:4}: {}", render(ins, func_names));
    }
    out
}

/// Disassembles a whole program, entry function first in declaration order.
pub fn disassemble_program(p: &Program) -> String {
    let names: Vec<String> = p.functions.iter().map(|f| f.name.clone()).collect();
    let mut out = String::new();
    let _ = writeln!(out, ".entry {}", p.functions[p.entry.0].name);
    for g in &p.globals {
        if g.init.is_empty() {
            let _ = writeln!(out, ".global {} @{} words={}", g.name, g.addr, g.words);
        } else {
            let init: Vec<String> = g.init.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(
                out,
                ".global {} @{} words={} init = {}",
                g.name,
                g.addr,
                g.words,
                init.join(" ")
            );
        }
    }
    for f in &p.functions {
        out.push_str(&disassemble_function(f, &names));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AsmBuilder;
    use crate::instr::{AluOp, Cond, Operand};
    use crate::program::{FuncId, Global};
    use crate::reg::Reg;

    #[test]
    fn disassembly_is_stable() {
        let mut b = AsmBuilder::new("main");
        let l = b.fresh_label();
        b.ldc(Reg::T0, 5);
        b.br(Cond::Eq, Reg::T0, Operand::Imm(5), l);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, Operand::Reg(Reg::T0));
        b.bind(l);
        b.call(FuncId(0));
        b.ret();
        let f = b.finish().unwrap();
        let g = Global { name: "data".into(), addr: 0, words: 2, init: vec![] };
        let p = Program::new(vec![f], vec![g], FuncId(0)).unwrap();
        let text = disassemble_program(&p);
        assert!(text.contains(".global data @0 words=2"));
        assert!(text.contains("main:"));
        assert!(text.contains("br.eq r8, 5, @3"));
        assert!(text.contains("call  main"));
    }

    #[test]
    fn unknown_call_target_degrades_gracefully() {
        let mut f = Function::new("f");
        f.instrs.push(Instr::Call { func: FuncId(9) });
        f.instrs.push(Instr::Ret);
        let text = disassemble_function(&f, &[]);
        assert!(text.contains("<bad>"));
    }

    #[test]
    fn memory_operands_show_sign() {
        let mut f = Function::new("f");
        f.instrs.push(Instr::Ld { dst: Reg::T0, base: Reg::FP, offset: -4 });
        f.instrs.push(Instr::St { src: Reg::T0, base: Reg::SP, offset: 8 });
        f.instrs.push(Instr::Ret);
        let text = disassemble_function(&f, &[]);
        assert!(text.contains("ld    r8, [fp-4]"));
        assert!(text.contains("st    r8, [sp+8]"));
    }
}
