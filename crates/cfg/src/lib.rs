//! # ipet-cfg
//!
//! Control-flow graphs over [`ipet_arch`] programs, in the exact shape the
//! paper's structural constraints are written against:
//!
//! * every **basic block** gets an execution-count variable `x_i`,
//! * every **edge** gets a flow variable `d_j`, including a virtual entry
//!   edge (`d1 = 1` for the analysed routine) and virtual exit edges,
//! * every **call site** becomes an `f`-edge pointing at the callee's CFG.
//!
//! The paper analyses each call site with "a separate set of `x_i`
//! variables ... for this instance of the call"; [`Instances`] performs that
//! context expansion: one CFG instance per acyclic call-string, so a
//! constraint such as `x12 = x8.f1` can name the `x8` of the callee instance
//! reached through call site `f1`.
//!
//! Natural-loop detection ([`Cfg::loops`]) drives both the "mark the loops
//! and ask the user for bounds" workflow and the first-iteration cache
//! splitting ablation.
//!
//! ## Example
//!
//! ```
//! use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Program, Reg};
//! use ipet_cfg::Cfg;
//!
//! // while (t < 10) t++;
//! let mut b = AsmBuilder::new("loopy");
//! let head = b.fresh_label();
//! let out = b.fresh_label();
//! b.ldc(Reg::T0, 0);
//! b.bind(head);
//! b.br(Cond::Ge, Reg::T0, 10, out);
//! b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
//! b.jmp(head);
//! b.bind(out);
//! b.ret();
//! let program = Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap();
//!
//! let cfg = Cfg::build(FuncId(0), program.entry_function());
//! assert_eq!(cfg.num_blocks(), 4);
//! let loops = cfg.loops();
//! assert_eq!(loops.len(), 1);
//! assert_eq!(loops[0].back_edges.len(), 1);
//! ```

mod callgraph;
mod dom;
mod graph;
mod loops;

pub use callgraph::{CallGraph, CallGraphError, CallSite, Instance, InstanceId, Instances};
pub use dom::Dominators;
pub use graph::{BasicBlock, BlockId, Cfg, Edge, EdgeId, EdgeKind};
pub use loops::{LoopId, LoopInfo};
