//! Natural-loop detection.
//!
//! The paper's workflow is: "the loops can be detected and marked. After all
//! the structural constraints have been constructed, the user will be asked
//! to provide the loop bound information". [`Cfg::loops`] performs the
//! detection; the bound then relates the loop's *preheader* count to its
//! *header* count (`1·x_pre ≤ x_head ≤ N·x_pre` for a 1..N-iteration loop).

use crate::dom::Dominators;
use crate::graph::{BlockId, Cfg, EdgeId};
use std::collections::BTreeSet;

/// Index of a loop within a function (ordered by header block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub usize);

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop body, header included, in index order.
    pub body: Vec<BlockId>,
    /// Back edges (`latch -> header`).
    pub back_edges: Vec<EdgeId>,
    /// Edges entering the header from outside the loop; the sum of their
    /// `d` variables is the number of times the loop is *entered*.
    pub entry_edges: Vec<EdgeId>,
}

impl LoopInfo {
    /// True if `b` is inside the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

impl Cfg {
    /// Finds all natural loops: one per header, merging the bodies of all
    /// back edges that share a header (the classic approach for `while`
    /// loops with `continue`).
    pub fn loops(&self) -> Vec<LoopInfo> {
        let dom = Dominators::compute(self);
        // back edge: internal edge b -> h with h dominating b
        let mut headers: BTreeSet<BlockId> = BTreeSet::new();
        let mut back: Vec<(EdgeId, BlockId, BlockId)> = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            if let (Some(from), Some(to)) = (e.from, e.to) {
                if dom.dominates(to, from) {
                    headers.insert(to);
                    back.push((EdgeId(i), from, to));
                }
            }
        }

        let mut loops = Vec::new();
        for h in headers {
            // Natural loop body: header + all blocks that reach a latch
            // without passing through the header.
            let mut body: BTreeSet<BlockId> = BTreeSet::new();
            body.insert(h);
            let mut stack: Vec<BlockId> =
                back.iter().filter(|&&(_, _, to)| to == h).map(|&(_, from, _)| from).collect();
            while let Some(b) = stack.pop() {
                if body.insert(b) {
                    for p in self.predecessors(b) {
                        if !body.contains(&p) {
                            stack.push(p);
                        }
                    }
                }
            }
            let back_edges: Vec<EdgeId> =
                back.iter().filter(|&&(_, _, to)| to == h).map(|&(e, _, _)| e).collect();
            let entry_edges: Vec<EdgeId> =
                self.in_edges(h).into_iter().filter(|e| !back_edges.contains(e)).collect();
            loops.push(LoopInfo {
                header: h,
                body: body.into_iter().collect(),
                back_edges,
                entry_edges,
            });
        }
        ipet_trace::counter("cfg.loops.detected", loops.len() as u64);
        loops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Reg};

    fn build(f: ipet_arch::Function) -> Cfg {
        Cfg::build(FuncId(0), &f)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = AsmBuilder::new("s");
        b.nop();
        b.ret();
        assert!(build(b.finish().unwrap()).loops().is_empty());
    }

    #[test]
    fn while_loop_detected() {
        let mut b = AsmBuilder::new("wl");
        let head = b.fresh_label();
        let out = b.fresh_label();
        b.mov(Reg::T0, Reg::A0);
        b.bind(head);
        b.br(Cond::Ge, Reg::T0, 10, out);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(head);
        b.bind(out);
        b.ret();
        let cfg = build(b.finish().unwrap());
        let loops = cfg.loops();
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.body, vec![BlockId(1), BlockId(2)]);
        assert_eq!(l.back_edges.len(), 1);
        assert_eq!(l.entry_edges.len(), 1);
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(3)));
    }

    #[test]
    fn nested_loops_detected_with_distinct_headers() {
        // for i { for j { } }
        let mut b = AsmBuilder::new("nest");
        let oh = b.fresh_label();
        let ih = b.fresh_label();
        let iout = b.fresh_label();
        let oout = b.fresh_label();
        b.ldc(Reg::T0, 0); // i = 0
        b.bind(oh);
        b.br(Cond::Ge, Reg::T0, 4, oout);
        b.ldc(Reg::temp(1), 0); // j = 0
        b.bind(ih);
        b.br(Cond::Ge, Reg::temp(1), 4, iout);
        b.alu(AluOp::Add, Reg::temp(1), Reg::temp(1), 1);
        b.jmp(ih);
        b.bind(iout);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(oh);
        b.bind(oout);
        b.ret();
        let cfg = build(b.finish().unwrap());
        let loops = cfg.loops();
        assert_eq!(loops.len(), 2);
        // The outer loop body strictly contains the inner loop body.
        let (outer, inner) = if loops[0].body.len() > loops[1].body.len() {
            (&loops[0], &loops[1])
        } else {
            (&loops[1], &loops[0])
        };
        for b in &inner.body {
            assert!(outer.contains(*b), "inner body inside outer");
        }
        assert_ne!(outer.header, inner.header);
    }

    #[test]
    fn do_while_self_loop() {
        // B1; B2: body; br back to B2.
        let mut b = AsmBuilder::new("dw");
        let head = b.fresh_label();
        b.ldc(Reg::T0, 0);
        b.bind(head);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.br(Cond::Lt, Reg::T0, 10, head);
        b.ret();
        let cfg = build(b.finish().unwrap());
        let loops = cfg.loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].body, vec![loops[0].header]);
    }

    #[test]
    fn two_back_edges_one_header_merge() {
        // while (c) { if (d) continue; body }
        let mut b = AsmBuilder::new("cont");
        let head = b.fresh_label();
        let out = b.fresh_label();
        let cont = b.fresh_label();
        b.ldc(Reg::T0, 0);
        b.bind(head);
        b.br(Cond::Ge, Reg::T0, 10, out);
        b.br(Cond::Eq, Reg::A0, 0, cont);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 2);
        b.jmp(head);
        b.bind(cont);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(head);
        b.bind(out);
        b.ret();
        let cfg = build(b.finish().unwrap());
        let loops = cfg.loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].back_edges.len(), 2);
        assert!(loops[0].body.len() >= 4);
    }
}
