//! Dominator computation (iterative dataflow, Cooper–Harvey–Kennedy style
//! simplified to the dense bitset formulation — the CFGs here are small).

use crate::graph::{BlockId, Cfg};

/// Immediate-dominator-free dominator sets: `dominates(a, b)` answers
/// whether every path from the entry to `b` passes through `a`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `sets[b]` is the bitset of blocks dominating block `b`.
    sets: Vec<Vec<bool>>,
}

impl Dominators {
    /// Computes dominator sets for `cfg` by round-robin iteration to a
    /// fixed point. Every block in a [`Cfg`] is reachable, so the classic
    /// initialisation (`dom(entry) = {entry}`, `dom(b) = all`) converges.
    pub fn compute(cfg: &Cfg) -> Dominators {
        ipet_trace::counter("cfg.dom.computations", 1);
        let n = cfg.num_blocks();
        let mut sets = vec![vec![true; n]; n];
        sets[cfg.entry.0] = vec![false; n];
        sets[cfg.entry.0][cfg.entry.0] = true;

        let preds: Vec<Vec<BlockId>> = (0..n).map(|b| cfg.predecessors(BlockId(b))).collect();

        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if b == cfg.entry.0 {
                    continue;
                }
                // intersection of predecessors' dominator sets, plus self
                let mut new = vec![true; n];
                if preds[b].is_empty() {
                    // entry-only reachable via entry edge; keep {b}
                    new = vec![false; n];
                } else {
                    for p in &preds[b] {
                        for (i, slot) in new.iter_mut().enumerate() {
                            *slot = *slot && sets[p.0][i];
                        }
                    }
                }
                new[b] = true;
                if new != sets[b] {
                    sets[b] = new;
                    changed = true;
                }
            }
        }
        Dominators { sets }
    }

    /// True if `a` dominates `b` (reflexive: every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.sets[b.0][a.0]
    }

    /// The set of blocks dominating `b`, in index order.
    pub fn dominators_of(&self, b: BlockId) -> Vec<BlockId> {
        self.sets[b.0].iter().enumerate().filter(|(_, &d)| d).map(|(i, _)| BlockId(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cfg;
    use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Reg};

    fn while_loop_cfg() -> Cfg {
        let mut b = AsmBuilder::new("wl");
        let head = b.fresh_label();
        let out = b.fresh_label();
        b.mov(Reg::T0, Reg::A0);
        b.bind(head);
        b.br(Cond::Ge, Reg::T0, 10, out);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(head);
        b.bind(out);
        b.ret();
        Cfg::build(FuncId(0), &b.finish().unwrap())
    }

    #[test]
    fn entry_dominates_everything() {
        let cfg = while_loop_cfg();
        let dom = Dominators::compute(&cfg);
        for b in 0..cfg.num_blocks() {
            assert!(dom.dominates(cfg.entry, BlockId(b)));
        }
    }

    #[test]
    fn self_domination_is_reflexive() {
        let cfg = while_loop_cfg();
        let dom = Dominators::compute(&cfg);
        for b in 0..cfg.num_blocks() {
            assert!(dom.dominates(BlockId(b), BlockId(b)));
        }
    }

    #[test]
    fn loop_header_dominates_body_and_exit() {
        let cfg = while_loop_cfg();
        let dom = Dominators::compute(&cfg);
        // B2 (index 1) is the header; B3 (index 2) the body; B4 (index 3) exit.
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let mut b = AsmBuilder::new("ite");
        let els = b.fresh_label();
        let join = b.fresh_label();
        b.br(Cond::Eq, Reg::A0, 0, els);
        b.ldc(Reg::T0, 1);
        b.jmp(join);
        b.bind(els);
        b.ldc(Reg::T0, 2);
        b.bind(join);
        b.ret();
        let cfg = Cfg::build(FuncId(0), &b.finish().unwrap());
        let dom = Dominators::compute(&cfg);
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert_eq!(dom.dominators_of(BlockId(3)), vec![BlockId(0), BlockId(3)]);
    }
}
