//! Basic blocks and the control-flow graph of one function.

use ipet_arch::{FuncId, Function, Instr};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Index of a basic block within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0 + 1)
    }
}

/// Index of an edge within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0 + 1)
    }
}

/// Classification of a CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// The virtual edge into the entry block (the paper's `d1`).
    Entry,
    /// An ordinary intra-function edge.
    Internal,
    /// An `f`-edge (paper Fig. 4): leaves a block ending in `call`, flows
    /// through the callee's CFG, and re-enters at the following block.
    /// Carries the callee.
    Call(FuncId),
    /// A virtual edge out of a `ret` block.
    Exit,
}

/// One CFG edge carrying a `d`-variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source block (`None` for the virtual entry edge).
    pub from: Option<BlockId>,
    /// Destination block (`None` for virtual exit edges).
    pub to: Option<BlockId>,
    /// Edge classification.
    pub kind: EdgeKind,
}

/// A maximal single-entry single-exit instruction run, carrying an
/// `x`-variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index (inclusive).
    pub start: usize,
    /// Last instruction index (exclusive).
    pub end: usize,
    /// The call terminating this block, if any: `(instruction index,
    /// callee)`. A call is always the last instruction of its block.
    pub call: Option<(usize, FuncId)>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the block contains no instructions (never produced by
    /// [`Cfg::build`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The control-flow graph of a single function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Which function of the program this CFG describes.
    pub func: FuncId,
    /// Function name (copied for diagnostics).
    pub func_name: String,
    /// Blocks in instruction order; only blocks reachable from the entry.
    pub blocks: Vec<BasicBlock>,
    /// All edges; the entry edge is always `EdgeId(0)`.
    pub edges: Vec<Edge>,
    /// Entry block (always `BlockId(0)` after construction).
    pub entry: BlockId,
}

impl Cfg {
    /// Builds the CFG of `function` (which has id `func` in its program).
    ///
    /// Leaders are: instruction 0, every branch target, and every
    /// instruction following a terminator. Unreachable blocks are dropped —
    /// keeping them would let the ILP route spurious circulation through
    /// dead cycles.
    ///
    /// # Panics
    ///
    /// Panics if the function body is empty (validated programs never are).
    pub fn build(func: FuncId, function: &Function) -> Cfg {
        let n = function.instrs.len();
        assert!(n > 0, "cannot build a CFG for an empty function");

        // 1. Find leaders.
        let mut leaders = BTreeSet::new();
        leaders.insert(0usize);
        for (i, ins) in function.instrs.iter().enumerate() {
            if let Some(t) = ins.branch_target() {
                leaders.insert(t);
            }
            if ins.is_terminator() && i + 1 < n {
                leaders.insert(i + 1);
            }
        }

        // 2. Carve blocks.
        let bounds: Vec<usize> = leaders.iter().copied().collect();
        let mut raw_blocks = Vec::new();
        let mut start_to_block = BTreeMap::new();
        for (bi, &start) in bounds.iter().enumerate() {
            let end = bounds.get(bi + 1).copied().unwrap_or(n);
            start_to_block.insert(start, raw_blocks.len());
            let call = match function.instrs[end - 1] {
                Instr::Call { func } => Some((end - 1, func)),
                _ => None,
            };
            raw_blocks.push(BasicBlock { start, end, call });
        }

        // 3. Raw successor lists: (successor raw id, edge kind) + has_exit.
        let succ_of = |b: &BasicBlock| -> (Vec<(usize, EdgeKind)>, bool) {
            let last = function.instrs[b.end - 1];
            let mut succs = Vec::new();
            let mut exit = false;
            match last {
                Instr::Ret => exit = true,
                Instr::Jmp { target } => succs.push((start_to_block[&target], EdgeKind::Internal)),
                Instr::Br { target, .. } => {
                    // Fall-through first, branch-taken second (the order is
                    // irrelevant to the flow equations).
                    if b.end < n {
                        succs.push((start_to_block[&b.end], EdgeKind::Internal));
                    }
                    succs.push((start_to_block[&target], EdgeKind::Internal));
                }
                Instr::Call { func } => {
                    // The paper's f-edge: control flows through the callee
                    // and resumes at the next block. Validation guarantees a
                    // call is never the last instruction of a function.
                    debug_assert!(b.end < n, "call cannot end a function");
                    succs.push((start_to_block[&b.end], EdgeKind::Call(func)));
                }
                _ => {
                    if b.end < n {
                        succs.push((start_to_block[&b.end], EdgeKind::Internal));
                    }
                }
            }
            succs.dedup();
            (succs, exit)
        };

        // 4. Reachability from raw block 0.
        let mut reachable = vec![false; raw_blocks.len()];
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if reachable[b] {
                continue;
            }
            reachable[b] = true;
            let (succs, _) = succ_of(&raw_blocks[b]);
            stack.extend(succs.into_iter().map(|(s, _)| s));
        }

        // 5. Renumber reachable blocks, build edges.
        let mut remap = vec![usize::MAX; raw_blocks.len()];
        let mut blocks = Vec::new();
        for (i, b) in raw_blocks.iter().enumerate() {
            if reachable[i] {
                remap[i] = blocks.len();
                blocks.push(b.clone());
            }
        }
        let mut edges = vec![Edge { from: None, to: Some(BlockId(0)), kind: EdgeKind::Entry }];
        for (i, raw) in raw_blocks.iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            let from = BlockId(remap[i]);
            let (succs, exit) = succ_of(raw);
            if exit {
                edges.push(Edge { from: Some(from), to: None, kind: EdgeKind::Exit });
            }
            for (s, kind) in succs {
                debug_assert!(reachable[s], "successor of reachable block is reachable");
                edges.push(Edge { from: Some(from), to: Some(BlockId(remap[s])), kind });
            }
        }

        ipet_trace::counter("cfg.build.calls", 1);
        ipet_trace::counter("cfg.blocks", blocks.len() as u64);
        ipet_trace::counter("cfg.edges", edges.len() as u64);
        Cfg { func, func_name: function.name.clone(), blocks, edges, entry: BlockId(0) }
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of edges (entry and exit edges included).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edges flowing into `block` (including the entry edge for block 0).
    pub fn in_edges(&self, block: BlockId) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to == Some(block))
            .map(|(i, _)| EdgeId(i))
            .collect()
    }

    /// Edges flowing out of `block` (including exit edges).
    pub fn out_edges(&self, block: BlockId) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == Some(block))
            .map(|(i, _)| EdgeId(i))
            .collect()
    }

    /// Successor blocks of `block` (exit edges excluded).
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        self.edges.iter().filter(|e| e.from == Some(block)).filter_map(|e| e.to).collect()
    }

    /// Predecessor blocks of `block` (the entry edge excluded).
    pub fn predecessors(&self, block: BlockId) -> Vec<BlockId> {
        self.edges.iter().filter(|e| e.to == Some(block)).filter_map(|e| e.from).collect()
    }

    /// Blocks ending in `ret`.
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        self.edges.iter().filter(|e| e.kind == EdgeKind::Exit).filter_map(|e| e.from).collect()
    }

    /// The block containing instruction index `instr`, if any.
    pub fn block_of_instr(&self, instr: usize) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.start <= instr && instr < b.end).map(BlockId)
    }

    /// All `f`-edges (call sites) in this CFG, in instruction order:
    /// `(site index within function, block, instruction index, callee)`.
    ///
    /// Site indices are what the constraint DSL's `f1`, `f2`, … refer to.
    pub fn call_sites(&self) -> Vec<(usize, BlockId, usize, FuncId)> {
        let mut sites: Vec<(BlockId, usize, FuncId)> = Vec::new();
        for (bi, b) in self.blocks.iter().enumerate() {
            if let Some((instr, callee)) = b.call {
                sites.push((BlockId(bi), instr, callee));
            }
        }
        sites.sort_by_key(|&(_, instr, _)| instr);
        sites.into_iter().enumerate().map(|(i, (b, instr, callee))| (i, b, instr, callee)).collect()
    }

    /// The `f`-edge leaving the block of call-site `site`, paired with its
    /// callee: `(edge, callee)`. Sites are indexed as in
    /// [`Cfg::call_sites`].
    pub fn call_edge(&self, site: usize) -> Option<(EdgeId, FuncId)> {
        let (_, block, _, callee) = self.call_sites().into_iter().nth(site)?;
        self.edges
            .iter()
            .position(|e| e.from == Some(block) && matches!(e.kind, EdgeKind::Call(_)))
            .map(|i| (EdgeId(i), callee))
    }

    /// Renders the CFG in Graphviz DOT syntax: blocks as nodes labelled by
    /// their `x` variable, edges labelled `d`/`f` with virtual `source`
    /// and `sink` nodes for the entry and exit edges — the shape of the
    /// paper's figures.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.func_name);
        let _ = writeln!(out, "  source [shape=point];");
        let _ = writeln!(out, "  sink [shape=point];");
        for b in 0..self.num_blocks() {
            let _ = writeln!(out, "  b{b} [shape=box, label=\"x{}\"];", b + 1);
        }
        for (i, e) in self.edges.iter().enumerate() {
            let from = match e.from {
                Some(b) => format!("b{}", b.0),
                None => "source".to_string(),
            };
            let to = match e.to {
                Some(b) => format!("b{}", b.0),
                None => "sink".to_string(),
            };
            let label = match e.kind {
                EdgeKind::Call(_) => {
                    let site = self
                        .call_sites()
                        .iter()
                        .position(|&(s, _, _, _)| self.call_edge(s).map(|(ce, _)| ce.0) == Some(i))
                        .map(|s| format!("f{}", s + 1))
                        .unwrap_or_else(|| format!("d{}", i + 1));
                    site
                }
                _ => format!("d{}", i + 1),
            };
            let style = if matches!(e.kind, EdgeKind::Call(_)) { ", style=dashed" } else { "" };
            let _ = writeln!(out, "  {from} -> {to} [label=\"{label}\"{style}];");
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Renders the CFG in a compact text form used by the figure harness.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cfg {} ({} blocks, {} edges)",
            self.func_name,
            self.num_blocks(),
            self.num_edges()
        );
        for (i, b) in self.blocks.iter().enumerate() {
            let succs: Vec<String> =
                self.successors(BlockId(i)).iter().map(|s| s.to_string()).collect();
            let exit = if self
                .out_edges(BlockId(i))
                .iter()
                .any(|&e| self.edges[e.0].kind == EdgeKind::Exit)
            {
                " exit"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {} [{}..{}) -> {}{}",
                BlockId(i),
                b.start,
                b.end,
                if succs.is_empty() { "-".to_string() } else { succs.join(", ") },
                exit
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_arch::{AsmBuilder, Cond, Reg};

    /// The paper's Fig. 2: if-then-else.
    pub(crate) fn diamond() -> Function {
        let mut b = AsmBuilder::new("ite");
        let els = b.fresh_label();
        let join = b.fresh_label();
        b.br(Cond::Eq, Reg::A0, 0, els); // B1: if (p)
        b.ldc(Reg::T0, 1); // B2: q = 1
        b.jmp(join);
        b.bind(els);
        b.ldc(Reg::T0, 2); // B3: q = 2
        b.bind(join);
        b.mov(Reg::RV, Reg::T0); // B4: r = q
        b.ret();
        b.finish().unwrap()
    }

    /// The paper's Fig. 3: while-loop.
    pub(crate) fn while_loop() -> Function {
        let mut b = AsmBuilder::new("wl");
        let head = b.fresh_label();
        let out = b.fresh_label();
        b.mov(Reg::T0, Reg::A0); // B1: q = p
        b.bind(head);
        b.br(Cond::Ge, Reg::T0, 10, out); // B2: while (q < 10)
        b.alu(ipet_arch::AluOp::Add, Reg::T0, Reg::T0, 1); // B3: q++
        b.jmp(head);
        b.bind(out);
        b.mov(Reg::RV, Reg::T0); // B4: r = q
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn diamond_blocks_and_edges() {
        let f = diamond();
        let cfg = Cfg::build(FuncId(0), &f);
        assert_eq!(cfg.num_blocks(), 4);
        // Edges: entry, B1->B2, B1->B3, B2->B4, B3->B4, B4->exit = 6.
        assert_eq!(cfg.num_edges(), 6);
        assert_eq!(cfg.successors(BlockId(0)).len(), 2);
        assert_eq!(cfg.predecessors(BlockId(3)).len(), 2);
        assert_eq!(cfg.exit_blocks(), vec![BlockId(3)]);
    }

    #[test]
    fn while_loop_shape() {
        let f = while_loop();
        let cfg = Cfg::build(FuncId(0), &f);
        assert_eq!(cfg.num_blocks(), 4);
        // B2 (header) has preds B1 and B3; succs B3 and B4.
        assert_eq!(cfg.predecessors(BlockId(1)).len(), 2);
        assert_eq!(cfg.successors(BlockId(1)).len(), 2);
    }

    #[test]
    fn flow_conservation_edge_counts_match() {
        let f = while_loop();
        let cfg = Cfg::build(FuncId(0), &f);
        // Sum over blocks of in-edge counts equals sum of out-edge counts
        // equals total edges counting entry/exit once each.
        let in_total: usize = (0..cfg.num_blocks()).map(|b| cfg.in_edges(BlockId(b)).len()).sum();
        let out_total: usize = (0..cfg.num_blocks()).map(|b| cfg.out_edges(BlockId(b)).len()).sum();
        assert_eq!(in_total, cfg.num_edges() - 1); // all but exit edges target a block
        assert_eq!(out_total, cfg.num_edges() - 1); // all but the entry edge leave a block
    }

    #[test]
    fn unreachable_code_is_dropped() {
        let mut b = AsmBuilder::new("dead");
        let live = b.fresh_label();
        b.jmp(live);
        b.ldc(Reg::T0, 42); // dead block (would be a spurious cycle source)
        b.bind(live);
        b.ret();
        let f = b.finish().unwrap();
        let cfg = Cfg::build(FuncId(0), &f);
        assert_eq!(cfg.num_blocks(), 2);
        assert!(cfg.blocks.iter().all(|blk| blk.start != 1));
    }

    #[test]
    fn calls_split_blocks_with_f_edges() {
        // The paper's Fig. 4 shape: two statements each ending in a call.
        let mut b = AsmBuilder::new("caller");
        b.ldc(Reg::A0, 10);
        b.call(FuncId(1)); // f1 ends B1
        b.ldc(Reg::A0, 20);
        b.call(FuncId(1)); // f2 ends B2
        b.ret(); // B3
        let f = b.finish().unwrap();
        let cfg = Cfg::build(FuncId(0), &f);
        assert_eq!(cfg.num_blocks(), 3, "each call terminates its block");
        let sites = cfg.call_sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].0, 0);
        assert_eq!(sites[1].0, 1);
        assert_eq!(sites[0].3, FuncId(1));
        // f-edges connect call blocks to their continuations.
        let (e1, callee1) = cfg.call_edge(0).unwrap();
        assert_eq!(callee1, FuncId(1));
        assert_eq!(cfg.edges[e1.0].from, Some(BlockId(0)));
        assert_eq!(cfg.edges[e1.0].to, Some(BlockId(1)));
        assert!(matches!(cfg.edges[e1.0].kind, EdgeKind::Call(_)));
        let (e2, _) = cfg.call_edge(1).unwrap();
        assert_eq!(cfg.edges[e2.0].from, Some(BlockId(1)));
        assert!(cfg.call_edge(2).is_none());
    }

    #[test]
    fn block_of_instr() {
        let f = diamond();
        let cfg = Cfg::build(FuncId(0), &f);
        assert_eq!(cfg.block_of_instr(0), Some(BlockId(0)));
        assert_eq!(cfg.block_of_instr(1), Some(BlockId(1)));
        assert_eq!(cfg.block_of_instr(99), None);
    }

    #[test]
    fn entry_edge_is_edge_zero() {
        let f = diamond();
        let cfg = Cfg::build(FuncId(0), &f);
        assert_eq!(cfg.edges[0].kind, EdgeKind::Entry);
        assert_eq!(cfg.edges[0].to, Some(cfg.entry));
        assert_eq!(cfg.in_edges(cfg.entry), vec![EdgeId(0)]);
    }

    #[test]
    fn dot_export_names_all_blocks_and_f_edges() {
        let mut b = AsmBuilder::new("caller");
        b.call(FuncId(0));
        b.ret();
        let f = b.finish().unwrap();
        let cfg = Cfg::build(FuncId(1), &f);
        let dot = cfg.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("b0 [shape=box, label=\"x1\"]"));
        assert!(dot.contains("source ->"));
        assert!(dot.contains("-> sink"));
        assert!(dot.contains("style=dashed"), "f-edges are dashed: {dot}");
        assert!(dot.contains("label=\"f1\""), "{dot}");
    }

    #[test]
    fn render_mentions_every_block() {
        let f = while_loop();
        let cfg = Cfg::build(FuncId(0), &f);
        let text = cfg.render();
        for i in 0..cfg.num_blocks() {
            assert!(text.contains(&BlockId(i).to_string()));
        }
    }
}
