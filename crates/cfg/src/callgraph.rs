//! Call graph and per-call-site instance expansion.
//!
//! IPET programs are recursion-free (one of the decidability restrictions
//! the paper adopts from Kligerman/Stoyenko and Puschner/Koza), so the call
//! graph is a DAG and the set of acyclic call-strings is finite. The paper
//! gives each call site its own copy of the callee's `x_i` variables so
//! constraints such as `x12 = x8.f1` can be expressed; [`Instances`]
//! materialises exactly that expansion.

use crate::graph::{BlockId, Cfg};
use ipet_arch::{FuncId, Program};
use std::fmt;

/// A call site inside one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Zero-based site index within the caller (the DSL's `f1` is site 0).
    pub site: usize,
    /// Block containing the call.
    pub block: BlockId,
    /// Instruction index of the `call`.
    pub instr: usize,
    /// Callee function.
    pub callee: FuncId,
}

/// Errors from call-graph analysis and instance expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallGraphError {
    /// The program contains (mutual) recursion; the cycle is reported by
    /// function name in call order.
    Recursion(Vec<String>),
    /// Instance expansion exceeded the safety cap.
    TooManyInstances(usize),
}

impl fmt::Display for CallGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallGraphError::Recursion(cycle) => {
                write!(f, "recursive call cycle: {}", cycle.join(" -> "))
            }
            CallGraphError::TooManyInstances(n) => {
                write!(f, "call-site expansion produced more than {n} instances")
            }
        }
    }
}

impl std::error::Error for CallGraphError {}

/// The static call graph of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    /// `callees[f]` lists the callees of function `f` with multiplicity,
    /// in call-site order.
    callees: Vec<Vec<FuncId>>,
    names: Vec<String>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    pub fn build(program: &Program) -> CallGraph {
        let callees = program
            .functions
            .iter()
            .map(|f| {
                f.instrs
                    .iter()
                    .filter_map(|i| match i {
                        ipet_arch::Instr::Call { func } => Some(*func),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        let names = program.functions.iter().map(|f| f.name.clone()).collect();
        CallGraph { callees, names }
    }

    /// Callees of `f` in call-site order (with multiplicity).
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.0]
    }

    /// Functions reachable from `entry` (entry included), in discovery order.
    pub fn reachable(&self, entry: FuncId) -> Vec<FuncId> {
        let mut seen = vec![false; self.callees.len()];
        let mut order = Vec::new();
        let mut stack = vec![entry];
        while let Some(f) = stack.pop() {
            if seen[f.0] {
                continue;
            }
            seen[f.0] = true;
            order.push(f);
            for &c in &self.callees[f.0] {
                stack.push(c);
            }
        }
        order
    }

    /// Checks that no function reachable from `entry` participates in a
    /// call cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CallGraphError::Recursion`] with the offending cycle.
    pub fn check_acyclic(&self, entry: FuncId) -> Result<(), CallGraphError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut mark = vec![Mark::White; self.callees.len()];
        let mut path: Vec<FuncId> = Vec::new();

        // Iterative DFS with an explicit enter/leave stack.
        enum Op {
            Enter(FuncId),
            Leave(FuncId),
        }
        let mut stack = vec![Op::Enter(entry)];
        while let Some(op) = stack.pop() {
            match op {
                Op::Enter(f) => match mark[f.0] {
                    Mark::Black => {}
                    Mark::Grey => {
                        let pos = path.iter().position(|&p| p == f).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[pos..].iter().map(|&p| self.names[p.0].clone()).collect();
                        cycle.push(self.names[f.0].clone());
                        return Err(CallGraphError::Recursion(cycle));
                    }
                    Mark::White => {
                        mark[f.0] = Mark::Grey;
                        path.push(f);
                        stack.push(Op::Leave(f));
                        for &c in self.callees[f.0].iter().rev() {
                            stack.push(Op::Enter(c));
                        }
                    }
                },
                Op::Leave(f) => {
                    mark[f.0] = Mark::Black;
                    path.pop();
                }
            }
        }
        Ok(())
    }
}

/// Index of a CFG instance within [`Instances`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub usize);

/// One context-expanded copy of a function's CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The function this instance is a copy of.
    pub func: FuncId,
    /// Parent instance and the call-site index within it, or `None` for
    /// the root (the analysed routine itself).
    pub parent: Option<(InstanceId, usize)>,
    /// Human-readable call string, e.g. `main/f1:check_data`.
    pub label: String,
}

/// The complete context expansion of a program from an entry function:
/// one shared [`Cfg`] per function plus one [`Instance`] per acyclic
/// call-string.
#[derive(Debug, Clone, PartialEq)]
pub struct Instances {
    /// `cfgs[f]` is the CFG of function `f` (built for every function
    /// reachable from the root; unreachable functions get a CFG too so the
    /// vector is indexable by [`FuncId`]).
    pub cfgs: Vec<Cfg>,
    /// All instances; the root is always `InstanceId(0)`.
    pub instances: Vec<Instance>,
    /// True for the paper's shared-CFG formulation (eq. 12): one instance
    /// per function, with callee entry flow equal to the *sum* of all
    /// `f`-edges targeting it, instead of one instance per call string.
    pub shared: bool,
}

impl Instances {
    /// Default safety cap on the number of expanded instances.
    pub const MAX_INSTANCES: usize = 100_000;

    /// Expands `program` from `entry`.
    ///
    /// # Errors
    ///
    /// * [`CallGraphError::Recursion`] if the call graph has a cycle
    ///   reachable from `entry`.
    /// * [`CallGraphError::TooManyInstances`] if expansion exceeds
    ///   [`Instances::MAX_INSTANCES`].
    pub fn expand(program: &Program, entry: FuncId) -> Result<Instances, CallGraphError> {
        let _span = ipet_trace::span("cfg.expand");
        let cg = CallGraph::build(program);
        cg.check_acyclic(entry)?;

        let cfgs: Vec<Cfg> =
            program.functions.iter().enumerate().map(|(i, f)| Cfg::build(FuncId(i), f)).collect();

        let mut instances = vec![Instance {
            func: entry,
            parent: None,
            label: program.functions[entry.0].name.clone(),
        }];
        let mut work = vec![InstanceId(0)];
        while let Some(inst) = work.pop() {
            let func = instances[inst.0].func;
            let sites = cfgs[func.0].call_sites();
            for (site, _block, _instr, callee) in sites {
                let label = format!(
                    "{}/f{}:{}",
                    instances[inst.0].label,
                    site + 1,
                    program.functions[callee.0].name
                );
                instances.push(Instance { func: callee, parent: Some((inst, site)), label });
                if instances.len() > Self::MAX_INSTANCES {
                    return Err(CallGraphError::TooManyInstances(Self::MAX_INSTANCES));
                }
                work.push(InstanceId(instances.len() - 1));
            }
        }
        ipet_trace::counter("cfg.instances", instances.len() as u64);
        Ok(Instances { cfgs, instances, shared: false })
    }

    /// Expands `program` in the paper's *shared* formulation: exactly one
    /// instance per function reachable from `entry` (the root first), with
    /// the eq.-(12) coupling `d_entry = f1 + f2 + ...` supplied by the
    /// structural-constraint generator. Cheaper than per-call-site
    /// expansion on call-heavy programs, but caller-scoped constraints
    /// (`x8.f1`) lose their context sensitivity.
    ///
    /// # Errors
    ///
    /// Returns [`CallGraphError::Recursion`] on call cycles.
    pub fn expand_shared(program: &Program, entry: FuncId) -> Result<Instances, CallGraphError> {
        let _span = ipet_trace::span("cfg.expand");
        let cg = CallGraph::build(program);
        cg.check_acyclic(entry)?;
        let cfgs: Vec<Cfg> =
            program.functions.iter().enumerate().map(|(i, f)| Cfg::build(FuncId(i), f)).collect();
        let instances: Vec<Instance> = cg
            .reachable(entry)
            .into_iter()
            .map(|f| Instance { func: f, parent: None, label: program.functions[f.0].name.clone() })
            .collect();
        ipet_trace::counter("cfg.instances", instances.len() as u64);
        Ok(Instances { cfgs, instances, shared: true })
    }

    /// The instance holding function `func`, when one exists.
    pub fn instance_of_func(&self, func: FuncId) -> Option<InstanceId> {
        self.instances.iter().position(|i| i.func == func).map(InstanceId)
    }

    /// The root instance id.
    pub fn root(&self) -> InstanceId {
        InstanceId(0)
    }

    /// The CFG backing an instance.
    pub fn cfg(&self, inst: InstanceId) -> &Cfg {
        &self.cfgs[self.instances[inst.0].func.0]
    }

    /// Call sites of an instance, as [`CallSite`] records.
    pub fn call_sites(&self, inst: InstanceId) -> Vec<CallSite> {
        self.cfg(inst)
            .call_sites()
            .into_iter()
            .map(|(site, block, instr, callee)| CallSite { site, block, instr, callee })
            .collect()
    }

    /// The child instance reached from `parent` through call-site `site`.
    /// In the shared formulation this is simply the callee's single
    /// instance.
    pub fn child_at(&self, parent: InstanceId, site: usize) -> Option<InstanceId> {
        if self.shared {
            let callee = self.cfg(parent).call_sites().get(site)?.3;
            return self.instance_of_func(callee);
        }
        self.instances.iter().position(|i| i.parent == Some((parent, site))).map(InstanceId)
    }

    /// All instances of a given function.
    pub fn instances_of(&self, func: FuncId) -> Vec<InstanceId> {
        self.instances
            .iter()
            .enumerate()
            .filter(|(_, i)| i.func == func)
            .map(|(n, _)| InstanceId(n))
            .collect()
    }

    /// Total number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Never true: expansion always yields at least the root.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_arch::{AsmBuilder, Program};

    /// main calls leaf twice; helper calls leaf once; main calls helper.
    fn layered() -> Program {
        let mut leaf = AsmBuilder::new("leaf");
        leaf.ret();
        let mut helper = AsmBuilder::new("helper");
        helper.call(FuncId(0));
        helper.ret();
        let mut main = AsmBuilder::new("main");
        main.call(FuncId(0));
        main.call(FuncId(1));
        main.call(FuncId(0));
        main.ret();
        Program::new(
            vec![leaf.finish().unwrap(), helper.finish().unwrap(), main.finish().unwrap()],
            vec![],
            FuncId(2),
        )
        .unwrap()
    }

    #[test]
    fn callees_in_site_order() {
        let p = layered();
        let cg = CallGraph::build(&p);
        assert_eq!(cg.callees(FuncId(2)), &[FuncId(0), FuncId(1), FuncId(0)]);
        assert_eq!(cg.callees(FuncId(0)), &[]);
    }

    #[test]
    fn reachable_set() {
        let p = layered();
        let cg = CallGraph::build(&p);
        let r = cg.reachable(FuncId(1));
        assert_eq!(r, vec![FuncId(1), FuncId(0)]);
    }

    #[test]
    fn acyclic_ok() {
        let p = layered();
        assert!(CallGraph::build(&p).check_acyclic(FuncId(2)).is_ok());
    }

    #[test]
    fn direct_recursion_detected() {
        let mut f = AsmBuilder::new("rec");
        f.call(FuncId(0));
        f.ret();
        let p = Program::new(vec![f.finish().unwrap()], vec![], FuncId(0)).unwrap();
        let err = CallGraph::build(&p).check_acyclic(FuncId(0)).unwrap_err();
        assert_eq!(err, CallGraphError::Recursion(vec!["rec".into(), "rec".into()]));
    }

    #[test]
    fn mutual_recursion_detected() {
        let mut a = AsmBuilder::new("a");
        a.call(FuncId(1));
        a.ret();
        let mut b = AsmBuilder::new("b");
        b.call(FuncId(0));
        b.ret();
        let p = Program::new(vec![a.finish().unwrap(), b.finish().unwrap()], vec![], FuncId(0))
            .unwrap();
        let err = CallGraph::build(&p).check_acyclic(FuncId(0)).unwrap_err();
        match err {
            CallGraphError::Recursion(cycle) => assert!(cycle.len() >= 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expansion_counts_instances_per_call_string() {
        let p = layered();
        let inst = Instances::expand(&p, FuncId(2)).unwrap();
        // main + leaf(f1) + helper(f2) + helper/leaf + leaf(f3) = 5
        assert_eq!(inst.len(), 5);
        assert_eq!(inst.instances_of(FuncId(0)).len(), 3);
        assert_eq!(inst.instances_of(FuncId(1)).len(), 1);
        assert!(!inst.is_empty());
    }

    #[test]
    fn child_at_follows_sites() {
        let p = layered();
        let inst = Instances::expand(&p, FuncId(2)).unwrap();
        let root = inst.root();
        let c0 = inst.child_at(root, 0).unwrap();
        let c1 = inst.child_at(root, 1).unwrap();
        let c2 = inst.child_at(root, 2).unwrap();
        assert_eq!(inst.instances[c0.0].func, FuncId(0));
        assert_eq!(inst.instances[c1.0].func, FuncId(1));
        assert_eq!(inst.instances[c2.0].func, FuncId(0));
        assert!(inst.child_at(root, 3).is_none());
        // helper's own leaf call:
        let g = inst.child_at(c1, 0).unwrap();
        assert_eq!(inst.instances[g.0].func, FuncId(0));
        assert_eq!(inst.instances[g.0].label, "main/f2:helper/f1:leaf");
    }

    #[test]
    fn labels_are_call_strings() {
        let p = layered();
        let inst = Instances::expand(&p, FuncId(2)).unwrap();
        let labels: Vec<&str> = inst.instances.iter().map(|i| i.label.as_str()).collect();
        assert!(labels.contains(&"main"));
        assert!(labels.contains(&"main/f1:leaf"));
        assert!(labels.contains(&"main/f3:leaf"));
    }

    #[test]
    fn call_sites_records() {
        let p = layered();
        let inst = Instances::expand(&p, FuncId(2)).unwrap();
        let sites = inst.call_sites(inst.root());
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].site, 0);
        assert_eq!(sites[0].callee, FuncId(0));
        assert_eq!(sites[1].callee, FuncId(1));
    }
}
