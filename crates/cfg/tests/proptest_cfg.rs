//! Property tests on CFG construction over randomly generated structured
//! code (built with the mini-C compiler so the CFGs are realistic).

use ipet_cfg::{BlockId, Cfg, Dominators, EdgeKind, Instances};
use ipet_lang::{BinOp, Expr, ExprKind, FuncDecl, Item, Module, Stmt};
use proptest::prelude::*;

fn num(n: i64) -> Expr {
    Expr { kind: ExprKind::Num(n), line: 1 }
}

fn var(name: &str) -> Expr {
    Expr { kind: ExprKind::Var(name.into()), line: 1 }
}

fn binop(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr { kind: ExprKind::Binary(op, Box::new(l), Box::new(r)), line: 1 }
}

/// Random structured statements: assignments, if/else, bounded whiles.
fn arb_stmts() -> impl Strategy<Value = Vec<Stmt>> {
    let assign = (1i64..20).prop_map(|n| Stmt::Assign {
        name: "t".into(),
        value: binop(BinOp::Add, var("t"), num(n)),
        line: 1,
    });
    let stmt = assign.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (
                -5i64..5,
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..2),
            )
                .prop_map(|(k, t, e)| Stmt::If {
                    cond: binop(BinOp::Lt, var("a"), num(k)),
                    then_branch: t,
                    else_branch: e,
                    line: 1,
                }),
            (1i64..4, prop::collection::vec(inner, 1..2)).prop_map(|(k, body)| {
                // while (t < k) { body; t = t + 1 } — always terminates.
                let mut b = body;
                b.push(Stmt::Assign {
                    name: "t".into(),
                    value: binop(BinOp::Add, var("t"), num(1)),
                    line: 1,
                });
                Stmt::While { cond: binop(BinOp::Lt, var("t"), num(k)), body: b, line: 1 }
            }),
        ]
    });
    prop::collection::vec(stmt, 1..5)
}

fn cfg_of(body: Vec<Stmt>) -> (ipet_arch::Program, Cfg) {
    let mut stmts = vec![Stmt::Decl { name: "t".into(), init: Some(num(0)), line: 1 }];
    stmts.extend(body);
    stmts.push(Stmt::Return { value: Some(var("t")), line: 1 });
    let module = Module {
        items: vec![Item::Func(FuncDecl {
            name: "f".into(),
            params: vec!["a".into()],
            body: stmts,
            line: 1,
        })],
    };
    let program = ipet_lang::compile_module(&module, "f").expect("compiles");
    let cfg = Cfg::build(program.entry, program.entry_function());
    (program, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants: blocks partition the reachable instructions,
    /// edges reference valid blocks, the entry edge is unique, exit edges
    /// leave `ret` blocks only.
    #[test]
    fn cfg_wellformedness(body in arb_stmts()) {
        let (program, cfg) = cfg_of(body);
        let f = program.entry_function();

        // Blocks are non-empty, ordered, disjoint.
        let mut prev_end = 0;
        for b in &cfg.blocks {
            prop_assert!(b.start < b.end);
            prop_assert!(b.start >= prev_end);
            prop_assert!(b.end <= f.instrs.len());
            prev_end = b.end;
        }

        // Exactly one entry edge, pointing at the entry block.
        let entries: Vec<_> = cfg.edges.iter().filter(|e| e.kind == EdgeKind::Entry).collect();
        prop_assert_eq!(entries.len(), 1);
        prop_assert_eq!(entries[0].to, Some(cfg.entry));

        // Edge endpoints are valid; exit edges come from ret blocks.
        for e in &cfg.edges {
            if let Some(from) = e.from {
                prop_assert!(from.0 < cfg.num_blocks());
            }
            if let Some(to) = e.to {
                prop_assert!(to.0 < cfg.num_blocks());
            }
            if e.kind == EdgeKind::Exit {
                let from = e.from.unwrap();
                let last = f.instrs[cfg.blocks[from.0].end - 1];
                prop_assert!(matches!(last, ipet_arch::Instr::Ret));
            }
        }

        // Every block is reachable from the entry (construction drops the
        // rest): walk successors.
        let mut seen = vec![false; cfg.num_blocks()];
        let mut stack = vec![cfg.entry];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b.0], true) {
                continue;
            }
            stack.extend(cfg.successors(b));
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Dominator sanity: the entry dominates everything; loop headers
    /// dominate their bodies; bodies contain all back-edge sources.
    #[test]
    fn loops_and_dominators(body in arb_stmts()) {
        let (_p, cfg) = cfg_of(body);
        let dom = Dominators::compute(&cfg);
        for b in 0..cfg.num_blocks() {
            prop_assert!(dom.dominates(cfg.entry, BlockId(b)));
        }
        for l in cfg.loops() {
            prop_assert!(l.contains(l.header));
            for &b in &l.body {
                prop_assert!(dom.dominates(l.header, b), "header dominates body");
            }
            for e in &l.back_edges {
                let from = cfg.edges[e.0].from.unwrap();
                prop_assert!(l.contains(from), "latches live inside the loop");
                prop_assert_eq!(cfg.edges[e.0].to, Some(l.header));
            }
            // Entry edges come from outside the loop (or the entry edge).
            for e in &l.entry_edges {
                if let Some(from) = cfg.edges[e.0].from {
                    prop_assert!(!l.contains(from));
                }
            }
        }
    }

    /// Instance expansion on call-free programs is a single instance whose
    /// variable counts match the CFG.
    #[test]
    fn single_function_expansion(body in arb_stmts()) {
        let (program, cfg) = cfg_of(body);
        let inst = Instances::expand(&program, program.entry).unwrap();
        prop_assert_eq!(inst.len(), 1);
        prop_assert_eq!(inst.cfg(inst.root()).num_blocks(), cfg.num_blocks());
        prop_assert_eq!(inst.cfg(inst.root()).num_edges(), cfg.num_edges());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dominators against the definition: `a` dominates `b` iff removing
    /// `a` makes `b` unreachable from the entry.
    #[test]
    fn dominators_match_reachability_definition(body in arb_stmts()) {
        let (_p, cfg) = cfg_of(body);
        let dom = Dominators::compute(&cfg);
        let reachable_without = |banned: BlockId| -> Vec<bool> {
            let mut seen = vec![false; cfg.num_blocks()];
            if banned == cfg.entry {
                return seen;
            }
            let mut stack = vec![cfg.entry];
            while let Some(b) = stack.pop() {
                if b == banned || std::mem::replace(&mut seen[b.0], true) {
                    continue;
                }
                stack.extend(cfg.successors(b));
            }
            seen
        };
        for a in 0..cfg.num_blocks() {
            let reach = reachable_without(BlockId(a));
            for (b, &reached) in reach.iter().enumerate() {
                if a == b {
                    continue;
                }
                prop_assert_eq!(
                    dom.dominates(BlockId(a), BlockId(b)),
                    !reached,
                    "a=B{} b=B{}", a + 1, b + 1
                );
            }
        }
    }
}
