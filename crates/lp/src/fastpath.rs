//! Presolve + backend routing for cold solves.
//!
//! This is the entry the branch-and-bound wrapper consults before falling
//! back to the dense tableau: exact presolve first, then the network simplex
//! when the reduced matrix is pure flow conservation (backend `auto`), the
//! sparse revised simplex otherwise. A result is returned **only** when it is
//! provably the one the dense cold path would produce — witness rounds
//! integral, optimum unique, exact integer certification against the
//! original problem — mirroring the warm-start acceptance gate. Everything
//! else is a miss: pivots spent are still charged (honest tick accounting),
//! and the caller runs the ordinary dense solve.

use crate::backend::SolverBackend;
use crate::model::Problem;
use crate::network::{solve_network, NetEnd};
use crate::presolve::{certify_exact, presolve, IntProblem, Reduced};
use crate::round::round_witness;
use crate::sparse::{SparseEnd, SparseInstance};

/// An accepted fast solve: full integral witness plus its exact objective.
pub(crate) struct FastSolve {
    pub x: Vec<i64>,
    pub claimed: i64,
}

/// Largest |objective| we allow through: beyond 2^53 the `i64 -> f64` cast
/// stops being exact and the canonical value would no longer round-trip.
const MAX_EXACT_CLAIM: i128 = 1i128 << 53;

/// Certify `x` against the exact problem and return the objective as an
/// exactly-representable `i64`.
fn claim(ip: &IntProblem, x: &[i64]) -> Option<i64> {
    let v = certify_exact(ip, x)?;
    if v.abs() > MAX_EXACT_CLAIM {
        return None;
    }
    i64::try_from(v).ok()
}

fn network_iter_cap(red: &Reduced) -> u64 {
    50_000 + 200 * (red.rows.len() as u64 + red.n_free as u64)
}

/// Attempt the fast path. `pivots_spent` accumulates simplex work whether or
/// not the attempt is accepted, so the caller can meter it either way. The
/// backend is passed explicitly (callers read the process-wide selection) so
/// tests can exercise every backend without mutating global state.
pub(crate) fn try_fast_solve(
    problem: &Problem,
    backend: SolverBackend,
    pivots_spent: &mut u64,
) -> Option<FastSolve> {
    if backend == SolverBackend::Dense {
        return None;
    }
    // The acceptance argument needs a pure ILP over exactly-integral data.
    if problem.has_non_finite() || !problem.integer.iter().all(|&b| b) {
        return None;
    }
    let ip = IntProblem::from_problem(problem)?;
    let red = match presolve(&ip) {
        Some(red) => red,
        None => {
            ipet_trace::counter("lp.presolve.bailouts", 1);
            return None;
        }
    };
    ipet_trace::counter("lp.presolve.runs", 1);
    ipet_trace::counter("lp.presolve.rows_removed", red.stats.rows_removed);
    ipet_trace::counter("lp.presolve.cols_fixed", red.stats.cols_fixed);
    ipet_trace::counter("lp.presolve.dup_rows", red.stats.dup_rows);

    if red.n_free == 0 {
        // Every variable was forced: the feasible set is (at most) a single
        // point, so certification alone decides. A failed certification
        // means the problem is infeasible — the cold path owns that verdict.
        let x = red.postsolve_witness(&[])?;
        let claimed = claim(&ip, &x)?;
        ipet_trace::counter("lp.presolve.solved", 1);
        return Some(FastSolve { x, claimed });
    }

    if backend == SolverBackend::Auto {
        match solve_network(&red, network_iter_cap(&red)) {
            NetEnd::Declined => {}
            NetEnd::Solved { x, pivots } => {
                *pivots_spent += pivots;
                ipet_trace::counter("lp.network.routed", 1);
                let outcome = red
                    .postsolve_witness(&x)
                    .and_then(|full| claim(&ip, &full).map(|claimed| (full, claimed)));
                return match outcome {
                    Some((full, claimed)) => {
                        ipet_trace::counter("lp.network.accepted", 1);
                        Some(FastSolve { x: full, claimed })
                    }
                    None => {
                        ipet_trace::counter("lp.network.fallbacks", 1);
                        None
                    }
                };
            }
            NetEnd::Miss { pivots } => {
                // Routed but not certifiable (infeasible, unbounded,
                // non-unique, overflow): the same LP would fail the sparse
                // gate too, so go straight to the dense path.
                *pivots_spent += pivots;
                ipet_trace::counter("lp.network.routed", 1);
                ipet_trace::counter("lp.network.fallbacks", 1);
                return None;
            }
        }
    }

    // General sparse path on the reduced problem, shifted so tightened
    // lower bounds cost no phase-1 artificials.
    let rp = red.to_shifted_problem()?;
    let mut inst = SparseInstance::build(&rp)?;
    ipet_trace::counter("lp.sparse.solves", 1);
    let mut pv = 0u64;
    let end = inst.solve_primal(inst.default_iter_cap(), &mut pv);
    *pivots_spent += pv;
    ipet_trace::counter("lp.sparse.refactors", inst.refactors());
    let accepted = (|| {
        if end != SparseEnd::Optimal {
            return None;
        }
        let x = inst.extract_x();
        let ints = round_witness(&x).ok()?;
        if !inst.optimum_is_unique() {
            return None;
        }
        let ints = red.unshift_witness(&ints)?;
        let full = red.postsolve_witness(&ints)?;
        let claimed = claim(&ip, &full)?;
        Some(FastSolve { x: full, claimed })
    })();
    match &accepted {
        Some(_) => ipet_trace::counter("lp.sparse.accepted", 1),
        None => ipet_trace::counter("lp.sparse.fallbacks", 1),
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProblemBuilder, Relation, Sense};

    fn flow_problem() -> Problem {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let d1 = b.add_var("d1", true);
        let x1 = b.add_var("x1", true);
        let x2 = b.add_var("x2", true);
        b.objective(x1, 5.0);
        b.objective(x2, 7.0);
        b.constraint(vec![(d1, 1.0)], Relation::Eq, 1.0);
        b.constraint(vec![(x1, 1.0), (d1, -1.0)], Relation::Eq, 0.0);
        b.constraint(vec![(x2, 1.0), (x1, -10.0)], Relation::Le, 0.0);
        b.build()
    }

    #[test]
    fn fast_path_matches_dense_cold() {
        let p = flow_problem();
        for backend in [SolverBackend::Auto, SolverBackend::Sparse] {
            let mut pivots = 0u64;
            let fast = try_fast_solve(&p, backend, &mut pivots).expect("fast path accepts");
            assert_eq!(fast.x, vec![1, 1, 10]);
            assert_eq!(fast.claimed, 75);
        }
    }

    #[test]
    fn dense_backend_disables_fast_path() {
        let mut pivots = 0u64;
        assert!(try_fast_solve(&flow_problem(), SolverBackend::Dense, &mut pivots).is_none());
        assert_eq!(pivots, 0);
    }

    #[test]
    fn fractional_optimum_misses() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.0);
        b.constraint(vec![(x, 2.0)], Relation::Le, 5.0);
        let p = b.build();
        for backend in [SolverBackend::Auto, SolverBackend::Sparse] {
            let mut pivots = 0u64;
            assert!(try_fast_solve(&p, backend, &mut pivots).is_none());
        }
    }
}
