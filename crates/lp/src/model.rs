//! LP/ILP problem model.

use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Maximize the objective (the WCET query).
    Maximize,
    /// Minimize the objective (the BCET query).
    Minimize,
}

/// Relation of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        })
    }
}

/// Index of a decision variable within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// One linear constraint `Σ coeff·var <relation> rhs`.
///
/// Coefficients for the same variable may repeat; they are summed when the
/// problem is solved.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse left-hand side terms.
    pub terms: Vec<(VarId, f64)>,
    /// Row relation.
    pub relation: Relation,
    /// Right-hand side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Returns the dense coefficient vector over `n` variables.
    pub fn dense(&self, n: usize) -> Vec<f64> {
        let mut row = vec![0.0; n];
        for &(v, c) in &self.terms {
            row[v.0] += c;
        }
        row
    }
}

/// A complete LP/ILP: all variables are implicitly `>= 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    /// Optimization direction.
    pub sense: Sense,
    /// Dense objective coefficients (one per variable).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
    /// Per-variable integrality flags.
    pub integer: Vec<bool>,
    /// Per-variable debug names.
    pub names: Vec<String>,
}

impl Problem {
    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The objective value of a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// True when any objective coefficient, constraint coefficient, or
    /// right-hand side is NaN or infinite. The simplex solver rejects such
    /// models up front ([`LpOutcome::Numerical`](crate::LpOutcome)) rather
    /// than letting NaN poison the pivot selection.
    pub fn has_non_finite(&self) -> bool {
        self.objective.iter().any(|c| !c.is_finite())
            || self
                .constraints
                .iter()
                .any(|con| !con.rhs.is_finite() || con.terms.iter().any(|(_, c)| !c.is_finite()))
    }

    /// Checks a point against every constraint and non-negativity,
    /// within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * x[v.0]).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }

    /// Renders the model in an LP-file-like text format (for debugging and
    /// the `cinderella --dump-ilp` flag).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let dir = match self.sense {
            Sense::Maximize => "maximize",
            Sense::Minimize => "minimize",
        };
        let _ = write!(out, "{dir} ");
        let mut first = true;
        for (i, &c) in self.objective.iter().enumerate() {
            if c != 0.0 {
                if !first {
                    let _ = write!(out, " + ");
                }
                let _ = write!(out, "{c}*{}", self.names[i]);
                first = false;
            }
        }
        if first {
            let _ = write!(out, "0");
        }
        let _ = writeln!(out);
        for con in &self.constraints {
            let mut firstt = true;
            for &(v, c) in &con.terms {
                if !firstt {
                    let _ = write!(out, " + ");
                }
                let _ = write!(out, "{c}*{}", self.names[v.0]);
                firstt = false;
            }
            if firstt {
                let _ = write!(out, "0");
            }
            let _ = writeln!(out, " {} {}", con.relation, con.rhs);
        }
        out
    }
}

/// Incremental builder for [`Problem`].
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    sense: Sense,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    integer: Vec<bool>,
    names: Vec<String>,
}

impl ProblemBuilder {
    /// Starts an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> ProblemBuilder {
        ProblemBuilder {
            sense,
            objective: Vec::new(),
            constraints: Vec::new(),
            integer: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Adds a variable (objective coefficient 0) and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>, integer: bool) -> VarId {
        self.objective.push(0.0);
        self.integer.push(integer);
        self.names.push(name.into());
        VarId(self.objective.len() - 1)
    }

    /// Sets the objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not created by this builder.
    pub fn objective(&mut self, var: VarId, coeff: f64) -> &mut Self {
        self.objective[var.0] = coeff;
        self
    }

    /// Adds a constraint row.
    pub fn constraint(
        &mut self,
        terms: Vec<(VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> &mut Self {
        self.constraints.push(Constraint { terms, relation, rhs });
        self
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Finalizes the problem.
    pub fn build(self) -> Problem {
        Problem {
            sense: self.sense,
            objective: self.objective,
            constraints: self.constraints,
            integer: self.integer,
            names: self.names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Problem {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", false);
        b.objective(x, 1.0);
        b.objective(y, 2.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 3.0);
        b.constraint(vec![(x, 1.0)], Relation::Ge, 1.0);
        b.build()
    }

    #[test]
    fn builder_counts() {
        let p = tiny();
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 2);
        assert!(p.integer[0]);
        assert!(!p.integer[1]);
    }

    #[test]
    fn feasibility_checks_all_relations() {
        let p = tiny();
        assert!(p.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!p.is_feasible(&[0.0, 2.0], 1e-9)); // violates x >= 1
        assert!(!p.is_feasible(&[2.0, 2.0], 1e-9)); // violates x+y <= 3
        assert!(!p.is_feasible(&[1.0, -0.5], 1e-9)); // negativity
        assert!(!p.is_feasible(&[1.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value() {
        let p = tiny();
        assert_eq!(p.objective_value(&[1.0, 2.0]), 5.0);
    }

    #[test]
    fn dense_sums_repeated_terms() {
        let c = Constraint {
            terms: vec![(VarId(0), 1.0), (VarId(0), 2.0), (VarId(2), -1.0)],
            relation: Relation::Eq,
            rhs: 0.0,
        };
        assert_eq!(c.dense(3), vec![3.0, 0.0, -1.0]);
    }

    #[test]
    fn non_finite_data_is_detected() {
        let p = tiny();
        assert!(!p.has_non_finite());
        let mut bad_obj = p.clone();
        bad_obj.objective[0] = f64::NAN;
        assert!(bad_obj.has_non_finite());
        let mut bad_coeff = p.clone();
        bad_coeff.constraints[0].terms[0].1 = f64::INFINITY;
        assert!(bad_coeff.has_non_finite());
        let mut bad_rhs = p;
        bad_rhs.constraints[1].rhs = f64::NEG_INFINITY;
        assert!(bad_rhs.has_non_finite());
    }

    #[test]
    fn render_is_readable() {
        let p = tiny();
        let text = p.render();
        assert!(text.starts_with("maximize 1*x + 2*y"));
        assert!(text.contains("1*x + 1*y <= 3"));
        assert!(text.contains("1*x >= 1"));
    }
}
