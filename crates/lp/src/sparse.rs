//! Revised simplex over sparse columns.
//!
//! The dense tableau in `simplex.rs` carries the full `m × (n+m)` matrix
//! through every pivot. This module keeps the constraint matrix as immutable
//! CSC columns and represents the basis inverse implicitly: a dense LU
//! factorization (partial pivoting) of the basis taken at the last
//! refactorization point, composed with an eta file of product-form updates,
//! one eta per pivot. FTRAN/BTRAN apply the factors; every
//! [`REFACTOR_INTERVAL`] pivots the LU is rebuilt from the current basis and
//! the eta file is discarded, which also re-syncs the basic values against
//! the right-hand side to keep drift bounded.
//!
//! Pricing mirrors the dense path's discipline: Dantzig (most negative
//! reduced cost, smallest column index on ties) switching to Bland's rule
//! after [`crate::simplex`]'s stall threshold, with the same `FEAS_TOL`.
//! Results from this module are only ever *accepted* upstream when the
//! witness rounds integral, the optimum is provably unique, and the exact
//! integer certification passes — so the sparse path can never change a
//! bound, only the work done to reach it.

// NaN-aware guards (`!(x > tol)` also rejects NaN, `x <= tol` would not) and
// index-based kernel loops are deliberate: the forms clippy suggests either
// change NaN behaviour or obscure the row/column arithmetic of the LU and
// pricing kernels.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

use crate::model::{Problem, Relation, Sense};
use crate::simplex::FEAS_TOL;

/// Rebuild the LU factors after this many eta updates.
const REFACTOR_INTERVAL: usize = 64;

/// Consecutive degenerate pivots before switching to Bland's rule. Matches
/// the dense tableau's threshold.
const STALL_THRESHOLD: u32 = 12;

/// Terminal state of a primal solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SparseEnd {
    Optimal,
    Infeasible,
    Unbounded,
    IterLimit,
    Numerical,
}

/// Terminal state of a dual reoptimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SparseDualEnd {
    Optimal,
    Infeasible,
    IterLimit,
    Numerical,
}

/// One product-form update: entering column's FTRAN image `w`, pivot row `r`.
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    pivot: f64,
    /// Nonzero entries of `w` except row `r`.
    others: Vec<(usize, f64)>,
}

/// Dense LU factors of the basis at the last refactorization point.
#[derive(Debug, Clone, Default)]
struct Factor {
    /// Row-major `m × m`; strict lower part holds L (unit diagonal implied),
    /// the rest holds U.
    lu: Vec<f64>,
    /// `perm[i]` = original row occupying factored position `i`.
    perm: Vec<usize>,
    etas: Vec<Eta>,
}

/// A standard-form LP with sparse columns and a factorized basis.
#[derive(Debug, Clone)]
pub(crate) struct SparseInstance {
    m: usize,
    /// Structural variable count.
    n: usize,
    /// CSC: per column, `(row, value)` sorted by row.
    cols: Vec<Vec<(usize, f64)>>,
    /// Per-column cost, sign-folded so the solver always maximizes.
    cost: Vec<f64>,
    b: Vec<f64>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    banned: Vec<bool>,
    artificial: Vec<bool>,
    factor: Factor,
    /// Current basic values `B^{-1} b`, indexed by row.
    xb: Vec<f64>,
    refactors: u64,
}

impl SparseInstance {
    /// Build the standard form from `problem`, mirroring the dense
    /// construction: rows are normalized to non-negative right-hand sides,
    /// `<=` rows get a basic slack, `>=` rows a surplus plus basic
    /// artificial, `=` rows a basic artificial.
    pub(crate) fn build(problem: &Problem) -> Option<SparseInstance> {
        if problem.has_non_finite() {
            return None;
        }
        let n = problem.num_vars();
        let m = problem.num_constraints();
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut cost: Vec<f64> = match problem.sense {
            Sense::Maximize => problem.objective.clone(),
            Sense::Minimize => problem.objective.iter().map(|c| -c).collect(),
        };
        let mut b = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut artificial_rows = Vec::new();
        // First pass: structural entries plus slack/surplus bookkeeping.
        let mut extra_cols: Vec<(usize, f64)> = Vec::new(); // (row, sign) per slack col
        for (i, con) in problem.constraints.iter().enumerate() {
            let dense = con.dense(n);
            let flip = con.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            let rel = if flip {
                match con.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                }
            } else {
                con.relation
            };
            for (j, &a) in dense.iter().enumerate() {
                if a != 0.0 {
                    cols[j].push((i, sign * a));
                }
            }
            b.push(sign * con.rhs);
            match rel {
                Relation::Le => {
                    extra_cols.push((i, 1.0));
                    basis.push(usize::MAX); // patched to the slack below
                }
                Relation::Ge => {
                    extra_cols.push((i, -1.0));
                    artificial_rows.push(i);
                    basis.push(usize::MAX); // patched to the artificial below
                }
                Relation::Eq => {
                    artificial_rows.push(i);
                    basis.push(usize::MAX);
                }
            }
        }
        // Slack/surplus columns.
        let slack_base = n;
        for (k, &(row, sign)) in extra_cols.iter().enumerate() {
            cols.push(vec![(row, sign)]);
            cost.push(0.0);
            if sign > 0.0 {
                basis[row] = slack_base + k;
            }
        }
        // Artificial columns.
        let art_base = cols.len();
        let mut artificial = vec![false; art_base];
        for (k, &row) in artificial_rows.iter().enumerate() {
            cols.push(vec![(row, 1.0)]);
            cost.push(0.0);
            artificial.push(true);
            basis[row] = art_base + k;
        }
        let num_cols = cols.len();
        debug_assert!(basis.iter().all(|&c| c < num_cols));
        let mut in_basis = vec![false; num_cols];
        for &c in &basis {
            in_basis[c] = true;
        }
        let mut inst = SparseInstance {
            m,
            n,
            cols,
            cost,
            b,
            basis,
            in_basis,
            banned: vec![false; num_cols],
            artificial,
            factor: Factor::default(),
            xb: Vec::new(),
            refactors: 0,
        };
        if !inst.refactorize() {
            return None;
        }
        Some(inst)
    }

    /// Number of refactorizations performed so far.
    pub(crate) fn refactors(&self) -> u64 {
        self.refactors
    }

    /// Rebuild the LU factors from the current basis and re-sync `xb`.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        let mut lu = vec![0.0f64; m * m];
        for (j, &col) in self.basis.iter().enumerate() {
            for &(row, val) in &self.cols[col] {
                lu[row * m + j] = val;
            }
        }
        let mut perm: Vec<usize> = (0..m).collect();
        for k in 0..m {
            let mut p = k;
            let mut best = lu[perm[k] * m + k].abs();
            for i in (k + 1)..m {
                let mag = lu[perm[i] * m + k].abs();
                if mag > best {
                    best = mag;
                    p = i;
                }
            }
            if !(best > FEAS_TOL) || !best.is_finite() {
                return false; // singular or non-finite basis
            }
            perm.swap(k, p);
            let pk = perm[k];
            let diag = lu[pk * m + k];
            for i in (k + 1)..m {
                let pi = perm[i];
                let f = lu[pi * m + k] / diag;
                lu[pi * m + k] = f;
                if f != 0.0 {
                    for j in (k + 1)..m {
                        lu[pi * m + j] -= f * lu[pk * m + j];
                    }
                }
            }
        }
        self.factor = Factor { lu, perm, etas: Vec::new() };
        self.refactors += 1;
        self.xb = self.ftran_dense(&self.b.clone());
        self.xb.iter().all(|v| v.is_finite())
    }

    /// Solve `B x = d` through the LU factors and the eta file.
    fn ftran_dense(&self, d: &[f64]) -> Vec<f64> {
        let m = self.m;
        let lu = &self.factor.lu;
        let perm = &self.factor.perm;
        // L z = P d  (forward, unit diagonal)
        let mut x = vec![0.0f64; m];
        for i in 0..m {
            let pi = perm[i];
            let mut v = d[pi];
            for j in 0..i {
                v -= lu[pi * m + j] * x[j];
            }
            x[i] = v;
        }
        // U y = z  (backward)
        for i in (0..m).rev() {
            let pi = perm[i];
            let mut v = x[i];
            for j in (i + 1)..m {
                v -= lu[pi * m + j] * x[j];
            }
            x[i] = v / lu[pi * m + i];
        }
        // Product-form updates in application order.
        for eta in &self.factor.etas {
            let xr = x[eta.r] / eta.pivot;
            for &(i, w) in &eta.others {
                x[i] -= w * xr;
            }
            x[eta.r] = xr;
        }
        x
    }

    /// FTRAN of a sparse column.
    fn ftran_col(&self, col: usize) -> Vec<f64> {
        let mut d = vec![0.0f64; self.m];
        for &(row, val) in &self.cols[col] {
            d[row] = val;
        }
        self.ftran_dense(&d)
    }

    /// Solve `B^T y = c` (c indexed by basis position).
    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut v = c.to_vec();
        // Undo the eta file, newest first.
        for eta in self.factor.etas.iter().rev() {
            let mut acc = v[eta.r];
            for &(i, w) in &eta.others {
                acc -= w * v[i];
            }
            v[eta.r] = acc / eta.pivot;
        }
        let lu = &self.factor.lu;
        let perm = &self.factor.perm;
        // U^T w = v  (forward; U^T is lower triangular)
        let mut w = vec![0.0f64; m];
        for i in 0..m {
            let mut acc = v[i];
            for j in 0..i {
                acc -= lu[perm[j] * m + i] * w[j];
            }
            w[i] = acc / lu[perm[i] * m + i];
        }
        // L^T z = w  (backward; unit diagonal)
        for i in (0..m).rev() {
            let mut acc = w[i];
            for j in (i + 1)..m {
                acc -= lu[perm[j] * m + i] * w[j];
            }
            w[i] = acc;
        }
        // y = P^T z
        let mut y = vec![0.0f64; m];
        for i in 0..m {
            y[perm[i]] = w[i];
        }
        y
    }

    fn basis_cost(&self, cost: &[f64]) -> Vec<f64> {
        self.basis.iter().map(|&c| cost[c]).collect()
    }

    fn col_dot(&self, y: &[f64], col: usize) -> f64 {
        let mut acc = 0.0;
        for &(row, val) in &self.cols[col] {
            acc += y[row] * val;
        }
        acc
    }

    /// Install `entering` in basis position `r` with FTRAN image `w`.
    fn apply_pivot(&mut self, r: usize, entering: usize, w: &[f64]) -> bool {
        let pivot = w[r];
        if !pivot.is_finite() || pivot.abs() <= FEAS_TOL {
            return false;
        }
        let leaving = self.basis[r];
        self.in_basis[leaving] = false;
        self.in_basis[entering] = true;
        self.basis[r] = entering;
        let others: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.factor.etas.push(Eta { r, pivot, others });
        if self.factor.etas.len() >= REFACTOR_INTERVAL {
            return self.refactorize();
        }
        true
    }

    /// Primal simplex on the given cost vector (maximization).
    fn optimize(&mut self, cost: &[f64], max_iters: u64, pivots: &mut u64) -> SparseEnd {
        let mut iters: u64 = 0;
        let mut stalled: u32 = 0;
        loop {
            if iters >= max_iters {
                return SparseEnd::IterLimit;
            }
            iters += 1;
            let y = self.btran(&self.basis_cost(cost));
            if y.iter().any(|v| !v.is_finite()) {
                return SparseEnd::Numerical;
            }
            // Pricing: Dantzig normally, Bland once stalled.
            let bland = stalled >= STALL_THRESHOLD;
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..self.cols.len() {
                if self.in_basis[j] || self.banned[j] {
                    continue;
                }
                let z = self.col_dot(&y, j) - cost[j];
                if !z.is_finite() {
                    return SparseEnd::Numerical;
                }
                if z < -FEAS_TOL {
                    if bland {
                        entering = Some((j, z));
                        break;
                    }
                    match entering {
                        Some((_, best)) if z >= best => {}
                        _ => entering = Some((j, z)),
                    }
                }
            }
            let Some((e, _)) = entering else {
                return SparseEnd::Optimal;
            };
            let w = self.ftran_col(e);
            if w.iter().any(|v| !v.is_finite()) {
                return SparseEnd::Numerical;
            }
            // Ratio test: min xb_i / w_i over w_i > tol; ties by smallest
            // basis column index, matching the dense tableau.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.m {
                if w[i] > FEAS_TOL {
                    let ratio = self.xb[i] / w[i];
                    match leave {
                        Some((r, best)) => {
                            if ratio < best - FEAS_TOL
                                || (ratio <= best + FEAS_TOL && self.basis[i] < self.basis[r])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                        None => leave = Some((i, ratio)),
                    }
                }
            }
            let Some((r, theta)) = leave else {
                return SparseEnd::Unbounded;
            };
            if !theta.is_finite() {
                return SparseEnd::Numerical;
            }
            if theta.abs() <= FEAS_TOL {
                stalled += 1;
            } else {
                stalled = 0;
            }
            for i in 0..self.m {
                if i != r {
                    self.xb[i] -= theta * w[i];
                }
            }
            self.xb[r] = theta;
            if !self.apply_pivot(r, e, &w) {
                return SparseEnd::Numerical;
            }
            *pivots += 1;
            if self.xb.iter().any(|v| !v.is_finite()) {
                return SparseEnd::Numerical;
            }
        }
    }

    /// Two-phase primal solve, mirroring the dense `solve_primal`.
    pub(crate) fn solve_primal(&mut self, max_iters: u64, pivots: &mut u64) -> SparseEnd {
        let has_artificials = self.artificial.iter().any(|&a| a);
        if has_artificials {
            let phase1: Vec<f64> =
                self.artificial.iter().map(|&a| if a { -1.0 } else { 0.0 }).collect();
            match self.optimize(&phase1, max_iters, pivots) {
                SparseEnd::Optimal => {}
                SparseEnd::Unbounded => return SparseEnd::Numerical,
                other => return other,
            }
            let infeas: f64 = (0..self.m)
                .filter(|&i| self.artificial[self.basis[i]])
                .map(|i| self.xb[i].max(0.0))
                .sum();
            if infeas > 1e-6 {
                return SparseEnd::Infeasible;
            }
            // Drive degenerate basic artificials out where possible, then
            // ban every artificial column for phase 2.
            for r in 0..self.m {
                if !self.artificial[self.basis[r]] {
                    continue;
                }
                let mut unit = vec![0.0f64; self.m];
                unit[r] = 1.0;
                let rho = self.btran(&unit);
                let mut replacement = None;
                for j in 0..self.cols.len() {
                    if self.in_basis[j] || self.artificial[j] || self.banned[j] {
                        continue;
                    }
                    if self.col_dot(&rho, j).abs() > FEAS_TOL {
                        replacement = Some(j);
                        break;
                    }
                }
                if let Some(j) = replacement {
                    let w = self.ftran_col(j);
                    if w[r].abs() > FEAS_TOL {
                        let theta = self.xb[r] / w[r];
                        for i in 0..self.m {
                            if i != r {
                                self.xb[i] -= theta * w[i];
                            }
                        }
                        self.xb[r] = theta;
                        if !self.apply_pivot(r, j, &w) {
                            return SparseEnd::Numerical;
                        }
                    }
                }
            }
            for j in 0..self.cols.len() {
                if self.artificial[j] && !self.in_basis[j] {
                    self.banned[j] = true;
                }
            }
        }
        let cost = self.cost.clone();
        self.optimize(&cost, max_iters, pivots)
    }

    /// Append `<=` rows (already normalized) with fresh basic slacks and
    /// re-snapshot the factorized basis. Coefficients are dense over the
    /// structural variables.
    pub(crate) fn append_le_rows(&mut self, rows: &[(Vec<f64>, f64)]) -> bool {
        for (k, (coeffs, rhs)) in rows.iter().enumerate() {
            let row = self.m + k;
            for (j, &a) in coeffs.iter().enumerate() {
                if a != 0.0 {
                    debug_assert!(j < self.n);
                    self.cols[j].push((row, a));
                }
            }
            let slack = self.cols.len();
            self.cols.push(vec![(row, 1.0)]);
            self.cost.push(0.0);
            self.artificial.push(false);
            self.banned.push(false);
            self.in_basis.push(true);
            self.basis.push(slack);
            self.b.push(*rhs);
        }
        self.m += rows.len();
        // The enlarged basis is block triangular over the old one; a fresh
        // factorization re-snapshots it exactly.
        self.refactorize()
    }

    /// Dual simplex from a dual-feasible basis (used after appending rows).
    pub(crate) fn dual_reoptimize(&mut self, max_iters: u64, pivots: &mut u64) -> SparseDualEnd {
        let cost = self.cost.clone();
        let mut iters: u64 = 0;
        let mut stalled: u32 = 0;
        loop {
            if iters >= max_iters {
                return SparseDualEnd::IterLimit;
            }
            iters += 1;
            // Leaving row: most negative basic value; Bland-style smallest
            // basis index once stalled.
            let bland = stalled >= STALL_THRESHOLD;
            let mut leave: Option<usize> = None;
            for i in 0..self.m {
                if self.xb[i] < -FEAS_TOL {
                    match leave {
                        Some(r) => {
                            let better = if bland {
                                self.basis[i] < self.basis[r]
                            } else {
                                self.xb[i] < self.xb[r]
                            };
                            if better {
                                leave = Some(i);
                            }
                        }
                        None => leave = Some(i),
                    }
                }
            }
            let Some(r) = leave else {
                return SparseDualEnd::Optimal;
            };
            let mut unit = vec![0.0f64; self.m];
            unit[r] = 1.0;
            let rho = self.btran(&unit);
            let y = self.btran(&self.basis_cost(&cost));
            if rho.iter().chain(y.iter()).any(|v| !v.is_finite()) {
                return SparseDualEnd::Numerical;
            }
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..self.cols.len() {
                if self.in_basis[j] || self.banned[j] {
                    continue;
                }
                let alpha = self.col_dot(&rho, j);
                if alpha < -FEAS_TOL {
                    let z = self.col_dot(&y, j) - cost[j];
                    let ratio = z / (-alpha);
                    match entering {
                        Some((_, best)) if ratio >= best => {}
                        _ => entering = Some((j, ratio)),
                    }
                }
            }
            let Some((e, _)) = entering else {
                return SparseDualEnd::Infeasible;
            };
            let w = self.ftran_col(e);
            if w.iter().any(|v| !v.is_finite()) || w[r].abs() <= FEAS_TOL {
                return SparseDualEnd::Numerical;
            }
            let theta = self.xb[r] / w[r];
            if !theta.is_finite() {
                return SparseDualEnd::Numerical;
            }
            if theta.abs() <= FEAS_TOL {
                stalled += 1;
            } else {
                stalled = 0;
            }
            for i in 0..self.m {
                if i != r {
                    self.xb[i] -= theta * w[i];
                }
            }
            self.xb[r] = theta;
            if !self.apply_pivot(r, e, &w) {
                return SparseDualEnd::Numerical;
            }
            *pivots += 1;
            if self.xb.iter().any(|v| !v.is_finite()) {
                return SparseDualEnd::Numerical;
            }
        }
    }

    /// Structural variable values of the current basic solution.
    pub(crate) fn extract_x(&self) -> Vec<f64> {
        let mut x = vec![0.0f64; self.n];
        for (i, &col) in self.basis.iter().enumerate() {
            if col < self.n {
                x[col] = self.xb[i].max(0.0);
            }
        }
        x
    }

    /// True when every non-basic, non-banned column has a strictly positive
    /// reduced cost — i.e. the optimal *point* is unique.
    pub(crate) fn optimum_is_unique(&self) -> bool {
        let y = self.btran(&self.basis_cost(&self.cost));
        if y.iter().any(|v| !v.is_finite()) {
            return false;
        }
        for j in 0..self.cols.len() {
            if self.in_basis[j] || self.banned[j] {
                continue;
            }
            let z = self.col_dot(&y, j) - self.cost[j];
            if !(z > FEAS_TOL) {
                return false;
            }
        }
        true
    }

    /// Default iteration cap, matching the dense instance's formula.
    pub(crate) fn default_iter_cap(&self) -> u64 {
        50_000 + 200 * (self.m as u64 + self.cols.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProblemBuilder, Relation, Sense};
    use crate::simplex::{solve_lp, LpOutcome};

    fn flow_problem() -> Problem {
        // Small IPET-shaped program: entry fixed, a loop bounded by 10.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x1 = b.add_var("x1", true);
        let x2 = b.add_var("x2", true);
        let x3 = b.add_var("x3", true);
        b.objective(x1, 4.0);
        b.objective(x2, 9.0);
        b.objective(x3, 2.0);
        b.constraint(vec![(x1, 1.0)], Relation::Eq, 1.0);
        b.constraint(vec![(x2, 1.0), (x1, -10.0)], Relation::Le, 0.0);
        b.constraint(vec![(x3, 1.0), (x1, -1.0)], Relation::Eq, 0.0);
        b.build()
    }

    #[test]
    fn matches_dense_on_flow_problem() {
        let p = flow_problem();
        let mut pivots = 0u64;
        let mut inst = SparseInstance::build(&p).expect("builds");
        let end = inst.solve_primal(inst.default_iter_cap(), &mut pivots);
        assert_eq!(end, SparseEnd::Optimal);
        let x = inst.extract_x();
        match solve_lp(&p) {
            LpOutcome::Optimal { x: dx, value } => {
                for (a, b) in x.iter().zip(dx.iter()) {
                    assert!((a - b).abs() < 1e-6, "{x:?} vs {dx:?}");
                }
                let sparse_val = p.objective_value(&x);
                assert!((sparse_val - value).abs() < 1e-6);
            }
            other => panic!("dense disagreed: {other:?}"),
        }
        assert!(inst.optimum_is_unique());
    }

    #[test]
    fn detects_infeasible() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.0);
        b.constraint(vec![(x, 1.0)], Relation::Ge, 5.0);
        b.constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        let p = b.build();
        let mut pivots = 0u64;
        let mut inst = SparseInstance::build(&p).expect("builds");
        let end = inst.solve_primal(inst.default_iter_cap(), &mut pivots);
        assert_eq!(end, SparseEnd::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 1.0);
        b.constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        let p = b.build();
        let mut pivots = 0u64;
        let mut inst = SparseInstance::build(&p).expect("builds");
        let end = inst.solve_primal(inst.default_iter_cap(), &mut pivots);
        assert_eq!(end, SparseEnd::Unbounded);
    }

    #[test]
    fn dual_reoptimize_after_append() {
        let p = flow_problem();
        let mut pivots = 0u64;
        let mut inst = SparseInstance::build(&p).expect("builds");
        assert_eq!(inst.solve_primal(inst.default_iter_cap(), &mut pivots), SparseEnd::Optimal);
        // Tighten the loop: x2 <= 6.
        let mut cut = vec![0.0; 3];
        cut[1] = 1.0;
        assert!(inst.append_le_rows(&[(cut, 6.0)]));
        let mut dual_pivots = 0u64;
        let end = inst.dual_reoptimize(inst.default_iter_cap(), &mut dual_pivots);
        assert_eq!(end, SparseDualEnd::Optimal);
        let x = inst.extract_x();
        assert!((x[1] - 6.0).abs() < 1e-6, "{x:?}");

        // The dense path on the composed problem must agree.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x1 = b.add_var("x1", true);
        let x2 = b.add_var("x2", true);
        let x3 = b.add_var("x3", true);
        b.objective(x1, 4.0);
        b.objective(x2, 9.0);
        b.objective(x3, 2.0);
        b.constraint(vec![(x1, 1.0)], Relation::Eq, 1.0);
        b.constraint(vec![(x2, 1.0), (x1, -10.0)], Relation::Le, 0.0);
        b.constraint(vec![(x3, 1.0), (x1, -1.0)], Relation::Eq, 0.0);
        b.constraint(vec![(x2, 1.0)], Relation::Le, 6.0);
        match solve_lp(&b.build()) {
            LpOutcome::Optimal { x: dx, .. } => {
                for (a, b) in x.iter().zip(dx.iter()) {
                    assert!((a - b).abs() < 1e-6, "{x:?} vs {dx:?}");
                }
            }
            other => panic!("dense disagreed: {other:?}"),
        }
    }

    #[test]
    fn refactorization_keeps_accuracy() {
        // A chain long enough to force several refactorizations.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let n = 40;
        let vars: Vec<_> = (0..n).map(|i| b.add_var(format!("x{i}"), true)).collect();
        for (i, &v) in vars.iter().enumerate() {
            b.objective(v, 1.0 + (i % 7) as f64);
            b.constraint(vec![(v, 1.0)], Relation::Le, (3 + (i % 5)) as f64);
        }
        // Coupling rows to force pivoting through many columns.
        for w in vars.windows(2) {
            b.constraint(vec![(w[0], 1.0), (w[1], 1.0)], Relation::Le, 6.0);
        }
        let p = b.build();
        let mut pivots = 0u64;
        let mut inst = SparseInstance::build(&p).expect("builds");
        let end = inst.solve_primal(inst.default_iter_cap(), &mut pivots);
        assert_eq!(end, SparseEnd::Optimal);
        let x = inst.extract_x();
        match solve_lp(&p) {
            LpOutcome::Optimal { value, .. } => {
                assert!((p.objective_value(&x) - value).abs() < 1e-6);
            }
            other => panic!("dense disagreed: {other:?}"),
        }
    }
}
