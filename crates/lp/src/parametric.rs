//! Parametric bound formulas: solve at a few parameter points, certify the
//! region between them exactly, and evaluate a closed-form line everywhere
//! else (DESIGN.md §16).
//!
//! ## The chord certificate
//!
//! Our ILPs have *parameter-free constraints*: a swept parameter `p` (the
//! cache miss penalty) enters only through the objective, linearly, as
//! `c(p) = c0 + p·c1`. The optimal value
//!
//! ```text
//! V(p) = max { c(p)·x : x feasible }
//! ```
//!
//! is then a maximum of linear functions of `p` over a fixed feasible set —
//! a convex piecewise-linear function. Solving at point `a` yields an
//! optimal witness `x*_a` and the line
//!
//! ```text
//! g_a(p) = c0·x*_a + p·(c1·x*_a)    (a "formula", [`BoundFormula`])
//! ```
//!
//! Feasibility of `x*_a` gives `g_a ≤ V` *pointwise everywhere*. If a
//! second solve at `b > a` finds `g_a(b) = V(b)`, then on the whole
//! interval `[a, b]` convexity pins `V` from above by the chord of `V`
//! through `(a, V(a))` and `(b, V(b))` — which is exactly `g_a` — while
//! `g_a ≤ V` pins it from below. Hence `V ≡ g_a` on `[a, b]`, and every
//! interior grid point is answered by evaluating the line in exact `i128`
//! arithmetic, with no solver call and no tolerance.
//!
//! Because the set where a linear minorant touching `V` at `a` coincides
//! with the convex `V` is an interval containing `a`, the certified region
//! is contiguous: on a sorted grid the driver probes the far end first and
//! bisects only when the chord test fails, so the number of ILP solves is
//! `O(regions · log(grid))` instead of one per grid point.
//!
//! This replaces the textbook parametric-simplex basis-region approach
//! (Ballabriga et al.): extracting and inverting the optimal basis needs
//! general rationals, while our exact layer (`ipet-audit`'s `Rat`) is
//! deliberately dyadic-only. The chord certificate needs nothing but the
//! two endpoint optima — values the audit already certifies exactly — and
//! holds through branch-and-bound and every solver backend, because it
//! never looks inside the solver at all.

/// A one-parameter bound formula `value(p) = constant + slope·p`, the line
/// traced by one optimal witness as the swept parameter moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundFormula {
    /// Value at `p = 0`: the witness's parameter-independent cycles.
    pub constant: i128,
    /// Cycles added per unit of the swept parameter.
    pub slope: i128,
}

impl BoundFormula {
    /// Evaluates the line at `p`, exactly; `None` on `i128` overflow.
    pub fn eval(&self, p: u64) -> Option<i128> {
        self.slope.checked_mul(p as i128)?.checked_add(self.constant)
    }
}

impl std::fmt::Display for BoundFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} + {}*p", self.constant, self.slope)
    }
}

/// What one concrete solve at a parameter point reports back to the
/// driver: one entry per series (e.g. per benchmark routine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Probe {
    /// The exact optimal value of each series at the probed point.
    pub values: Vec<i128>,
    /// The witness line of each series, when one could be extracted
    /// (`None` for relaxed/uncertified solves — those series are never
    /// region-reused and every grid point falls back to a concrete solve).
    pub formulas: Vec<Option<BoundFormula>>,
}

/// The result of a region-certified grid sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSweep {
    /// `values[point][series]`: the certified value at every grid point.
    pub values: Vec<Vec<i128>>,
    /// `formulas[point][series]`: the formula whose region covers the
    /// point (`None` where the value came from a concrete solve that
    /// produced no reusable line).
    pub formulas: Vec<Vec<Option<BoundFormula>>>,
    /// Grid points answered by a concrete solve.
    pub resolves: u64,
    /// Grid points answered by formula evaluation alone.
    pub region_hits: u64,
    /// Chord-certificate failures (a basis change between two probes).
    pub region_exits: u64,
}

impl GridSweep {
    /// The maximal runs of grid-point indices over which `series` is
    /// covered by one single formula — the formula's certified validity
    /// interval on this grid, as `(start, end, formula)` inclusive ranges.
    pub fn regions(&self, series: usize) -> Vec<(usize, usize, BoundFormula)> {
        let mut out: Vec<(usize, usize, BoundFormula)> = Vec::new();
        for (i, fs) in self.formulas.iter().enumerate() {
            if let Some(f) = fs.get(series).copied().flatten() {
                match out.last_mut() {
                    Some(last) if last.2 == f && last.1 + 1 == i => last.1 = i,
                    _ => out.push((i, i, f)),
                }
            }
        }
        out
    }
}

/// Sweeps `grid` (strictly increasing parameter values), calling `probe`
/// only where the chord certificate cannot extend an already-solved
/// witness line. `probe(p)` must perform the full concrete solve at `p`
/// and report every series' exact optimum (and witness line, when exact).
///
/// Requires each series' value function to be convex in the parameter —
/// true whenever the parameter multiplies a nonnegative objective column
/// and the constraints are parameter-free (Maximize sense). The certificate
/// itself is self-checking: a non-convex series would simply fail chord
/// tests and degrade to one solve per point, never to a wrong value.
///
/// Emits `lp.param.{formulas,region_hits,region_exits,resolves}` counters.
pub fn sweep_grid<E>(
    grid: &[u64],
    probe: &mut dyn FnMut(u64) -> Result<Probe, E>,
) -> Result<GridSweep, E> {
    assert!(grid.windows(2).all(|w| w[0] < w[1]), "sweep grid must be strictly increasing");
    let n = grid.len();
    let mut sweep = GridSweep {
        values: vec![Vec::new(); n],
        formulas: vec![Vec::new(); n],
        resolves: 0,
        region_hits: 0,
        region_exits: 0,
    };
    if n == 0 {
        return Ok(sweep);
    }

    let mut probed: Vec<Option<Probe>> = vec![None; n];
    let mut solve = |i: usize, probed: &mut Vec<Option<Probe>>, sweep: &mut GridSweep| {
        if probed[i].is_some() {
            return Ok(());
        }
        let p = probe(grid[i])?;
        sweep.resolves += 1;
        ipet_trace::counter("lp.param.resolves", 1);
        let lines = p.formulas.iter().filter(|f| f.is_some()).count() as u64;
        ipet_trace::counter("lp.param.formulas", lines);
        probed[i] = Some(p);
        Ok(())
    };

    solve(0, &mut probed, &mut sweep)?;
    if n > 1 {
        solve(n - 1, &mut probed, &mut sweep)?;
    }

    // Depth-first bisection: (lo, hi) intervals whose endpoints are probed.
    let mut stack = vec![(0usize, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi - lo <= 1 {
            continue;
        }
        let certified =
            {
                let plo = probed[lo].as_ref().expect("interval endpoint probed");
                let phi = probed[hi].as_ref().expect("interval endpoint probed");
                plo.values.len() == phi.values.len()
                    && plo.formulas.iter().zip(&phi.values).all(|(f, &v_hi)| {
                        f.map(|f| f.eval(grid[hi]) == Some(v_hi)).unwrap_or(false)
                    })
            };
        if certified {
            // Every interior point of [lo, hi] is on the certified lines.
            let plo = probed[lo].as_ref().expect("interval endpoint probed");
            for (mid, &p) in grid.iter().enumerate().take(hi).skip(lo + 1) {
                let values: Vec<i128> = plo
                    .formulas
                    .iter()
                    .map(|f| {
                        f.expect("certified formula present")
                            .eval(p)
                            .expect("certified formula evaluates")
                    })
                    .collect();
                sweep.values[mid] = values;
                sweep.formulas[mid] = plo.formulas.clone();
                sweep.region_hits += 1;
                ipet_trace::counter("lp.param.region_hits", 1);
            }
        } else {
            sweep.region_exits += 1;
            ipet_trace::counter("lp.param.region_exits", 1);
            let mid = lo + (hi - lo) / 2;
            solve(mid, &mut probed, &mut sweep)?;
            // Push right first so the left half is processed first
            // (deterministic, ascending fill order).
            stack.push((mid, hi));
            stack.push((lo, mid));
        }
    }

    for (i, p) in probed.into_iter().enumerate() {
        if let Some(p) = p {
            sweep.values[i] = p.values;
            sweep.formulas[i] = p.formulas;
        }
    }
    Ok(sweep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    /// A convex piecewise-linear "oracle": V(p) = max over lines.
    fn oracle(lines: &[(i128, i128)]) -> impl Fn(u64) -> (i128, BoundFormula) + '_ {
        move |p: u64| {
            let (v, line) = lines
                .iter()
                .map(|&(c, s)| (c + s * p as i128, BoundFormula { constant: c, slope: s }))
                .max_by_key(|&(v, _)| v)
                .unwrap();
            (v, line)
        }
    }

    fn run(grid: &[u64], lines: &[(i128, i128)]) -> GridSweep {
        let f = oracle(lines);
        let mut probe = |p: u64| -> Result<Probe, Infallible> {
            let (v, line) = f(p);
            Ok(Probe { values: vec![v], formulas: vec![Some(line)] })
        };
        sweep_grid(grid, &mut probe).unwrap()
    }

    #[test]
    fn single_line_needs_two_solves() {
        let grid = [0, 2, 4, 8, 16, 32];
        let s = run(&grid, &[(100, 3)]);
        assert_eq!(s.resolves, 2);
        assert_eq!(s.region_hits, 4);
        assert_eq!(s.region_exits, 0);
        for (i, &p) in grid.iter().enumerate() {
            assert_eq!(s.values[i], vec![100 + 3 * p as i128]);
        }
        assert_eq!(s.regions(0), vec![(0, 5, BoundFormula { constant: 100, slope: 3 })]);
    }

    #[test]
    fn breakpoint_forces_region_exit_but_stays_exact() {
        // V(p) = max(100 + 0·p, 60 + 4·p): breakpoint at p = 10.
        let grid = [0, 2, 4, 8, 16, 32];
        let lines = [(100, 0), (60, 4)];
        let s = run(&grid, &lines);
        let f = oracle(&lines);
        for (i, &p) in grid.iter().enumerate() {
            assert_eq!(s.values[i], vec![f(p).0], "p = {p}");
        }
        assert!(s.region_exits >= 1);
        assert!(s.resolves < grid.len() as u64 + 2);
        // Two maximal validity intervals, one per active line.
        let regions = s.regions(0);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].2, BoundFormula { constant: 100, slope: 0 });
        assert_eq!(regions[1].2, BoundFormula { constant: 60, slope: 4 });
    }

    #[test]
    fn many_breakpoints_still_exact() {
        let grid: Vec<u64> = (0..40).collect();
        let lines = [(1000, 0), (900, 7), (400, 21), (0, 35)];
        let s = run(&grid, &lines);
        let f = oracle(&lines);
        for (i, &p) in grid.iter().enumerate() {
            assert_eq!(s.values[i], vec![f(p).0], "p = {p}");
        }
        assert!(s.resolves < grid.len() as u64, "region reuse must fire");
        assert!(s.region_hits > 0);
    }

    #[test]
    fn relaxed_probe_without_formula_solves_every_point() {
        let grid = [0, 4, 8];
        let mut probe = |p: u64| -> Result<Probe, Infallible> {
            Ok(Probe { values: vec![10 + p as i128], formulas: vec![None] })
        };
        let s = sweep_grid(&grid, &mut probe).unwrap();
        assert_eq!(s.resolves, 3);
        assert_eq!(s.region_hits, 0);
        for (i, &p) in grid.iter().enumerate() {
            assert_eq!(s.values[i], vec![10 + p as i128]);
        }
        assert!(s.regions(0).is_empty());
    }

    #[test]
    fn multi_series_certifies_jointly() {
        // Series 0 is a single line; series 1 has a breakpoint at 10.
        let grid = [0, 2, 4, 8, 16, 32];
        let f0 = oracle(&[(50, 2)]);
        let f1 = oracle(&[(100, 0), (60, 4)]);
        let mut probe = |p: u64| -> Result<Probe, Infallible> {
            let (v0, l0) = f0(p);
            let (v1, l1) = f1(p);
            Ok(Probe { values: vec![v0, v1], formulas: vec![Some(l0), Some(l1)] })
        };
        let s = sweep_grid(&grid, &mut probe).unwrap();
        for (i, &p) in grid.iter().enumerate() {
            assert_eq!(s.values[i], vec![f0(p).0, f1(p).0], "p = {p}");
        }
        // Series 0's region spans the whole grid even though series 1
        // forced bisection probes inside it.
        assert_eq!(s.regions(0).len(), 1);
        assert_eq!(s.regions(1).len(), 2);
    }

    #[test]
    fn empty_and_singleton_grids() {
        let s = run(&[], &[(1, 1)]);
        assert_eq!(s.resolves, 0);
        let s = run(&[7], &[(1, 1)]);
        assert_eq!(s.resolves, 1);
        assert_eq!(s.values[0], vec![8]);
    }

    #[test]
    fn probe_error_propagates() {
        let grid = [0, 1, 2];
        let mut probe = |p: u64| -> Result<Probe, &'static str> {
            if p == 2 {
                Err("boom")
            } else {
                Ok(Probe { values: vec![0], formulas: vec![None] })
            }
        };
        assert_eq!(sweep_grid(&grid, &mut probe).unwrap_err(), "boom");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_grid_is_rejected() {
        let mut probe = |_: u64| -> Result<Probe, Infallible> {
            Ok(Probe { values: vec![], formulas: vec![] })
        };
        let _ = sweep_grid(&[3, 1], &mut probe);
    }

    #[test]
    fn formula_eval_checks_overflow() {
        let f = BoundFormula { constant: 0, slope: i128::MAX };
        assert_eq!(f.eval(2), None);
        let f = BoundFormula { constant: 5, slope: 3 };
        assert_eq!(f.eval(4), Some(17));
        assert_eq!(f.to_string(), "5 + 3*p");
    }
}
