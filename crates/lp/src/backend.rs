//! Process-wide solver backend selection.
//!
//! The backend controls *how* an ILP relaxation is solved, never *what* the
//! answer is: every backend feeds the same rounding ([`crate::round`]) and the
//! same acceptance gate (integral witness, unique optimum, exact
//! certification), and any solve the fast backends cannot prove bit-identical
//! to the dense tableau falls back to the dense path. Backend choice is
//! therefore deliberately excluded from problem fingerprints and cache keys.
//!
//! The selection is a process-wide atomic set once at startup from the
//! `--solver` CLI flag; the default is [`SolverBackend::Auto`].

use std::sync::atomic::{AtomicU8, Ordering};

/// Which solver implementation the hot path should prefer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverBackend {
    /// Dense two-phase tableau simplex only (the historical hot path).
    Dense,
    /// Presolve + sparse revised simplex; never routes to the network solver.
    Sparse,
    /// Presolve, then network simplex when the reduced matrix is pure flow
    /// conservation, sparse revised simplex otherwise. The default.
    Auto,
}

impl SolverBackend {
    /// Parse a `--solver` flag value.
    pub fn parse(s: &str) -> Option<SolverBackend> {
        match s {
            "dense" => Some(SolverBackend::Dense),
            "sparse" => Some(SolverBackend::Sparse),
            "auto" => Some(SolverBackend::Auto),
            _ => None,
        }
    }

    /// Canonical flag spelling, mirroring [`SolverBackend::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            SolverBackend::Dense => "dense",
            SolverBackend::Sparse => "sparse",
            SolverBackend::Auto => "auto",
        }
    }
}

const BACKEND_DENSE: u8 = 0;
const BACKEND_SPARSE: u8 = 1;
const BACKEND_AUTO: u8 = 2;

static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_AUTO);

/// Install the process-wide backend. Intended to be called once at startup
/// from CLI flag parsing; later calls win (useful for tests).
pub fn set_solver_backend(backend: SolverBackend) {
    let raw = match backend {
        SolverBackend::Dense => BACKEND_DENSE,
        SolverBackend::Sparse => BACKEND_SPARSE,
        SolverBackend::Auto => BACKEND_AUTO,
    };
    BACKEND.store(raw, Ordering::Relaxed);
}

/// The currently selected backend.
pub fn solver_backend() -> SolverBackend {
    match BACKEND.load(Ordering::Relaxed) {
        BACKEND_DENSE => SolverBackend::Dense,
        BACKEND_SPARSE => SolverBackend::Sparse,
        _ => SolverBackend::Auto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for b in [SolverBackend::Dense, SolverBackend::Sparse, SolverBackend::Auto] {
            assert_eq!(SolverBackend::parse(b.as_str()), Some(b));
        }
        assert_eq!(SolverBackend::parse("fancy"), None);
    }
}
