//! Two-phase primal simplex on a dense tableau, with Bland's anti-cycling
//! pivot rule.
//!
//! The problems produced by IPET are small (tens to a few hundred rows), so
//! a dense textbook implementation is both fast enough and easy to audit.

use crate::budget::{BudgetMeter, LpFault, SolveBudget, SolverFaults};
use crate::model::{Problem, Relation, Sense};

/// Feasibility tolerance used throughout the solver.
pub const FEAS_TOL: f64 = 1e-7;

/// Integrality tolerance used by the branch-and-bound layer.
pub const INT_TOL: f64 = 1e-6;

/// Result of an LP solve (integrality flags are ignored).
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal vertex was found.
    Optimal {
        /// Primal solution, one entry per problem variable.
        x: Vec<f64>,
        /// Objective value in the problem's own sense.
        value: f64,
    },
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// Pivoting met NaN/non-finite data (or the input model contained
    /// non-finite coefficients); no conclusion about the model is implied.
    Numerical,
    /// The iteration or tick budget ran out before the solve concluded;
    /// no conclusion about the model is implied.
    LimitReached,
}

/// How one run of [`Tableau::optimize`] ended (internal; disambiguates the
/// conditions the caller must treat differently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimplexEnd {
    /// Reached an optimal basis.
    Optimal,
    /// Found an unbounded improving ray.
    Unbounded,
    /// Ran out of pivot iterations.
    IterLimit,
    /// Met a NaN/non-finite reduced cost, ratio, or pivot element.
    Numerical,
}

/// A dense simplex tableau in equality standard form.
struct Tableau {
    /// `rows x cols` coefficient matrix; the last column is the RHS.
    a: Vec<Vec<f64>>,
    rows: usize,
    cols: usize, // includes rhs column
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Columns barred from entering the basis (artificials in phase 2).
    banned: Vec<bool>,
}

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        self.a[row][self.cols - 1]
    }

    /// Performs one pivot on (`row`, `col`), updating the basis.
    ///
    /// Returns `false` without touching the tableau when the pivot element
    /// is non-finite or too close to zero to divide by safely.
    #[must_use]
    fn pivot(&mut self, row: usize, col: usize) -> bool {
        let piv = self.a[row][col];
        if !piv.is_finite() || piv.abs() <= FEAS_TOL {
            return false;
        }
        let inv = 1.0 / piv;
        for j in 0..self.cols {
            self.a[row][j] *= inv;
        }
        for i in 0..self.rows {
            if i != row {
                let factor = self.a[i][col];
                if factor != 0.0 {
                    for j in 0..self.cols {
                        self.a[i][j] -= factor * self.a[row][j];
                    }
                }
            }
        }
        self.basis[row] = col;
        true
    }

    /// Runs the simplex method to optimality for the maximization objective
    /// `obj` (one coefficient per tableau column except the RHS), charging
    /// one pivot per iteration to `pivots`.
    fn optimize(&mut self, obj: &[f64], max_iters: usize, pivots: &mut u64) -> SimplexEnd {
        // Reduced-cost row maintained explicitly: z_j = c_B^T B^{-1} A_j - c_j.
        // Entering columns are those with z_j < -tol (can improve a maximum).
        for _ in 0..max_iters {
            let mut zrow = vec![0.0; self.cols - 1];
            for (j, z) in zrow.iter_mut().enumerate() {
                let mut acc = -obj[j];
                for i in 0..self.rows {
                    let cb = obj[self.basis[i]];
                    if cb != 0.0 {
                        acc += cb * self.a[i][j];
                    }
                }
                *z = acc;
            }
            if zrow.iter().any(|z| z.is_nan()) {
                return SimplexEnd::Numerical;
            }
            // Bland's rule: smallest-index eligible entering column.
            let entering = (0..self.cols - 1).find(|&j| !self.banned[j] && zrow[j] < -FEAS_TOL);
            let Some(col) = entering else {
                return SimplexEnd::Optimal;
            };
            // Ratio test; Bland tie-break on smallest basis variable index.
            // NaN anywhere in the candidate column or RHS voids the test: a
            // NaN ratio compares false against everything, which would let a
            // poisoned row win or lose arbitrarily.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..self.rows {
                let aij = self.a[i][col];
                if aij.is_nan() || self.rhs(i).is_nan() {
                    return SimplexEnd::Numerical;
                }
                if aij > FEAS_TOL {
                    let ratio = self.rhs(i) / aij;
                    match best {
                        None => best = Some((i, ratio)),
                        Some((bi, br)) => {
                            if ratio < br - FEAS_TOL
                                || ((ratio - br).abs() <= FEAS_TOL
                                    && self.basis[i] < self.basis[bi])
                            {
                                best = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = best else {
                return SimplexEnd::Unbounded;
            };
            *pivots += 1;
            if !self.pivot(row, col) {
                return SimplexEnd::Numerical;
            }
        }
        SimplexEnd::IterLimit
    }
}

/// Solves the LP relaxation of `problem` (ignores integrality flags).
///
/// Variables are non-negative; rows may be `<=`, `>=` or `=`. The returned
/// objective value is in the problem's own sense (a `Minimize` problem
/// reports the minimum).
pub fn solve_lp(problem: &Problem) -> LpOutcome {
    solve_lp_metered(
        problem,
        &SolveBudget::unlimited(),
        &BudgetMeter::new(),
        &mut SolverFaults::none(),
    )
}

/// Solves the LP relaxation under `budget`, charging pivots and the call
/// itself to `meter` and honouring injected `faults`.
///
/// Differences from the unmetered [`solve_lp`]:
/// * returns [`LpOutcome::LimitReached`] when the tick deadline or the
///   per-call iteration cap runs out mid-solve (never a bogus
///   `Infeasible`/`Unbounded`);
/// * returns [`LpOutcome::Numerical`] for models containing NaN/infinite
///   data or when pivoting breaks down numerically.
pub fn solve_lp_metered(
    problem: &Problem,
    budget: &SolveBudget,
    meter: &BudgetMeter,
    faults: &mut SolverFaults,
) -> LpOutcome {
    meter.add_lp_call();
    if let Some(fault) = faults.lp_fault() {
        return match fault {
            LpFault::Infeasible => LpOutcome::Infeasible,
            LpFault::Numerical => LpOutcome::Numerical,
        };
    }
    if problem.has_non_finite() {
        return LpOutcome::Numerical;
    }

    let n = problem.num_vars();
    let m = problem.num_constraints();

    // Internally always maximize; negate the objective for Minimize.
    let sign = match problem.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };

    // Count structural + slack/surplus + artificial columns.
    let mut num_slack = 0usize;
    for c in &problem.constraints {
        if matches!(c.relation, Relation::Le | Relation::Ge) {
            num_slack += 1;
        }
    }
    // Upper bound: one artificial per row (only some rows get one).
    let cols = n + num_slack + m + 1;
    let mut a = vec![vec![0.0; cols]; m];
    let mut basis = vec![usize::MAX; m];
    let mut artificial_cols: Vec<usize> = Vec::new();

    let mut next_slack = n;
    let mut next_artificial = n + num_slack;

    for (i, con) in problem.constraints.iter().enumerate() {
        let dense = con.dense(n);
        // Normalize to rhs >= 0 by flipping the row if needed.
        let flip = con.rhs < 0.0;
        let (row_coeffs, rhs, rel) = if flip {
            let rel = match con.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            (dense.iter().map(|&v| -v).collect::<Vec<_>>(), -con.rhs, rel)
        } else {
            (dense, con.rhs, con.relation)
        };
        a[i][..n].copy_from_slice(&row_coeffs);
        a[i][cols - 1] = rhs;
        match rel {
            Relation::Le => {
                a[i][next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                a[i][next_slack] = -1.0;
                next_slack += 1;
                a[i][next_artificial] = 1.0;
                basis[i] = next_artificial;
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
            Relation::Eq => {
                a[i][next_artificial] = 1.0;
                basis[i] = next_artificial;
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
        }
    }

    let total_cols = cols;
    let mut tab =
        Tableau { a, rows: m, cols: total_cols, basis, banned: vec![false; total_cols - 1] };
    // Per-call iteration cap: the solver's own generous size-derived stop
    // (Bland's rule terminates, so this only catches pathologies), tightened
    // by any explicit per-LP cap and by the ticks left before the deadline.
    let mut max_iters = 50_000 + 200 * (m + total_cols);
    if let Some(cap) = budget.max_lp_iters {
        max_iters = max_iters.min(cap);
    }
    if let Some(left) = meter.ticks_left(budget) {
        if left == 0 {
            return LpOutcome::LimitReached;
        }
        max_iters = max_iters.min(usize::try_from(left).unwrap_or(usize::MAX));
    }
    let mut pivots = 0u64;

    // Phase 1: maximize -(sum of artificials).
    let phase1_end = if artificial_cols.is_empty() {
        SimplexEnd::Optimal
    } else {
        let mut phase1 = vec![0.0; total_cols - 1];
        for &c in &artificial_cols {
            phase1[c] = -1.0;
        }
        tab.optimize(&phase1, max_iters, &mut pivots)
    };
    match phase1_end {
        SimplexEnd::Optimal => {}
        SimplexEnd::IterLimit => {
            meter.charge_ticks(pivots);
            return LpOutcome::LimitReached;
        }
        // Phase 1 maximizes a sum of negated non-negative variables, which
        // is bounded above by 0 — an "unbounded" verdict can only mean the
        // arithmetic broke down.
        SimplexEnd::Unbounded | SimplexEnd::Numerical => {
            meter.charge_ticks(pivots);
            return LpOutcome::Numerical;
        }
    }
    if !artificial_cols.is_empty() {
        let infeas: f64 = artificial_cols
            .iter()
            .map(|&c| tab.basis.iter().position(|&b| b == c).map(|r| tab.rhs(r)).unwrap_or(0.0))
            .sum();
        if !infeas.is_finite() {
            meter.charge_ticks(pivots);
            return LpOutcome::Numerical;
        }
        if infeas > 1e-6 {
            meter.charge_ticks(pivots);
            return LpOutcome::Infeasible;
        }
        // Drive any degenerate basic artificials out of the basis.
        for r in 0..tab.rows {
            if artificial_cols.contains(&tab.basis[r]) {
                if let Some(col) = (0..n + num_slack).find(|&j| tab.a[r][j].abs() > FEAS_TOL) {
                    pivots += 1;
                    if !tab.pivot(r, col) {
                        meter.charge_ticks(pivots);
                        return LpOutcome::Numerical;
                    }
                }
                // If the whole row is zero in structural columns the row is
                // redundant; the artificial stays basic at value 0 and is
                // banned from pricing, which is harmless.
            }
        }
        for &c in &artificial_cols {
            tab.banned[c] = true;
        }
    }

    // Phase 2: the real objective.
    let mut obj = vec![0.0; total_cols - 1];
    for (j, &c) in problem.objective.iter().enumerate() {
        obj[j] = sign * c;
    }
    let end = tab.optimize(&obj, max_iters, &mut pivots);
    meter.charge_ticks(pivots);
    match end {
        SimplexEnd::Optimal => {}
        SimplexEnd::Unbounded => return LpOutcome::Unbounded,
        SimplexEnd::IterLimit => return LpOutcome::LimitReached,
        SimplexEnd::Numerical => return LpOutcome::Numerical,
    }

    let mut x = vec![0.0; n];
    for (r, &b) in tab.basis.iter().enumerate() {
        if b < n {
            x[b] = tab.rhs(r).max(0.0);
        }
    }
    let value = problem.objective_value(&x);
    if !value.is_finite() || x.iter().any(|v| !v.is_finite()) {
        return LpOutcome::Numerical;
    }
    LpOutcome::Optimal { x, value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProblemBuilder, Relation, Sense};

    fn build(sense: Sense, obj: &[f64], rows: &[(&[f64], Relation, f64)]) -> Problem {
        let mut b = ProblemBuilder::new(sense);
        let vars: Vec<_> = (0..obj.len()).map(|i| b.add_var(format!("v{i}"), false)).collect();
        for (i, &c) in obj.iter().enumerate() {
            b.objective(vars[i], c);
        }
        for (coeffs, rel, rhs) in rows {
            let terms = coeffs
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0.0)
                .map(|(i, &c)| (vars[i], c))
                .collect();
            b.constraint(terms, *rel, *rhs);
        }
        b.build()
    }

    fn assert_opt(p: &Problem, want: f64) -> Vec<f64> {
        match solve_lp(p) {
            LpOutcome::Optimal { x, value } => {
                assert!((value - want).abs() < 1e-6, "value {value}, want {want}");
                assert!(p.is_feasible(&x, 1e-6), "solution infeasible: {x:?}");
                x
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_max() {
        // max 3x+5y st x<=4, 2y<=12, 3x+2y<=18 -> 36 at (2,6)
        let p = build(
            Sense::Maximize,
            &[3.0, 5.0],
            &[
                (&[1.0, 0.0], Relation::Le, 4.0),
                (&[0.0, 2.0], Relation::Le, 12.0),
                (&[3.0, 2.0], Relation::Le, 18.0),
            ],
        );
        let x = assert_opt(&p, 36.0);
        assert!((x[0] - 2.0).abs() < 1e-6 && (x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimize_with_ge_rows() {
        // min 2x+3y st x+y>=4, x>=1 -> 8 at (4,0)? cost 2*4=8 vs (1,3): 2+9=11.
        let p = build(
            Sense::Minimize,
            &[2.0, 3.0],
            &[(&[1.0, 1.0], Relation::Ge, 4.0), (&[1.0, 0.0], Relation::Ge, 1.0)],
        );
        assert_opt(&p, 8.0);
    }

    #[test]
    fn equality_rows() {
        // max x+y st x+y = 5, x <= 2 -> 5.
        let p = build(
            Sense::Maximize,
            &[1.0, 1.0],
            &[(&[1.0, 1.0], Relation::Eq, 5.0), (&[1.0, 0.0], Relation::Le, 2.0)],
        );
        assert_opt(&p, 5.0);
    }

    #[test]
    fn infeasible_detected() {
        let p = build(
            Sense::Maximize,
            &[1.0],
            &[(&[1.0], Relation::Ge, 5.0), (&[1.0], Relation::Le, 2.0)],
        );
        assert_eq!(solve_lp(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let p = build(Sense::Maximize, &[1.0], &[(&[-1.0], Relation::Le, 1.0)]);
        assert_eq!(solve_lp(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn minimize_unbounded_below() {
        // min -x with x unconstrained above is unbounded.
        let p = build(Sense::Minimize, &[-1.0], &[]);
        assert_eq!(solve_lp(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -2  (i.e. y >= x + 2), max x+y with y <= 5 -> x=3,y=5.
        let p = build(
            Sense::Maximize,
            &[1.0, 1.0],
            &[(&[1.0, -1.0], Relation::Le, -2.0), (&[0.0, 1.0], Relation::Le, 5.0)],
        );
        assert_opt(&p, 8.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-ish degeneracy: several redundant rows through origin.
        let p = build(
            Sense::Maximize,
            &[1.0, 1.0],
            &[
                (&[1.0, 0.0], Relation::Le, 0.0),
                (&[1.0, 1.0], Relation::Le, 0.0),
                (&[1.0, 2.0], Relation::Le, 0.0),
                (&[0.0, 1.0], Relation::Le, 0.0),
            ],
        );
        assert_opt(&p, 0.0);
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 2 stated twice; max x -> 2.
        let p = build(
            Sense::Maximize,
            &[1.0, 0.0],
            &[(&[1.0, 1.0], Relation::Eq, 2.0), (&[1.0, 1.0], Relation::Eq, 2.0)],
        );
        assert_opt(&p, 2.0);
    }

    #[test]
    fn zero_variable_problem() {
        let p = build(Sense::Maximize, &[], &[]);
        match solve_lp(&p) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, 0.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nan_objective_reports_numerical() {
        let p = build(Sense::Maximize, &[f64::NAN, 1.0], &[(&[1.0, 1.0], Relation::Le, 4.0)]);
        assert_eq!(solve_lp(&p), LpOutcome::Numerical);
    }

    #[test]
    fn infinite_coefficient_reports_numerical() {
        let p = build(Sense::Minimize, &[1.0], &[(&[f64::INFINITY], Relation::Ge, 2.0)]);
        assert_eq!(solve_lp(&p), LpOutcome::Numerical);
    }

    #[test]
    fn deadline_exhaustion_reports_limit() {
        let p = build(
            Sense::Maximize,
            &[3.0, 5.0],
            &[
                (&[1.0, 0.0], Relation::Le, 4.0),
                (&[0.0, 2.0], Relation::Le, 12.0),
                (&[3.0, 2.0], Relation::Le, 18.0),
            ],
        );
        // Zero ticks left: the solve must refuse immediately, not guess.
        let budget = SolveBudget::with_deadline(0);
        let meter = BudgetMeter::new();
        let out = solve_lp_metered(&p, &budget, &meter, &mut SolverFaults::none());
        assert_eq!(out, LpOutcome::LimitReached);
        assert_eq!(meter.lp_calls(), 1);
        // With budget to spare the same problem solves and charges pivots.
        let budget = SolveBudget::with_deadline(10_000);
        let meter = BudgetMeter::new();
        let out = solve_lp_metered(&p, &budget, &meter, &mut SolverFaults::none());
        assert!(matches!(out, LpOutcome::Optimal { .. }));
        assert!(meter.ticks() > 0);
    }

    #[test]
    fn iteration_cap_reports_limit_not_unbounded() {
        let p = build(
            Sense::Maximize,
            &[3.0, 5.0],
            &[
                (&[1.0, 0.0], Relation::Le, 4.0),
                (&[0.0, 2.0], Relation::Le, 12.0),
                (&[3.0, 2.0], Relation::Le, 18.0),
            ],
        );
        let budget = SolveBudget { max_lp_iters: Some(1), ..SolveBudget::unlimited() };
        let out = solve_lp_metered(&p, &budget, &BudgetMeter::new(), &mut SolverFaults::none());
        assert_eq!(out, LpOutcome::LimitReached);
    }

    #[test]
    fn injected_lp_faults_fire() {
        let p = build(Sense::Maximize, &[1.0], &[(&[1.0], Relation::Le, 3.0)]);
        let budget = SolveBudget::unlimited();

        let mut faults = SolverFaults::infeasible_at(0);
        let meter = BudgetMeter::new();
        assert_eq!(solve_lp_metered(&p, &budget, &meter, &mut faults), LpOutcome::Infeasible);
        // The next call is past the fault index and solves normally.
        assert!(matches!(
            solve_lp_metered(&p, &budget, &meter, &mut faults),
            LpOutcome::Optimal { .. }
        ));

        let mut faults = SolverFaults::numerical_at(0);
        assert_eq!(
            solve_lp_metered(&p, &budget, &BudgetMeter::new(), &mut faults),
            LpOutcome::Numerical
        );
    }

    #[test]
    fn flow_conservation_shape() {
        // The structural-constraint shape from the paper's Fig. 2:
        // x1 = d1, d1 = 1, x1 = d2 + d3, x2 = d2, x3 = d3, x4 = d2 + d3.
        // Encoded over [x1,x2,x3,x4,d2,d3]; maximize 2x1+5x2+3x3+x4.
        // Best: route through x2 -> 2+5+1 = 8.
        let p = build(
            Sense::Maximize,
            &[2.0, 5.0, 3.0, 1.0, 0.0, 0.0],
            &[
                (&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0], Relation::Eq, 1.0),
                (&[1.0, 0.0, 0.0, 0.0, -1.0, -1.0], Relation::Eq, 0.0),
                (&[0.0, 1.0, 0.0, 0.0, -1.0, 0.0], Relation::Eq, 0.0),
                (&[0.0, 0.0, 1.0, 0.0, 0.0, -1.0], Relation::Eq, 0.0),
                (&[0.0, 0.0, 0.0, 1.0, -1.0, -1.0], Relation::Eq, 0.0),
            ],
        );
        let x = assert_opt(&p, 8.0);
        assert!((x[1] - 1.0).abs() < 1e-6);
        assert!(x[2].abs() < 1e-6);
    }
}
