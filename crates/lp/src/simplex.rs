//! Two-phase primal simplex on a dense tableau, plus the dual-simplex
//! re-optimization used by warm starts.
//!
//! The problems produced by IPET are small (tens to a few hundred rows), so
//! a dense textbook implementation is both fast enough and easy to audit.
//!
//! ## Pivot rule
//!
//! Entering columns are chosen by Dantzig's rule (most negative reduced
//! cost) for speed, switching to Bland's rule (smallest eligible index)
//! after [`STALL_THRESHOLD`] consecutive degenerate pivots. Bland's rule
//! provably terminates, so the switch is an anti-cycling guard: a stalled
//! sequence of degenerate pivots — the precondition for cycling — flips the
//! solver into the safe rule until it makes real progress again. The same
//! guard protects the dual simplex, and every loop is additionally capped by
//! an iteration budget, so a warm start can never spin.

use crate::budget::{BudgetMeter, LpFault, SolveBudget, SolverFaults};
use crate::model::{Problem, Relation, Sense};

/// Feasibility tolerance used throughout the solver.
pub const FEAS_TOL: f64 = 1e-7;

/// Integrality tolerance used by the branch-and-bound layer.
pub const INT_TOL: f64 = 1e-6;

/// Consecutive degenerate pivots tolerated before the entering rule falls
/// back from Dantzig to Bland (anti-cycling).
const STALL_THRESHOLD: u32 = 12;

/// Result of an LP solve (integrality flags are ignored).
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal vertex was found.
    Optimal {
        /// Primal solution, one entry per problem variable.
        x: Vec<f64>,
        /// Objective value in the problem's own sense.
        value: f64,
    },
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// Pivoting met NaN/non-finite data (or the input model contained
    /// non-finite coefficients); no conclusion about the model is implied.
    Numerical,
    /// The iteration or tick budget ran out before the solve concluded;
    /// no conclusion about the model is implied.
    LimitReached,
}

/// How one run of [`Tableau::optimize`] ended (internal; disambiguates the
/// conditions the caller must treat differently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimplexEnd {
    /// Reached an optimal basis.
    Optimal,
    /// Found an unbounded improving ray.
    Unbounded,
    /// Ran out of pivot iterations.
    IterLimit,
    /// Met a NaN/non-finite reduced cost, ratio, or pivot element.
    Numerical,
}

/// How a dual-simplex re-optimization ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DualEnd {
    /// Regained primal feasibility at an optimal basis.
    Optimal,
    /// The dual is unbounded: the primal system is infeasible.
    Infeasible,
    /// Ran out of pivot iterations.
    IterLimit,
    /// Met NaN/non-finite data mid-pivot.
    Numerical,
}

/// A dense simplex tableau in equality standard form.
#[derive(Clone)]
pub(crate) struct Tableau {
    /// `rows x cols` coefficient matrix; the last column is the RHS.
    a: Vec<Vec<f64>>,
    rows: usize,
    cols: usize, // includes rhs column
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Columns barred from entering the basis (artificials in phase 2).
    banned: Vec<bool>,
}

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        self.a[row][self.cols - 1]
    }

    /// Performs one pivot on (`row`, `col`), updating the basis.
    ///
    /// Returns `false` without touching the tableau when the pivot element
    /// is non-finite or too close to zero to divide by safely.
    #[must_use]
    fn pivot(&mut self, row: usize, col: usize) -> bool {
        let piv = self.a[row][col];
        if !piv.is_finite() || piv.abs() <= FEAS_TOL {
            return false;
        }
        let inv = 1.0 / piv;
        for j in 0..self.cols {
            self.a[row][j] *= inv;
        }
        for i in 0..self.rows {
            if i != row {
                let factor = self.a[i][col];
                if factor != 0.0 {
                    for j in 0..self.cols {
                        self.a[i][j] -= factor * self.a[row][j];
                    }
                }
            }
        }
        self.basis[row] = col;
        true
    }

    /// Reduced-cost row for the maximization objective `obj`:
    /// `z_j = c_B^T B^{-1} A_j - c_j`. Entering columns are those with
    /// `z_j < -tol` (can improve a maximum).
    fn reduced_costs(&self, obj: &[f64]) -> Vec<f64> {
        let mut zrow = vec![0.0; self.cols - 1];
        for (j, z) in zrow.iter_mut().enumerate() {
            let mut acc = -obj[j];
            for i in 0..self.rows {
                let cb = obj[self.basis[i]];
                if cb != 0.0 {
                    acc += cb * self.a[i][j];
                }
            }
            *z = acc;
        }
        zrow
    }

    /// Runs the primal simplex method to optimality for the maximization
    /// objective `obj` (one coefficient per tableau column except the RHS),
    /// charging one pivot per iteration to `pivots`.
    fn optimize(&mut self, obj: &[f64], max_iters: usize, pivots: &mut u64) -> SimplexEnd {
        let mut stalled = 0u32;
        for _ in 0..max_iters {
            let zrow = self.reduced_costs(obj);
            if zrow.iter().any(|z| z.is_nan()) {
                return SimplexEnd::Numerical;
            }
            let entering = if stalled >= STALL_THRESHOLD {
                // Bland's rule: smallest-index eligible entering column;
                // provably cycle-free.
                (0..self.cols - 1).find(|&j| !self.banned[j] && zrow[j] < -FEAS_TOL)
            } else {
                // Dantzig's rule: most negative reduced cost, smallest
                // index on ties (deterministic).
                let mut best: Option<(usize, f64)> = None;
                for (j, &z) in zrow.iter().enumerate() {
                    if !self.banned[j] && z < -FEAS_TOL && best.is_none_or(|(_, bz)| z < bz) {
                        best = Some((j, z));
                    }
                }
                best.map(|(j, _)| j)
            };
            let Some(col) = entering else {
                return SimplexEnd::Optimal;
            };
            // Ratio test; Bland tie-break on smallest basis variable index.
            // NaN anywhere in the candidate column or RHS voids the test: a
            // NaN ratio compares false against everything, which would let a
            // poisoned row win or lose arbitrarily.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..self.rows {
                let aij = self.a[i][col];
                if aij.is_nan() || self.rhs(i).is_nan() {
                    return SimplexEnd::Numerical;
                }
                if aij > FEAS_TOL {
                    let ratio = self.rhs(i) / aij;
                    match best {
                        None => best = Some((i, ratio)),
                        Some((bi, br)) => {
                            if ratio < br - FEAS_TOL
                                || ((ratio - br).abs() <= FEAS_TOL
                                    && self.basis[i] < self.basis[bi])
                            {
                                best = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, ratio)) = best else {
                return SimplexEnd::Unbounded;
            };
            stalled = if ratio.abs() <= FEAS_TOL { stalled + 1 } else { 0 };
            *pivots += 1;
            if !self.pivot(row, col) {
                return SimplexEnd::Numerical;
            }
        }
        SimplexEnd::IterLimit
    }

    /// Dual-simplex re-optimization: starting from a dual-feasible basis
    /// (all reduced costs of `obj` non-negative within tolerance) whose RHS
    /// may have gone negative after new rows were appended, pivots until the
    /// basis is primal feasible again (optimal) or the dual is unbounded
    /// (primal infeasible).
    fn dual_optimize(&mut self, obj: &[f64], max_iters: usize, pivots: &mut u64) -> DualEnd {
        let mut stalled = 0u32;
        for _ in 0..max_iters {
            // Leaving row: most negative RHS; after a stall, smallest basis
            // index (the Bland-style guard; the iteration cap backstops it).
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.rows {
                let r = self.rhs(i);
                if r.is_nan() {
                    return DualEnd::Numerical;
                }
                if r < -FEAS_TOL {
                    let better = match leave {
                        None => true,
                        Some((bi, br)) => {
                            if stalled >= STALL_THRESHOLD {
                                self.basis[i] < self.basis[bi]
                            } else {
                                r < br
                            }
                        }
                    };
                    if better {
                        leave = Some((i, r));
                    }
                }
            }
            let Some((row, _)) = leave else {
                return DualEnd::Optimal;
            };
            // Entering column: the dual ratio test. Among non-banned columns
            // with a negative entry in the leaving row, minimize
            // `z_j / (-a_rj)` (smallest index on ties) so dual feasibility
            // is preserved.
            let zrow = self.reduced_costs(obj);
            let mut best: Option<(usize, f64)> = None;
            for (j, &z) in zrow.iter().enumerate() {
                if self.banned[j] {
                    continue;
                }
                let arj = self.a[row][j];
                if arj.is_nan() || z.is_nan() {
                    return DualEnd::Numerical;
                }
                if arj < -FEAS_TOL {
                    let ratio = z / (-arj);
                    match best {
                        None => best = Some((j, ratio)),
                        Some((bj, br)) => {
                            if ratio < br - FEAS_TOL || ((ratio - br).abs() <= FEAS_TOL && j < bj) {
                                best = Some((j, ratio));
                            }
                        }
                    }
                }
            }
            let Some((col, ratio)) = best else {
                // No negative entry in an infeasible row: the row is
                // unsatisfiable, i.e. the primal system is infeasible.
                return DualEnd::Infeasible;
            };
            stalled = if ratio.abs() <= FEAS_TOL { stalled + 1 } else { 0 };
            *pivots += 1;
            if !self.pivot(row, col) {
                return DualEnd::Numerical;
            }
        }
        DualEnd::IterLimit
    }
}

/// How [`SimplexInstance::solve_primal`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PrimalEnd {
    Optimal,
    Infeasible,
    Unbounded,
    IterLimit,
    Numerical,
}

/// A standard-form simplex instance: the tableau plus everything needed to
/// resume work on it (the sign-folded phase-2 objective, the structural
/// variable count, and the artificial bookkeeping). Cloneable, so an optimal
/// base instance can be snapshotted once and re-extended per delta set.
#[derive(Clone)]
pub(crate) struct SimplexInstance {
    pub(crate) tab: Tableau,
    /// Phase-2 objective over every tableau column except the RHS, already
    /// folded to "maximize" (negated for `Minimize` problems).
    obj: Vec<f64>,
    /// Structural (problem) variable count; columns `0..n`.
    n: usize,
    /// Slack/surplus column count; columns `n..n + num_slack`.
    num_slack: usize,
    artificial_cols: Vec<usize>,
}

impl SimplexInstance {
    /// The generous size-derived iteration cap (Bland's fallback terminates,
    /// so this only catches pathologies).
    pub(crate) fn default_iter_cap(&self) -> usize {
        50_000 + 200 * (self.tab.rows + self.tab.cols)
    }

    /// Runs phase 1 (artificial feasibility) and phase 2 (the real
    /// objective) to optimality.
    pub(crate) fn solve_primal(&mut self, max_iters: usize, pivots: &mut u64) -> PrimalEnd {
        let phase1_end = if self.artificial_cols.is_empty() {
            SimplexEnd::Optimal
        } else {
            let mut phase1 = vec![0.0; self.tab.cols - 1];
            for &c in &self.artificial_cols {
                phase1[c] = -1.0;
            }
            self.tab.optimize(&phase1, max_iters, pivots)
        };
        match phase1_end {
            SimplexEnd::Optimal => {}
            SimplexEnd::IterLimit => return PrimalEnd::IterLimit,
            // Phase 1 maximizes a sum of negated non-negative variables,
            // which is bounded above by 0 — an "unbounded" verdict can only
            // mean the arithmetic broke down.
            SimplexEnd::Unbounded | SimplexEnd::Numerical => return PrimalEnd::Numerical,
        }
        if !self.artificial_cols.is_empty() {
            let infeas: f64 = self
                .artificial_cols
                .iter()
                .map(|&c| {
                    self.tab
                        .basis
                        .iter()
                        .position(|&b| b == c)
                        .map(|r| self.tab.rhs(r))
                        .unwrap_or(0.0)
                })
                .sum();
            if !infeas.is_finite() {
                return PrimalEnd::Numerical;
            }
            if infeas > 1e-6 {
                return PrimalEnd::Infeasible;
            }
            // Drive any degenerate basic artificials out of the basis.
            for r in 0..self.tab.rows {
                if self.artificial_cols.contains(&self.tab.basis[r]) {
                    if let Some(col) =
                        (0..self.n + self.num_slack).find(|&j| self.tab.a[r][j].abs() > FEAS_TOL)
                    {
                        *pivots += 1;
                        if !self.tab.pivot(r, col) {
                            return PrimalEnd::Numerical;
                        }
                    }
                    // If the whole row is zero in structural columns the row
                    // is redundant; the artificial stays basic at value 0 and
                    // is banned from pricing, which is harmless.
                }
            }
            for &c in &self.artificial_cols {
                self.tab.banned[c] = true;
            }
        }

        match self.tab.optimize(&self.obj.clone(), max_iters, pivots) {
            SimplexEnd::Optimal => PrimalEnd::Optimal,
            SimplexEnd::Unbounded => PrimalEnd::Unbounded,
            SimplexEnd::IterLimit => PrimalEnd::IterLimit,
            SimplexEnd::Numerical => PrimalEnd::Numerical,
        }
    }

    /// Appends `<=` rows (dense coefficients over the structural variables,
    /// any-sign RHS) to an *optimal* tableau, pricing them out against the
    /// current basis so the tableau stays in canonical form. Each new row
    /// gets its own slack column and enters the basis on it; the result is
    /// dual feasible and ready for [`Tableau::dual_optimize`].
    pub(crate) fn append_le_rows(&mut self, rows: &[(Vec<f64>, f64)]) {
        let k = rows.len();
        if k == 0 {
            return;
        }
        let old_cols = self.tab.cols;
        let old_rows = self.tab.rows;
        let new_cols = old_cols + k;
        // Widen existing rows: k fresh slack columns before the RHS.
        for row in &mut self.tab.a {
            let rhs = row[old_cols - 1];
            row[old_cols - 1] = 0.0;
            row.extend(std::iter::repeat_n(0.0, k - 1));
            row.push(rhs);
        }
        self.obj.extend(std::iter::repeat_n(0.0, k));
        self.tab.banned.extend(std::iter::repeat_n(false, k));
        for (t, (coeffs, rhs)) in rows.iter().enumerate() {
            let slack_col = old_cols - 1 + t;
            let mut row = vec![0.0; new_cols];
            row[..coeffs.len().min(self.n)].copy_from_slice(&coeffs[..coeffs.len().min(self.n)]);
            row[slack_col] = 1.0;
            row[new_cols - 1] = *rhs;
            // Price out: eliminate the entries at the old basic columns.
            // Basic columns are unit vectors over the old rows, so one pass
            // in row order is exact; old rows are zero in the new slack
            // columns, so the slack entry survives untouched.
            for i in 0..old_rows {
                let f = row[self.tab.basis[i]];
                if f != 0.0 {
                    for (rj, aj) in row.iter_mut().zip(&self.tab.a[i]) {
                        *rj -= f * aj;
                    }
                }
            }
            self.tab.a.push(row);
            self.tab.basis.push(slack_col);
        }
        self.tab.rows += k;
        self.tab.cols = new_cols;
    }

    /// Dual-simplex re-optimization of the phase-2 objective (see
    /// [`Tableau::dual_optimize`]).
    pub(crate) fn dual_reoptimize(&mut self, max_iters: usize, pivots: &mut u64) -> DualEnd {
        let obj = self.obj.clone();
        self.tab.dual_optimize(&obj, max_iters, pivots)
    }

    /// The primal solution over the structural variables.
    pub(crate) fn extract_x(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        for (r, &b) in self.tab.basis.iter().enumerate() {
            if b < self.n {
                x[b] = self.tab.rhs(r).max(0.0);
            }
        }
        x
    }

    /// True when the current optimal basis provably identifies a *unique*
    /// optimum: every non-basic, non-banned column has a strictly positive
    /// reduced cost, so moving along any of them strictly worsens the
    /// objective. Primal degeneracy (duplicate bases for one vertex) does
    /// not matter — the criterion is about the solution point, not the
    /// basis.
    pub(crate) fn optimum_is_unique(&self) -> bool {
        let zrow = self.tab.reduced_costs(&self.obj);
        let mut is_basic = vec![false; self.tab.cols - 1];
        for &b in &self.tab.basis {
            if b < is_basic.len() {
                is_basic[b] = true;
            }
        }
        (0..self.tab.cols - 1).all(|j| is_basic[j] || self.tab.banned[j] || zrow[j] > FEAS_TOL)
    }
}

/// Builds the standard-form instance for `problem`: slack/surplus columns
/// for inequality rows, artificial columns for `>=`/`=` rows, RHS
/// normalized non-negative, objective folded to "maximize".
///
/// The caller is responsible for rejecting non-finite models first
/// ([`Problem::has_non_finite`]).
pub(crate) fn build_instance(problem: &Problem) -> SimplexInstance {
    let n = problem.num_vars();
    let m = problem.num_constraints();

    // Internally always maximize; negate the objective for Minimize.
    let sign = match problem.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };

    // Count structural + slack/surplus + artificial columns.
    let mut num_slack = 0usize;
    for c in &problem.constraints {
        if matches!(c.relation, Relation::Le | Relation::Ge) {
            num_slack += 1;
        }
    }
    // Upper bound: one artificial per row (only some rows get one).
    let cols = n + num_slack + m + 1;
    let mut a = vec![vec![0.0; cols]; m];
    let mut basis = vec![usize::MAX; m];
    let mut artificial_cols: Vec<usize> = Vec::new();

    let mut next_slack = n;
    let mut next_artificial = n + num_slack;

    for (i, con) in problem.constraints.iter().enumerate() {
        let dense = con.dense(n);
        // Normalize to rhs >= 0 by flipping the row if needed.
        let flip = con.rhs < 0.0;
        let (row_coeffs, rhs, rel) = if flip {
            let rel = match con.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            (dense.iter().map(|&v| -v).collect::<Vec<_>>(), -con.rhs, rel)
        } else {
            (dense, con.rhs, con.relation)
        };
        a[i][..n].copy_from_slice(&row_coeffs);
        a[i][cols - 1] = rhs;
        match rel {
            Relation::Le => {
                a[i][next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                a[i][next_slack] = -1.0;
                next_slack += 1;
                a[i][next_artificial] = 1.0;
                basis[i] = next_artificial;
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
            Relation::Eq => {
                a[i][next_artificial] = 1.0;
                basis[i] = next_artificial;
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
        }
    }

    let mut obj = vec![0.0; cols - 1];
    for (j, &c) in problem.objective.iter().enumerate() {
        obj[j] = sign * c;
    }

    // One artificial slot was reserved per row but only `>=`/`=` rows used
    // theirs; the leftover all-zero columns are dead and banned outright so
    // pricing (and the uniqueness test) never looks at them.
    let mut banned = vec![false; cols - 1];
    for slot in banned.iter_mut().take(cols - 1).skip(next_artificial) {
        *slot = true;
    }

    SimplexInstance {
        tab: Tableau { a, rows: m, cols, basis, banned },
        obj,
        n,
        num_slack,
        artificial_cols,
    }
}

/// Solves the LP relaxation of `problem` (ignores integrality flags).
///
/// Variables are non-negative; rows may be `<=`, `>=` or `=`. The returned
/// objective value is in the problem's own sense (a `Minimize` problem
/// reports the minimum).
pub fn solve_lp(problem: &Problem) -> LpOutcome {
    solve_lp_metered(
        problem,
        &SolveBudget::unlimited(),
        &BudgetMeter::new(),
        &mut SolverFaults::none(),
    )
}

/// Solves the LP relaxation under `budget`, charging pivots and the call
/// itself to `meter` and honouring injected `faults`.
///
/// Differences from the unmetered [`solve_lp`]:
/// * returns [`LpOutcome::LimitReached`] when the tick deadline or the
///   per-call iteration cap runs out mid-solve (never a bogus
///   `Infeasible`/`Unbounded`);
/// * returns [`LpOutcome::Numerical`] for models containing NaN/infinite
///   data or when pivoting breaks down numerically.
pub fn solve_lp_metered(
    problem: &Problem,
    budget: &SolveBudget,
    meter: &BudgetMeter,
    faults: &mut SolverFaults,
) -> LpOutcome {
    meter.add_lp_call();
    if let Some(fault) = faults.lp_fault() {
        return match fault {
            LpFault::Infeasible => LpOutcome::Infeasible,
            LpFault::Numerical => LpOutcome::Numerical,
        };
    }
    if problem.has_non_finite() {
        return LpOutcome::Numerical;
    }

    let mut inst = build_instance(problem);

    // Per-call iteration cap: the solver's own generous size-derived stop,
    // tightened by any explicit per-LP cap and by the ticks left before the
    // deadline.
    let mut max_iters = inst.default_iter_cap();
    if let Some(cap) = budget.max_lp_iters {
        max_iters = max_iters.min(cap);
    }
    if let Some(left) = meter.ticks_left(budget) {
        if left == 0 {
            return LpOutcome::LimitReached;
        }
        max_iters = max_iters.min(usize::try_from(left).unwrap_or(usize::MAX));
    }
    let mut pivots = 0u64;
    let end = inst.solve_primal(max_iters, &mut pivots);
    meter.charge_ticks(pivots);
    match end {
        PrimalEnd::Optimal => {}
        PrimalEnd::Infeasible => return LpOutcome::Infeasible,
        PrimalEnd::Unbounded => return LpOutcome::Unbounded,
        PrimalEnd::IterLimit => return LpOutcome::LimitReached,
        PrimalEnd::Numerical => return LpOutcome::Numerical,
    }

    let x = inst.extract_x();
    let value = problem.objective_value(&x);
    if !value.is_finite() || x.iter().any(|v| !v.is_finite()) {
        return LpOutcome::Numerical;
    }
    LpOutcome::Optimal { x, value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProblemBuilder, Relation, Sense};

    fn build(sense: Sense, obj: &[f64], rows: &[(&[f64], Relation, f64)]) -> Problem {
        let mut b = ProblemBuilder::new(sense);
        let vars: Vec<_> = (0..obj.len()).map(|i| b.add_var(format!("v{i}"), false)).collect();
        for (i, &c) in obj.iter().enumerate() {
            b.objective(vars[i], c);
        }
        for (coeffs, rel, rhs) in rows {
            let terms = coeffs
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0.0)
                .map(|(i, &c)| (vars[i], c))
                .collect();
            b.constraint(terms, *rel, *rhs);
        }
        b.build()
    }

    fn assert_opt(p: &Problem, want: f64) -> Vec<f64> {
        match solve_lp(p) {
            LpOutcome::Optimal { x, value } => {
                assert!((value - want).abs() < 1e-6, "value {value}, want {want}");
                assert!(p.is_feasible(&x, 1e-6), "solution infeasible: {x:?}");
                x
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_max() {
        // max 3x+5y st x<=4, 2y<=12, 3x+2y<=18 -> 36 at (2,6)
        let p = build(
            Sense::Maximize,
            &[3.0, 5.0],
            &[
                (&[1.0, 0.0], Relation::Le, 4.0),
                (&[0.0, 2.0], Relation::Le, 12.0),
                (&[3.0, 2.0], Relation::Le, 18.0),
            ],
        );
        let x = assert_opt(&p, 36.0);
        assert!((x[0] - 2.0).abs() < 1e-6 && (x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimize_with_ge_rows() {
        // min 2x+3y st x+y>=4, x>=1 -> 8 at (4,0)? cost 2*4=8 vs (1,3): 2+9=11.
        let p = build(
            Sense::Minimize,
            &[2.0, 3.0],
            &[(&[1.0, 1.0], Relation::Ge, 4.0), (&[1.0, 0.0], Relation::Ge, 1.0)],
        );
        assert_opt(&p, 8.0);
    }

    #[test]
    fn equality_rows() {
        // max x+y st x+y = 5, x <= 2 -> 5.
        let p = build(
            Sense::Maximize,
            &[1.0, 1.0],
            &[(&[1.0, 1.0], Relation::Eq, 5.0), (&[1.0, 0.0], Relation::Le, 2.0)],
        );
        assert_opt(&p, 5.0);
    }

    #[test]
    fn infeasible_detected() {
        let p = build(
            Sense::Maximize,
            &[1.0],
            &[(&[1.0], Relation::Ge, 5.0), (&[1.0], Relation::Le, 2.0)],
        );
        assert_eq!(solve_lp(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let p = build(Sense::Maximize, &[1.0], &[(&[-1.0], Relation::Le, 1.0)]);
        assert_eq!(solve_lp(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn minimize_unbounded_below() {
        // min -x with x unconstrained above is unbounded.
        let p = build(Sense::Minimize, &[-1.0], &[]);
        assert_eq!(solve_lp(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -2  (i.e. y >= x + 2), max x+y with y <= 5 -> x=3,y=5.
        let p = build(
            Sense::Maximize,
            &[1.0, 1.0],
            &[(&[1.0, -1.0], Relation::Le, -2.0), (&[0.0, 1.0], Relation::Le, 5.0)],
        );
        assert_opt(&p, 8.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-ish degeneracy: several redundant rows through origin.
        let p = build(
            Sense::Maximize,
            &[1.0, 1.0],
            &[
                (&[1.0, 0.0], Relation::Le, 0.0),
                (&[1.0, 1.0], Relation::Le, 0.0),
                (&[1.0, 2.0], Relation::Le, 0.0),
                (&[0.0, 1.0], Relation::Le, 0.0),
            ],
        );
        assert_opt(&p, 0.0);
    }

    #[test]
    fn beale_cycling_lp_terminates_at_the_optimum() {
        // Beale's classic cycling example: under a naive Dantzig rule with
        // unlucky tie-breaking the simplex cycles forever among degenerate
        // bases at the origin. The stall guard must flip to Bland's rule and
        // land on the true optimum 0.05 at (0.04, 0, 1, 0). Regression test
        // for the anti-cycling guard warm starts rely on.
        let p = build(
            Sense::Maximize,
            &[0.75, -150.0, 0.02, -6.0],
            &[
                (&[0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0),
                (&[0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0),
                (&[0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0),
            ],
        );
        let x = assert_opt(&p, 0.05);
        assert!((x[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 2 stated twice; max x -> 2.
        let p = build(
            Sense::Maximize,
            &[1.0, 0.0],
            &[(&[1.0, 1.0], Relation::Eq, 2.0), (&[1.0, 1.0], Relation::Eq, 2.0)],
        );
        assert_opt(&p, 2.0);
    }

    #[test]
    fn zero_variable_problem() {
        let p = build(Sense::Maximize, &[], &[]);
        match solve_lp(&p) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, 0.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nan_objective_reports_numerical() {
        let p = build(Sense::Maximize, &[f64::NAN, 1.0], &[(&[1.0, 1.0], Relation::Le, 4.0)]);
        assert_eq!(solve_lp(&p), LpOutcome::Numerical);
    }

    #[test]
    fn infinite_coefficient_reports_numerical() {
        let p = build(Sense::Minimize, &[1.0], &[(&[f64::INFINITY], Relation::Ge, 2.0)]);
        assert_eq!(solve_lp(&p), LpOutcome::Numerical);
    }

    #[test]
    fn deadline_exhaustion_reports_limit() {
        let p = build(
            Sense::Maximize,
            &[3.0, 5.0],
            &[
                (&[1.0, 0.0], Relation::Le, 4.0),
                (&[0.0, 2.0], Relation::Le, 12.0),
                (&[3.0, 2.0], Relation::Le, 18.0),
            ],
        );
        // Zero ticks left: the solve must refuse immediately, not guess.
        let budget = SolveBudget::with_deadline(0);
        let meter = BudgetMeter::new();
        let out = solve_lp_metered(&p, &budget, &meter, &mut SolverFaults::none());
        assert_eq!(out, LpOutcome::LimitReached);
        assert_eq!(meter.lp_calls(), 1);
        // With budget to spare the same problem solves and charges pivots.
        let budget = SolveBudget::with_deadline(10_000);
        let meter = BudgetMeter::new();
        let out = solve_lp_metered(&p, &budget, &meter, &mut SolverFaults::none());
        assert!(matches!(out, LpOutcome::Optimal { .. }));
        assert!(meter.ticks() > 0);
    }

    #[test]
    fn iteration_cap_reports_limit_not_unbounded() {
        let p = build(
            Sense::Maximize,
            &[3.0, 5.0],
            &[
                (&[1.0, 0.0], Relation::Le, 4.0),
                (&[0.0, 2.0], Relation::Le, 12.0),
                (&[3.0, 2.0], Relation::Le, 18.0),
            ],
        );
        let budget = SolveBudget { max_lp_iters: Some(1), ..SolveBudget::unlimited() };
        let out = solve_lp_metered(&p, &budget, &BudgetMeter::new(), &mut SolverFaults::none());
        assert_eq!(out, LpOutcome::LimitReached);
    }

    #[test]
    fn injected_lp_faults_fire() {
        let p = build(Sense::Maximize, &[1.0], &[(&[1.0], Relation::Le, 3.0)]);
        let budget = SolveBudget::unlimited();

        let mut faults = SolverFaults::infeasible_at(0);
        let meter = BudgetMeter::new();
        assert_eq!(solve_lp_metered(&p, &budget, &meter, &mut faults), LpOutcome::Infeasible);
        // The next call is past the fault index and solves normally.
        assert!(matches!(
            solve_lp_metered(&p, &budget, &meter, &mut faults),
            LpOutcome::Optimal { .. }
        ));

        let mut faults = SolverFaults::numerical_at(0);
        assert_eq!(
            solve_lp_metered(&p, &budget, &BudgetMeter::new(), &mut faults),
            LpOutcome::Numerical
        );
    }

    #[test]
    fn flow_conservation_shape() {
        // The structural-constraint shape from the paper's Fig. 2:
        // x1 = d1, d1 = 1, x1 = d2 + d3, x2 = d2, x3 = d3, x4 = d2 + d3.
        // Encoded over [x1,x2,x3,x4,d2,d3]; maximize 2x1+5x2+3x3+x4.
        // Best: route through x2 -> 2+5+1 = 8.
        let p = build(
            Sense::Maximize,
            &[2.0, 5.0, 3.0, 1.0, 0.0, 0.0],
            &[
                (&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0], Relation::Eq, 1.0),
                (&[1.0, 0.0, 0.0, 0.0, -1.0, -1.0], Relation::Eq, 0.0),
                (&[0.0, 1.0, 0.0, 0.0, -1.0, 0.0], Relation::Eq, 0.0),
                (&[0.0, 0.0, 1.0, 0.0, 0.0, -1.0], Relation::Eq, 0.0),
                (&[0.0, 0.0, 0.0, 1.0, -1.0, -1.0], Relation::Eq, 0.0),
            ],
        );
        let x = assert_opt(&p, 8.0);
        assert!((x[1] - 1.0).abs() < 1e-6);
        assert!(x[2].abs() < 1e-6);
    }

    // -- warm-start plumbing (instance-level) -------------------------------

    #[test]
    fn appended_rows_dual_reoptimize_to_the_constrained_optimum() {
        // Base: max 3x+5y st x<=4, 2y<=12, 3x+2y<=18 -> 36 at (2,6).
        // Delta row x + y <= 5 cuts the vertex off; new optimum 27 at (1,4)?
        // Check: maximize 3x+5y st x<=4, y<=6, 3x+2y<=18, x+y<=5.
        // Vertices: (0,5)->25, (1,4)->23? Let's just cross-check against a
        // cold solve of the composed problem.
        let base = build(
            Sense::Maximize,
            &[3.0, 5.0],
            &[
                (&[1.0, 0.0], Relation::Le, 4.0),
                (&[0.0, 2.0], Relation::Le, 12.0),
                (&[3.0, 2.0], Relation::Le, 18.0),
            ],
        );
        let composed = build(
            Sense::Maximize,
            &[3.0, 5.0],
            &[
                (&[1.0, 0.0], Relation::Le, 4.0),
                (&[0.0, 2.0], Relation::Le, 12.0),
                (&[3.0, 2.0], Relation::Le, 18.0),
                (&[1.0, 1.0], Relation::Le, 5.0),
            ],
        );
        let cold = match solve_lp(&composed) {
            LpOutcome::Optimal { x, value } => (x, value),
            other => panic!("{other:?}"),
        };

        let mut inst = build_instance(&base);
        let mut pivots = 0u64;
        assert_eq!(inst.solve_primal(inst.default_iter_cap(), &mut pivots), PrimalEnd::Optimal);
        inst.append_le_rows(&[(vec![1.0, 1.0], 5.0)]);
        assert_eq!(inst.dual_reoptimize(inst.default_iter_cap(), &mut pivots), DualEnd::Optimal);
        let x = inst.extract_x();
        let value = composed.objective_value(&x);
        assert!((value - cold.1).abs() < 1e-6, "warm {value} vs cold {}", cold.1);
        assert!(composed.is_feasible(&x, 1e-6), "{x:?}");
    }

    #[test]
    fn appended_infeasible_row_is_detected_by_dual_simplex() {
        let base = build(Sense::Maximize, &[1.0], &[(&[1.0], Relation::Le, 4.0)]);
        let mut inst = build_instance(&base);
        let mut pivots = 0u64;
        assert_eq!(inst.solve_primal(inst.default_iter_cap(), &mut pivots), PrimalEnd::Optimal);
        // x >= 7 as -x <= -7 contradicts x <= 4.
        inst.append_le_rows(&[(vec![-1.0], -7.0)]);
        assert_eq!(inst.dual_reoptimize(inst.default_iter_cap(), &mut pivots), DualEnd::Infeasible);
    }

    #[test]
    fn unique_optimum_detection() {
        // max x+y st x<=2, y<=3: unique vertex (2,3).
        let unique = build(
            Sense::Maximize,
            &[1.0, 1.0],
            &[(&[1.0, 0.0], Relation::Le, 2.0), (&[0.0, 1.0], Relation::Le, 3.0)],
        );
        let mut inst = build_instance(&unique);
        let mut pivots = 0u64;
        assert_eq!(inst.solve_primal(inst.default_iter_cap(), &mut pivots), PrimalEnd::Optimal);
        assert!(inst.optimum_is_unique());

        // max x+y st x+y<=5: a whole edge of optima.
        let tied = build(Sense::Maximize, &[1.0, 1.0], &[(&[1.0, 1.0], Relation::Le, 5.0)]);
        let mut inst = build_instance(&tied);
        let mut pivots = 0u64;
        assert_eq!(inst.solve_primal(inst.default_iter_cap(), &mut pivots), PrimalEnd::Optimal);
        assert!(!inst.optimum_is_unique());
    }
}
