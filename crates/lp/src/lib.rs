//! # ipet-lp
//!
//! A self-contained linear-programming and integer-linear-programming solver,
//! standing in for the commercial ILP package used by the paper's tool.
//!
//! The paper observes that in practice its branch-and-bound solver finds an
//! integral solution at the *very first* LP relaxation (the structural
//! constraints are network-flow-like). This crate therefore reports that
//! statistic explicitly in [`IlpStats::first_relaxation_integral`], so the
//! experiment harness can reproduce the claim.
//!
//! ## Components
//!
//! * [`Problem`] / [`ProblemBuilder`] — dense LP/ILP model with named
//!   variables, `≤ / ≥ / =` rows and non-negative variables.
//! * [`solve_lp`] — two-phase primal simplex with Bland's anti-cycling rule.
//! * [`solve_ilp`] — depth-first branch & bound on fractional variables.
//!
//! ## Example
//!
//! ```
//! use ipet_lp::{ProblemBuilder, Relation, Sense, solve_ilp, IlpOutcome};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x,y integer >= 0
//! let mut b = ProblemBuilder::new(Sense::Maximize);
//! let x = b.add_var("x", true);
//! let y = b.add_var("y", true);
//! b.objective(x, 3.0);
//! b.objective(y, 2.0);
//! b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! b.constraint(vec![(x, 1.0)], Relation::Le, 2.0);
//! let (outcome, stats) = solve_ilp(&b.build());
//! match outcome {
//!     IlpOutcome::Optimal { value, .. } => {
//!         assert_eq!(value.round() as i64, 10); // x=2, y=2
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! assert!(stats.lp_calls >= 1);
//! ```

//!
//! ## Budgets and graceful degradation
//!
//! The budget-aware entry points never hang and never guess: work is
//! charged to a [`BudgetMeter`] in deterministic *ticks* (one tick = one
//! simplex pivot), a [`SolveBudget`] caps ticks, LP iterations,
//! branch-and-bound nodes and DNF sets, and [`solve_ilp_budgeted`] degrades
//! to a safe LP-relaxation bound ([`IlpResolution::Relaxed`]) instead of
//! erroring when a budget runs out. [`SolverFaults`] injects each
//! exhaustion path deterministically for testing, and [`BoundQuality`] is
//! the vocabulary downstream layers use to label how trustworthy a
//! reported bound is.

//!
//! ## Witness rounding
//!
//! [`round_witness`] / [`round_claimed`] are the single sanctioned path from
//! f64 solver output to integer execution counts, under one tolerance
//! ([`WITNESS_TOL`]). The estimator, the pool's solve cache, and the
//! `ipet-audit` certifier all round here, so "is this witness integral?"
//! has exactly one answer everywhere.

mod backend;
mod budget;
mod fastpath;
mod fingerprint;
mod ilp;
mod incremental;
mod model;
mod network;
pub mod parametric;
mod presolve;
mod round;
mod simplex;
mod sparse;
mod structure;

pub use backend::{set_solver_backend, solver_backend, SolverBackend};
pub use budget::{
    BoundQuality, BudgetMeter, CancelToken, IoFault, LpFault, SolveBudget, SolveFault, SolverFaults,
};
pub use fingerprint::{delta_rows_fingerprint, fingerprint, same_structure, Fingerprint};
pub use ilp::{
    solve_ilp, solve_ilp_budgeted, solve_ilp_with_limits, IlpLimits, IlpOutcome, IlpResolution,
    IlpStats,
};
#[cfg(debug_assertions)]
pub use incremental::debug_force_warm_mismatch;
pub use incremental::{
    solve_delta_warm, warm_eligible, BaseProblem, BaseSolution, CertifyFn, DeltaSet,
    IncrementalSolver,
};
pub use model::{Constraint, Problem, ProblemBuilder, Relation, Sense, VarId};
pub use parametric::{BoundFormula, GridSweep, Probe};
pub use round::{round_claimed, round_witness, RoundError, WITNESS_TOL};
pub use simplex::{solve_lp, solve_lp_metered, LpOutcome, FEAS_TOL, INT_TOL};
pub use structure::is_network_matrix;
