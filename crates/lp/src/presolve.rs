//! Exact-arithmetic presolve with a postsolve witness map.
//!
//! The fast solver backends (sparse revised simplex, network simplex) only
//! ever *accept* a solve when it is provably identical to what the dense cold
//! path would produce. That proof leans on a bijection between the feasible
//! set of the original problem and the feasible set of the presolved problem,
//! so every reduction here must preserve the **LP relaxation's** feasible set
//! exactly — not merely the integer hull. Concretely:
//!
//! - all arithmetic is exact (`i64` terms with checked ops, `i128`
//!   accumulation); any value that is not an exactly-representable integer
//!   aborts presolve and the solve falls back to the dense path,
//! - empty rows are dropped only when trivially satisfied,
//! - a singleton row `a·x ⋈ b` is absorbed into a variable bound only when
//!   `a | b`, so the induced bound `b/a` is the row's exact LP shadow
//!   (otherwise the row is kept verbatim),
//! - a variable is fixed only when forced (`lo == ub`, or an exact equality
//!   singleton), and the fixed value is substituted exactly,
//! - duplicate rows (identical term vectors and relation) are folded to the
//!   dominating one; contradictory duplicates abort.
//!
//! Anything surprising — overflow, non-integral data, detected infeasibility
//! — returns `None` and the caller runs the ordinary dense solve, which
//! remains the single source of truth for hard cases.

use crate::model::{Constraint, Problem, Relation, Sense};
use std::collections::HashMap;

/// Magnitude cap for "exactly representable integer" coefficients. Stays well
/// inside 2^53 so `f64 -> i64 -> f64` round-trips losslessly, with headroom
/// for checked substitution products.
const MAX_EXACT: f64 = 4.0e15;

/// Interpret `v` as an exact integer, or bail.
pub(crate) fn exact_int(v: f64) -> Option<i64> {
    if v.is_finite() && v.fract() == 0.0 && v.abs() <= MAX_EXACT {
        Some(v as i64)
    } else {
        None
    }
}

/// A constraint row in exact integer form. Terms are sorted by variable index
/// and contain no zero coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct IntRow {
    pub terms: Vec<(usize, i64)>,
    pub rel: Relation,
    pub rhs: i64,
}

impl IntRow {
    /// Exact view of one constraint, or `None` if any coefficient or the
    /// right-hand side is not an exactly-representable integer. Duplicate
    /// terms are summed (checked), zeros dropped, terms sorted by variable.
    pub(crate) fn from_constraint(con: &Constraint) -> Option<IntRow> {
        let mut acc: HashMap<usize, i64> = HashMap::new();
        for &(var, coeff) in &con.terms {
            let c = exact_int(coeff)?;
            let slot = acc.entry(var.0).or_insert(0);
            *slot = slot.checked_add(c)?;
        }
        let mut terms: Vec<(usize, i64)> = acc.into_iter().filter(|&(_, c)| c != 0).collect();
        terms.sort_unstable_by_key(|&(v, _)| v);
        Some(IntRow { terms, rel: con.relation, rhs: exact_int(con.rhs)? })
    }
}

/// A whole problem in exact integer form.
#[derive(Debug, Clone)]
pub(crate) struct IntProblem {
    pub sense: Sense,
    pub obj: Vec<i64>,
    pub rows: Vec<IntRow>,
    pub n: usize,
}

impl IntProblem {
    /// Exact view of `problem`, or `None` if any coefficient, right-hand side
    /// or objective entry is not an exactly-representable integer.
    pub(crate) fn from_problem(problem: &Problem) -> Option<IntProblem> {
        let n = problem.num_vars();
        let mut obj = Vec::with_capacity(n);
        for &c in &problem.objective {
            obj.push(exact_int(c)?);
        }
        let mut rows = Vec::with_capacity(problem.num_constraints());
        for con in &problem.constraints {
            rows.push(IntRow::from_constraint(con)?);
        }
        Some(IntProblem { sense: problem.sense, obj, rows, n })
    }
}

/// Check `x` (non-negative integers) against every row of `problem` in exact
/// arithmetic and return the exact objective value. `None` means infeasible
/// (or dimensions mismatch) — the caller must then treat the candidate solve
/// as a miss.
pub(crate) fn certify_exact(problem: &IntProblem, x: &[i64]) -> Option<i128> {
    if x.len() != problem.n || x.iter().any(|&v| v < 0) {
        return None;
    }
    for row in &problem.rows {
        let mut lhs: i128 = 0;
        for &(var, coeff) in &row.terms {
            lhs += coeff as i128 * x[var] as i128;
        }
        let ok = match row.rel {
            Relation::Le => lhs <= row.rhs as i128,
            Relation::Ge => lhs >= row.rhs as i128,
            Relation::Eq => lhs == row.rhs as i128,
        };
        if !ok {
            return None;
        }
    }
    let mut value: i128 = 0;
    for (i, &c) in problem.obj.iter().enumerate() {
        value += c as i128 * x[i] as i128;
    }
    Some(value)
}

/// Where each original variable went.
#[derive(Debug, Clone)]
enum VarState {
    /// Forced to this exact value by the constraints.
    Fixed(i64),
    /// Survives as reduced-problem variable with this index.
    Free(usize),
}

/// Reduction counters, reported as `lp.presolve.*` trace counters.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PresolveStats {
    pub rows_removed: u64,
    pub cols_fixed: u64,
    pub dup_rows: u64,
}

/// Output of [`presolve`]: a smaller problem over the free variables plus the
/// map needed to reconstruct a full witness.
#[derive(Debug, Clone)]
pub(crate) struct Reduced {
    pub n_free: usize,
    /// Non-singleton rows over free-variable indices (bounds carried apart).
    pub rows: Vec<IntRow>,
    /// Lower bound per free variable (>= 0).
    pub lo: Vec<i64>,
    /// Upper bound per free variable, if any.
    pub ub: Vec<Option<i64>>,
    pub obj: Vec<i64>,
    pub sense: Sense,
    pub stats: PresolveStats,
    map: Vec<VarState>,
}

/// Outcome of mapping one delta row into the reduced space.
#[derive(Debug, Clone)]
pub(crate) enum MappedRow {
    /// A genuine residual row over free variables.
    Row(IntRow),
    /// All variables in the row were fixed; the row reduced to a tautology.
    Satisfied,
    /// All variables in the row were fixed and the row is violated.
    Violated,
}

impl Reduced {
    /// Reconstruct the full witness from a reduced one.
    pub(crate) fn postsolve_witness(&self, reduced_x: &[i64]) -> Option<Vec<i64>> {
        if reduced_x.len() != self.n_free {
            return None;
        }
        let mut full = Vec::with_capacity(self.map.len());
        for state in &self.map {
            full.push(match *state {
                VarState::Fixed(v) => v,
                VarState::Free(idx) => reduced_x[idx],
            });
        }
        Some(full)
    }

    /// Map a row stated over *original* variables into the reduced space:
    /// fixed variables are substituted exactly, free ones reindexed.
    pub(crate) fn map_row(&self, row: &IntRow) -> Option<MappedRow> {
        let mut acc: HashMap<usize, i64> = HashMap::new();
        let mut rhs = row.rhs;
        for &(var, coeff) in &row.terms {
            match *self.map.get(var)? {
                VarState::Fixed(v) => {
                    rhs = rhs.checked_sub(coeff.checked_mul(v)?)?;
                }
                VarState::Free(idx) => {
                    let slot = acc.entry(idx).or_insert(0);
                    *slot = slot.checked_add(coeff)?;
                }
            }
        }
        let mut terms: Vec<(usize, i64)> = acc.into_iter().filter(|&(_, c)| c != 0).collect();
        terms.sort_unstable_by_key(|&(v, _)| v);
        if terms.is_empty() {
            let ok = match row.rel {
                Relation::Le => 0 <= rhs,
                Relation::Ge => 0 >= rhs,
                Relation::Eq => rhs == 0,
            };
            return Some(if ok { MappedRow::Satisfied } else { MappedRow::Violated });
        }
        Some(MappedRow::Row(IntRow { terms, rel: row.rel, rhs }))
    }

    /// Render the reduced problem as a [`Problem`] for the general sparse
    /// path, with every free variable shifted down by its lower bound
    /// (`x = lo + x'`). The shift makes each tightened lower bound the
    /// implicit `x' >= 0`, so no `>=` bound rows — and therefore no
    /// phase-1 artificials for them — are ever emitted; upper bounds become
    /// slack-basic `<=` rows. Witnesses from the returned problem must go
    /// through [`Reduced::unshift_witness`] before
    /// [`Reduced::postsolve_witness`]. Returns `None` when a shifted
    /// quantity falls outside the exactly-representable `f64` range.
    pub(crate) fn to_shifted_problem(&self) -> Option<Problem> {
        use crate::model::{Constraint, VarId};
        let mut constraints = Vec::with_capacity(self.rows.len() + self.n_free);
        for row in &self.rows {
            constraints.push(Constraint {
                terms: row.terms.iter().map(|&(v, c)| (VarId(v), c as f64)).collect(),
                relation: row.rel,
                rhs: self.shift_rhs(&row.terms, row.rhs)? as f64,
            });
        }
        for v in 0..self.n_free {
            if let Some(u) = self.ub[v] {
                // `ub >= lo` is a presolve invariant, so the shifted bound
                // keeps a non-negative right-hand side (slack stays basic).
                constraints.push(Constraint {
                    terms: vec![(VarId(v), 1.0)],
                    relation: Relation::Le,
                    rhs: exact_rhs(i128::from(u) - i128::from(self.lo[v]))? as f64,
                });
            }
        }
        Some(Problem {
            sense: self.sense,
            objective: self.obj.iter().map(|&c| c as f64).collect(),
            constraints,
            integer: vec![true; self.n_free],
            names: (0..self.n_free).map(|i| format!("r{i}")).collect(),
        })
    }

    /// Right-hand side of a reduced row after the `x = lo + x'` shift:
    /// `rhs - sum(a_v * lo[v])`, exact or `None`.
    pub(crate) fn shift_rhs(&self, terms: &[(usize, i64)], rhs: i64) -> Option<i64> {
        let mut acc = i128::from(rhs);
        for &(v, a) in terms {
            acc -= i128::from(a) * i128::from(*self.lo.get(v)?);
        }
        exact_rhs(acc)
    }

    /// Undo the `x = lo + x'` shift on a reduced-space witness.
    pub(crate) fn unshift_witness(&self, shifted_x: &[i64]) -> Option<Vec<i64>> {
        if shifted_x.len() != self.n_free {
            return None;
        }
        shifted_x.iter().zip(&self.lo).map(|(&v, &lo)| v.checked_add(lo)).collect()
    }
}

/// Clamp helper: an `i128` that fits `i64` and stays exactly representable
/// as `f64` (|v| <= 2^53), or `None`.
fn exact_rhs(v: i128) -> Option<i64> {
    if v.abs() > (1i128 << 53) {
        return None;
    }
    i64::try_from(v).ok()
}

/// Run the presolve fixpoint over `problem`. Returns `None` whenever a
/// reduction cannot be justified exactly (non-integral data, overflow) or the
/// problem is detected infeasible — the caller then uses the dense path,
/// which owns all hard-case semantics.
pub(crate) fn presolve(problem: &IntProblem) -> Option<Reduced> {
    let n = problem.n;
    let mut rows: Vec<Option<IntRow>> = problem.rows.iter().cloned().map(Some).collect();
    // Implicit non-negativity is the model-wide ground bound.
    let mut lo: Vec<i64> = vec![0; n];
    let mut ub: Vec<Option<i64>> = vec![None; n];
    let mut fixed: Vec<Option<i64>> = vec![None; n];
    let mut stats = PresolveStats::default();

    // Fixpoint: substitution of a fixed variable can create new empty or
    // singleton rows, which can fix more variables.
    let mut changed = true;
    let mut feasible = true;
    while changed && feasible {
        changed = false;

        // Newly forced variables (lo == ub) get substituted everywhere.
        let mut to_fix: Vec<(usize, i64)> = Vec::new();
        for v in 0..n {
            if fixed[v].is_none() {
                if let Some(u) = ub[v] {
                    if lo[v] > u {
                        feasible = false;
                    } else if lo[v] == u {
                        to_fix.push((v, u));
                    }
                }
            }
        }
        for (v, val) in to_fix {
            if fixed[v].is_some() {
                continue;
            }
            fixed[v] = Some(val);
            stats.cols_fixed += 1;
            changed = true;
            for row in rows.iter_mut().flatten() {
                if let Some(pos) = row.terms.iter().position(|&(var, _)| var == v) {
                    let (_, coeff) = row.terms.remove(pos);
                    match coeff.checked_mul(val).and_then(|p| row.rhs.checked_sub(p)) {
                        Some(new_rhs) => row.rhs = new_rhs,
                        None => return None,
                    }
                }
            }
        }
        if !feasible {
            break;
        }

        // Classify rows: drop satisfied empties, absorb exact singletons.
        for slot in rows.iter_mut() {
            let Some(row) = slot else { continue };
            match row.terms.len() {
                0 => {
                    let ok = match row.rel {
                        Relation::Le => 0 <= row.rhs,
                        Relation::Ge => 0 >= row.rhs,
                        Relation::Eq => row.rhs == 0,
                    };
                    if !ok {
                        feasible = false;
                        break;
                    }
                    *slot = None;
                    stats.rows_removed += 1;
                    changed = true;
                }
                1 => {
                    let (var, a) = row.terms[0];
                    debug_assert_ne!(a, 0);
                    // Only absorb when the induced bound is the row's exact
                    // LP shadow: a must divide rhs. `2x <= 5` is *kept* — its
                    // LP bound is fractional and flooring it would change the
                    // relaxation's feasible set.
                    if row.rhs % a != 0 {
                        continue;
                    }
                    let bound = row.rhs / a;
                    // `a·x ⋈ b` with a < 0 flips the relation for x.
                    let rel = if a > 0 {
                        row.rel
                    } else {
                        match row.rel {
                            Relation::Le => Relation::Ge,
                            Relation::Ge => Relation::Le,
                            Relation::Eq => Relation::Eq,
                        }
                    };
                    match rel {
                        Relation::Le => {
                            if ub[var].is_none_or(|u| bound < u) {
                                ub[var] = Some(bound);
                            }
                        }
                        Relation::Ge => {
                            if bound > lo[var] {
                                lo[var] = bound;
                            }
                        }
                        Relation::Eq => {
                            if bound > lo[var] {
                                lo[var] = bound;
                            }
                            if ub[var].is_none_or(|u| bound < u) {
                                ub[var] = Some(bound);
                            }
                        }
                    }
                    *slot = None;
                    stats.rows_removed += 1;
                    changed = true;
                }
                _ => {}
            }
        }
    }
    if !feasible {
        return None;
    }

    // Duplicate-row folding: identical (terms, relation) keep only the
    // dominating right-hand side; contradictory equality duplicates bail.
    let mut seen: HashMap<(Vec<(usize, i64)>, Relation), usize> = HashMap::new();
    let mut folded: Vec<IntRow> = Vec::new();
    for row in rows.into_iter().flatten() {
        let key = (row.terms.clone(), row.rel);
        match seen.get(&key) {
            Some(&idx) => {
                let kept = &mut folded[idx];
                match row.rel {
                    Relation::Le => kept.rhs = kept.rhs.min(row.rhs),
                    Relation::Ge => kept.rhs = kept.rhs.max(row.rhs),
                    Relation::Eq => {
                        if kept.rhs != row.rhs {
                            return None;
                        }
                    }
                }
                stats.dup_rows += 1;
            }
            None => {
                seen.insert(key, folded.len());
                folded.push(row);
            }
        }
    }

    // Reindex the survivors.
    let mut map = Vec::with_capacity(n);
    let mut n_free = 0usize;
    for f in &fixed {
        match f {
            Some(val) => map.push(VarState::Fixed(*val)),
            None => {
                map.push(VarState::Free(n_free));
                n_free += 1;
            }
        }
    }
    let reindex = |terms: &[(usize, i64)]| -> Vec<(usize, i64)> {
        terms
            .iter()
            .map(|&(v, c)| match map[v] {
                VarState::Free(idx) => (idx, c),
                VarState::Fixed(_) => unreachable!("fixed vars were substituted out"),
            })
            .collect()
    };
    let rows = folded
        .iter()
        .map(|r| IntRow { terms: reindex(&r.terms), rel: r.rel, rhs: r.rhs })
        .collect();
    let mut r_lo = Vec::with_capacity(n_free);
    let mut r_ub = Vec::with_capacity(n_free);
    let mut r_obj = Vec::with_capacity(n_free);
    for v in 0..n {
        if let VarState::Free(_) = map[v] {
            r_lo.push(lo[v]);
            r_ub.push(ub[v]);
            r_obj.push(problem.obj[v]);
        }
    }
    Some(Reduced { n_free, rows, lo: r_lo, ub: r_ub, obj: r_obj, sense: problem.sense, stats, map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProblemBuilder, Relation, Sense};

    fn int_problem(p: &Problem) -> IntProblem {
        IntProblem::from_problem(p).expect("exact data")
    }

    #[test]
    fn fixes_chain_through_equalities() {
        // d1 = 1; x1 = d1; x2 - 10 x1 <= 0  — classic IPET entry + loop bound.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let d1 = b.add_var("d1", true);
        let x1 = b.add_var("x1", true);
        let x2 = b.add_var("x2", true);
        b.objective(x1, 5.0);
        b.objective(x2, 7.0);
        b.constraint(vec![(d1, 1.0)], Relation::Eq, 1.0);
        b.constraint(vec![(x1, 1.0), (d1, -1.0)], Relation::Eq, 0.0);
        b.constraint(vec![(x2, 1.0), (x1, -10.0)], Relation::Le, 0.0);
        let p = b.build();
        let red = presolve(&int_problem(&p)).expect("reduces");
        // d1 and x1 fixed to 1; x2 free with ub 10.
        assert_eq!(red.n_free, 1);
        assert_eq!(red.lo, vec![0]);
        assert_eq!(red.ub, vec![Some(10)]);
        assert!(red.rows.is_empty());
        assert_eq!(red.stats.cols_fixed, 2);
        let full = red.postsolve_witness(&[10]).unwrap();
        assert_eq!(full, vec![1, 1, 10]);
        let ip = int_problem(&p);
        assert_eq!(certify_exact(&ip, &full), Some(5 + 70));
    }

    #[test]
    fn keeps_non_divisible_singleton() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.0);
        b.constraint(vec![(x, 2.0)], Relation::Le, 5.0);
        let p = b.build();
        let red = presolve(&int_problem(&p)).expect("reduces");
        // 2x <= 5 must survive verbatim: flooring the bound would shrink the
        // LP relaxation.
        assert_eq!(red.rows.len(), 1);
        assert_eq!(red.ub, vec![None]);
    }

    #[test]
    fn folds_duplicate_rows() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 1.0);
        b.objective(y, 1.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 8.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        let p = b.build();
        let red = presolve(&int_problem(&p)).expect("reduces");
        assert_eq!(red.rows.len(), 1);
        assert_eq!(red.rows[0].rhs, 5);
        assert_eq!(red.stats.dup_rows, 1);
    }

    #[test]
    fn bails_on_contradictory_fix() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.0);
        b.constraint(vec![(x, 1.0)], Relation::Eq, 3.0);
        b.constraint(vec![(x, 1.0)], Relation::Eq, 4.0);
        let p = b.build();
        assert!(presolve(&int_problem(&p)).is_none());
    }

    #[test]
    fn bails_on_non_integral_data() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.5);
        b.constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        let p = b.build();
        assert!(IntProblem::from_problem(&p).is_none());
    }

    #[test]
    fn map_row_substitutes_fixed_vars() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 1.0);
        b.objective(y, 1.0);
        b.constraint(vec![(x, 1.0)], Relation::Eq, 2.0);
        b.constraint(vec![(y, 1.0)], Relation::Le, 9.0);
        let p = b.build();
        let red = presolve(&int_problem(&p)).expect("reduces");
        assert_eq!(red.n_free, 1); // y free (bounded), x fixed
                                   // Delta row x + y <= 7 maps to y <= 5.
        let row = IntRow { terms: vec![(0, 1), (1, 1)], rel: Relation::Le, rhs: 7 };
        match red.map_row(&row).unwrap() {
            MappedRow::Row(r) => {
                assert_eq!(r.terms, vec![(0, 1)]);
                assert_eq!(r.rhs, 5);
            }
            other => panic!("unexpected mapping {other:?}"),
        }
        // Delta row x >= 3 is violated outright once x is fixed to 2.
        let row = IntRow { terms: vec![(0, 1)], rel: Relation::Ge, rhs: 3 };
        assert!(matches!(red.map_row(&row).unwrap(), MappedRow::Violated));
    }
}
