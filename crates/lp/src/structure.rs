//! Structural analysis of constraint matrices.
//!
//! The paper's §III-D argues that with IDL-restricted functionality
//! constraints the ILP "is equivalent to a network flow problem, which can
//! be solved in polynomial time" — which is also why the first LP
//! relaxation keeps coming out integral. This module makes the argument
//! checkable: [`is_network_matrix`] recognises matrices that are totally
//! unimodular by the classical two-nonzero column criterion.
//!
//! A `{0, ±1}` matrix in which every column has at most two nonzeros is
//! totally unimodular iff its rows can be split into two classes such
//! that, per column, two nonzeros of the *same* sign fall in different
//! classes and two of *opposite* sign fall in the same class
//! (Heller–Tompkins). IPET's structural constraints satisfy this with
//! "inflow rows" and "outflow rows" as the two classes; the check below
//! discovers the classes by graph 2-colouring, so it works on any row
//! ordering.

use crate::model::Problem;

/// Per-column nonzero summary: `(row, sign)` pairs.
fn column_nonzeros(problem: &Problem) -> Option<Vec<Vec<(usize, i8)>>> {
    let mut cols: Vec<Vec<(usize, i8)>> = vec![Vec::new(); problem.num_vars()];
    for (r, con) in problem.constraints.iter().enumerate() {
        for (v, c) in con.terms.iter().fold(std::collections::HashMap::new(), |mut acc, &(v, c)| {
            *acc.entry(v).or_insert(0.0) += c;
            acc
        }) {
            if c == 0.0 {
                continue;
            }
            let sign = if c == 1.0 {
                1i8
            } else if c == -1.0 {
                -1i8
            } else {
                return None; // entry outside {0, +1, -1}
            };
            cols[v.0].push((r, sign));
            if cols[v.0].len() > 2 {
                return None; // more than two nonzeros in a column
            }
        }
    }
    Some(cols)
}

/// True when the constraint matrix is a network(-like) matrix in the
/// Heller–Tompkins sense, which guarantees total unimodularity: with
/// integral right-hand sides every vertex of the LP relaxation is
/// integral, so branch & bound terminates at the first LP call.
///
/// Conservative: returns `false` for matrices that are TU for other
/// reasons. Right-hand sides are not inspected (IPET's are integers by
/// construction).
pub fn is_network_matrix(problem: &Problem) -> bool {
    let Some(cols) = column_nonzeros(problem) else {
        return false;
    };
    // 2-colour rows: same-sign pairs want different colours (edge weight
    // "different"), opposite-sign pairs want the same colour ("same").
    // Union-find with parity.
    let n = problem.num_constraints();
    let mut parent: Vec<usize> = (0..n).collect();
    let mut parity: Vec<u8> = vec![0; n]; // parity to parent

    fn find(parent: &mut Vec<usize>, parity: &mut Vec<u8>, x: usize) -> (usize, u8) {
        if parent[x] == x {
            return (x, 0);
        }
        let (root, p) = find(parent, parity, parent[x]);
        parent[x] = root;
        parity[x] ^= p;
        (root, parity[x])
    }

    for col in &cols {
        if col.len() != 2 {
            continue;
        }
        let (r1, s1) = col[0];
        let (r2, s2) = col[1];
        // same sign -> rows in different classes (parity 1);
        // opposite sign -> same class (parity 0).
        let want = u8::from(s1 == s2);
        let (root1, p1) = find(&mut parent, &mut parity, r1);
        let (root2, p2) = find(&mut parent, &mut parity, r2);
        if root1 == root2 {
            if p1 ^ p2 != want {
                return false;
            }
        } else {
            parent[root1] = root2;
            parity[root1] = p1 ^ p2 ^ want;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProblemBuilder, Relation, Sense};

    #[test]
    fn flow_conservation_matrix_is_network() {
        // The paper's Fig. 2 structural system in full: one inflow row and
        // one outflow row per block (x1..x4 over edges d1..d6). Every
        // column then has at most two entries, all in {0,±1}, and the
        // in/out row split is the Heller-Tompkins 2-colouring.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x: Vec<_> = (1..=4).map(|i| b.add_var(format!("x{i}"), true)).collect();
        let d: Vec<_> = (1..=6).map(|i| b.add_var(format!("d{i}"), true)).collect();
        let rows: [(usize, &[usize]); 8] = [
            (0, &[0]),    // x1 = d1
            (0, &[1, 2]), // x1 = d2 + d3
            (1, &[1]),    // x2 = d2
            (1, &[3]),    // x2 = d4
            (2, &[2]),    // x3 = d3
            (2, &[4]),    // x3 = d5
            (3, &[3, 4]), // x4 = d4 + d5
            (3, &[5]),    // x4 = d6
        ];
        for (xi, ds) in rows {
            let mut terms = vec![(x[xi], 1.0)];
            for &j in ds {
                terms.push((d[j], -1.0));
            }
            b.constraint(terms, Relation::Eq, 0.0);
        }
        b.constraint(vec![(d[0], 1.0)], Relation::Eq, 1.0); // d1 = 1
        assert!(is_network_matrix(&b.build()));
    }

    #[test]
    fn non_unit_coefficients_disqualify() {
        // A loop bound `x2 <= 10*x1` has a 10 in the matrix.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x1 = b.add_var("x1", true);
        let x2 = b.add_var("x2", true);
        b.constraint(vec![(x2, 1.0), (x1, -10.0)], Relation::Le, 0.0);
        assert!(!is_network_matrix(&b.build()));
    }

    #[test]
    fn three_nonzeros_in_a_column_disqualify() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        for _ in 0..3 {
            b.constraint(vec![(x, 1.0)], Relation::Le, 5.0);
        }
        assert!(!is_network_matrix(&b.build()));
    }

    #[test]
    fn odd_cycle_of_same_sign_pairs_disqualifies() {
        // Three rows pairwise sharing same-sign columns cannot be
        // 2-coloured.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let ab = b.add_var("ab", true);
        let bc = b.add_var("bc", true);
        let ca = b.add_var("ca", true);
        b.constraint(vec![(ab, 1.0), (ca, 1.0)], Relation::Le, 1.0); // row a
        b.constraint(vec![(ab, 1.0), (bc, 1.0)], Relation::Le, 1.0); // row b
        b.constraint(vec![(bc, 1.0), (ca, 1.0)], Relation::Le, 1.0); // row c
        assert!(!is_network_matrix(&b.build()));
    }

    #[test]
    fn repeated_terms_are_summed_before_the_check() {
        // +1 and -1 on the same variable in one row cancel to zero.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.constraint(vec![(x, 1.0), (x, -1.0), (y, 1.0)], Relation::Eq, 0.0);
        assert!(is_network_matrix(&b.build()));
    }

    #[test]
    fn empty_problem_is_trivially_network() {
        let b = ProblemBuilder::new(Sense::Minimize);
        assert!(is_network_matrix(&b.build()));
    }
}
