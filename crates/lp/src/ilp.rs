//! Branch & bound over the LP relaxation.

use crate::budget::{BudgetMeter, SolveBudget, SolveFault, SolverFaults};
use crate::model::{Problem, Relation, Sense, VarId};
use crate::simplex::{solve_lp_metered, LpOutcome, INT_TOL};

/// Result of an ILP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpOutcome {
    /// An optimal integral solution was found.
    Optimal {
        /// Primal solution (integer variables are integral within [`INT_TOL`]).
        x: Vec<f64>,
        /// Objective value in the problem's own sense.
        value: f64,
    },
    /// No integral feasible point exists.
    Infeasible,
    /// The relaxation is unbounded (for IPET this means a loop bound is
    /// missing, and the caller reports it as such).
    Unbounded,
    /// The node or LP budget was exhausted before proving optimality.
    LimitReached,
}

/// Search statistics, used to reproduce the paper's observation that the
/// first LP relaxation is already integral in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IlpStats {
    /// Number of LP relaxations solved.
    pub lp_calls: usize,
    /// Number of branch-and-bound nodes expanded.
    pub nodes: usize,
    /// True when the root relaxation was already integral — the paper's
    /// §III-D claim ("the first call to the linear program package resulted
    /// in an integer valued solution").
    pub first_relaxation_integral: bool,
}

/// Resource limits for [`solve_ilp_with_limits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IlpLimits {
    /// Maximum number of branch-and-bound nodes to expand.
    pub max_nodes: usize,
}

impl Default for IlpLimits {
    fn default() -> IlpLimits {
        IlpLimits { max_nodes: SolveBudget::DEFAULT_MAX_NODES }
    }
}

/// Result of a budget-aware ILP solve ([`solve_ilp_budgeted`]).
///
/// Unlike [`IlpOutcome`], budget exhaustion is not a dead end: whenever the
/// search has proven *any* outer bound, the solve degrades to
/// [`Relaxed`](IlpResolution::Relaxed) instead of failing, because an LP
/// relaxation value is always safe — subproblems only ever add constraints,
/// so no integral point can beat its ancestors' relaxation bounds.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpResolution {
    /// Proven optimal integral solution.
    Exact {
        /// Primal solution (integer variables are integral within [`INT_TOL`]).
        x: Vec<f64>,
        /// Objective value in the problem's own sense.
        value: f64,
    },
    /// The budget ran out (or a subtree was lost to a numerical failure)
    /// before optimality was proven; `bound` is a safe outer bound.
    Relaxed {
        /// Safe outer bound in the problem's own sense: `>=` the true
        /// optimum when maximizing, `<=` when minimizing.
        bound: f64,
        /// Best integral solution found so far, if any. Together with
        /// `bound` it brackets the true optimum.
        incumbent: Option<(Vec<f64>, f64)>,
    },
    /// No integral feasible point exists.
    Infeasible,
    /// The relaxation is unbounded (for IPET this means a loop bound is
    /// missing, and the caller reports it as such).
    Unbounded,
    /// The root relaxation failed numerically; no bound is available.
    Numerical,
    /// The budget ran out before even the root relaxation produced a bound;
    /// nothing safe can be reported.
    Exhausted,
}

/// Finds the integer variable whose relaxation value is most fractional.
fn most_fractional(problem: &Problem, x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if !problem.integer[i] {
            continue;
        }
        let frac = (v - v.round()).abs();
        if frac > INT_TOL {
            let dist = (v.fract() - 0.5).abs(); // smaller = more fractional
            match best {
                None => best = Some((i, dist)),
                Some((_, bd)) if dist < bd => best = Some((i, dist)),
                _ => {}
            }
        }
    }
    best.map(|(i, _)| (i, x[i]))
}

/// Solves the ILP with default limits. See [`solve_ilp_with_limits`].
pub fn solve_ilp(problem: &Problem) -> (IlpOutcome, IlpStats) {
    solve_ilp_with_limits(problem, IlpLimits::default())
}

/// Solves a mixed ILP by depth-first branch & bound on the LP relaxation.
///
/// Compatibility wrapper around [`solve_ilp_budgeted`]: runs with an
/// unlimited budget except for `limits.max_nodes` and collapses the richer
/// [`IlpResolution`] to the classic [`IlpOutcome`] (a truncated search that
/// found an incumbent reports it as `Optimal`, like the original solver).
pub fn solve_ilp_with_limits(problem: &Problem, limits: IlpLimits) -> (IlpOutcome, IlpStats) {
    let budget = SolveBudget { max_nodes: limits.max_nodes, ..SolveBudget::unlimited() };
    let (resolution, stats) =
        solve_ilp_budgeted(problem, &budget, &BudgetMeter::new(), &mut SolverFaults::none());
    let outcome = match resolution {
        IlpResolution::Exact { x, value }
        | IlpResolution::Relaxed { incumbent: Some((x, value)), .. } => {
            IlpOutcome::Optimal { x, value }
        }
        IlpResolution::Infeasible => IlpOutcome::Infeasible,
        IlpResolution::Unbounded => IlpOutcome::Unbounded,
        IlpResolution::Relaxed { incumbent: None, .. }
        | IlpResolution::Numerical
        | IlpResolution::Exhausted => IlpOutcome::LimitReached,
    };
    (outcome, stats)
}

/// Solves a mixed ILP by depth-first branch & bound under `budget`,
/// degrading gracefully instead of failing when resources run out.
///
/// Branching adds `x <= floor(v)` / `x >= ceil(v)` bound rows on the most
/// fractional integer variable; nodes are pruned against the incumbent.
/// Work is charged to `meter` (shared across solves: the deadline in
/// `budget.deadline_ticks` caps the *sum* of work metered through it), and
/// `faults` can force any exhaustion path at a chosen call index.
///
/// On budget exhaustion the search stops and reports
/// [`IlpResolution::Relaxed`] whose `bound` is the tightest safe outer
/// bound proven so far: the best incumbent or the largest (in score) LP
/// relaxation value over all subtrees left open. A subtree lost to a
/// numerical failure is treated as open under its parent's bound, so one
/// bad pivot degrades the answer instead of destroying it.
pub fn solve_ilp_budgeted(
    problem: &Problem,
    budget: &SolveBudget,
    meter: &BudgetMeter,
    faults: &mut SolverFaults,
) -> (IlpResolution, IlpStats) {
    let solve_fault = if faults.armed() { faults.solve_fault() } else { None };
    if solve_fault == Some(SolveFault::Panic) {
        panic!("injected solver panic (SolverFaults)");
    }
    if !ipet_trace::enabled() {
        let (mut resolution, stats) = solve_ilp_routed(problem, budget, meter, faults);
        if let Some(fault) = solve_fault {
            corrupt_resolution(&mut resolution, fault, problem.sense);
        }
        return (resolution, stats);
    }
    let ticks_before = meter.ticks();
    let (mut resolution, stats) = solve_ilp_routed(problem, budget, meter, faults);
    if let Some(fault) = solve_fault {
        corrupt_resolution(&mut resolution, fault, problem.sense);
    }
    ipet_trace::counter("lp.ilp.solves", 1);
    ipet_trace::counter("lp.lp_calls", stats.lp_calls as u64);
    ipet_trace::counter("lp.bb_nodes", stats.nodes as u64);
    ipet_trace::counter("lp.ticks", meter.ticks().saturating_sub(ticks_before));
    let outcome = match &resolution {
        IlpResolution::Exact { .. } => "exact",
        IlpResolution::Relaxed { .. } => "relaxed",
        IlpResolution::Infeasible => "infeasible",
        IlpResolution::Unbounded => "unbounded",
        IlpResolution::Numerical => "numerical",
        IlpResolution::Exhausted => "exhausted",
    };
    ipet_trace::counter(&format!("lp.outcome.{outcome}"), 1);
    ipet_trace::gauge_max("lp.problem.vars.peak", problem.num_vars() as u64);
    ipet_trace::gauge_max("lp.problem.rows.peak", problem.constraints.len() as u64);
    (resolution, stats)
}

/// Applies an injected witness/bound corruption to a finished resolution.
///
/// The corruptions are designed so that an exact-arithmetic certificate
/// check must fail: a shifted witness breaks either flow conservation or the
/// objective replay, and a shifted bound breaks the objective-equality
/// (`Exact`) or bound-covers-witness (`Relaxed`) check in whichever sense
/// direction is unsafe.
fn corrupt_resolution(resolution: &mut IlpResolution, fault: SolveFault, sense: Sense) {
    match fault {
        SolveFault::CorruptWitness => {
            let x = match resolution {
                IlpResolution::Exact { x, .. } => Some(x),
                IlpResolution::Relaxed { incumbent: Some((x, _)), .. } => Some(x),
                _ => None,
            };
            if let Some(first) = x.and_then(|x| x.first_mut()) {
                *first += 1.0;
            }
        }
        SolveFault::CorruptBound => match resolution {
            IlpResolution::Exact { value, .. } => *value += 1.0,
            IlpResolution::Relaxed { bound, incumbent: Some((_, witnessed)) } => {
                // Pull the claimed outer bound past the witnessed value in
                // the unsafe direction.
                *bound = match sense {
                    Sense::Maximize => *witnessed - 1.0,
                    Sense::Minimize => *witnessed + 1.0,
                };
            }
            _ => {}
        },
        SolveFault::Panic => unreachable!("panic faults fire before the solve"),
    }
}

/// Routes a solve through the presolve/sparse/network fast path when the
/// backend and budget allow it, falling back to the dense branch & bound.
///
/// The fast path only fires for warm-eligible budgets (no deadline, no LP
/// iteration cap): like warm starts it is a pure optimization and must never
/// change which results degrade under a budget. Fault injection also routes
/// dense — injected fault indices count dense-path LP calls and the fast
/// path must not shift them. An accepted fast solve is provably the dense
/// cold answer (unique integral optimum, exactly certified), so it returns
/// the same canonical `Exact` resolution and `{1 LP call, 1 node, integral
/// root}` statistics the dense path would report; debug builds shadow-solve
/// dense and assert exactly that.
fn solve_ilp_routed(
    problem: &Problem,
    budget: &SolveBudget,
    meter: &BudgetMeter,
    faults: &mut SolverFaults,
) -> (IlpResolution, IlpStats) {
    // A cancelled meter routes dense, where the budget checkpoints degrade
    // the solve promptly — fast-path work is work too.
    if !faults.armed()
        && crate::incremental::warm_eligible(budget)
        && !meter.cancel_token().is_cancelled()
    {
        let backend = crate::backend::solver_backend();
        let mut pivots = 0u64;
        let fast = crate::fastpath::try_fast_solve(problem, backend, &mut pivots);
        meter.charge_ticks(pivots);
        if let Some(fast) = fast {
            let resolution = IlpResolution::Exact {
                x: fast.x.iter().map(|&v| v as f64).collect(),
                value: fast.claimed as f64,
            };
            let stats = IlpStats { lp_calls: 1, nodes: 1, first_relaxation_integral: true };
            meter.add_lp_call();
            meter.add_node();
            debug_shadow_check_fast(problem, &resolution, stats);
            return (resolution, stats);
        }
    }
    solve_ilp_budgeted_inner(problem, budget, meter, faults)
}

/// A dense-only cold reference solve: unlimited budget, fresh meter, no
/// faults, and — crucially — no fast-path routing. This is the oracle the
/// debug shadow checks compare against; routing the shadow through
/// [`solve_ilp_budgeted`] would re-enter the fast path (infinite recursion on
/// an accepted fast solve) and would not be a dense check at all.
#[cfg_attr(not(debug_assertions), allow(dead_code))]
pub(crate) fn solve_ilp_cold_dense(problem: &Problem) -> (IlpResolution, IlpStats) {
    solve_ilp_budgeted_inner(
        problem,
        &SolveBudget::unlimited(),
        &BudgetMeter::new(),
        &mut SolverFaults::none(),
    )
}

/// Debug builds shadow-solve every accepted fast-path result on the dense
/// tableau and assert bit-identical resolutions and statistics. Release
/// builds skip this; CI's solver-backend matrix covers them byte-for-byte.
#[cfg(debug_assertions)]
fn debug_shadow_check_fast(problem: &Problem, fast: &IlpResolution, fast_stats: IlpStats) {
    let (cold, cold_stats) = solve_ilp_cold_dense(problem);
    assert_eq!(
        *fast, cold,
        "fast-path resolution diverged from the dense cold solve (solver-backend soundness bug)"
    );
    assert_eq!(
        fast_stats, cold_stats,
        "fast-path statistics diverged from the dense cold solve (solver-backend soundness bug)"
    );
}

#[cfg(not(debug_assertions))]
fn debug_shadow_check_fast(_problem: &Problem, _fast: &IlpResolution, _fast_stats: IlpStats) {}

fn solve_ilp_budgeted_inner(
    problem: &Problem,
    budget: &SolveBudget,
    meter: &BudgetMeter,
    faults: &mut SolverFaults,
) -> (IlpResolution, IlpStats) {
    let mut stats = IlpStats::default();
    // For comparison in a unified direction, track everything as "maximize":
    // score(v) = v for Maximize, -v for Minimize.
    let score = |v: f64| match problem.sense {
        Sense::Maximize => v,
        Sense::Minimize => -v,
    };
    let unscore = |s: f64| match problem.sense {
        Sense::Maximize => s,
        Sense::Minimize => -s,
    };

    // A node is a list of extra bound rows plus its parent's LP relaxation
    // value — the bound that still covers the node if it is never solved.
    // The root has no parent bound: if the search dies before the root LP
    // completes there is nothing safe to report.
    struct Node {
        extra: Vec<(usize, Relation, f64)>,
        parent_bound: Option<f64>,
    }
    let mut stack: Vec<Node> = vec![Node { extra: Vec::new(), parent_bound: None }];
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    // Scores of bounds covering subtrees abandoned mid-search (LP budget
    // blow or numerical loss below the root).
    let mut lost_bound_scores: Vec<f64> = Vec::new();
    let mut truncated = false;
    let mut root_failure: Option<IlpResolution> = None;

    while !stack.is_empty() {
        // `faults.node_fault()` is evaluated last so the injected index
        // counts actual node expansions.
        if stats.nodes >= budget.max_nodes || meter.deadline_hit(budget) || faults.node_fault() {
            truncated = true;
            break;
        }
        let Node { extra, parent_bound } = stack.pop().expect("stack checked non-empty");
        stats.nodes += 1;
        meter.add_node();

        let mut sub = problem.clone();
        for &(var, rel, rhs) in &extra {
            sub.constraints.push(crate::model::Constraint {
                terms: vec![(VarId(var), 1.0)],
                relation: rel,
                rhs,
            });
        }
        stats.lp_calls += 1;
        let at_root = extra.is_empty();
        match solve_lp_metered(&sub, budget, meter, faults) {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // A bounded root cannot become unbounded by adding rows;
                // an unbounded child of a bounded root still means the whole
                // integer problem is unbounded along that ray.
                return (IlpResolution::Unbounded, stats);
            }
            LpOutcome::Numerical => {
                if at_root {
                    root_failure = Some(IlpResolution::Numerical);
                    break;
                }
                // The subtree is lost but its parent's relaxation still
                // covers every integral point inside it.
                lost_bound_scores.extend(parent_bound.map(score));
                continue;
            }
            LpOutcome::LimitReached => {
                if at_root {
                    root_failure = Some(IlpResolution::Exhausted);
                    break;
                }
                lost_bound_scores.extend(parent_bound.map(score));
                // The deadline check at the top of the loop stops the whole
                // search once ticks are gone; a per-LP iteration cap alone
                // only loses this subtree.
                continue;
            }
            LpOutcome::Optimal { x, value } => {
                if let Some((_, best)) = &incumbent {
                    // Prune: the relaxation bound cannot beat the incumbent.
                    if score(value) <= score(*best) + 1e-9 {
                        continue;
                    }
                }
                match most_fractional(problem, &x) {
                    None => {
                        if stats.nodes == 1 {
                            stats.first_relaxation_integral = true;
                        }
                        let better = match &incumbent {
                            None => true,
                            Some((_, best)) => score(value) > score(*best),
                        };
                        if better {
                            incumbent = Some((x, value));
                        }
                    }
                    Some((var, v)) => {
                        let lo = v.floor();
                        let hi = v.ceil();
                        // DFS: explore the "floor" child first (pushed last).
                        let mut up = extra.clone();
                        up.push((var, Relation::Ge, hi));
                        stack.push(Node { extra: up, parent_bound: Some(value) });
                        let mut down = extra;
                        down.push((var, Relation::Le, lo));
                        stack.push(Node { extra: down, parent_bound: Some(value) });
                    }
                }
            }
        }
    }

    if let Some(failure) = root_failure {
        return (failure, stats);
    }

    let snap = |mut x: Vec<f64>, value: f64| {
        // Snap integer variables to exact integers for downstream users.
        // `+ 0.0` turns a rounded `-0.0` into `+0.0` so witnesses are
        // bit-identical regardless of which side of zero the LP landed on.
        for (i, xi) in x.iter_mut().enumerate() {
            if problem.integer[i] {
                *xi = xi.round() + 0.0;
            }
        }
        // Pure ILPs also get a canonical objective value: the claimed
        // integer round-tripped through f64. The warm-start path emits its
        // accepted results in exactly this form, so cold and warm solves of
        // the same problem agree bit for bit, not just within tolerance.
        let value = if problem.integer.iter().all(|&b| b) {
            match crate::round::round_claimed(value) {
                Ok(claimed) => claimed as f64,
                Err(_) => value,
            }
        } else {
            value
        };
        (x, value)
    };

    if !truncated && lost_bound_scores.is_empty() {
        // Complete search: the classic trichotomy.
        return match incumbent {
            Some((x, value)) => {
                let (x, value) = snap(x, value);
                (IlpResolution::Exact { x, value }, stats)
            }
            None => (IlpResolution::Infeasible, stats),
        };
    }

    // Degraded: the safe outer bound is the best score any unexplored part
    // of the tree could still attain — open nodes are covered by their
    // parents' relaxation values, lost subtrees by the recorded bounds, and
    // the incumbent is a lower witness that can only tighten the answer.
    let mut bound_score = incumbent.as_ref().map(|(_, v)| score(*v));
    let open_scores = stack
        .iter()
        .filter_map(|node| node.parent_bound.map(score))
        .chain(lost_bound_scores.iter().copied());
    for s in open_scores {
        bound_score = Some(match bound_score {
            None => s,
            Some(b) => b.max(s),
        });
    }
    match bound_score {
        // Truncated before the root LP finished: nothing safe to report.
        None => (IlpResolution::Exhausted, stats),
        Some(s) => {
            let incumbent = incumbent.map(|(x, v)| snap(x, v));
            (IlpResolution::Relaxed { bound: unscore(s), incumbent }, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProblemBuilder;

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> Problem {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let vars: Vec<_> = (0..values.len()).map(|i| b.add_var(format!("x{i}"), true)).collect();
        for (i, &v) in values.iter().enumerate() {
            b.objective(vars[i], v);
            b.constraint(vec![(vars[i], 1.0)], Relation::Le, 1.0);
        }
        let row = weights.iter().enumerate().map(|(i, &w)| (vars[i], w)).collect();
        b.constraint(row, Relation::Le, cap);
        b.build()
    }

    #[test]
    fn knapsack_needs_branching() {
        // values 10,6,4 weights 5,4,3 cap 7 -> best {6,4} = 10? or {10}=10.
        // LP relaxation is fractional (10/5=2 density first: x0=1, then 2/4
        // of item 1 -> 13), so branching must occur.
        let p = knapsack(&[10.0, 6.0, 4.0], &[5.0, 4.0, 3.0], 7.0);
        let (out, stats) = solve_ilp(&p);
        match out {
            IlpOutcome::Optimal { value, x } => {
                assert_eq!(value.round() as i64, 10);
                assert!(p.is_feasible(&x, 1e-6));
            }
            other => panic!("{other:?}"),
        }
        assert!(!stats.first_relaxation_integral);
        assert!(stats.lp_calls > 1);
    }

    #[test]
    fn integral_relaxation_short_circuits() {
        // Network-flow-like: totally unimodular, first LP already integral.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 2.0);
        b.objective(y, 1.0);
        b.constraint(vec![(x, 1.0)], Relation::Le, 3.0);
        b.constraint(vec![(y, 1.0)], Relation::Le, 2.0);
        let (out, stats) = solve_ilp(&b.build());
        assert!(matches!(out, IlpOutcome::Optimal { .. }));
        assert!(stats.first_relaxation_integral);
        assert_eq!(stats.lp_calls, 1);
        assert_eq!(stats.nodes, 1);
    }

    #[test]
    fn infeasible_ilp() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.0);
        // 0.4 <= x <= 0.6 has no integer point.
        b.constraint(vec![(x, 1.0)], Relation::Ge, 0.4);
        b.constraint(vec![(x, 1.0)], Relation::Le, 0.6);
        let (out, _) = solve_ilp(&b.build());
        assert_eq!(out, IlpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_ilp() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.0);
        let (out, _) = solve_ilp(&b.build());
        assert_eq!(out, IlpOutcome::Unbounded);
    }

    #[test]
    fn minimize_ilp() {
        // min 3x + 2y st x + y >= 3, integer -> x=0,y=3 cost 6.
        let mut b = ProblemBuilder::new(Sense::Minimize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 3.0);
        b.objective(y, 2.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        let (out, _) = solve_ilp(&b.build());
        match out {
            IlpOutcome::Optimal { value, .. } => assert_eq!(value.round() as i64, 6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fractional_optimum_forces_rounding_down() {
        // max x st 2x <= 5, x integer -> 2.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.0);
        b.constraint(vec![(x, 1.0), (x, 1.0)], Relation::Le, 5.0);
        let (out, stats) = solve_ilp(&b.build());
        match out {
            IlpOutcome::Optimal { value, x } => {
                assert_eq!(value.round() as i64, 2);
                assert_eq!(x[0], 2.0);
            }
            other => panic!("{other:?}"),
        }
        assert!(!stats.first_relaxation_integral);
    }

    #[test]
    fn node_limit_reported() {
        let p = knapsack(&[9.0, 7.0, 6.0, 5.0, 4.0], &[5.0, 4.0, 3.0, 3.0, 2.0], 9.0);
        let (out, stats) = solve_ilp_with_limits(&p, IlpLimits { max_nodes: 1 });
        // One node is the root; if it is fractional we cannot conclude.
        if stats.first_relaxation_integral {
            assert!(matches!(out, IlpOutcome::Optimal { .. }));
        } else {
            assert_eq!(out, IlpOutcome::LimitReached);
        }
    }

    fn exact_value(p: &Problem) -> f64 {
        match solve_ilp(p).0 {
            IlpOutcome::Optimal { value, .. } => value,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_exact_matches_classic() {
        let p = knapsack(&[10.0, 6.0, 4.0], &[5.0, 4.0, 3.0], 7.0);
        let (res, stats) = solve_ilp_budgeted(
            &p,
            &SolveBudget::unlimited(),
            &BudgetMeter::new(),
            &mut SolverFaults::none(),
        );
        match res {
            IlpResolution::Exact { value, .. } => assert_eq!(value.round() as i64, 10),
            other => panic!("{other:?}"),
        }
        assert!(stats.lp_calls > 1);
    }

    #[test]
    fn node_budget_degrades_to_safe_relaxed_bound() {
        let p = knapsack(&[9.0, 7.0, 6.0, 5.0, 4.0], &[5.0, 4.0, 3.0, 3.0, 2.0], 9.0);
        let exact = exact_value(&p);
        for max_nodes in 1..6 {
            let budget = SolveBudget { max_nodes, ..SolveBudget::unlimited() };
            let meter = BudgetMeter::new();
            let (res, stats) = solve_ilp_budgeted(&p, &budget, &meter, &mut SolverFaults::none());
            assert!(stats.nodes <= max_nodes);
            match res {
                IlpResolution::Exact { value, .. } => {
                    assert!((value - exact).abs() < 1e-6);
                }
                IlpResolution::Relaxed { bound, incumbent } => {
                    // Maximization: the degraded bound must cover the true
                    // optimum, and any incumbent must be dominated by it.
                    assert!(bound >= exact - 1e-6, "bound {bound} < exact {exact}");
                    if let Some((x, value)) = incumbent {
                        assert!(p.is_feasible(&x, 1e-6));
                        assert!(value <= exact + 1e-6);
                    }
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn zero_node_budget_is_exhausted() {
        let p = knapsack(&[3.0, 2.0], &[2.0, 1.0], 2.0);
        let budget = SolveBudget { max_nodes: 0, ..SolveBudget::unlimited() };
        let (res, stats) =
            solve_ilp_budgeted(&p, &budget, &BudgetMeter::new(), &mut SolverFaults::none());
        assert_eq!(res, IlpResolution::Exhausted);
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn tick_deadline_stops_the_search() {
        let p = knapsack(&[9.0, 7.0, 6.0, 5.0, 4.0], &[5.0, 4.0, 3.0, 3.0, 2.0], 9.0);
        let exact = exact_value(&p);
        // A handful of pivots: enough for the root LP, not the whole tree.
        let budget = SolveBudget::with_deadline(12);
        let meter = BudgetMeter::new();
        let (res, _) = solve_ilp_budgeted(&p, &budget, &meter, &mut SolverFaults::none());
        match res {
            IlpResolution::Relaxed { bound, .. } => assert!(bound >= exact - 1e-6),
            IlpResolution::Exact { value, .. } => assert!((value - exact).abs() < 1e-6),
            IlpResolution::Exhausted => {} // deadline died inside the root LP
            other => panic!("{other:?}"),
        }
        assert!(meter.ticks() <= 12 + 12, "runaway ticks: {}", meter.ticks());
    }

    #[test]
    fn injected_node_fault_yields_safe_bound_at_every_index() {
        let p = knapsack(&[9.0, 7.0, 6.0, 5.0, 4.0], &[5.0, 4.0, 3.0, 3.0, 2.0], 9.0);
        let exact = exact_value(&p);
        let total_nodes = solve_ilp(&p).1.nodes as u64;
        for at in 0..total_nodes {
            let mut faults = SolverFaults::limit_at(at);
            let (res, _) =
                solve_ilp_budgeted(&p, &SolveBudget::unlimited(), &BudgetMeter::new(), &mut faults);
            match res {
                IlpResolution::Exact { value, .. } => {
                    assert!((value - exact).abs() < 1e-6);
                }
                IlpResolution::Relaxed { bound, .. } => {
                    assert!(bound >= exact - 1e-6, "at={at}: bound {bound} < {exact}");
                }
                IlpResolution::Exhausted => assert_eq!(at, 0),
                other => panic!("at={at}: {other:?}"),
            }
        }
    }

    #[test]
    fn injected_numerical_fault_below_root_degrades() {
        let p = knapsack(&[9.0, 7.0, 6.0, 5.0, 4.0], &[5.0, 4.0, 3.0, 3.0, 2.0], 9.0);
        let exact = exact_value(&p);
        // LP call 1 is the first child of the root: the subtree is lost but
        // the root relaxation still bounds it.
        let mut faults = SolverFaults::numerical_at(1);
        let (res, _) =
            solve_ilp_budgeted(&p, &SolveBudget::unlimited(), &BudgetMeter::new(), &mut faults);
        match res {
            IlpResolution::Relaxed { bound, .. } => assert!(bound >= exact - 1e-6),
            other => panic!("{other:?}"),
        }
        // At the root there is no covering bound: the solve fails hard.
        let mut faults = SolverFaults::numerical_at(0);
        let (res, _) =
            solve_ilp_budgeted(&p, &SolveBudget::unlimited(), &BudgetMeter::new(), &mut faults);
        assert_eq!(res, IlpResolution::Numerical);
    }

    #[test]
    fn mixed_integrality() {
        // y continuous: max x + y st x + 2y <= 3.5, x <= 1.2; x int.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", false);
        b.objective(x, 1.0);
        b.objective(y, 1.0);
        b.constraint(vec![(x, 1.0), (y, 2.0)], Relation::Le, 3.5);
        b.constraint(vec![(x, 1.0)], Relation::Le, 1.2);
        let (out, _) = solve_ilp(&b.build());
        match out {
            IlpOutcome::Optimal { x: sol, value } => {
                assert_eq!(sol[0], 1.0);
                assert!((sol[1] - 1.25).abs() < 1e-6);
                assert!((value - 2.25).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }
}
