//! Branch & bound over the LP relaxation.

use crate::model::{Problem, Relation, Sense, VarId};
use crate::simplex::{solve_lp, LpOutcome, INT_TOL};

/// Result of an ILP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpOutcome {
    /// An optimal integral solution was found.
    Optimal {
        /// Primal solution (integer variables are integral within [`INT_TOL`]).
        x: Vec<f64>,
        /// Objective value in the problem's own sense.
        value: f64,
    },
    /// No integral feasible point exists.
    Infeasible,
    /// The relaxation is unbounded (for IPET this means a loop bound is
    /// missing, and the caller reports it as such).
    Unbounded,
    /// The node or LP budget was exhausted before proving optimality.
    LimitReached,
}

/// Search statistics, used to reproduce the paper's observation that the
/// first LP relaxation is already integral in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IlpStats {
    /// Number of LP relaxations solved.
    pub lp_calls: usize,
    /// Number of branch-and-bound nodes expanded.
    pub nodes: usize,
    /// True when the root relaxation was already integral — the paper's
    /// §III-D claim ("the first call to the linear program package resulted
    /// in an integer valued solution").
    pub first_relaxation_integral: bool,
}

/// Resource limits for [`solve_ilp_with_limits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IlpLimits {
    /// Maximum number of branch-and-bound nodes to expand.
    pub max_nodes: usize,
}

impl Default for IlpLimits {
    fn default() -> IlpLimits {
        IlpLimits { max_nodes: 200_000 }
    }
}

/// Finds the integer variable whose relaxation value is most fractional.
fn most_fractional(problem: &Problem, x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if !problem.integer[i] {
            continue;
        }
        let frac = (v - v.round()).abs();
        if frac > INT_TOL {
            let dist = (v.fract() - 0.5).abs(); // smaller = more fractional
            match best {
                None => best = Some((i, dist)),
                Some((_, bd)) if dist < bd => best = Some((i, dist)),
                _ => {}
            }
        }
    }
    best.map(|(i, _)| (i, x[i]))
}

/// Solves the ILP with default limits. See [`solve_ilp_with_limits`].
pub fn solve_ilp(problem: &Problem) -> (IlpOutcome, IlpStats) {
    solve_ilp_with_limits(problem, IlpLimits::default())
}

/// Solves a mixed ILP by depth-first branch & bound on the LP relaxation.
///
/// Branching adds `x <= floor(v)` / `x >= ceil(v)` bound rows on the most
/// fractional integer variable; nodes are pruned against the incumbent.
pub fn solve_ilp_with_limits(problem: &Problem, limits: IlpLimits) -> (IlpOutcome, IlpStats) {
    let mut stats = IlpStats::default();
    // For comparison in a unified direction, track everything as "maximize":
    // score(v) = v for Maximize, -v for Minimize.
    let score = |v: f64| match problem.sense {
        Sense::Maximize => v,
        Sense::Minimize => -v,
    };

    // A node is a list of extra bound rows (var, relation, rhs).
    let mut stack: Vec<Vec<(usize, Relation, f64)>> = vec![Vec::new()];
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut truncated = false;

    while let Some(extra) = stack.pop() {
        if stats.nodes >= limits.max_nodes {
            truncated = true;
            break;
        }
        stats.nodes += 1;

        let mut sub = problem.clone();
        for &(var, rel, rhs) in &extra {
            sub.constraints.push(crate::model::Constraint {
                terms: vec![(VarId(var), 1.0)],
                relation: rel,
                rhs,
            });
        }
        stats.lp_calls += 1;
        match solve_lp(&sub) {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                if extra.is_empty() {
                    return (IlpOutcome::Unbounded, stats);
                }
                // A bounded root cannot become unbounded by adding rows;
                // an unbounded child of a bounded root still means the whole
                // integer problem is unbounded along that ray.
                return (IlpOutcome::Unbounded, stats);
            }
            LpOutcome::Optimal { x, value } => {
                if let Some((_, best)) = &incumbent {
                    // Prune: the relaxation bound cannot beat the incumbent.
                    if score(value) <= score(*best) + 1e-9 {
                        continue;
                    }
                }
                match most_fractional(problem, &x) {
                    None => {
                        if stats.nodes == 1 {
                            stats.first_relaxation_integral = true;
                        }
                        let better = match &incumbent {
                            None => true,
                            Some((_, best)) => score(value) > score(*best),
                        };
                        if better {
                            incumbent = Some((x, value));
                        }
                    }
                    Some((var, v)) => {
                        let lo = v.floor();
                        let hi = v.ceil();
                        // DFS: explore the "floor" child first (pushed last).
                        let mut up = extra.clone();
                        up.push((var, Relation::Ge, hi));
                        stack.push(up);
                        let mut down = extra;
                        down.push((var, Relation::Le, lo));
                        stack.push(down);
                    }
                }
            }
        }
    }

    match incumbent {
        Some((mut x, value)) => {
            // Snap integer variables to exact integers for downstream users.
            for (i, xi) in x.iter_mut().enumerate() {
                if problem.integer[i] {
                    *xi = xi.round();
                }
            }
            (IlpOutcome::Optimal { x, value }, stats)
        }
        None if truncated => (IlpOutcome::LimitReached, stats),
        None => (IlpOutcome::Infeasible, stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProblemBuilder;

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> Problem {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let vars: Vec<_> = (0..values.len())
            .map(|i| b.add_var(format!("x{i}"), true))
            .collect();
        for (i, &v) in values.iter().enumerate() {
            b.objective(vars[i], v);
            b.constraint(vec![(vars[i], 1.0)], Relation::Le, 1.0);
        }
        let row = weights.iter().enumerate().map(|(i, &w)| (vars[i], w)).collect();
        b.constraint(row, Relation::Le, cap);
        b.build()
    }

    #[test]
    fn knapsack_needs_branching() {
        // values 10,6,4 weights 5,4,3 cap 7 -> best {6,4} = 10? or {10}=10.
        // LP relaxation is fractional (10/5=2 density first: x0=1, then 2/4
        // of item 1 -> 13), so branching must occur.
        let p = knapsack(&[10.0, 6.0, 4.0], &[5.0, 4.0, 3.0], 7.0);
        let (out, stats) = solve_ilp(&p);
        match out {
            IlpOutcome::Optimal { value, x } => {
                assert_eq!(value.round() as i64, 10);
                assert!(p.is_feasible(&x, 1e-6));
            }
            other => panic!("{other:?}"),
        }
        assert!(!stats.first_relaxation_integral);
        assert!(stats.lp_calls > 1);
    }

    #[test]
    fn integral_relaxation_short_circuits() {
        // Network-flow-like: totally unimodular, first LP already integral.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 2.0);
        b.objective(y, 1.0);
        b.constraint(vec![(x, 1.0)], Relation::Le, 3.0);
        b.constraint(vec![(y, 1.0)], Relation::Le, 2.0);
        let (out, stats) = solve_ilp(&b.build());
        assert!(matches!(out, IlpOutcome::Optimal { .. }));
        assert!(stats.first_relaxation_integral);
        assert_eq!(stats.lp_calls, 1);
        assert_eq!(stats.nodes, 1);
    }

    #[test]
    fn infeasible_ilp() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.0);
        // 0.4 <= x <= 0.6 has no integer point.
        b.constraint(vec![(x, 1.0)], Relation::Ge, 0.4);
        b.constraint(vec![(x, 1.0)], Relation::Le, 0.6);
        let (out, _) = solve_ilp(&b.build());
        assert_eq!(out, IlpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_ilp() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.0);
        let (out, _) = solve_ilp(&b.build());
        assert_eq!(out, IlpOutcome::Unbounded);
    }

    #[test]
    fn minimize_ilp() {
        // min 3x + 2y st x + y >= 3, integer -> x=0,y=3 cost 6.
        let mut b = ProblemBuilder::new(Sense::Minimize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 3.0);
        b.objective(y, 2.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        let (out, _) = solve_ilp(&b.build());
        match out {
            IlpOutcome::Optimal { value, .. } => assert_eq!(value.round() as i64, 6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fractional_optimum_forces_rounding_down() {
        // max x st 2x <= 5, x integer -> 2.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        b.objective(x, 1.0);
        b.constraint(vec![(x, 1.0), (x, 1.0)], Relation::Le, 5.0);
        let (out, stats) = solve_ilp(&b.build());
        match out {
            IlpOutcome::Optimal { value, x } => {
                assert_eq!(value.round() as i64, 2);
                assert_eq!(x[0], 2.0);
            }
            other => panic!("{other:?}"),
        }
        assert!(!stats.first_relaxation_integral);
    }

    #[test]
    fn node_limit_reported() {
        let p = knapsack(
            &[9.0, 7.0, 6.0, 5.0, 4.0],
            &[5.0, 4.0, 3.0, 3.0, 2.0],
            9.0,
        );
        let (out, stats) = solve_ilp_with_limits(&p, IlpLimits { max_nodes: 1 });
        // One node is the root; if it is fractional we cannot conclude.
        if stats.first_relaxation_integral {
            assert!(matches!(out, IlpOutcome::Optimal { .. }));
        } else {
            assert_eq!(out, IlpOutcome::LimitReached);
        }
    }

    #[test]
    fn mixed_integrality() {
        // y continuous: max x + y st x + 2y <= 3.5, x <= 1.2; x int.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", false);
        b.objective(x, 1.0);
        b.objective(y, 1.0);
        b.constraint(vec![(x, 1.0), (y, 2.0)], Relation::Le, 3.5);
        b.constraint(vec![(x, 1.0)], Relation::Le, 1.2);
        let (out, _) = solve_ilp(&b.build());
        match out {
            IlpOutcome::Optimal { x: sol, value } => {
                assert_eq!(sol[0], 1.0);
                assert!((sol[1] - 1.25).abs() < 1e-6);
                assert!((value - 2.25).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }
}
